//! Structure-aware fuzzing of the trace decoders on the workspace
//! proptest shim: random byte mutations of valid v1/v2/v3 traces, raw
//! garbage, truncations at every boundary, and hand-crafted
//! decompression-bomb framings must never panic or mis-decode. Strict
//! reads either return the original records or a typed error; salvage
//! and inspect are total.
//!
//! CI runs this harness with `PROPTEST_CASES=1000` (the fuzz-smoke
//! step); locally it runs at the shim's default case count.

use dfcm_trace::{
    inspect_trace, salvage_trace, Trace, TraceFormatError, TraceRecord, V2_CHUNK_RECORDS,
    V3_CHUNK_RECORDS,
};
use proptest::prelude::*;

/// A deterministic, structurally interesting trace: looping PCs, mixed
/// small/large values, length decoupled from the chunk size.
fn base_trace(records: usize, salt: u64) -> Trace {
    (0..records as u64)
        .map(|i| {
            TraceRecord::new(
                0x40_0000 + 4 * ((i ^ salt) % 1021),
                i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (i % 17),
            )
        })
        .collect()
}

fn v1_bytes(trace: &Trace) -> Vec<u8> {
    let mut buffer = Vec::new();
    trace
        .write_with(&mut buffer, dfcm_trace::TraceFormat::V1)
        .unwrap();
    buffer
}

fn v2_bytes(trace: &Trace, seed: u64) -> Vec<u8> {
    let mut buffer = Vec::new();
    trace.write_v2_to(&mut buffer, seed).unwrap();
    buffer
}

fn v3_bytes(trace: &Trace, seed: u64) -> Vec<u8> {
    let mut buffer = Vec::new();
    trace
        .write_with(&mut buffer, dfcm_trace::TraceFormat::V3 { seed })
        .unwrap();
    buffer
}

/// Minimal varint reader for crafting test inputs: returns the value
/// and the bytes consumed.
fn read_varint_at(bytes: &[u8], at: usize) -> (u64, usize) {
    let mut value = 0u64;
    let mut shift = 0;
    let mut used = 0;
    for &b in &bytes[at..] {
        used += 1;
        value |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            break;
        }
        shift += 7;
    }
    (value, used)
}

fn varint(mut v: u64) -> Vec<u8> {
    let mut out = Vec::new();
    loop {
        let b = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
    out
}

/// Byte offset of the first chunk frame in a v3 file (right after the
/// magic and the length-prefixed header).
fn v3_first_chunk_offset(bytes: &[u8]) -> usize {
    let (hlen, used) = read_varint_at(bytes, 8);
    8 + used + hlen as usize
}

/// Applies `flips` single-byte XOR mutations at pseudo-positions derived
/// from the fuzzer-chosen seeds.
fn mutate(bytes: &mut [u8], flips: &[(u32, u8)], min_offset: usize) {
    if bytes.len() <= min_offset {
        return;
    }
    let span = bytes.len() - min_offset;
    for &(pos, mask) in flips {
        let at = min_offset + (pos as usize % span);
        // A zero mask would be a no-op "mutation"; force at least a bit.
        bytes[at] ^= if mask == 0 { 1 } else { mask };
    }
}

proptest! {
    /// Strict v2 reads of byte-mutated files either reproduce the
    /// original records exactly or fail with a typed format error —
    /// never a panic, never silently wrong data. Mutations are kept off
    /// the 8-byte magic: rewriting the magic legitimately changes which
    /// format (or whether any format) is being parsed.
    #[test]
    fn mutated_v2_never_misdecodes(
        records in 0usize..9000,
        salt in any::<u64>(),
        flips in prop::collection::vec((any::<u32>(), any::<u8>()), 1..8),
    ) {
        let trace = base_trace(records, salt);
        let mut bytes = v2_bytes(&trace, salt);
        mutate(&mut bytes, &flips, 8);
        match Trace::read_from(bytes.as_slice()) {
            Ok(decoded) => prop_assert_eq!(decoded, trace),
            Err(e) => prop_assert!(
                TraceFormatError::classify(&e).is_some(),
                "untyped decode error: {}", e
            ),
        }
    }

    /// Mutated v1 files never panic the reader. (v1 has no checksums, so
    /// a flipped payload byte may legitimately decode to different
    /// records — only totality is asserted.)
    #[test]
    fn mutated_v1_never_panics(
        records in 0usize..9000,
        salt in any::<u64>(),
        flips in prop::collection::vec((any::<u32>(), any::<u8>()), 1..8),
    ) {
        let mut bytes = v1_bytes(&base_trace(records, salt));
        mutate(&mut bytes, &flips, 0);
        let _ = Trace::read_from(bytes.as_slice());
    }

    /// Raw garbage (including mutated magics) never panics any decoder
    /// entry point.
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..4096)) {
        let _ = Trace::read_from(bytes.as_slice());
        let _ = salvage_trace(bytes.as_slice());
        let _ = inspect_trace(bytes.as_slice());
    }

    /// Truncation at every prefix length is handled cleanly: a strict
    /// read fails typed, and salvage recovers only whole intact chunks.
    #[test]
    fn truncated_v2_fails_typed_and_salvages(
        records in 1usize..9000,
        salt in any::<u64>(),
        keep_permille in 0u32..1000,
    ) {
        let trace = base_trace(records, salt);
        let bytes = v2_bytes(&trace, salt);
        let keep = 8 + (bytes.len() - 8) * keep_permille as usize / 1000;
        let err = Trace::read_from(&bytes[..keep]).unwrap_err();
        prop_assert!(TraceFormatError::classify(&err).is_some(), "untyped: {}", err);
        if let Ok(report) = salvage_trace(&bytes[..keep]) {
            prop_assert!(report.recovered.len() <= trace.len());
            prop_assert_eq!(
                report.recovered.records(),
                &trace.records()[..report.recovered.len()]
            );
        }
    }

    /// Salvage and inspect are total on mutated v2 files, and their
    /// reports agree with each other and with the file's bounds.
    #[test]
    fn salvage_and_inspect_are_total_and_consistent(
        records in 0usize..9000,
        salt in any::<u64>(),
        flips in prop::collection::vec((any::<u32>(), any::<u8>()), 1..8),
    ) {
        let trace = base_trace(records, salt);
        let mut bytes = v2_bytes(&trace, salt);
        mutate(&mut bytes, &flips, 8);
        let salvage = salvage_trace(bytes.as_slice());
        let inspect = inspect_trace(bytes.as_slice());
        if let Ok(report) = &salvage {
            prop_assert!(report.recovered_chunks <= report.total_chunks);
            prop_assert!(report.recovered.len() as u64 <= report.declared_records
                || report.declared_records != trace.len() as u64,
                "more records than declared from an honest header");
            // Intact chunks are bit-identical to the original stream:
            // every recovered record appears in the original at the
            // position its chunk implies.
            if report.dropped.is_empty() {
                prop_assert_eq!(&report.recovered, &trace);
            }
        }
        if let Ok(info) = &inspect {
            prop_assert!(info.decoded_records <= info.declared_records
                || info.declared_records != trace.len() as u64);
        }
        // A header mutilated into unreadability fails both the same way.
        prop_assert_eq!(salvage.is_err(), inspect.is_err());
    }

    /// Round-trip sanity at the chunk boundary sizes the fuzzer rarely
    /// hits by chance.
    #[test]
    fn chunk_boundary_sizes_roundtrip(delta in 0usize..3, salt in any::<u64>()) {
        for base in [V2_CHUNK_RECORDS - 1, V2_CHUNK_RECORDS, 2 * V2_CHUNK_RECORDS] {
            let trace = base_trace(base + delta, salt);
            let bytes = v2_bytes(&trace, 1);
            prop_assert_eq!(Trace::read_from(bytes.as_slice()).unwrap(), trace);
        }
    }

    /// Strict v3 reads of byte-mutated files either reproduce the
    /// original records exactly or fail with a typed format error —
    /// never a panic, never silently wrong data, no matter whether the
    /// flip lands in the header, the chunk framing, the compressed
    /// payload, or the CRC itself.
    #[test]
    fn mutated_v3_never_misdecodes(
        records in 0usize..9000,
        salt in any::<u64>(),
        flips in prop::collection::vec((any::<u32>(), any::<u8>()), 1..8),
    ) {
        let trace = base_trace(records, salt);
        let mut bytes = v3_bytes(&trace, salt);
        mutate(&mut bytes, &flips, 8);
        match Trace::read_from(bytes.as_slice()) {
            Ok(decoded) => prop_assert_eq!(decoded, trace),
            Err(e) => prop_assert!(
                TraceFormatError::classify(&e).is_some(),
                "untyped decode error: {}", e
            ),
        }
    }

    /// Truncating a v3 file at every possible byte boundary is handled
    /// cleanly: a strict read fails typed, and salvage recovers only
    /// whole intact chunks that are a prefix of the original.
    #[test]
    fn truncated_v3_fails_typed_and_salvages(
        records in 1usize..9000,
        salt in any::<u64>(),
        keep_permille in 0u32..1000,
    ) {
        let trace = base_trace(records, salt);
        let bytes = v3_bytes(&trace, salt);
        let keep = 8 + (bytes.len() - 8) * keep_permille as usize / 1000;
        let err = Trace::read_from(&bytes[..keep]).unwrap_err();
        prop_assert!(TraceFormatError::classify(&err).is_some(), "untyped: {}", err);
        if let Ok(report) = salvage_trace(&bytes[..keep]) {
            prop_assert!(report.recovered.len() <= trace.len());
            prop_assert_eq!(
                report.recovered.records(),
                &trace.records()[..report.recovered.len()]
            );
        }
    }

    /// Salvage and inspect are total on mutated v3 files and agree with
    /// each other, exactly like the v2 invariants.
    #[test]
    fn v3_salvage_and_inspect_are_total_and_consistent(
        records in 0usize..9000,
        salt in any::<u64>(),
        flips in prop::collection::vec((any::<u32>(), any::<u8>()), 1..8),
    ) {
        let trace = base_trace(records, salt);
        let mut bytes = v3_bytes(&trace, salt);
        mutate(&mut bytes, &flips, 8);
        let salvage = salvage_trace(bytes.as_slice());
        let inspect = inspect_trace(bytes.as_slice());
        if let Ok(report) = &salvage {
            prop_assert!(report.recovered_chunks <= report.total_chunks);
            if report.dropped.is_empty() {
                prop_assert_eq!(&report.recovered, &trace);
            }
        }
        if let Ok(info) = &inspect {
            prop_assert!(info.decoded_records <= info.declared_records
                || info.declared_records != trace.len() as u64);
        }
        prop_assert_eq!(salvage.is_err(), inspect.is_err());
    }

    /// Garbage wearing the v3 magic never panics any decoder entry
    /// point. (Unprefixed garbage almost never hits the v3 path, so the
    /// magic is forced here.)
    #[test]
    fn v3_magic_plus_garbage_never_panics(
        bytes in prop::collection::vec(any::<u8>(), 0..4096),
    ) {
        let mut file = b"DFCMTRC3".to_vec();
        file.extend_from_slice(&bytes);
        let _ = Trace::read_from(file.as_slice());
        let _ = salvage_trace(file.as_slice());
        let _ = inspect_trace(file.as_slice());
    }

    /// Arbitrary records — full-range pcs and values, any length —
    /// round-trip through v3 bit-exactly.
    #[test]
    fn v3_roundtrip_arbitrary_records(
        pairs in prop::collection::vec((any::<u64>(), any::<u64>()), 0..2000),
        seed in any::<u64>(),
    ) {
        let trace: Trace = pairs
            .into_iter()
            .map(|(pc, value)| TraceRecord::new(pc, value))
            .collect();
        let bytes = v3_bytes(&trace, seed);
        prop_assert_eq!(Trace::read_from(bytes.as_slice()).unwrap(), trace);
    }

    /// A chunk framing rewritten to declare an absurd packed size — a
    /// decompression bomb — fails typed without the decoder attempting
    /// the allocation, for any claimed size over the per-chunk cap.
    #[test]
    fn v3_bomb_framing_fails_typed(extra in 0u64..u64::MAX / 2, salt in any::<u64>()) {
        let trace = base_trace(500, salt);
        let bytes = v3_bytes(&trace, salt);
        let chunk_at = v3_first_chunk_offset(&bytes);
        let (chunk_records, used) = read_varint_at(&bytes, chunk_at);
        prop_assert_eq!(chunk_records, 500);
        let packed_at = chunk_at + used;
        let (_, packed_used) = read_varint_at(&bytes, packed_at);
        // Splice in a packed size beyond the bomb guard's cap.
        let bomb = dfcm_trace::v3_max_packed_len(chunk_records) + 1 + extra;
        let mut crafted = bytes[..packed_at].to_vec();
        crafted.extend_from_slice(&varint(bomb));
        crafted.extend_from_slice(&bytes[packed_at + packed_used..]);
        let err = Trace::read_from(crafted.as_slice()).unwrap_err();
        prop_assert!(
            matches!(
                TraceFormatError::classify(&err),
                Some(TraceFormatError::DecompressionBomb { .. })
            ),
            "expected a typed bomb rejection: {}", err
        );
        // Salvage drops the bomb chunk instead of honouring it.
        if let Ok(report) = salvage_trace(crafted.as_slice()) {
            prop_assert_eq!(report.recovered.len(), 0);
        }
    }
}

/// Round-trip sanity at the v3 chunk boundaries (one run, not a
/// proptest: at 65536 records per chunk the traces are big enough that
/// a 1000-case CI run would dominate the fuzz budget).
#[test]
fn v3_chunk_boundary_sizes_roundtrip() {
    for base in [
        V3_CHUNK_RECORDS - 1,
        V3_CHUNK_RECORDS,
        V3_CHUNK_RECORDS + 1,
        2 * V3_CHUNK_RECORDS,
    ] {
        let trace = base_trace(base, 0xA5A5);
        let bytes = v3_bytes(&trace, 1);
        assert_eq!(
            Trace::read_from(bytes.as_slice()).unwrap(),
            trace,
            "{base} records"
        );
    }
}
