//! Structure-aware fuzzing of the trace decoders on the workspace
//! proptest shim: random byte mutations of valid v1/v2 traces, and raw
//! garbage, must never panic or mis-decode. Strict reads either return
//! the original records or a typed error; salvage and inspect are total.
//!
//! CI runs this harness with `PROPTEST_CASES=1000` (the fuzz-smoke
//! step); locally it runs at the shim's default case count.

use dfcm_trace::{
    inspect_trace, salvage_trace, Trace, TraceFormatError, TraceRecord, V2_CHUNK_RECORDS,
};
use proptest::prelude::*;

/// A deterministic, structurally interesting trace: looping PCs, mixed
/// small/large values, length decoupled from the chunk size.
fn base_trace(records: usize, salt: u64) -> Trace {
    (0..records as u64)
        .map(|i| {
            TraceRecord::new(
                0x40_0000 + 4 * ((i ^ salt) % 1021),
                i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (i % 17),
            )
        })
        .collect()
}

fn v1_bytes(trace: &Trace) -> Vec<u8> {
    let mut buffer = Vec::new();
    trace
        .write_with(&mut buffer, dfcm_trace::TraceFormat::V1)
        .unwrap();
    buffer
}

fn v2_bytes(trace: &Trace, seed: u64) -> Vec<u8> {
    let mut buffer = Vec::new();
    trace.write_v2_to(&mut buffer, seed).unwrap();
    buffer
}

/// Applies `flips` single-byte XOR mutations at pseudo-positions derived
/// from the fuzzer-chosen seeds.
fn mutate(bytes: &mut [u8], flips: &[(u32, u8)], min_offset: usize) {
    if bytes.len() <= min_offset {
        return;
    }
    let span = bytes.len() - min_offset;
    for &(pos, mask) in flips {
        let at = min_offset + (pos as usize % span);
        // A zero mask would be a no-op "mutation"; force at least a bit.
        bytes[at] ^= if mask == 0 { 1 } else { mask };
    }
}

proptest! {
    /// Strict v2 reads of byte-mutated files either reproduce the
    /// original records exactly or fail with a typed format error —
    /// never a panic, never silently wrong data. Mutations are kept off
    /// the 8-byte magic: rewriting the magic legitimately changes which
    /// format (or whether any format) is being parsed.
    #[test]
    fn mutated_v2_never_misdecodes(
        records in 0usize..9000,
        salt in any::<u64>(),
        flips in prop::collection::vec((any::<u32>(), any::<u8>()), 1..8),
    ) {
        let trace = base_trace(records, salt);
        let mut bytes = v2_bytes(&trace, salt);
        mutate(&mut bytes, &flips, 8);
        match Trace::read_from(bytes.as_slice()) {
            Ok(decoded) => prop_assert_eq!(decoded, trace),
            Err(e) => prop_assert!(
                TraceFormatError::classify(&e).is_some(),
                "untyped decode error: {}", e
            ),
        }
    }

    /// Mutated v1 files never panic the reader. (v1 has no checksums, so
    /// a flipped payload byte may legitimately decode to different
    /// records — only totality is asserted.)
    #[test]
    fn mutated_v1_never_panics(
        records in 0usize..9000,
        salt in any::<u64>(),
        flips in prop::collection::vec((any::<u32>(), any::<u8>()), 1..8),
    ) {
        let mut bytes = v1_bytes(&base_trace(records, salt));
        mutate(&mut bytes, &flips, 0);
        let _ = Trace::read_from(bytes.as_slice());
    }

    /// Raw garbage (including mutated magics) never panics any decoder
    /// entry point.
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..4096)) {
        let _ = Trace::read_from(bytes.as_slice());
        let _ = salvage_trace(bytes.as_slice());
        let _ = inspect_trace(bytes.as_slice());
    }

    /// Truncation at every prefix length is handled cleanly: a strict
    /// read fails typed, and salvage recovers only whole intact chunks.
    #[test]
    fn truncated_v2_fails_typed_and_salvages(
        records in 1usize..9000,
        salt in any::<u64>(),
        keep_permille in 0u32..1000,
    ) {
        let trace = base_trace(records, salt);
        let bytes = v2_bytes(&trace, salt);
        let keep = 8 + (bytes.len() - 8) * keep_permille as usize / 1000;
        let err = Trace::read_from(&bytes[..keep]).unwrap_err();
        prop_assert!(TraceFormatError::classify(&err).is_some(), "untyped: {}", err);
        if let Ok(report) = salvage_trace(&bytes[..keep]) {
            prop_assert!(report.recovered.len() <= trace.len());
            prop_assert_eq!(
                report.recovered.records(),
                &trace.records()[..report.recovered.len()]
            );
        }
    }

    /// Salvage and inspect are total on mutated v2 files, and their
    /// reports agree with each other and with the file's bounds.
    #[test]
    fn salvage_and_inspect_are_total_and_consistent(
        records in 0usize..9000,
        salt in any::<u64>(),
        flips in prop::collection::vec((any::<u32>(), any::<u8>()), 1..8),
    ) {
        let trace = base_trace(records, salt);
        let mut bytes = v2_bytes(&trace, salt);
        mutate(&mut bytes, &flips, 8);
        let salvage = salvage_trace(bytes.as_slice());
        let inspect = inspect_trace(bytes.as_slice());
        if let Ok(report) = &salvage {
            prop_assert!(report.recovered_chunks <= report.total_chunks);
            prop_assert!(report.recovered.len() as u64 <= report.declared_records
                || report.declared_records != trace.len() as u64,
                "more records than declared from an honest header");
            // Intact chunks are bit-identical to the original stream:
            // every recovered record appears in the original at the
            // position its chunk implies.
            if report.dropped.is_empty() {
                prop_assert_eq!(&report.recovered, &trace);
            }
        }
        if let Ok(info) = &inspect {
            prop_assert!(info.decoded_records <= info.declared_records
                || info.declared_records != trace.len() as u64);
        }
        // A header mutilated into unreadability fails both the same way.
        prop_assert_eq!(salvage.is_err(), inspect.is_err());
    }

    /// Round-trip sanity at the chunk boundary sizes the fuzzer rarely
    /// hits by chance.
    #[test]
    fn chunk_boundary_sizes_roundtrip(delta in 0usize..3, salt in any::<u64>()) {
        for base in [V2_CHUNK_RECORDS - 1, V2_CHUNK_RECORDS, 2 * V2_CHUNK_RECORDS] {
            let trace = base_trace(base + delta, salt);
            let bytes = v2_bytes(&trace, 1);
            prop_assert_eq!(Trace::read_from(bytes.as_slice()).unwrap(), trace);
        }
    }
}
