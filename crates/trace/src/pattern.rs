use crate::rng::SplitMix64;

/// The value sequence a synthetic static instruction produces.
///
/// These are the sequence classes whose interaction the paper studies:
/// constants (e.g. `slt` results), strides (induction variables, address
/// arithmetic), stride patterns that wrap around (loop restarts — the
/// paper's `0 1 2 3 4 5 6` example), repeating non-stride contexts (the
/// patterns the FCM level-2 table exists for), and unpredictable values.
///
/// ```
/// use dfcm_trace::Pattern;
///
/// let mut state = Pattern::StrideReset { start: 0, stride: 1, period: 3 }.start(9);
/// let values: Vec<u64> = (0..7).map(|_| state.next_value()).collect();
/// assert_eq!(values, vec![0, 1, 2, 0, 1, 2, 0]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Pattern {
    /// Always the same value.
    Constant(u64),
    /// `start, start+stride, start+2·stride, …` without end (wrapping).
    Stride {
        /// First value produced.
        start: u64,
        /// Difference between consecutive values (wrapping; use
        /// `x.wrapping_neg()` for descending patterns).
        stride: u64,
    },
    /// A stride pattern of `period` values that restarts from `start` —
    /// the dominant pattern of loop induction variables and array address
    /// streams.
    StrideReset {
        /// First value of each lap.
        start: u64,
        /// Difference between consecutive values within a lap.
        stride: u64,
        /// Number of values per lap (≥ 1).
        period: u32,
    },
    /// An arbitrary repeating sequence — a pure context pattern.
    Periodic(Vec<u64>),
    /// A repeating walk over a pseudo-random cycle of `nodes` pointer-like
    /// values — a context pattern with address-shaped values, as produced
    /// by traversals of stable linked data structures.
    PointerChase {
        /// Number of nodes in the cycle (≥ 1).
        nodes: u32,
        /// Base "address" of the node pool.
        base: u64,
    },
    /// Uniformly random `bits`-bit values: unpredictable by any of the
    /// paper's predictors.
    Random {
        /// Width of the produced values (1..=64).
        bits: u32,
    },
    /// A constant that occasionally switches to a fresh value and stays
    /// there (e.g. a loop-invariant reloaded per outer iteration).
    SwitchingConstant {
        /// Average number of repetitions before the value switches.
        mean_run: u32,
        /// Width of the produced values (1..=64).
        bits: u32,
    },
}

impl Pattern {
    /// Instantiates the pattern into a value generator.
    ///
    /// `seed` fixes all randomness (node permutations, random values,
    /// switch points); equal seeds give identical sequences.
    pub fn start(&self, seed: u64) -> PatternState {
        let mut rng = SplitMix64::new(seed ^ 0xD1F7_5EED);
        let kind = match self {
            Pattern::Constant(v) => StateKind::Constant { value: *v },
            Pattern::Stride { start, stride } => StateKind::Stride {
                next: *start,
                stride: *stride,
            },
            Pattern::StrideReset {
                start,
                stride,
                period,
            } => StateKind::StrideReset {
                start: *start,
                stride: *stride,
                period: (*period).max(1),
                position: 0,
            },
            Pattern::Periodic(values) => {
                assert!(!values.is_empty(), "periodic pattern must not be empty");
                StateKind::Periodic {
                    values: values.clone(),
                    position: 0,
                }
            }
            Pattern::PointerChase { nodes, base } => {
                let n = (*nodes).max(1) as usize;
                // A random cycle over n node addresses. Nodes are scattered
                // (16-aligned) over a region ~8x their footprint, like heap
                // allocations interleaved with other objects — a perfect
                // arithmetic progression would make the walk's *differences*
                // artificially uniform.
                let mut offsets = std::collections::HashSet::with_capacity(n);
                let mut order: Vec<u64> = Vec::with_capacity(n);
                while order.len() < n {
                    let offset = rng.next_below(8 * n as u64);
                    if offsets.insert(offset) {
                        order.push(base + 16 * offset);
                    }
                }
                for i in (1..n).rev() {
                    order.swap(i, rng.next_below(i as u64 + 1) as usize);
                }
                StateKind::Periodic {
                    values: order,
                    position: 0,
                }
            }
            Pattern::Random { bits } => {
                assert!((1..=64).contains(bits), "random width must be 1..=64");
                StateKind::Random {
                    mask: mask_of(*bits),
                }
            }
            Pattern::SwitchingConstant { mean_run, bits } => {
                assert!((1..=64).contains(bits), "value width must be 1..=64");
                let mask = mask_of(*bits);
                let first = rng.next_u64() & mask;
                StateKind::SwitchingConstant {
                    value: first,
                    mean_run: (*mean_run).max(1),
                    mask,
                }
            }
        };
        PatternState { kind, rng }
    }
}

fn mask_of(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// A running instance of a [`Pattern`], produced by [`Pattern::start`].
#[derive(Debug, Clone)]
pub struct PatternState {
    kind: StateKind,
    rng: SplitMix64,
}

#[derive(Debug, Clone)]
enum StateKind {
    Constant {
        value: u64,
    },
    Stride {
        next: u64,
        stride: u64,
    },
    StrideReset {
        start: u64,
        stride: u64,
        period: u32,
        position: u32,
    },
    Periodic {
        values: Vec<u64>,
        position: usize,
    },
    Random {
        mask: u64,
    },
    SwitchingConstant {
        value: u64,
        mean_run: u32,
        mask: u64,
    },
}

impl PatternState {
    /// Produces the next value of the sequence.
    pub fn next_value(&mut self) -> u64 {
        match &mut self.kind {
            StateKind::Constant { value } => *value,
            StateKind::Stride { next, stride } => {
                let v = *next;
                *next = next.wrapping_add(*stride);
                v
            }
            StateKind::StrideReset {
                start,
                stride,
                period,
                position,
            } => {
                let v = start.wrapping_add(u64::from(*position).wrapping_mul(*stride));
                *position += 1;
                if *position == *period {
                    *position = 0;
                }
                v
            }
            StateKind::Periodic { values, position } => {
                let v = values[*position];
                *position = (*position + 1) % values.len();
                v
            }
            StateKind::Random { mask } => self.rng.next_u64() & *mask,
            StateKind::SwitchingConstant {
                value,
                mean_run,
                mask,
            } => {
                let v = *value;
                if self.rng.chance(1, u64::from(*mean_run)) {
                    *value = self.rng.next_u64() & *mask;
                }
                v
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn first_n(p: &Pattern, seed: u64, n: usize) -> Vec<u64> {
        let mut s = p.start(seed);
        (0..n).map(|_| s.next_value()).collect()
    }

    #[test]
    fn constant_repeats() {
        assert_eq!(first_n(&Pattern::Constant(9), 0, 4), vec![9, 9, 9, 9]);
    }

    #[test]
    fn stride_advances() {
        assert_eq!(
            first_n(
                &Pattern::Stride {
                    start: 5,
                    stride: 3
                },
                0,
                4
            ),
            vec![5, 8, 11, 14]
        );
    }

    #[test]
    fn descending_stride_wraps() {
        let p = Pattern::Stride {
            start: 10,
            stride: 2u64.wrapping_neg(),
        };
        assert_eq!(first_n(&p, 0, 3), vec![10, 8, 6]);
    }

    #[test]
    fn stride_reset_wraps_at_period() {
        let p = Pattern::StrideReset {
            start: 100,
            stride: 10,
            period: 3,
        };
        assert_eq!(first_n(&p, 0, 7), vec![100, 110, 120, 100, 110, 120, 100]);
    }

    #[test]
    fn periodic_cycles() {
        let p = Pattern::Periodic(vec![4, 7, 1]);
        assert_eq!(first_n(&p, 0, 5), vec![4, 7, 1, 4, 7]);
    }

    #[test]
    fn pointer_chase_is_periodic_permutation() {
        let p = Pattern::PointerChase {
            nodes: 8,
            base: 0x1000,
        };
        let lap1 = first_n(&p, 42, 8);
        let lap2 = {
            let mut s = p.start(42);
            for _ in 0..8 {
                s.next_value();
            }
            (0..8).map(|_| s.next_value()).collect::<Vec<_>>()
        };
        assert_eq!(lap1, lap2, "walk must repeat with period = nodes");
        let distinct: std::collections::HashSet<u64> = lap1.iter().copied().collect();
        assert_eq!(distinct.len(), 8, "walk must visit every node exactly once");
        for &v in &lap1 {
            assert_eq!(v % 16, 0, "node addresses are 16-aligned");
            assert!(
                (0x1000..0x1000 + 16 * 8 * 8).contains(&v),
                "node {v:#x} outside region"
            );
        }
    }

    #[test]
    fn pointer_chase_depends_on_seed() {
        let p = Pattern::PointerChase { nodes: 16, base: 0 };
        assert_ne!(first_n(&p, 1, 16), first_n(&p, 2, 16));
    }

    #[test]
    fn random_respects_width_and_seed() {
        let p = Pattern::Random { bits: 8 };
        let values = first_n(&p, 3, 100);
        assert!(values.iter().all(|&v| v < 256));
        assert_eq!(values, first_n(&p, 3, 100));
        assert_ne!(values, first_n(&p, 4, 100));
    }

    #[test]
    fn switching_constant_has_runs() {
        let p = Pattern::SwitchingConstant {
            mean_run: 50,
            bits: 32,
        };
        let values = first_n(&p, 11, 1000);
        let repeats = values.windows(2).filter(|w| w[0] == w[1]).count();
        // With mean run 50, the overwhelming majority of adjacent pairs
        // are equal.
        assert!(repeats > 900, "repeats = {repeats}");
        let distinct: std::collections::HashSet<_> = values.iter().collect();
        assert!(distinct.len() > 5, "value must switch now and then");
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_periodic_rejected() {
        Pattern::Periodic(vec![]).start(0);
    }

    #[test]
    fn deterministic_across_instances() {
        for p in [
            Pattern::Random { bits: 16 },
            Pattern::PointerChase { nodes: 5, base: 64 },
            Pattern::SwitchingConstant {
                mean_run: 3,
                bits: 8,
            },
        ] {
            assert_eq!(first_n(&p, 99, 50), first_n(&p, 99, 50));
        }
    }
}
