//! A monotonic wall-clock deadline.
//!
//! Timeout logic appears in several places in this workspace — the VM's
//! [`VmLimits`] wall-clock guard, the serving daemon's per-request
//! deadlines and per-connection idle timeouts — and each hand-rolled
//! `Instant`/`Duration` pair invites a different bug (re-deriving "now"
//! from a non-monotonic clock, forgetting saturation near expiry, mixing
//! up elapsed-vs-remaining). [`Deadline`] is the one shared helper: it
//! anchors a budget to a [`Instant`] captured once, and every query is
//! answered from that monotonic anchor.
//!
//! [`VmLimits`]: https://docs.rs/dfcm-vm

use std::time::{Duration, Instant};

/// A fixed time budget anchored to a monotonic start instant.
///
/// ```
/// use std::time::Duration;
/// use dfcm_trace::Deadline;
///
/// let d = Deadline::after(Duration::from_secs(3600));
/// assert!(!d.expired());
/// assert!(d.remaining() > Duration::from_secs(3599));
///
/// let instant = Deadline::after(Duration::ZERO);
/// assert!(instant.expired());
/// assert_eq!(instant.remaining(), Duration::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    start: Instant,
    budget: Duration,
}

impl Deadline {
    /// A deadline `budget` from now. The anchor [`Instant`] is captured
    /// exactly once, here; all later queries measure against it.
    pub fn after(budget: Duration) -> Self {
        Deadline {
            start: Instant::now(),
            budget,
        }
    }

    /// A deadline `budget` from an anchor captured earlier by the caller
    /// (e.g. when the budget should start at "first byte read", not at
    /// construction time).
    pub fn starting_at(start: Instant, budget: Duration) -> Self {
        Deadline { start, budget }
    }

    /// The configured budget.
    pub fn budget(&self) -> Duration {
        self.budget
    }

    /// Monotonic time elapsed since the anchor.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// True once the budget has been spent. Never un-expires: the clock
    /// behind [`Instant`] is monotonic.
    pub fn expired(&self) -> bool {
        self.start.elapsed() > self.budget
    }

    /// Time left before expiry, saturating at zero.
    pub fn remaining(&self) -> Duration {
        self.budget.saturating_sub(self.start.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_deadline_is_unexpired() {
        let d = Deadline::after(Duration::from_secs(60));
        assert!(!d.expired());
        assert!(d.remaining() > Duration::from_secs(59));
        assert!(d.elapsed() < Duration::from_secs(1));
        assert_eq!(d.budget(), Duration::from_secs(60));
    }

    #[test]
    fn zero_budget_expires_immediately() {
        let d = Deadline::after(Duration::ZERO);
        // `expired` uses strict >, so an untouched zero-budget deadline
        // flips as soon as any time at all has passed; `remaining` is
        // already saturated.
        assert_eq!(d.remaining(), Duration::ZERO);
        std::thread::sleep(Duration::from_millis(1));
        assert!(d.expired());
    }

    #[test]
    fn starting_at_backdates_the_anchor() {
        let anchor = Instant::now() - Duration::from_secs(10);
        let expired = Deadline::starting_at(anchor, Duration::from_secs(5));
        assert!(expired.expired());
        assert_eq!(expired.remaining(), Duration::ZERO);
        let live = Deadline::starting_at(anchor, Duration::from_secs(3600));
        assert!(!live.expired());
        assert!(live.elapsed() >= Duration::from_secs(10));
    }

    #[test]
    fn copy_preserves_the_anchor() {
        let a = Deadline::after(Duration::from_secs(60));
        let b = a;
        assert_eq!(a, b);
    }
}
