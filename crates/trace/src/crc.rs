//! Std-only CRC-32 (IEEE 802.3, polynomial `0xEDB88320`), used by the
//! v2 trace format to checksum each record chunk.
//!
//! The lookup table is built at compile time, so hashing costs one table
//! probe and one xor per byte with no runtime setup. The parameters match
//! zlib's `crc32` (reflected polynomial, initial value and final xor of
//! `0xFFFF_FFFF`), so checksums can be cross-checked with any standard
//! CRC-32 tool.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Incremental CRC-32 state, for hashing data that arrives in pieces.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Folds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The checksum of everything updated so far.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check values for this parameterization (same as zlib).
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"chunked trace payload bytes";
        let mut crc = Crc32::new();
        crc.update(&data[..7]);
        crc.update(&data[7..]);
        assert_eq!(crc.finalize(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = vec![0u8; 4096];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i * 31) as u8;
        }
        let clean = crc32(&data);
        for position in [0usize, 100, 2048, 4095] {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[position] ^= 1 << bit;
                assert_ne!(crc32(&flipped), clean, "flip at {position}:{bit}");
            }
        }
    }
}
