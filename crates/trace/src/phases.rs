//! Phased workloads: programs whose behaviour shifts over time.
//!
//! Real programs move through phases (initialization, steady-state
//! processing, output), and SPEC benchmarks are famously phasey. A
//! [`PhasedProgram`] cycles through a list of component programs,
//! emitting a fixed-length burst from each before switching — modelling
//! both the re-learning cost a phase change inflicts on history-based
//! predictors and the table churn it causes.

use crate::program::SyntheticProgram;
use crate::record::{TraceRecord, TraceSource};

/// A trace source cycling through component programs in fixed-length
/// bursts.
///
/// ```
/// use dfcm_trace::{Pattern, PhasedProgram, SyntheticProgram, TraceSource};
///
/// let compute = SyntheticProgram::builder(1)
///     .inst(Pattern::Stride { start: 0, stride: 8 }, 1)
///     .build();
/// let traverse = SyntheticProgram::builder(2)
///     .inst(Pattern::PointerChase { nodes: 16, base: 0x9000 }, 1)
///     .build();
/// let mut phased = PhasedProgram::new(vec![(compute, 100), (traverse, 50)]);
/// let trace = phased.take_trace(400);
/// assert_eq!(trace.len(), 400);
/// ```
#[derive(Debug)]
pub struct PhasedProgram {
    phases: Vec<(SyntheticProgram, usize)>,
    current: usize,
    remaining: usize,
    switches: u64,
}

impl PhasedProgram {
    /// Builds a phased source from `(program, burst length)` pairs; the
    /// phases repeat in order indefinitely.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty or any burst length is 0.
    pub fn new(phases: Vec<(SyntheticProgram, usize)>) -> Self {
        assert!(
            !phases.is_empty(),
            "a phased program needs at least one phase"
        );
        assert!(
            phases.iter().all(|&(_, n)| n > 0),
            "burst lengths must be positive"
        );
        let remaining = phases[0].1;
        PhasedProgram {
            phases,
            current: 0,
            remaining,
            switches: 0,
        }
    }

    /// Index of the phase currently emitting.
    pub fn current_phase(&self) -> usize {
        self.current
    }

    /// Number of phase switches performed so far.
    pub fn switches(&self) -> u64 {
        self.switches
    }
}

impl TraceSource for PhasedProgram {
    fn next_record(&mut self) -> Option<TraceRecord> {
        if self.remaining == 0 {
            self.current = (self.current + 1) % self.phases.len();
            self.remaining = self.phases[self.current].1;
            self.switches += 1;
        }
        self.remaining -= 1;
        self.phases[self.current].0.next_record()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Pattern;
    use crate::program::BASE_PC;

    fn constant_phase(seed: u64, value: u64) -> SyntheticProgram {
        SyntheticProgram::builder(seed)
            .inst(Pattern::Constant(value), 1)
            .build()
    }

    #[test]
    fn bursts_alternate_in_order() {
        let mut p = PhasedProgram::new(vec![
            (constant_phase(1, 111), 3),
            (constant_phase(2, 222), 2),
        ]);
        let values: Vec<u64> = (0..10).map(|_| p.next_record().unwrap().value).collect();
        assert_eq!(
            values,
            vec![111, 111, 111, 222, 222, 111, 111, 111, 222, 222]
        );
        assert_eq!(p.switches(), 3);
    }

    #[test]
    fn phase_programs_keep_their_own_state() {
        // A stride phase must continue where it left off after being
        // suspended by another phase.
        let stride = SyntheticProgram::builder(3)
            .inst(
                Pattern::Stride {
                    start: 0,
                    stride: 1,
                },
                1,
            )
            .build();
        let mut p = PhasedProgram::new(vec![(stride, 2), (constant_phase(4, 9), 2)]);
        let values: Vec<u64> = (0..8).map(|_| p.next_record().unwrap().value).collect();
        assert_eq!(values, vec![0, 1, 9, 9, 2, 3, 9, 9]);
    }

    #[test]
    fn current_phase_tracks_bursts() {
        let mut p = PhasedProgram::new(vec![
            (constant_phase(1, 1), 2),
            (constant_phase(2, 2), 2),
            (constant_phase(3, 3), 2),
        ]);
        assert_eq!(p.current_phase(), 0);
        for _ in 0..2 {
            p.next_record();
        }
        p.next_record();
        assert_eq!(p.current_phase(), 1);
        for _ in 0..2 {
            p.next_record();
        }
        assert_eq!(p.current_phase(), 2);
    }

    #[test]
    fn phases_share_the_pc_space() {
        // Component programs both start at BASE_PC, so a phase change
        // *reuses* the same table entries with different behaviour —
        // the worst case for history predictors, by design.
        let mut p = PhasedProgram::new(vec![(constant_phase(1, 5), 4), (constant_phase(2, 8), 4)]);
        let pcs: std::collections::HashSet<u64> =
            (0..16).map(|_| p.next_record().unwrap().pc).collect();
        assert_eq!(pcs.len(), 1);
        assert!(pcs.contains(&BASE_PC));
    }

    #[test]
    fn predictors_pay_a_relearning_cost_at_switches() {
        use crate::record::TraceSource as _;
        // Compare a phased workload against a homogeneous one of the same
        // length: the phased one must mispredict more.
        let mk_stride = |seed| {
            SyntheticProgram::builder(seed)
                .inst(Pattern::Periodic(vec![7, 1, 3, 9]), 1)
                .build()
        };
        let mk_other = |seed| {
            SyntheticProgram::builder(seed)
                .inst(Pattern::Periodic(vec![100, 42, 63, 5, 11]), 1)
                .build()
        };
        let mut phased = PhasedProgram::new(vec![(mk_stride(1), 40), (mk_other(2), 40)]);
        let phased_trace = phased.take_trace(4000);
        let mut flat = mk_stride(1);
        let flat_trace = flat.take_trace(4000);

        let run = |trace: &crate::record::Trace| {
            let mut last = std::collections::HashMap::new();
            let mut hist: std::collections::HashMap<u64, Vec<u64>> =
                std::collections::HashMap::new();
            let mut table: std::collections::HashMap<Vec<u64>, u64> =
                std::collections::HashMap::new();
            let mut correct = 0u64;
            for r in trace {
                let h = hist.entry(r.pc).or_default().clone();
                if table.get(&h) == Some(&r.value) {
                    correct += 1;
                }
                table.insert(h, r.value);
                let entry = hist.get_mut(&r.pc).expect("entry exists");
                entry.push(r.value);
                if entry.len() > 2 {
                    entry.remove(0);
                }
                last.insert(r.pc, r.value);
            }
            correct as f64 / trace.len() as f64
        };
        let phased_acc = run(&phased_trace);
        let flat_acc = run(&flat_trace);
        assert!(
            phased_acc < flat_acc,
            "phase switches must cost accuracy: phased {phased_acc:.3} vs flat {flat_acc:.3}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_phases_rejected() {
        let _ = PhasedProgram::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "burst lengths")]
    fn zero_burst_rejected() {
        let _ = PhasedProgram::new(vec![(constant_phase(1, 1), 0)]);
    }
}
