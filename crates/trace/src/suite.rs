//! The eight-benchmark synthetic workload suite standing in for SPECint95.
//!
//! The paper's traces come from SimpleScalar running the SPECint95 suite
//! (Table 1). This module provides statistical stand-ins: each benchmark is
//! a [`SyntheticProgram`] whose mix of basic-block archetypes (loop nests
//! full of stride patterns, pointer/context blocks, constant-producing
//! blocks, unpredictable blocks) is chosen so the per-benchmark
//! predictability ordering matches the paper's Figure 10(b) — m88ksim the
//! most constant-heavy (smallest DFCM gain), ijpeg the most stride-heavy
//! (largest gain), go the least predictable. The number of predictions per
//! benchmark is proportional to the paper's Table 1 counts (scaled down by
//! 100 at `scale = 1.0`).
//!
//! All randomness derives from the caller's seed; the same seed always
//! yields byte-identical traces.

use crate::pattern::Pattern;
use crate::program::{ProgramBuilder, SyntheticProgram};
use crate::record::{Trace, TraceSource};
use crate::rng::SplitMix64;

/// Block-archetype counts and frequencies describing one benchmark.
///
/// The archetypes are:
/// * **loop** — a loop body: induction variables, scaled indices, array
///   address streams (stride patterns with reset), loop-exit comparisons.
/// * **context** — repeating non-stride patterns: pointer-chase walks over
///   stable data structures and short periodic value sequences.
/// * **constant** — constants and rarely-switching loop invariants.
/// * **random** — values unpredictable by any of the paper's predictors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MixSpec {
    /// Number of loop-body blocks.
    pub loop_blocks: u32,
    /// Relative selection weight of each loop block.
    pub loop_weight: u64,
    /// Inclusive range of loop trip counts (stride-pattern lengths).
    pub loop_period: (u64, u64),
    /// Number of context (pointer/periodic) blocks.
    pub context_blocks: u32,
    /// Relative selection weight of each context block.
    pub context_weight: u64,
    /// Inclusive range of pointer-structure sizes.
    pub context_nodes: (u64, u64),
    /// Number of constant-producing blocks.
    pub constant_blocks: u32,
    /// Relative selection weight of each constant block.
    pub constant_weight: u64,
    /// Number of unpredictable blocks.
    pub random_blocks: u32,
    /// Relative selection weight of each random block.
    pub random_weight: u64,
}

/// One benchmark of the synthetic suite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkSpec {
    name: &'static str,
    /// Predictions at `scale = 1.0`, proportional to the paper's Table 1
    /// (paper count / 100).
    base_predictions: u64,
    mix: MixSpec,
}

impl BenchmarkSpec {
    /// The benchmark's name (a SPECint95 program name).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The block mix describing this benchmark.
    pub fn mix(&self) -> &MixSpec {
        &self.mix
    }

    /// Number of predictions this benchmark contributes at the given
    /// scale (`scale = 1.0` ≈ paper count ÷ 100).
    pub fn predictions(&self, scale: f64) -> usize {
        assert!(scale > 0.0, "scale must be positive");
        ((self.base_predictions as f64 * scale) as usize).max(1)
    }

    /// Instantiates the benchmark's synthetic program.
    ///
    /// The program seed combines the caller's `seed` with the benchmark
    /// name, so benchmarks are mutually independent but individually
    /// reproducible.
    pub fn program(&self, seed: u64) -> SyntheticProgram {
        let mut rng = SplitMix64::new(seed ^ name_hash(self.name));
        let mut builder = SyntheticProgram::builder(rng.next_u64());
        let m = &self.mix;
        for _ in 0..m.loop_blocks {
            add_loop_block(&mut builder, &mut rng, m.loop_weight, m.loop_period);
        }
        for _ in 0..m.context_blocks {
            add_context_block(&mut builder, &mut rng, m.context_weight, m.context_nodes);
        }
        for _ in 0..m.constant_blocks {
            add_constant_block(&mut builder, &mut rng, m.constant_weight);
        }
        for _ in 0..m.random_blocks {
            add_random_block(&mut builder, &mut rng, m.random_weight);
        }
        // A long tail of big-footprint context patterns (large but stable
        // data structures). Individually cold, collectively they are why
        // growing the level-2 table keeps paying off up to 2^20 entries
        // (paper §2.4) — no small table can hold them all.
        let tail_blocks = (m.context_blocks / 2).max(6);
        for _ in 0..tail_blocks {
            add_context_block(
                &mut builder,
                &mut rng,
                m.context_weight.div_ceil(2),
                (512, 8192),
            );
        }
        // A handful of ultra-hot constant producers (the `slt`-style
        // instructions of the paper's Figure 6 "high peak at the left
        // side"): a few static instructions covering a large share of the
        // dynamic stream. Their sheer access frequency keeps their level-2
        // entries effectively resident even in tiny tables, which is what
        // holds the FCM's floor up at 2^8 entries.
        let hot_blocks = (m.constant_blocks / 10).max(2);
        for _ in 0..hot_blocks {
            let mut patterns = vec![Pattern::Constant(rng.next_below(1 << 16))];
            if rng.chance(1, 2) {
                patterns.push(Pattern::Constant(rng.next_below(4)));
            }
            builder.block((m.constant_weight * 45).max(1), patterns);
        }
        // Never-repeating strides: global counters and bump allocators. An
        // FCM sees a fresh history on every occurrence and cannot predict
        // them at any table size; a DFCM predicts them after warmup — this
        // class sustains the DFCM's edge even at 2^20 entries. Fixed
        // (unspread) weights keep their share of the dynamic stream stable.
        let monotone_blocks = (m.loop_blocks / 3).max(2);
        for _ in 0..monotone_blocks {
            let stride = [1u64, 4, 8, 16, 24][rng.next_below(5) as usize];
            let start = 0x4000_0000 + (rng.next_below(1 << 28) << 3);
            builder.block(
                (m.loop_weight * 6).max(1),
                vec![Pattern::Stride { start, stride }],
            );
        }
        builder.build()
    }

    /// Generates the benchmark's trace at the given seed and scale.
    pub fn trace(&self, seed: u64, scale: f64) -> BenchmarkTrace {
        let n = self.predictions(scale);
        let trace = self.program(seed).take_trace(n);
        BenchmarkTrace {
            name: self.name,
            trace,
        }
    }
}

/// A generated benchmark trace, tagged with its benchmark name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkTrace {
    /// The benchmark's name.
    pub name: &'static str,
    /// The generated records.
    pub trace: Trace,
}

fn name_hash(name: &str) -> u64 {
    // FNV-1a, stable across platforms.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Picks a weight spread over several octaves around `base`, giving the
/// power-law block hotness of real programs: a few blocks dominate the
/// dynamic stream while a long tail executes rarely. The hot blocks keep
/// small tables useful; the tail keeps very large tables improving.
fn spread_weight(rng: &mut SplitMix64, base: u64) -> u64 {
    (base << rng.next_below(6)).max(1)
}

fn add_loop_block(
    builder: &mut ProgramBuilder,
    rng: &mut SplitMix64,
    weight: u64,
    period_range: (u64, u64),
) {
    let period = rng.next_range(period_range.0, period_range.1) as u32;
    let mut patterns = Vec::new();
    // Induction variable i.
    patterns.push(Pattern::StrideReset {
        start: 0,
        stride: 1,
        period,
    });
    // A scaled index (j*4 or j*8) half the time.
    if rng.chance(1, 2) {
        let scale = [4u64, 8][rng.next_below(2) as usize];
        patterns.push(Pattern::StrideReset {
            start: 0,
            stride: scale,
            period,
        });
    }
    // One to three array address streams with element sizes 4/8/16.
    for _ in 0..rng.next_range(1, 3) {
        let elem = [4u64, 8, 16][rng.next_below(3) as usize];
        let base = 0x1000_0000 + (rng.next_below(1 << 24) << 4);
        patterns.push(Pattern::StrideReset {
            start: base,
            stride: elem,
            period,
        });
    }
    // A loaded value: sometimes predictable, sometimes not.
    patterns.push(match rng.next_below(3) {
        0 => Pattern::SwitchingConstant {
            mean_run: 64,
            bits: 16,
        },
        1 => Pattern::Periodic(random_alphabet(rng, 4, 12)),
        _ => Pattern::Random { bits: 16 },
    });
    // The loop-exit comparison (slt): 1 for all but the last iteration.
    let p = period as usize;
    let mut slt = vec![1u64; p.min(4096)];
    *slt.last_mut().expect("period >= 1") = 0;
    patterns.push(Pattern::Periodic(slt));
    builder.block(spread_weight(rng, weight), patterns);
}

fn add_context_block(
    builder: &mut ProgramBuilder,
    rng: &mut SplitMix64,
    weight: u64,
    nodes_range: (u64, u64),
) {
    let mut patterns = Vec::new();
    let nodes = rng.next_range(nodes_range.0, nodes_range.1) as u32;
    // A third of the context blocks are pointer walks over heap-like node
    // sets (address-shaped values whose *differences* are structurally
    // similar across walks — the pattern class where the paper notes the
    // DFCM can interfere more than the FCM). The rest are repeating value
    // sequences with diverse alphabets (table lookups, decoded fields).
    if rng.chance(1, 3) {
        let base = 0x2000_0000 + (rng.next_below(1 << 24) << 4);
        patterns.push(Pattern::PointerChase { nodes, base });
        // A field loaded from each visited node: periodic, same period.
        if rng.chance(2, 3) {
            patterns.push(Pattern::Periodic(random_alphabet(
                rng,
                nodes as u64,
                nodes as u64,
            )));
        }
    } else {
        patterns.push(Pattern::Periodic(random_alphabet(
            rng,
            nodes as u64,
            nodes as u64,
        )));
        if rng.chance(1, 2) {
            patterns.push(Pattern::Periodic(random_alphabet(
                rng,
                nodes as u64,
                nodes as u64,
            )));
        }
    }
    // A short repeating control sequence.
    if rng.chance(1, 2) {
        patterns.push(Pattern::Periodic(random_alphabet(rng, 2, 6)));
    }
    builder.block(spread_weight(rng, weight), patterns);
}

fn add_constant_block(builder: &mut ProgramBuilder, rng: &mut SplitMix64, weight: u64) {
    let mut patterns = Vec::new();
    patterns.push(Pattern::Constant(rng.next_below(1 << 20)));
    if rng.chance(1, 2) {
        patterns.push(Pattern::SwitchingConstant {
            mean_run: 128,
            bits: 24,
        });
    }
    builder.block(spread_weight(rng, weight), patterns);
}

fn add_random_block(builder: &mut ProgramBuilder, rng: &mut SplitMix64, weight: u64) {
    let bits = rng.next_range(12, 28) as u32;
    builder.block(spread_weight(rng, weight), vec![Pattern::Random { bits }]);
}

fn random_alphabet(rng: &mut SplitMix64, lo: u64, hi: u64) -> Vec<u64> {
    let len = rng.next_range(lo.max(1), hi.max(1));
    (0..len).map(|_| rng.next_below(1 << 16)).collect()
}

/// The standard eight-benchmark suite mirroring the paper's Table 1.
///
/// Base prediction counts are the paper's, divided by 100 (so `scale = 1.0`
/// runs about 10.9 M predictions across the suite; the paper ran 1.09 G).
pub fn standard_suite() -> Vec<BenchmarkSpec> {
    vec![
        // cc1: big code footprint, balanced mix of everything.
        BenchmarkSpec {
            name: "cc1",
            base_predictions: 1_330_000,
            mix: MixSpec {
                loop_blocks: 120,
                loop_weight: 4,
                loop_period: (8, 120),
                context_blocks: 220,
                context_weight: 6,
                context_nodes: (4, 48),
                constant_blocks: 240,
                constant_weight: 12,
                random_blocks: 90,
                random_weight: 3,
            },
        },
        // compress: small kernel, hash-table lookups (unpredictable) plus
        // a few hot strides.
        BenchmarkSpec {
            name: "compress",
            base_predictions: 1_400_000,
            mix: MixSpec {
                loop_blocks: 12,
                loop_weight: 6,
                loop_period: (24, 300),
                context_blocks: 10,
                context_weight: 4,
                context_nodes: (8, 64),
                constant_blocks: 16,
                constant_weight: 10,
                random_blocks: 24,
                random_weight: 7,
            },
        },
        // go: branchy, data-dependent — the least predictable benchmark.
        BenchmarkSpec {
            name: "go",
            base_predictions: 1_570_000,
            mix: MixSpec {
                loop_blocks: 40,
                loop_weight: 3,
                loop_period: (4, 48),
                context_blocks: 120,
                context_weight: 5,
                context_nodes: (16, 96),
                constant_blocks: 110,
                constant_weight: 8,
                random_blocks: 100,
                random_weight: 5,
            },
        },
        // ijpeg: dense nested loops over pixel arrays — stride paradise,
        // the paper's biggest DFCM gain (+46%).
        BenchmarkSpec {
            name: "ijpeg",
            base_predictions: 1_550_000,
            mix: MixSpec {
                loop_blocks: 120,
                loop_weight: 6,
                loop_period: (8, 100),
                context_blocks: 60,
                context_weight: 3,
                context_nodes: (4, 24),
                constant_blocks: 90,
                constant_weight: 9,
                random_blocks: 60,
                random_weight: 8,
            },
        },
        // li: lisp interpreter — pointer chasing over small stable
        // structures plus interpreter loops.
        BenchmarkSpec {
            name: "li",
            base_predictions: 1_230_000,
            mix: MixSpec {
                loop_blocks: 45,
                loop_weight: 6,
                loop_period: (4, 100),
                context_blocks: 110,
                context_weight: 7,
                context_nodes: (3, 24),
                constant_blocks: 90,
                constant_weight: 9,
                random_blocks: 25,
                random_weight: 3,
            },
        },
        // m88ksim: simulator main loop — dominated by constants and
        // near-constants; already highly predictable (smallest DFCM gain).
        BenchmarkSpec {
            name: "m88ksim",
            base_predictions: 1_390_000,
            mix: MixSpec {
                loop_blocks: 25,
                loop_weight: 4,
                loop_period: (8, 100),
                context_blocks: 40,
                context_weight: 4,
                context_nodes: (3, 16),
                constant_blocks: 160,
                constant_weight: 12,
                random_blocks: 20,
                random_weight: 2,
            },
        },
        // perl: interpreter dispatch plus string hashing.
        BenchmarkSpec {
            name: "perl",
            base_predictions: 1_260_000,
            mix: MixSpec {
                loop_blocks: 40,
                loop_weight: 5,
                loop_period: (4, 150),
                context_blocks: 90,
                context_weight: 7,
                context_nodes: (4, 32),
                constant_blocks: 110,
                constant_weight: 9,
                random_blocks: 40,
                random_weight: 3,
            },
        },
        // vortex: OO database — highly repetitive object traversals and
        // constants.
        BenchmarkSpec {
            name: "vortex",
            base_predictions: 1_220_000,
            mix: MixSpec {
                loop_blocks: 35,
                loop_weight: 4,
                loop_period: (8, 120),
                context_blocks: 130,
                context_weight: 7,
                context_nodes: (3, 20),
                constant_blocks: 170,
                constant_weight: 11,
                random_blocks: 25,
                random_weight: 2,
            },
        },
    ]
}

/// Generates the full suite of traces at one seed and scale.
pub fn standard_traces(seed: u64, scale: f64) -> Vec<BenchmarkTrace> {
    standard_suite()
        .iter()
        .map(|spec| spec.trace(seed, scale))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_eight_paper_benchmarks() {
        let names: Vec<&str> = standard_suite().iter().map(|b| b.name()).collect();
        assert_eq!(
            names,
            vec!["cc1", "compress", "go", "ijpeg", "li", "m88ksim", "perl", "vortex"]
        );
    }

    #[test]
    fn prediction_counts_proportional_to_table1() {
        let suite = standard_suite();
        let compress = suite.iter().find(|b| b.name() == "compress").unwrap();
        // Paper: 140M predictions → 1.4M at scale 1, 14k at scale 0.01.
        assert_eq!(compress.predictions(1.0), 1_400_000);
        assert_eq!(compress.predictions(0.01), 14_000);
    }

    #[test]
    fn traces_are_reproducible() {
        let spec = &standard_suite()[4]; // li
        let a = spec.trace(7, 0.005);
        let b = spec.trace(7, 0.005);
        assert_eq!(a, b);
        let c = spec.trace(8, 0.005);
        assert_ne!(a, c);
    }

    #[test]
    fn benchmarks_differ_from_each_other() {
        let suite = standard_suite();
        let a = suite[0].trace(1, 0.002);
        let b = suite[1].trace(1, 0.002);
        assert_ne!(a.trace, b.trace);
    }

    #[test]
    fn trace_lengths_match_scale() {
        let suite = standard_suite();
        for spec in &suite {
            let t = spec.trace(3, 0.001);
            assert_eq!(t.trace.len(), spec.predictions(0.001), "{}", spec.name());
        }
    }

    #[test]
    fn programs_have_plausible_static_footprints() {
        for spec in standard_suite() {
            let p = spec.program(1);
            let n = p.num_static_instructions();
            assert!(
                (50..20_000).contains(&n),
                "{}: {n} static instructions",
                spec.name()
            );
        }
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn zero_scale_rejected() {
        standard_suite()[0].predictions(0.0);
    }
}
