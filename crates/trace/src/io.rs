//! Compact binary serialization for value traces.
//!
//! Traces regenerate deterministically from seeds, but saving them is
//! useful for sharing workloads across tools and for freezing a trace
//! against generator changes. The format is simple and compact:
//!
//! ```text
//! magic   8 bytes  "DFCMTRC1"
//! count   varint   number of records
//! records          per record: zigzag-varint delta of pc (vs previous
//!                  record's pc), then varint value
//! ```
//!
//! PC deltas are small (loops revisit nearby code), so a typical suite
//! trace compresses to a handful of bytes per record.

use std::ffi::OsString;
use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::record::{Trace, TraceRecord};

const MAGIC: &[u8; 8] = b"DFCMTRC1";

/// A unique sibling path for staging an atomic write of `path`.
fn staging_path(path: &Path) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let mut name = path
        .file_name()
        .map(OsString::from)
        .unwrap_or_else(|| OsString::from("out"));
    name.push(format!(".tmp.{}.{n}", std::process::id()));
    path.with_file_name(name)
}

/// Writes a file atomically: the content is streamed to a temporary file
/// in the same directory (created if missing), flushed and synced, then
/// renamed over `path`. A crash or write error can therefore never leave
/// a truncated artifact under the final name — readers see either the
/// previous complete file or the new complete file.
///
/// # Errors
///
/// Propagates I/O errors from directory creation, the `write` closure,
/// or the final rename; the temporary file is removed on failure.
pub fn atomic_write_with<F>(path: &Path, write: F) -> io::Result<()>
where
    F: FnOnce(&mut BufWriter<File>) -> io::Result<()>,
{
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let staged = staging_path(path);
    let result = (|| {
        let mut w = BufWriter::new(File::create(&staged)?);
        write(&mut w)?;
        w.flush()?;
        w.get_ref().sync_all()?;
        fs::rename(&staged, path)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&staged);
    }
    result
}

/// [`atomic_write_with`] over a ready byte buffer.
///
/// # Errors
///
/// As [`atomic_write_with`].
pub fn atomic_write(path: &Path, contents: &[u8]) -> io::Result<()> {
    atomic_write_with(path, |w| w.write_all(contents))
}

/// A [`Write`] adapter that injects a deterministic I/O fault after a
/// byte budget: writes succeed until `budget` bytes have been accepted,
/// then every write fails with an "injected write fault" error. Used by
/// the fault-tolerance tests to prove that atomic saves never leave
/// truncated artifacts and that transient-error retries recover.
#[derive(Debug)]
pub struct FaultyWriter<W> {
    inner: W,
    remaining: u64,
}

impl<W: Write> FaultyWriter<W> {
    /// Wraps `inner`, allowing `budget` bytes through before faulting.
    pub fn new(inner: W, budget: u64) -> Self {
        FaultyWriter {
            inner,
            remaining: budget,
        }
    }

    /// The wrapped writer (with whatever bytes made it through).
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FaultyWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.remaining == 0 {
            return Err(io::Error::other("injected write fault"));
        }
        let allowed = (buf.len() as u64).min(self.remaining) as usize;
        let written = self.inner.write(&buf[..allowed])?;
        self.remaining -= written as u64;
        Ok(written)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// The [`Read`] counterpart of [`FaultyWriter`]: reads succeed until
/// `budget` bytes have been produced, then fail with an "injected read
/// fault" error.
#[derive(Debug)]
pub struct FaultyReader<R> {
    inner: R,
    remaining: u64,
}

impl<R: Read> FaultyReader<R> {
    /// Wraps `inner`, allowing `budget` bytes through before faulting.
    pub fn new(inner: R, budget: u64) -> Self {
        FaultyReader {
            inner,
            remaining: budget,
        }
    }
}

impl<R: Read> Read for FaultyReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.remaining == 0 {
            return Err(io::Error::other("injected read fault"));
        }
        let allowed = (buf.len() as u64).min(self.remaining) as usize;
        let read = self.inner.read(&mut buf[..allowed])?;
        self.remaining -= read as u64;
        Ok(read)
    }
}

fn write_varint<W: Write>(w: &mut W, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_varint<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        if shift >= 64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "varint too long",
            ));
        }
        let bits = u64::from(byte[0] & 0x7F);
        // The 10th byte (shift 63) only has room for one payload bit; any
        // bits that would be shifted out make the encoding non-canonical
        // and must not silently decode to a different value.
        if shift > 57 && bits >> (64 - shift) != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "varint overflows 64 bits",
            ));
        }
        value |= bits << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

impl Trace {
    /// Writes the trace in the binary format to `w`. Pass `&mut writer`
    /// to keep using the writer afterwards.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_to<W: Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(MAGIC)?;
        write_varint(&mut w, self.len() as u64)?;
        let mut prev_pc = 0i64;
        for r in self {
            let pc = r.pc as i64;
            write_varint(&mut w, zigzag(pc.wrapping_sub(prev_pc)))?;
            write_varint(&mut w, r.value)?;
            prev_pc = pc;
        }
        Ok(())
    }

    /// Reads a trace written by [`Trace::write_to`]. Pass `&mut reader`
    /// to keep using the reader afterwards.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on a bad magic number or truncated data, and
    /// propagates I/O errors from the reader.
    pub fn read_from<R: Read>(mut r: R) -> io::Result<Trace> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a dfcm trace file",
            ));
        }
        let count = read_varint(&mut r)?;
        if count > (1 << 40) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "implausible record count",
            ));
        }
        // Trust the header's count only up to a bounded pre-allocation: a
        // crafted 9-byte file could otherwise demand terabytes before a
        // single record is read. Larger traces grow the vector as records
        // actually arrive.
        const MAX_PREALLOC: u64 = 1 << 20;
        let mut trace = Trace::with_capacity(count.min(MAX_PREALLOC) as usize);
        let mut prev_pc = 0i64;
        for _ in 0..count {
            let pc = prev_pc.wrapping_add(unzigzag(read_varint(&mut r)?));
            let value = read_varint(&mut r)?;
            trace.push(TraceRecord::new(pc as u64, value));
            prev_pc = pc;
        }
        Ok(trace)
    }

    /// Saves the trace to a file atomically (staged in a sibling
    /// temporary file, then renamed): a crash mid-save can never leave a
    /// truncated trace under `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation and write errors.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        atomic_write_with(path.as_ref(), |w| self.write_to(w))
    }

    /// Loads a trace saved with [`Trace::save`].
    ///
    /// # Errors
    ///
    /// Propagates file-open and read errors; returns `InvalidData` for
    /// malformed files.
    pub fn load<P: AsRef<Path>>(path: P) -> io::Result<Trace> {
        Trace::read_from(BufReader::new(File::open(path)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Pattern;
    use crate::program::SyntheticProgram;
    use crate::record::TraceSource;

    fn sample_trace() -> Trace {
        SyntheticProgram::builder(9)
            .inst(
                Pattern::Stride {
                    start: 0,
                    stride: 4,
                },
                3,
            )
            .inst(Pattern::Random { bits: 32 }, 1)
            .build()
            .take_trace(5000)
    }

    #[test]
    fn roundtrip_through_memory() {
        let trace = sample_trace();
        let mut buffer = Vec::new();
        trace.write_to(&mut buffer).unwrap();
        let restored = Trace::read_from(buffer.as_slice()).unwrap();
        assert_eq!(trace, restored);
    }

    #[test]
    fn roundtrip_through_file() {
        let trace = sample_trace();
        let path = std::env::temp_dir().join("dfcm_io_test.trc");
        trace.save(&path).unwrap();
        let restored = Trace::load(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(trace, restored);
    }

    #[test]
    fn format_is_compact() {
        let trace = sample_trace();
        let mut buffer = Vec::new();
        trace.write_to(&mut buffer).unwrap();
        // PC deltas are tiny; values vary. Expect well under the 16
        // bytes/record of a raw dump.
        assert!(
            buffer.len() < trace.len() * 8,
            "{} bytes for {} records",
            buffer.len(),
            trace.len()
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let err = Trace::read_from(&b"NOTATRACE"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_data_rejected() {
        let trace = sample_trace();
        let mut buffer = Vec::new();
        trace.write_to(&mut buffer).unwrap();
        buffer.truncate(buffer.len() / 2);
        assert!(Trace::read_from(buffer.as_slice()).is_err());
    }

    #[test]
    fn empty_trace_roundtrips() {
        let mut buffer = Vec::new();
        Trace::new().write_to(&mut buffer).unwrap();
        assert_eq!(Trace::read_from(buffer.as_slice()).unwrap(), Trace::new());
    }

    #[test]
    fn extreme_values_roundtrip() {
        let mut trace = Trace::new();
        trace.push(TraceRecord::new(u64::MAX, u64::MAX));
        trace.push(TraceRecord::new(0, 0));
        trace.push(TraceRecord::new(u64::MAX / 2, 1));
        let mut buffer = Vec::new();
        trace.write_to(&mut buffer).unwrap();
        assert_eq!(Trace::read_from(buffer.as_slice()).unwrap(), trace);
    }

    #[test]
    fn malicious_header_count_rejected_without_large_allocation() {
        // A tiny file whose header claims a huge record count must fail
        // on the missing records, not abort allocating the claimed size.
        let mut buffer = Vec::from(*MAGIC);
        write_varint(&mut buffer, (1u64 << 40) - 1).unwrap();
        let err = Trace::read_from(buffer.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);

        // Beyond the plausibility bound the header itself is rejected.
        let mut buffer = Vec::from(*MAGIC);
        write_varint(&mut buffer, (1u64 << 40) + 1).unwrap();
        let err = Trace::read_from(buffer.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn capped_preallocation_still_reads_past_the_cap() {
        let trace: Trace = (0..3000u64).map(|i| TraceRecord::new(4 * i, i)).collect();
        let mut buffer = Vec::new();
        trace.write_to(&mut buffer).unwrap();
        let restored = Trace::read_from(buffer.as_slice()).unwrap();
        assert_eq!(trace, restored);
    }

    #[test]
    fn non_canonical_varint_rejected() {
        // Ten continuation-flagged bytes then payload bits that do not
        // fit in the single bit the 10th byte has room for: previously
        // this silently decoded with the overflow bits dropped.
        let mut buffer = Vec::from(*MAGIC);
        buffer.extend_from_slice(&[0x80; 9]);
        buffer.push(0x02); // bit 1 set -> shifted past bit 63
        let err = Trace::read_from(buffer.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // An 11th byte is rejected as over-long regardless of payload.
        let mut buffer = Vec::from(*MAGIC);
        buffer.extend_from_slice(&[0x80; 10]);
        buffer.push(0x00);
        let err = Trace::read_from(buffer.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn canonical_ten_byte_varint_still_decodes() {
        // u64::MAX needs all ten bytes; its canonical encoding (final
        // byte 0x01) must keep round-tripping.
        let mut trace = Trace::new();
        trace.push(TraceRecord::new(0, u64::MAX));
        let mut buffer = Vec::new();
        trace.write_to(&mut buffer).unwrap();
        assert_eq!(*buffer.last().unwrap(), 0x01);
        assert_eq!(Trace::read_from(buffer.as_slice()).unwrap(), trace);
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn atomic_save_leaves_no_staging_files() {
        let dir = std::env::temp_dir().join("dfcm_io_atomic_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("deep/nested/trace.trc");
        let trace = sample_trace();
        trace.save(&path).unwrap();
        assert_eq!(Trace::load(&path).unwrap(), trace);
        let siblings: Vec<_> = std::fs::read_dir(path.parent().unwrap())
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(siblings, vec![std::ffi::OsString::from("trace.trc")]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_atomic_write_keeps_previous_contents() {
        let dir = std::env::temp_dir().join("dfcm_io_atomic_fail_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.bin");
        atomic_write(&path, b"complete v1").unwrap();
        let err = atomic_write_with(&path, |w| {
            w.write_all(b"partial v2")?;
            Err(io::Error::other("crash mid-write"))
        })
        .unwrap_err();
        assert_eq!(err.to_string(), "crash mid-write");
        assert_eq!(std::fs::read(&path).unwrap(), b"complete v1");
        let siblings: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(siblings, vec![std::ffi::OsString::from("out.bin")]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn faulty_writer_faults_after_budget() {
        let trace = sample_trace();
        let mut full = Vec::new();
        trace.write_to(&mut full).unwrap();
        let mut w = FaultyWriter::new(Vec::new(), 16);
        let err = trace.write_to(&mut w).unwrap_err();
        assert!(err.to_string().contains("injected write fault"));
        assert_eq!(w.into_inner(), full[..16].to_vec());
    }

    #[test]
    fn faulty_reader_faults_after_budget() {
        let trace = sample_trace();
        let mut buffer = Vec::new();
        trace.write_to(&mut buffer).unwrap();
        let half = buffer.len() as u64 / 2;
        let err = Trace::read_from(FaultyReader::new(buffer.as_slice(), half)).unwrap_err();
        assert!(err.to_string().contains("injected read fault"));
        // A budget covering the whole stream reads cleanly.
        let restored =
            Trace::read_from(FaultyReader::new(buffer.as_slice(), buffer.len() as u64)).unwrap();
        assert_eq!(restored, trace);
    }
}
