//! Compact binary serialization for value traces: the legacy `DFCMTRC1`
//! format, the checksummed, salvageable `DFCMTRC2` format, and the
//! dispatch points for the compressed `DFCMTRC3` format (whose encoding
//! lives in the `v3` module).
//!
//! Traces regenerate deterministically from seeds, but saving them is
//! useful for sharing workloads across tools and for freezing a trace
//! against generator changes. Trace files cross a trust boundary — they
//! may arrive truncated, bit-flipped or maliciously crafted — so readers
//! never assume well-formedness: every failure decodes to a typed
//! [`TraceFormatError`], never a panic or a silently wrong trace.
//!
//! # v1 (`DFCMTRC1`, legacy)
//!
//! ```text
//! magic   8 bytes  "DFCMTRC1"
//! count   varint   number of records
//! records          per record: zigzag-varint delta of pc (vs previous
//!                  record's pc), then varint value
//! ```
//!
//! v1 has no integrity protection: truncation is detected (the record
//! count is known up front) but bit flips decode silently. It remains
//! fully readable; [`Trace::read_from`] auto-detects the version.
//!
//! # v2 (`DFCMTRC2`, default for [`Trace::save`])
//!
//! ```text
//! magic    8 bytes  "DFCMTRC2"
//! hlen     varint   byte length of the header payload
//! header            varint record count, varint generator seed,
//!                   varint format flags (must be 0); readers ignore
//!                   bytes past the fields they know, so the header can
//!                   grow compatibly
//! chunks            until `count` records are accounted for:
//!   records varint  records in this chunk (1 ..= 65536)
//!   bytes   varint  byte length of the chunk payload
//!   crc32   4 bytes CRC-32 (IEEE, LE) of the chunk payload
//!   payload         delta-encoded records as in v1; the pc delta chain
//!                   restarts at 0 each chunk, so every chunk decodes
//!                   independently
//! ```
//!
//! Writers emit 64Ki records per chunk (the last chunk holds the
//! remainder). Because each chunk carries its own length and checksum,
//! a corrupted file is *salvageable*: [`salvage_trace`] recovers every
//! intact chunk, skips corrupt ones, and reports exactly what was
//! dropped. [`inspect_trace`] reports the header and per-chunk CRC
//! status without failing.
//!
//! PC deltas are small (loops revisit nearby code), so a typical suite
//! trace compresses to a handful of bytes per record in either version.
//!
//! # v3 (`DFCMTRC3`, compressed)
//!
//! The paper-scale tier: v2's chunked, salvageable framing with each
//! chunk bit-packed and then LZ+Huffman compressed, reaching a few bits
//! per record. Layout, packing, streaming reader/writer, and the
//! decompression-bomb guards are documented in the `v3` module; this
//! module dispatches to it from [`Trace::read_from`], [`salvage_trace`]
//! and [`inspect_trace`] based on the magic.

use std::ffi::OsString;
use std::fmt;
use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::crc::crc32;
use crate::record::{Trace, TraceRecord};
use crate::v3::{inspect_v3, read_v3_body, salvage_v3, write_v3, MAGIC_V3};

const MAGIC_V1: &[u8; 8] = b"DFCMTRC1";
const MAGIC_V2: &[u8; 8] = b"DFCMTRC2";

/// Records per v2 chunk (the last chunk of a file holds the remainder).
pub const V2_CHUNK_RECORDS: usize = 1 << 16;

/// Upper bound on a v2 header payload; anything larger is corruption.
const MAX_HEADER_BYTES: u64 = 4096;

/// A varint-encoded record is at most two 10-byte varints.
const MAX_RECORD_BYTES: u64 = 20;

/// Trust the header's count only up to a bounded pre-allocation: a
/// crafted small file could otherwise demand terabytes before a single
/// record is read. Larger traces grow as records actually arrive.
pub(crate) const MAX_PREALLOC: u64 = 1 << 20;

/// Headers claiming more records than this are rejected outright.
const MAX_PLAUSIBLE_RECORDS: u64 = 1 << 40;

/// Fallback staleness age for orphan staging files on platforms where
/// process liveness cannot be checked.
const STALE_STAGING_AGE: Duration = Duration::from_secs(3600);

/// On-disk format selector for [`Trace::save_with`] /
/// [`Trace::write_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// The legacy unchecksummed format.
    V1,
    /// The chunked, CRC-checked format, stamping the generator seed into
    /// the header (use 0 when the seed is unknown or not applicable).
    V2 {
        /// Generator seed recorded in the file header.
        seed: u64,
    },
    /// The compressed format: v2's chunked framing with bit-packed,
    /// LZ+Huffman-compressed payloads (see the crate docs on v3). The
    /// format of choice for paper-scale traces.
    V3 {
        /// Generator seed recorded in the file header.
        seed: u64,
    },
}

impl Default for TraceFormat {
    /// The version knob's default: v2 with no recorded seed.
    fn default() -> Self {
        TraceFormat::V2 { seed: 0 }
    }
}

/// A typed classification of why a trace file failed to decode.
///
/// Reader functions return these wrapped in an [`io::Error`] of kind
/// [`io::ErrorKind::InvalidData`]; [`TraceFormatError::classify`]
/// recovers the typed value from such an error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceFormatError {
    /// The first eight bytes match neither known magic.
    BadMagic {
        /// The bytes actually found.
        found: [u8; 8],
    },
    /// The file header is unreadable or self-inconsistent.
    BadHeader {
        /// What was wrong.
        detail: String,
    },
    /// A chunk's payload does not match its stored CRC-32.
    ChunkCrcMismatch {
        /// Zero-based chunk index.
        chunk: usize,
        /// The checksum stored in the file.
        stored: u32,
        /// The checksum of the payload as read.
        computed: u32,
    },
    /// The file ends (or its framing becomes unreadable) before all
    /// declared records are accounted for.
    TruncatedTail {
        /// Zero-based index of the first unreadable chunk.
        chunk: usize,
        /// What was wrong.
        detail: String,
    },
    /// A v3 chunk declares an uncompressed size no legitimate writer
    /// could produce — larger than the worst-case packed size for its
    /// record count, or implausibly expanded relative to its compressed
    /// payload. The declaration is rejected *before* any payload-sized
    /// allocation, so a crafted file cannot demand memory beyond one
    /// chunk's structural bound.
    DecompressionBomb {
        /// Zero-based chunk index.
        chunk: usize,
        /// The uncompressed size the chunk declares.
        declared: u64,
        /// The compressed payload size the chunk declares.
        compressed: u64,
    },
}

impl fmt::Display for TraceFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceFormatError::BadMagic { found } => {
                write!(f, "not a dfcm trace file (magic {:02x?})", found)
            }
            TraceFormatError::BadHeader { detail } => write!(f, "bad trace header: {detail}"),
            TraceFormatError::ChunkCrcMismatch {
                chunk,
                stored,
                computed,
            } => write!(
                f,
                "chunk {chunk} CRC mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
            TraceFormatError::TruncatedTail { chunk, detail } => {
                write!(f, "truncated at chunk {chunk}: {detail}")
            }
            TraceFormatError::DecompressionBomb {
                chunk,
                declared,
                compressed,
            } => write!(
                f,
                "chunk {chunk} is a decompression bomb \
                 ({declared} declared bytes from {compressed} compressed)"
            ),
        }
    }
}

impl std::error::Error for TraceFormatError {}

impl From<TraceFormatError> for io::Error {
    fn from(e: TraceFormatError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

impl TraceFormatError {
    /// Recovers the typed format error carried by an [`io::Error`], if
    /// that error came from a trace reader.
    pub fn classify(e: &io::Error) -> Option<&TraceFormatError> {
        e.get_ref().and_then(|inner| inner.downcast_ref())
    }
}

/// A unique sibling path for staging an atomic write of `path`.
fn staging_path(path: &Path) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let mut name = path
        .file_name()
        .map(OsString::from)
        .unwrap_or_else(|| OsString::from("out"));
    name.push(format!(".tmp.{}.{n}", std::process::id()));
    path.with_file_name(name)
}

/// Whether the process with id `pid` is alive; `None` when the platform
/// offers no way to tell.
fn process_alive(pid: u32) -> Option<bool> {
    if Path::new("/proc").is_dir() {
        Some(Path::new(&format!("/proc/{pid}")).exists())
    } else {
        None
    }
}

/// Best-effort removal of orphaned staging files left next to `path` by
/// crashed atomic writes: siblings named `<file>.tmp.<pid>.<n>` whose
/// writing process is gone (or, where liveness cannot be checked, whose
/// mtime is over an hour old). Our own process's staging files are never
/// touched — another thread may be mid-write.
fn sweep_stale_staging(path: &Path) {
    let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) else {
        return;
    };
    let Some(name) = path.file_name() else {
        return;
    };
    let prefix = format!("{}.tmp.", name.to_string_lossy());
    let Ok(entries) = fs::read_dir(parent) else {
        return;
    };
    for entry in entries.flatten() {
        let file_name = entry.file_name();
        let Some(rest) = file_name
            .to_string_lossy()
            .strip_prefix(&prefix)
            .map(str::to_owned)
        else {
            continue;
        };
        let Some(pid) = rest.split('.').next().and_then(|p| p.parse::<u32>().ok()) else {
            continue;
        };
        if pid == std::process::id() {
            continue;
        }
        let stale = match process_alive(pid) {
            Some(alive) => !alive,
            None => entry
                .metadata()
                .and_then(|m| m.modified())
                .ok()
                .and_then(|t| t.elapsed().ok())
                .is_some_and(|age| age > STALE_STAGING_AGE),
        };
        if stale {
            let _ = fs::remove_file(entry.path());
        }
    }
}

/// Writes a file atomically: the content is streamed to a temporary file
/// in the same directory (created if missing), flushed and synced, then
/// renamed over `path`. A crash or write error can therefore never leave
/// a truncated artifact under the final name — readers see either the
/// previous complete file or the new complete file. Orphaned staging
/// files from previously crashed writers are swept first (see the module
/// source), so crashes do not accumulate `*.tmp.<pid>.<n>` litter.
///
/// # Errors
///
/// Propagates I/O errors from directory creation, the `write` closure,
/// or the final rename; the temporary file is removed on failure.
pub fn atomic_write_with<F>(path: &Path, write: F) -> io::Result<()>
where
    F: FnOnce(&mut BufWriter<File>) -> io::Result<()>,
{
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    sweep_stale_staging(path);
    let staged = staging_path(path);
    let result = (|| {
        let mut w = BufWriter::new(File::create(&staged)?);
        write(&mut w)?;
        w.flush()?;
        // Durability ordering: the temp file's *data* must be on stable
        // storage before the rename publishes it, or a power loss right
        // after the rename could surface an empty/truncated "atomic"
        // artifact under the final name.
        w.get_ref().sync_all()?;
        fs::rename(&staged, path)?;
        // Best-effort: persist the rename itself (the directory entry).
        // Failure to sync the directory does not un-write the file, and
        // some filesystems/platforms reject directory fsync — so errors
        // here are ignored rather than failing an already-complete write.
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            if let Ok(dir) = File::open(parent) {
                let _ = dir.sync_all();
            }
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&staged);
    }
    result
}

/// [`atomic_write_with`] over a ready byte buffer.
///
/// # Errors
///
/// As [`atomic_write_with`].
pub fn atomic_write(path: &Path, contents: &[u8]) -> io::Result<()> {
    atomic_write_with(path, |w| w.write_all(contents))
}

/// A [`Write`] adapter that injects a deterministic I/O fault after a
/// byte budget: writes succeed until `budget` bytes have been accepted,
/// then every write fails with an "injected write fault" error. Used by
/// the fault-tolerance tests to prove that atomic saves never leave
/// truncated artifacts and that transient-error retries recover.
#[derive(Debug)]
pub struct FaultyWriter<W> {
    inner: W,
    remaining: u64,
}

impl<W: Write> FaultyWriter<W> {
    /// Wraps `inner`, allowing `budget` bytes through before faulting.
    pub fn new(inner: W, budget: u64) -> Self {
        FaultyWriter {
            inner,
            remaining: budget,
        }
    }

    /// The wrapped writer (with whatever bytes made it through).
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FaultyWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.remaining == 0 {
            return Err(io::Error::other("injected write fault"));
        }
        let allowed = (buf.len() as u64).min(self.remaining) as usize;
        let written = self.inner.write(&buf[..allowed])?;
        self.remaining -= written as u64;
        Ok(written)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// The [`Read`] counterpart of [`FaultyWriter`]: reads succeed until
/// `budget` bytes have been produced, then fail with an "injected read
/// fault" error.
#[derive(Debug)]
pub struct FaultyReader<R> {
    inner: R,
    remaining: u64,
}

impl<R: Read> FaultyReader<R> {
    /// Wraps `inner`, allowing `budget` bytes through before faulting.
    pub fn new(inner: R, budget: u64) -> Self {
        FaultyReader {
            inner,
            remaining: budget,
        }
    }
}

impl<R: Read> Read for FaultyReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.remaining == 0 {
            return Err(io::Error::other("injected read fault"));
        }
        let allowed = (buf.len() as u64).min(self.remaining) as usize;
        let read = self.inner.read(&mut buf[..allowed])?;
        self.remaining -= read as u64;
        Ok(read)
    }
}

/// Writes `v` as an LEB128 varint (7 payload bits per byte, high bit =
/// continuation). This is the integer encoding used throughout the trace
/// formats and, via reuse, the serving daemon's frame protocol and
/// snapshot format.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_varint<W: Write>(w: &mut W, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

/// Reads a varint written by [`write_varint`]. Non-canonical encodings
/// (payload bits shifted past bit 63, or an 11th byte) are rejected as
/// `InvalidData` rather than silently truncated.
///
/// # Errors
///
/// Propagates I/O errors; returns `InvalidData` for over-long or
/// overflowing encodings.
pub fn read_varint<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        if shift >= 64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "varint too long",
            ));
        }
        let bits = u64::from(byte[0] & 0x7F);
        // The 10th byte (shift 63) only has room for one payload bit; any
        // bits that would be shifted out make the encoding non-canonical
        // and must not silently decode to a different value.
        if shift > 57 && bits >> (64 - shift) != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "varint overflows 64 bits",
            ));
        }
        value |= bits << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

pub(crate) fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

pub(crate) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// True for error kinds that indicate corrupt or truncated input rather
/// than an environment failure.
pub(crate) fn is_corruption(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::UnexpectedEof | io::ErrorKind::InvalidData
    )
}

pub(crate) fn bad_header(detail: impl Into<String>) -> io::Error {
    TraceFormatError::BadHeader {
        detail: detail.into(),
    }
    .into()
}

pub(crate) fn truncated(chunk: usize, detail: impl Into<String>) -> io::Error {
    TraceFormatError::TruncatedTail {
        chunk,
        detail: detail.into(),
    }
    .into()
}

/// Parsed v2 file header. The v3 header shares the exact layout and
/// growth rules, so the v3 module reuses this parser.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct V2Header {
    pub(crate) records: u64,
    pub(crate) seed: u64,
    pub(crate) flags: u64,
}

pub(crate) fn read_v2_header<R: Read>(r: &mut R) -> io::Result<V2Header> {
    let hlen = read_varint(r).map_err(|e| {
        if is_corruption(&e) {
            bad_header(format!("unreadable header length: {e}"))
        } else {
            e
        }
    })?;
    if hlen > MAX_HEADER_BYTES {
        return Err(bad_header(format!("implausible header length {hlen}")));
    }
    let mut header = vec![0u8; hlen as usize];
    r.read_exact(&mut header).map_err(|e| {
        if is_corruption(&e) {
            bad_header("header cut short")
        } else {
            e
        }
    })?;
    let mut slice: &[u8] = &header;
    let field = |slice: &mut &[u8], name: &str| -> io::Result<u64> {
        read_varint(slice).map_err(|e| {
            if is_corruption(&e) {
                bad_header(format!("unreadable {name} field"))
            } else {
                e
            }
        })
    };
    let records = field(&mut slice, "record count")?;
    let seed = field(&mut slice, "seed")?;
    let flags = field(&mut slice, "flags")?;
    // Bytes past the known fields are reserved for compatible header
    // growth and ignored; unknown *flags* are not, since they may change
    // the record encoding.
    if flags != 0 {
        return Err(bad_header(format!("unsupported format flags {flags:#x}")));
    }
    if records > MAX_PLAUSIBLE_RECORDS {
        return Err(bad_header(format!("implausible record count {records}")));
    }
    Ok(V2Header {
        records,
        seed,
        flags,
    })
}

/// One chunk as read off the wire, CRC checked but not yet trusted.
#[derive(Debug)]
struct ScannedChunk {
    index: usize,
    records: u64,
    payload_bytes: u64,
    crc_stored: u32,
    crc_computed: u32,
    /// The decoded records, or why the payload failed to decode.
    decoded: Result<Vec<TraceRecord>, String>,
}

impl ScannedChunk {
    fn intact(&self) -> bool {
        self.crc_stored == self.crc_computed && self.decoded.is_ok()
    }
}

/// Decodes one chunk payload; the pc delta chain restarts at zero.
fn decode_chunk_payload(payload: &[u8], records: u64) -> Result<Vec<TraceRecord>, String> {
    let mut slice = payload;
    let mut out = Vec::with_capacity(records as usize);
    let mut prev_pc = 0i64;
    for i in 0..records {
        let delta = read_varint(&mut slice).map_err(|e| format!("record {i}: {e}"))?;
        let value = read_varint(&mut slice).map_err(|e| format!("record {i}: {e}"))?;
        let pc = prev_pc.wrapping_add(unzigzag(delta));
        out.push(TraceRecord::new(pc as u64, value));
        prev_pc = pc;
    }
    if !slice.is_empty() {
        return Err(format!("{} unused bytes after last record", slice.len()));
    }
    Ok(out)
}

/// Reads chunks until `header.records` are accounted for. Returns the
/// chunks read (including CRC-mismatched and undecodable ones, which a
/// salvaging caller may skip) and the framing error that stopped the
/// scan early, if any. Only environment I/O errors (not corruption) are
/// returned as `Err`.
fn scan_v2<R: Read>(
    r: &mut R,
    header: &V2Header,
) -> io::Result<(Vec<ScannedChunk>, Option<io::Error>)> {
    let mut chunks = Vec::new();
    let mut remaining = header.records;
    let mut index = 0usize;
    while remaining > 0 {
        let records = match read_varint(r) {
            Ok(v) => v,
            Err(e) if is_corruption(&e) => {
                return Ok((
                    chunks,
                    Some(truncated(index, format!("chunk framing: {e}"))),
                ));
            }
            Err(e) => return Err(e),
        };
        if records == 0 || records > V2_CHUNK_RECORDS as u64 || records > remaining {
            return Ok((
                chunks,
                Some(truncated(
                    index,
                    format!("implausible chunk record count {records} ({remaining} outstanding)"),
                )),
            ));
        }
        let payload_bytes = match read_varint(r) {
            Ok(v) => v,
            Err(e) if is_corruption(&e) => {
                return Ok((
                    chunks,
                    Some(truncated(index, format!("chunk framing: {e}"))),
                ));
            }
            Err(e) => return Err(e),
        };
        if payload_bytes > records * MAX_RECORD_BYTES {
            return Ok((
                chunks,
                Some(truncated(
                    index,
                    format!("implausible chunk byte length {payload_bytes}"),
                )),
            ));
        }
        let mut crc_bytes = [0u8; 4];
        if let Err(e) = r.read_exact(&mut crc_bytes) {
            if is_corruption(&e) {
                return Ok((chunks, Some(truncated(index, "chunk checksum cut short"))));
            }
            return Err(e);
        }
        let mut payload = vec![0u8; payload_bytes as usize];
        if let Err(e) = r.read_exact(&mut payload) {
            if is_corruption(&e) {
                return Ok((chunks, Some(truncated(index, "chunk payload cut short"))));
            }
            return Err(e);
        }
        let crc_stored = u32::from_le_bytes(crc_bytes);
        let crc_computed = crc32(&payload);
        let decoded = decode_chunk_payload(&payload, records);
        chunks.push(ScannedChunk {
            index,
            records,
            payload_bytes,
            crc_stored,
            crc_computed,
            decoded,
        });
        remaining -= records;
        index += 1;
    }
    Ok((chunks, None))
}

fn read_v1_body<R: Read>(r: &mut R) -> io::Result<Trace> {
    let count = read_varint(r)?;
    if count > MAX_PLAUSIBLE_RECORDS {
        return Err(bad_header(format!("implausible record count {count}")));
    }
    let mut trace = Trace::with_capacity(count.min(MAX_PREALLOC) as usize);
    let mut prev_pc = 0i64;
    for _ in 0..count {
        let pc = prev_pc.wrapping_add(unzigzag(read_varint(r)?));
        let value = read_varint(r)?;
        trace.push(TraceRecord::new(pc as u64, value));
        prev_pc = pc;
    }
    Ok(trace)
}

fn read_v2_body<R: Read>(r: &mut R) -> io::Result<Trace> {
    let header = read_v2_header(r)?;
    let (chunks, framing_error) = scan_v2(r, &header)?;
    // Report the earliest-chunk problem, preferring CRC mismatches (the
    // sharper diagnosis) over the framing error that may follow them.
    for c in &chunks {
        if c.crc_stored != c.crc_computed {
            return Err(TraceFormatError::ChunkCrcMismatch {
                chunk: c.index,
                stored: c.crc_stored,
                computed: c.crc_computed,
            }
            .into());
        }
        if let Err(detail) = &c.decoded {
            return Err(truncated(c.index, format!("undecodable chunk: {detail}")));
        }
    }
    if let Some(e) = framing_error {
        return Err(e);
    }
    let mut trace = Trace::with_capacity(header.records.min(MAX_PREALLOC) as usize);
    for c in chunks {
        trace.extend(c.decoded.expect("checked above"));
    }
    Ok(trace)
}

/// One undecoded v2 chunk: framing fields plus the raw payload bytes.
///
/// Produced by [`V2ChunkReader`]. The pc delta chain restarts at zero in
/// every chunk, so each `RawChunk` decodes independently of the others —
/// the property that lets a consumer decode chunks on worker threads
/// while a stateful simulation consumes them strictly in `index` order.
#[derive(Debug, Clone)]
pub struct RawChunk {
    /// Zero-based position of this chunk in the file.
    pub index: usize,
    /// Records the chunk holds.
    pub records: u64,
    /// CRC-32 (IEEE) stored in the file for the payload.
    pub crc_stored: u32,
    /// The still-encoded chunk payload.
    pub payload: Vec<u8>,
}

impl RawChunk {
    /// Decodes the payload into records, verifying the CRC first.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` carrying a
    /// [`TraceFormatError::ChunkCrcMismatch`] when the payload does not
    /// match its stored checksum, or a
    /// [`TraceFormatError::TruncatedTail`] when it does not decode to
    /// exactly [`records`](RawChunk::records) records.
    pub fn decode(&self) -> io::Result<Vec<TraceRecord>> {
        let computed = crc32(&self.payload);
        if computed != self.crc_stored {
            return Err(TraceFormatError::ChunkCrcMismatch {
                chunk: self.index,
                stored: self.crc_stored,
                computed,
            }
            .into());
        }
        decode_chunk_payload(&self.payload, self.records)
            .map_err(|detail| truncated(self.index, format!("undecodable chunk: {detail}")))
    }
}

/// Streams the chunks of a v2 (`DFCMTRC2`) trace without decoding them:
/// an iterator of [`RawChunk`]s, created by [`v2_chunks`] or
/// [`V2ChunkReader::open`]. The header is parsed eagerly (so
/// [`seed`](V2ChunkReader::seed) and
/// [`declared_records`](V2ChunkReader::declared_records) are available
/// before the first chunk); chunk framing is validated with the same
/// plausibility bounds as [`Trace::read_from`], and payload integrity is
/// checked by [`RawChunk::decode`].
#[derive(Debug)]
pub struct V2ChunkReader<R> {
    reader: R,
    header: V2Header,
    remaining: u64,
    index: usize,
    /// Set once a framing error is hit so iteration stops permanently.
    poisoned: bool,
}

/// Opens a v2 chunk stream over `reader`, which must be positioned at the
/// start of a `DFCMTRC2` file (magic included).
///
/// # Errors
///
/// Returns `InvalidData` for v1 files or unrecognized magic (v1 has no
/// chunking to iterate) and for unreadable v2 headers; propagates I/O
/// errors from the reader.
pub fn v2_chunks<R: Read>(mut reader: R) -> io::Result<V2ChunkReader<R>> {
    let mut magic = [0u8; 8];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC_V2 {
        return Err(TraceFormatError::BadMagic { found: magic }.into());
    }
    let header = read_v2_header(&mut reader)?;
    Ok(V2ChunkReader {
        reader,
        remaining: header.records,
        header,
        index: 0,
        poisoned: false,
    })
}

impl V2ChunkReader<BufReader<File>> {
    /// Opens a v2 trace file as a chunk stream.
    ///
    /// # Errors
    ///
    /// As [`v2_chunks`], plus file-open errors.
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        v2_chunks(BufReader::new(File::open(path)?))
    }
}

impl<R: Read> V2ChunkReader<R> {
    /// Generator seed stamped in the file header.
    pub fn seed(&self) -> u64 {
        self.header.seed
    }

    /// Record count the header declares for the whole file.
    pub fn declared_records(&self) -> u64 {
        self.header.records
    }
}

impl<R: Read> V2ChunkReader<R> {
    /// Reads the next chunk's framing and payload. Framing-level
    /// corruption (short reads, implausible counts) is reported as an
    /// `InvalidData` error carrying [`TraceFormatError::TruncatedTail`];
    /// other I/O errors pass through unchanged.
    fn read_chunk(&mut self) -> io::Result<RawChunk> {
        let index = self.index;
        let records = read_varint(&mut self.reader)
            .map_err(|e| corruption_at(index, e, "chunk framing cut short"))?;
        if records == 0 || records > V2_CHUNK_RECORDS as u64 || records > self.remaining {
            return Err(truncated(
                index,
                format!(
                    "implausible chunk record count {records} ({} outstanding)",
                    self.remaining
                ),
            ));
        }
        let payload_bytes = read_varint(&mut self.reader)
            .map_err(|e| corruption_at(index, e, "chunk framing cut short"))?;
        if payload_bytes > records * MAX_RECORD_BYTES {
            return Err(truncated(
                index,
                format!("implausible chunk byte length {payload_bytes}"),
            ));
        }
        let mut crc_bytes = [0u8; 4];
        self.reader
            .read_exact(&mut crc_bytes)
            .map_err(|e| corruption_at(index, e, "chunk checksum cut short"))?;
        let mut payload = vec![0u8; payload_bytes as usize];
        self.reader
            .read_exact(&mut payload)
            .map_err(|e| corruption_at(index, e, "chunk payload cut short"))?;
        self.remaining -= records;
        self.index += 1;
        Ok(RawChunk {
            index,
            records,
            crc_stored: u32::from_le_bytes(crc_bytes),
            payload,
        })
    }
}

/// Wraps a read error hit inside chunk `index`: corruption-shaped errors
/// (unexpected EOF, invalid data) become a [`TraceFormatError::TruncatedTail`]
/// naming the chunk; genuine I/O failures pass through untouched.
pub(crate) fn corruption_at(index: usize, e: io::Error, what: &str) -> io::Error {
    if is_corruption(&e) {
        truncated(index, format!("{what}: {e}"))
    } else {
        e
    }
}

impl<R: Read> Iterator for V2ChunkReader<R> {
    type Item = io::Result<RawChunk>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.poisoned || self.remaining == 0 {
            return None;
        }
        match self.read_chunk() {
            Ok(chunk) => Some(Ok(chunk)),
            Err(e) => {
                self.poisoned = true;
                Some(Err(e))
            }
        }
    }
}

/// A chunk (or tail) that [`salvage_trace`] could not recover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DroppedChunk {
    /// Zero-based index of the first affected chunk.
    pub chunk: usize,
    /// Records lost with it.
    pub records: u64,
    /// Why it was dropped.
    pub reason: String,
}

/// What [`salvage_trace`] recovered from a (possibly corrupted) file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SalvageReport {
    /// Format version of the file (1, 2 or 3).
    pub version: u8,
    /// Record count the header declares.
    pub declared_records: u64,
    /// Generator seed from the header (v2/v3 only).
    pub seed: Option<u64>,
    /// Every record that could be recovered, in file order.
    pub recovered: Trace,
    /// Chunks an intact file of this size would hold (1 for v1).
    pub total_chunks: usize,
    /// Chunks recovered intact.
    pub recovered_chunks: usize,
    /// What was dropped, in chunk order; empty for an intact file.
    pub dropped: Vec<DroppedChunk>,
}

impl SalvageReport {
    /// True when nothing was dropped: the file was fully intact.
    pub fn intact(&self) -> bool {
        self.dropped.is_empty() && self.recovered.len() as u64 == self.declared_records
    }
}

/// Chunks an intact v2 file with `records` records holds.
fn expected_chunks(records: u64) -> usize {
    records.div_ceil(V2_CHUNK_RECORDS as u64) as usize
}

/// Recovers everything recoverable from a trace file.
///
/// For v2 files every chunk whose framing is readable and whose CRC and
/// decode succeed is recovered bit-identically; corrupt chunks are
/// skipped and reported. Once the chunk *framing* itself is unreadable
/// the rest of the file is undecipherable and reported as one dropped
/// tail. For v1 files (no checksums, no chunking) the longest cleanly
/// decodable prefix is recovered.
///
/// # Errors
///
/// Returns an error only when there is nothing to salvage (unrecognized
/// magic, unreadable v2 header) or on a genuine I/O failure; corruption
/// past the header is reported in the [`SalvageReport`], not as an
/// error.
pub fn salvage_trace<R: Read>(mut r: R) -> io::Result<SalvageReport> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    match &magic {
        MAGIC_V1 => salvage_v1(&mut r),
        MAGIC_V2 => salvage_v2(&mut r),
        MAGIC_V3 => salvage_v3(&mut r),
        _ => Err(TraceFormatError::BadMagic { found: magic }.into()),
    }
}

fn salvage_v1<R: Read>(r: &mut R) -> io::Result<SalvageReport> {
    let declared = match read_varint(r) {
        Ok(v) if v <= MAX_PLAUSIBLE_RECORDS => v,
        Ok(v) => return Err(bad_header(format!("implausible record count {v}"))),
        Err(e) if is_corruption(&e) => return Err(bad_header(format!("unreadable count: {e}"))),
        Err(e) => return Err(e),
    };
    let mut recovered = Trace::with_capacity(declared.min(MAX_PREALLOC) as usize);
    let mut prev_pc = 0i64;
    let mut dropped = Vec::new();
    for i in 0..declared {
        let record = read_varint(r).and_then(|d| read_varint(r).map(|v| (d, v)));
        match record {
            Ok((delta, value)) => {
                let pc = prev_pc.wrapping_add(unzigzag(delta));
                recovered.push(TraceRecord::new(pc as u64, value));
                prev_pc = pc;
            }
            Err(e) if is_corruption(&e) => {
                dropped.push(DroppedChunk {
                    chunk: 0,
                    records: declared - i,
                    reason: format!("record {i}: {e}"),
                });
                break;
            }
            Err(e) => return Err(e),
        }
    }
    let intact = dropped.is_empty();
    Ok(SalvageReport {
        version: 1,
        declared_records: declared,
        seed: None,
        recovered,
        total_chunks: 1,
        recovered_chunks: usize::from(intact),
        dropped,
    })
}

fn salvage_v2<R: Read>(r: &mut R) -> io::Result<SalvageReport> {
    let header = read_v2_header(r)?;
    let (chunks, framing_error) = scan_v2(r, &header)?;
    let scanned = chunks.len();
    let mut recovered = Trace::with_capacity(header.records.min(MAX_PREALLOC) as usize);
    let mut recovered_chunks = 0usize;
    let mut dropped = Vec::new();
    let mut accounted = 0u64;
    for c in chunks {
        accounted += c.records;
        if c.crc_stored != c.crc_computed {
            dropped.push(DroppedChunk {
                chunk: c.index,
                records: c.records,
                reason: format!(
                    "CRC mismatch (stored {:#010x}, computed {:#010x})",
                    c.crc_stored, c.crc_computed
                ),
            });
        } else {
            match c.decoded {
                Ok(records) => {
                    recovered.extend(records);
                    recovered_chunks += 1;
                }
                Err(detail) => dropped.push(DroppedChunk {
                    chunk: c.index,
                    records: c.records,
                    reason: format!("undecodable payload: {detail}"),
                }),
            }
        }
    }
    if let Some(e) = framing_error {
        // The unreadable chunk comes right after the ones scanned; it and
        // everything behind it are lost.
        dropped.push(DroppedChunk {
            chunk: scanned,
            records: header.records - accounted,
            reason: e.to_string(),
        });
    }
    Ok(SalvageReport {
        version: 2,
        declared_records: header.records,
        seed: Some(header.seed),
        recovered,
        total_chunks: expected_chunks(header.records),
        recovered_chunks,
        dropped,
    })
}

/// Per-chunk integrity status, from [`inspect_trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkInfo {
    /// Zero-based chunk index.
    pub chunk: usize,
    /// Records the chunk claims to hold.
    pub records: u64,
    /// Byte length of the chunk payload as stored on disk (for v3, the
    /// compressed size).
    pub payload_bytes: u64,
    /// Byte length of the chunk payload after decompression: the
    /// declared packed size for v3 chunks, equal to `payload_bytes` for
    /// the uncompressed v2 format.
    pub uncompressed_bytes: u64,
    /// CRC-32 stored in the file.
    pub crc_stored: u32,
    /// CRC-32 of the payload as read.
    pub crc_computed: u32,
    /// Whether the payload decoded to exactly `records` records.
    pub decodes: bool,
}

impl ChunkInfo {
    /// CRC matches and the payload decodes.
    pub fn intact(&self) -> bool {
        self.crc_stored == self.crc_computed && self.decodes
    }
}

/// Header and integrity summary of a trace file, from [`inspect_trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceInfo {
    /// Format version (1, 2 or 3).
    pub version: u8,
    /// Record count the header declares.
    pub declared_records: u64,
    /// Records that actually decode cleanly.
    pub decoded_records: u64,
    /// Generator seed from the header (v2/v3 only).
    pub seed: Option<u64>,
    /// Format flags from the header (v2/v3 only; 0 today).
    pub flags: u64,
    /// Per-chunk status (empty for v1 files, which are unchunked).
    pub chunks: Vec<ChunkInfo>,
    /// Bytes left in the stream after the last expected record.
    pub trailing_bytes: u64,
    /// The error that stopped decoding early, if any.
    pub error: Option<String>,
}

impl TraceInfo {
    /// True when the whole file verifies: every declared record decodes,
    /// every chunk CRC matches, and nothing trails the data.
    pub fn intact(&self) -> bool {
        self.error.is_none()
            && self.trailing_bytes == 0
            && self.decoded_records == self.declared_records
            && self.chunks.iter().all(ChunkInfo::intact)
    }
}

/// Reads a whole trace file's structure without failing on corruption:
/// the header, the chunk map with per-chunk CRC status, and whatever
/// error stopped decoding. This is the engine behind `dfcm-tools trace
/// inspect`/`verify`.
///
/// # Errors
///
/// Returns an error only for unrecognized magic, an unreadable header,
/// or a genuine I/O failure; corruption past the header is *described*
/// in the returned [`TraceInfo`] instead.
pub fn inspect_trace<R: Read>(mut r: R) -> io::Result<TraceInfo> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    let mut info = match &magic {
        MAGIC_V1 => {
            let report = salvage_v1(&mut r)?;
            TraceInfo {
                version: 1,
                declared_records: report.declared_records,
                decoded_records: report.recovered.len() as u64,
                seed: None,
                flags: 0,
                chunks: Vec::new(),
                trailing_bytes: 0,
                error: report.dropped.first().map(|d| d.reason.clone()),
            }
        }
        MAGIC_V2 => {
            let header = read_v2_header(&mut r)?;
            let (chunks, framing_error) = scan_v2(&mut r, &header)?;
            let decoded_records = chunks
                .iter()
                .filter(|c| c.intact())
                .map(|c| c.records)
                .sum();
            TraceInfo {
                version: 2,
                declared_records: header.records,
                decoded_records,
                seed: Some(header.seed),
                flags: header.flags,
                chunks: chunks
                    .into_iter()
                    .map(|c| ChunkInfo {
                        chunk: c.index,
                        records: c.records,
                        payload_bytes: c.payload_bytes,
                        uncompressed_bytes: c.payload_bytes,
                        crc_stored: c.crc_stored,
                        crc_computed: c.crc_computed,
                        decodes: c.decoded.is_ok(),
                    })
                    .collect(),
                trailing_bytes: 0,
                error: framing_error.map(|e| e.to_string()),
            }
        }
        MAGIC_V3 => inspect_v3(&mut r)?,
        _ => return Err(TraceFormatError::BadMagic { found: magic }.into()),
    };
    // Anything left in the stream is not part of the trace.
    info.trailing_bytes = io::copy(&mut r, &mut io::sink())?;
    Ok(info)
}

impl Trace {
    /// Writes the trace in the legacy v1 format. Pass `&mut writer` to
    /// keep using the writer afterwards. Kept byte-for-byte stable so v1
    /// archives remain reproducible; new files should prefer
    /// [`Trace::write_with`] with [`TraceFormat::V2`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_to<W: Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(MAGIC_V1)?;
        write_varint(&mut w, self.len() as u64)?;
        let mut prev_pc = 0i64;
        for r in self {
            let pc = r.pc as i64;
            write_varint(&mut w, zigzag(pc.wrapping_sub(prev_pc)))?;
            write_varint(&mut w, r.value)?;
            prev_pc = pc;
        }
        Ok(())
    }

    /// Writes the trace in the checksummed v2 format, stamping `seed`
    /// into the header.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_v2_to<W: Write>(&self, mut w: W, seed: u64) -> io::Result<()> {
        w.write_all(MAGIC_V2)?;
        let mut header = Vec::with_capacity(24);
        write_varint(&mut header, self.len() as u64)?;
        write_varint(&mut header, seed)?;
        write_varint(&mut header, 0)?; // flags
        write_varint(&mut w, header.len() as u64)?;
        w.write_all(&header)?;
        let mut payload = Vec::with_capacity(V2_CHUNK_RECORDS * 4);
        for chunk in self.records().chunks(V2_CHUNK_RECORDS) {
            payload.clear();
            let mut prev_pc = 0i64;
            for r in chunk {
                let pc = r.pc as i64;
                write_varint(&mut payload, zigzag(pc.wrapping_sub(prev_pc)))?;
                write_varint(&mut payload, r.value)?;
                prev_pc = pc;
            }
            write_varint(&mut w, chunk.len() as u64)?;
            write_varint(&mut w, payload.len() as u64)?;
            w.write_all(&crc32(&payload).to_le_bytes())?;
            w.write_all(&payload)?;
        }
        Ok(())
    }

    /// Writes the trace in the chosen [`TraceFormat`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_with<W: Write>(&self, w: W, format: TraceFormat) -> io::Result<()> {
        match format {
            TraceFormat::V1 => self.write_to(w),
            TraceFormat::V2 { seed } => self.write_v2_to(w, seed),
            TraceFormat::V3 { seed } => write_v3(self, w, seed),
        }
    }

    /// Reads a trace in either format, auto-detected from the magic;
    /// v2 chunk checksums are verified. Pass `&mut reader` to keep using
    /// the reader afterwards.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` carrying a [`TraceFormatError`] for
    /// malformed, truncated or checksum-failing data, and propagates
    /// I/O errors from the reader.
    pub fn read_from<R: Read>(mut r: R) -> io::Result<Trace> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        match &magic {
            MAGIC_V1 => read_v1_body(&mut r),
            MAGIC_V2 => read_v2_body(&mut r),
            MAGIC_V3 => read_v3_body(&mut r),
            _ => Err(TraceFormatError::BadMagic { found: magic }.into()),
        }
    }

    /// Saves the trace to a file atomically (staged in a sibling
    /// temporary file, then renamed): a crash mid-save can never leave a
    /// truncated trace under `path`. Writes the default format —
    /// checksummed v2; use [`Trace::save_with`] to choose.
    ///
    /// # Errors
    ///
    /// Propagates file-creation and write errors.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        self.save_with(path, TraceFormat::default())
    }

    /// [`Trace::save`] with an explicit on-disk format.
    ///
    /// # Errors
    ///
    /// Propagates file-creation and write errors.
    pub fn save_with<P: AsRef<Path>>(&self, path: P, format: TraceFormat) -> io::Result<()> {
        atomic_write_with(path.as_ref(), |w| self.write_with(w, format))
    }

    /// Loads a trace saved with [`Trace::save`] (either format).
    ///
    /// # Errors
    ///
    /// Propagates file-open and read errors; returns `InvalidData`
    /// carrying a [`TraceFormatError`] for malformed files.
    pub fn load<P: AsRef<Path>>(path: P) -> io::Result<Trace> {
        Trace::read_from(BufReader::new(File::open(path)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Pattern;
    use crate::program::SyntheticProgram;
    use crate::record::TraceSource;

    fn sample_trace() -> Trace {
        SyntheticProgram::builder(9)
            .inst(
                Pattern::Stride {
                    start: 0,
                    stride: 4,
                },
                3,
            )
            .inst(Pattern::Random { bits: 32 }, 1)
            .build()
            .take_trace(5000)
    }

    /// A trace long enough for several v2 chunks without slowing tests:
    /// deterministic, non-trivial pc/value streams.
    fn multi_chunk_trace() -> Trace {
        (0..(3 * V2_CHUNK_RECORDS as u64 + 1234))
            .map(|i| TraceRecord::new(0x40_0000 + 4 * (i % 509), i.wrapping_mul(0x9E37_79B9)))
            .collect()
    }

    fn v2_bytes(trace: &Trace, seed: u64) -> Vec<u8> {
        let mut buffer = Vec::new();
        trace.write_v2_to(&mut buffer, seed).unwrap();
        buffer
    }

    #[test]
    fn roundtrip_through_memory() {
        let trace = sample_trace();
        let mut buffer = Vec::new();
        trace.write_to(&mut buffer).unwrap();
        let restored = Trace::read_from(buffer.as_slice()).unwrap();
        assert_eq!(trace, restored);
    }

    #[test]
    fn roundtrip_through_file() {
        let trace = sample_trace();
        let path = std::env::temp_dir().join("dfcm_io_test.trc");
        trace.save(&path).unwrap();
        let restored = Trace::load(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(trace, restored);
    }

    #[test]
    fn format_is_compact() {
        let trace = sample_trace();
        let mut buffer = Vec::new();
        trace.write_to(&mut buffer).unwrap();
        // PC deltas are tiny; values vary. Expect well under the 16
        // bytes/record of a raw dump.
        assert!(
            buffer.len() < trace.len() * 8,
            "{} bytes for {} records",
            buffer.len(),
            trace.len()
        );
        // The v2 framing overhead is a few bytes per 64Ki records.
        let v2 = v2_bytes(&trace, 0);
        assert!(
            v2.len() < buffer.len() + 64,
            "v2 {} vs v1 {}",
            v2.len(),
            buffer.len()
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let err = Trace::read_from(&b"NOTATRACE"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(matches!(
            TraceFormatError::classify(&err),
            Some(TraceFormatError::BadMagic { .. })
        ));
    }

    #[test]
    fn truncated_data_rejected() {
        let trace = sample_trace();
        let mut buffer = Vec::new();
        trace.write_to(&mut buffer).unwrap();
        buffer.truncate(buffer.len() / 2);
        assert!(Trace::read_from(buffer.as_slice()).is_err());
    }

    #[test]
    fn empty_trace_roundtrips() {
        let mut buffer = Vec::new();
        Trace::new().write_to(&mut buffer).unwrap();
        assert_eq!(Trace::read_from(buffer.as_slice()).unwrap(), Trace::new());
        // v2 likewise: a header and zero chunks.
        let buffer = v2_bytes(&Trace::new(), 7);
        assert_eq!(Trace::read_from(buffer.as_slice()).unwrap(), Trace::new());
    }

    #[test]
    fn extreme_values_roundtrip() {
        let mut trace = Trace::new();
        trace.push(TraceRecord::new(u64::MAX, u64::MAX));
        trace.push(TraceRecord::new(0, 0));
        trace.push(TraceRecord::new(u64::MAX / 2, 1));
        let mut buffer = Vec::new();
        trace.write_to(&mut buffer).unwrap();
        assert_eq!(Trace::read_from(buffer.as_slice()).unwrap(), trace);
        let buffer = v2_bytes(&trace, u64::MAX);
        assert_eq!(Trace::read_from(buffer.as_slice()).unwrap(), trace);
    }

    #[test]
    fn malicious_header_count_rejected_without_large_allocation() {
        // A tiny file whose header claims a huge record count must fail
        // on the missing records, not abort allocating the claimed size.
        let mut buffer = Vec::from(*MAGIC_V1);
        write_varint(&mut buffer, (1u64 << 40) - 1).unwrap();
        let err = Trace::read_from(buffer.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);

        // Beyond the plausibility bound the header itself is rejected.
        let mut buffer = Vec::from(*MAGIC_V1);
        write_varint(&mut buffer, (1u64 << 40) + 1).unwrap();
        let err = Trace::read_from(buffer.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn capped_preallocation_still_reads_past_the_cap() {
        let trace: Trace = (0..3000u64).map(|i| TraceRecord::new(4 * i, i)).collect();
        let mut buffer = Vec::new();
        trace.write_to(&mut buffer).unwrap();
        let restored = Trace::read_from(buffer.as_slice()).unwrap();
        assert_eq!(trace, restored);
    }

    #[test]
    fn non_canonical_varint_rejected() {
        // Ten continuation-flagged bytes then payload bits that do not
        // fit in the single bit the 10th byte has room for: previously
        // this silently decoded with the overflow bits dropped.
        let mut buffer = Vec::from(*MAGIC_V1);
        buffer.extend_from_slice(&[0x80; 9]);
        buffer.push(0x02); // bit 1 set -> shifted past bit 63
        let err = Trace::read_from(buffer.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // An 11th byte is rejected as over-long regardless of payload.
        let mut buffer = Vec::from(*MAGIC_V1);
        buffer.extend_from_slice(&[0x80; 10]);
        buffer.push(0x00);
        let err = Trace::read_from(buffer.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn canonical_ten_byte_varint_still_decodes() {
        // u64::MAX needs all ten bytes; its canonical encoding (final
        // byte 0x01) must keep round-tripping.
        let mut trace = Trace::new();
        trace.push(TraceRecord::new(0, u64::MAX));
        let mut buffer = Vec::new();
        trace.write_to(&mut buffer).unwrap();
        assert_eq!(*buffer.last().unwrap(), 0x01);
        assert_eq!(Trace::read_from(buffer.as_slice()).unwrap(), trace);
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    // ---- v2 format ----

    #[test]
    fn v2_roundtrip_single_and_multi_chunk() {
        for trace in [sample_trace(), multi_chunk_trace()] {
            let buffer = v2_bytes(&trace, 42);
            assert_eq!(Trace::read_from(buffer.as_slice()).unwrap(), trace);
        }
    }

    #[test]
    fn v2_is_the_default_save_format_and_v1_knob_works() {
        let trace = sample_trace();
        let dir = std::env::temp_dir().join("dfcm_io_v2_default_test");
        let _ = std::fs::remove_dir_all(&dir);
        let v2_path = dir.join("v2.trc");
        let v1_path = dir.join("v1.trc");
        trace.save(&v2_path).unwrap();
        trace.save_with(&v1_path, TraceFormat::V1).unwrap();
        assert_eq!(&std::fs::read(&v2_path).unwrap()[..8], MAGIC_V2);
        assert_eq!(&std::fs::read(&v1_path).unwrap()[..8], MAGIC_V1);
        assert_eq!(Trace::load(&v2_path).unwrap(), trace);
        assert_eq!(Trace::load(&v1_path).unwrap(), trace);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn v1_files_written_by_current_writer_load_identically() {
        // Byte-for-byte compatibility: the v1 writer's output, decoded
        // through the auto-detecting reader, reproduces the exact trace.
        let trace = multi_chunk_trace();
        let mut v1 = Vec::new();
        trace.write_with(&mut v1, TraceFormat::V1).unwrap();
        assert_eq!(&v1[..8], MAGIC_V1);
        assert_eq!(Trace::read_from(v1.as_slice()).unwrap(), trace);
    }

    #[test]
    fn v2_reader_is_streaming_friendly() {
        // Two traces written back to back decode independently.
        let a = sample_trace();
        let b: Trace = (0..10u64).map(|i| TraceRecord::new(4 * i, i)).collect();
        let mut buffer = Vec::new();
        a.write_v2_to(&mut buffer, 1).unwrap();
        b.write_v2_to(&mut buffer, 2).unwrap();
        let mut slice = buffer.as_slice();
        assert_eq!(Trace::read_from(&mut slice).unwrap(), a);
        assert_eq!(Trace::read_from(&mut slice).unwrap(), b);
        assert!(slice.is_empty());
    }

    #[test]
    fn v2_detects_payload_corruption() {
        let trace = multi_chunk_trace();
        let clean = v2_bytes(&trace, 0);
        // Flip one bit deep inside the file (a chunk payload byte).
        let mut corrupt = clean.clone();
        let position = corrupt.len() / 2;
        corrupt[position] ^= 0x10;
        let err = Trace::read_from(corrupt.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(
            matches!(
                TraceFormatError::classify(&err),
                Some(
                    TraceFormatError::ChunkCrcMismatch { .. }
                        | TraceFormatError::TruncatedTail { .. }
                )
            ),
            "{err}"
        );
    }

    #[test]
    fn v2_detects_truncation() {
        let trace = multi_chunk_trace();
        let clean = v2_bytes(&trace, 0);
        let err = Trace::read_from(&clean[..clean.len() - 100]).unwrap_err();
        assert!(
            matches!(
                TraceFormatError::classify(&err),
                Some(TraceFormatError::TruncatedTail { .. })
            ),
            "{err}"
        );
    }

    #[test]
    fn v2_rejects_unknown_flags() {
        let mut buffer = Vec::from(*MAGIC_V2);
        let mut header = Vec::new();
        write_varint(&mut header, 0).unwrap(); // records
        write_varint(&mut header, 0).unwrap(); // seed
        write_varint(&mut header, 1).unwrap(); // unknown flag
        write_varint(&mut buffer, header.len() as u64).unwrap();
        buffer.extend_from_slice(&header);
        let err = Trace::read_from(buffer.as_slice()).unwrap_err();
        assert!(
            matches!(
                TraceFormatError::classify(&err),
                Some(TraceFormatError::BadHeader { .. })
            ),
            "{err}"
        );
    }

    #[test]
    fn v2_header_tolerates_compatible_growth() {
        // Extra header bytes after the known fields are ignored.
        let trace: Trace = (0..5u64).map(|i| TraceRecord::new(4 * i, i)).collect();
        let clean = v2_bytes(&trace, 9);
        let mut grown = Vec::from(*MAGIC_V2);
        let mut header = Vec::new();
        write_varint(&mut header, trace.len() as u64).unwrap();
        write_varint(&mut header, 9).unwrap();
        write_varint(&mut header, 0).unwrap();
        header.extend_from_slice(b"future-field");
        write_varint(&mut grown, header.len() as u64).unwrap();
        grown.extend_from_slice(&header);
        // Reuse the chunk bytes from the clean encoding.
        let clean_header_len = 8 + 1 + {
            let mut h = Vec::new();
            write_varint(&mut h, trace.len() as u64).unwrap();
            write_varint(&mut h, 9u64).unwrap();
            write_varint(&mut h, 0u64).unwrap();
            h.len()
        };
        grown.extend_from_slice(&clean[clean_header_len..]);
        assert_eq!(Trace::read_from(grown.as_slice()).unwrap(), trace);
    }

    #[test]
    fn salvage_recovers_intact_chunks_bit_identically() {
        let trace = multi_chunk_trace();
        let clean = v2_bytes(&trace, 5);
        // Corrupt one byte in (what is certainly) chunk 1's payload: the
        // file has 4 chunks; chunk payloads dominate the byte count.
        let mut corrupt = clean.clone();
        let position = clean.len() / 3;
        corrupt[position] ^= 0xFF;
        let report = salvage_trace(corrupt.as_slice()).unwrap();
        assert_eq!(report.version, 2);
        assert_eq!(report.seed, Some(5));
        assert_eq!(report.total_chunks, 4);
        assert_eq!(report.recovered_chunks, 3);
        assert_eq!(report.dropped.len(), 1);
        let dropped = &report.dropped[0];
        assert_eq!(dropped.records, V2_CHUNK_RECORDS as u64);
        // Every surviving record is bit-identical to the original.
        let chunk = dropped.chunk;
        let full = trace.records();
        let mut expected: Vec<TraceRecord> = Vec::new();
        expected.extend_from_slice(&full[..chunk * V2_CHUNK_RECORDS]);
        expected.extend_from_slice(&full[(chunk + 1) * V2_CHUNK_RECORDS..]);
        assert_eq!(report.recovered.records(), expected.as_slice());
        assert!(!report.intact());
    }

    #[test]
    fn salvage_of_intact_file_recovers_everything() {
        let trace = multi_chunk_trace();
        let report = salvage_trace(v2_bytes(&trace, 5).as_slice()).unwrap();
        assert!(report.intact());
        assert_eq!(report.recovered, trace);
        assert_eq!(report.recovered_chunks, report.total_chunks);
        assert!(report.dropped.is_empty());
    }

    #[test]
    fn salvage_reports_unreachable_tail_after_framing_damage() {
        let trace = multi_chunk_trace();
        let clean = v2_bytes(&trace, 0);
        // Truncate mid-file: later chunks are unreachable.
        let report = salvage_trace(&clean[..clean.len() / 2]).unwrap();
        assert!(report.recovered_chunks < report.total_chunks);
        assert!(!report.dropped.is_empty());
        // Records in scanned-but-corrupt chunks are counted in dropped;
        // everything must be accounted for.
        let lost: u64 = report.dropped.iter().map(|d| d.records).sum();
        assert_eq!(
            report.recovered.len() as u64 + lost,
            report.declared_records
        );
    }

    #[test]
    fn salvage_v1_recovers_clean_prefix() {
        let trace = sample_trace();
        let mut buffer = Vec::new();
        trace.write_to(&mut buffer).unwrap();
        buffer.truncate(buffer.len() / 2);
        let report = salvage_trace(buffer.as_slice()).unwrap();
        assert_eq!(report.version, 1);
        assert!(!report.recovered.is_empty());
        assert!(report.recovered.len() < trace.len());
        assert_eq!(
            report.recovered.records(),
            &trace.records()[..report.recovered.len()],
            "prefix must be bit-identical"
        );
        assert_eq!(report.dropped.len(), 1);
    }

    #[test]
    fn inspect_reports_chunk_map_and_crc_status() {
        let trace = multi_chunk_trace();
        let clean = v2_bytes(&trace, 77);
        let info = inspect_trace(clean.as_slice()).unwrap();
        assert!(info.intact());
        assert_eq!(info.version, 2);
        assert_eq!(info.seed, Some(77));
        assert_eq!(info.declared_records, trace.len() as u64);
        assert_eq!(info.decoded_records, trace.len() as u64);
        assert_eq!(info.chunks.len(), 4);
        assert_eq!(info.trailing_bytes, 0);
        for c in &info.chunks {
            assert!(c.intact());
        }

        let mut corrupt = clean.clone();
        let position = clean.len() / 3;
        corrupt[position] ^= 0x01;
        corrupt.extend_from_slice(b"junk");
        let info = inspect_trace(corrupt.as_slice()).unwrap();
        assert!(!info.intact());
        assert_eq!(info.chunks.iter().filter(|c| !c.intact()).count(), 1);
        assert_eq!(info.trailing_bytes, 4);
    }

    #[test]
    fn inspect_handles_v1_files() {
        let trace = sample_trace();
        let mut buffer = Vec::new();
        trace.write_to(&mut buffer).unwrap();
        let info = inspect_trace(buffer.as_slice()).unwrap();
        assert!(info.intact());
        assert_eq!(info.version, 1);
        assert_eq!(info.decoded_records, trace.len() as u64);
        assert!(info.chunks.is_empty());
    }

    // ---- atomic writes & staging hygiene ----

    #[test]
    fn atomic_save_leaves_no_staging_files() {
        let dir = std::env::temp_dir().join("dfcm_io_atomic_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("deep/nested/trace.trc");
        let trace = sample_trace();
        trace.save(&path).unwrap();
        assert_eq!(Trace::load(&path).unwrap(), trace);
        let siblings: Vec<_> = std::fs::read_dir(path.parent().unwrap())
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(siblings, vec![std::ffi::OsString::from("trace.trc")]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_atomic_write_keeps_previous_contents() {
        let dir = std::env::temp_dir().join("dfcm_io_atomic_fail_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.bin");
        atomic_write(&path, b"complete v1").unwrap();
        let err = atomic_write_with(&path, |w| {
            w.write_all(b"partial v2")?;
            Err(io::Error::other("crash mid-write"))
        })
        .unwrap_err();
        assert_eq!(err.to_string(), "crash mid-write");
        assert_eq!(std::fs::read(&path).unwrap(), b"complete v1");
        let siblings: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(siblings, vec![std::ffi::OsString::from("out.bin")]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_survives_unsyncable_parent() {
        // The post-rename parent-directory sync is best-effort: a path
        // whose parent cannot be opened for fsync (here: the process cwd
        // addressed with a bare file name, which has no parent component)
        // must still write successfully through the sync-then-rename
        // path, and relative single-component paths must not panic on the
        // empty parent.
        let dir = std::env::temp_dir().join("dfcm_io_dirsync_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("synced.bin");
        atomic_write(&path, b"durable contents").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"durable contents");
        // Overwrite through the same path: the rename replaces the old
        // complete file with the new complete file.
        atomic_write(&path, b"second version").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second version");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn stale_staging_files_swept_before_write() {
        let dir = std::env::temp_dir().join("dfcm_io_stale_staging_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.trc");
        // An orphan from a "crashed" writer: pid u32::MAX can never be a
        // live process (beyond pid_max), so the sweep must remove it.
        let orphan = dir.join("out.trc.tmp.4294967295.3");
        std::fs::write(&orphan, b"orphaned staging data").unwrap();
        // A staging file of the *running* process must survive: another
        // thread could be mid-write.
        let ours = dir.join(format!("out.trc.tmp.{}.999", std::process::id()));
        std::fs::write(&ours, b"active staging data").unwrap();
        // A staging file for a *different* target is not this write's
        // business.
        let other = dir.join("other.trc.tmp.4294967295.1");
        std::fs::write(&other, b"someone else's orphan").unwrap();

        atomic_write(&path, b"fresh contents").unwrap();

        assert_eq!(std::fs::read(&path).unwrap(), b"fresh contents");
        assert!(!orphan.exists(), "dead-process orphan must be swept");
        assert!(ours.exists(), "our own staging files must survive");
        assert!(other.exists(), "other targets' staging files untouched");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chunk_reader_yields_every_chunk() {
        let trace = multi_chunk_trace();
        let buffer = v2_bytes(&trace, 0xC0FFEE);
        let reader = v2_chunks(buffer.as_slice()).unwrap();
        assert_eq!(reader.seed(), 0xC0FFEE);
        assert_eq!(reader.declared_records(), trace.len() as u64);
        let mut restored = Trace::with_capacity(trace.len());
        let mut chunk_sizes = Vec::new();
        for (i, chunk) in reader.enumerate() {
            let chunk = chunk.unwrap();
            assert_eq!(chunk.index, i);
            let records = chunk.decode().unwrap();
            assert_eq!(records.len() as u64, chunk.records);
            chunk_sizes.push(records.len());
            restored.extend(records);
        }
        assert_eq!(restored, trace);
        // Chunk boundaries match the writer's fixed chunking, i.e. the
        // in-memory `Trace::chunks(V2_CHUNK_RECORDS)` partition.
        let expected: Vec<usize> = trace.chunks(V2_CHUNK_RECORDS).map(<[_]>::len).collect();
        assert_eq!(chunk_sizes, expected);
    }

    #[test]
    fn chunk_reader_decodes_chunks_out_of_order() {
        // The pc delta chain restarts per chunk, so decoding the chunks in
        // reverse order must reproduce the same records as in-order decode.
        let trace = multi_chunk_trace();
        let buffer = v2_bytes(&trace, 1);
        let chunks: Vec<RawChunk> = v2_chunks(buffer.as_slice())
            .unwrap()
            .map(Result::unwrap)
            .collect();
        assert!(chunks.len() > 1, "need several chunks to be meaningful");
        let mut decoded: Vec<(usize, Vec<TraceRecord>)> = chunks
            .iter()
            .rev()
            .map(|c| (c.index, c.decode().unwrap()))
            .collect();
        decoded.sort_by_key(|(index, _)| *index);
        let restored: Trace = decoded.into_iter().flat_map(|(_, r)| r).collect();
        assert_eq!(restored, trace);
    }

    #[test]
    fn chunk_reader_flags_corrupt_payload_on_decode() {
        let trace = multi_chunk_trace();
        let mut buffer = v2_bytes(&trace, 0);
        // Flip one payload bit deep in the file (well past header framing).
        let target = buffer.len() / 2;
        buffer[target] ^= 0x10;
        let mut saw_crc_error = false;
        for chunk in v2_chunks(buffer.as_slice()).unwrap() {
            // Framing (record/byte counts) stays plausible for a payload
            // bit flip; the error must surface at decode as a CRC mismatch.
            let chunk = chunk.unwrap();
            if let Err(e) = chunk.decode() {
                assert!(matches!(
                    TraceFormatError::classify(&e),
                    Some(TraceFormatError::ChunkCrcMismatch { .. })
                ));
                saw_crc_error = true;
            }
        }
        assert!(saw_crc_error, "the flipped bit must be detected");
    }

    #[test]
    fn chunk_reader_stops_on_truncated_tail() {
        let trace = multi_chunk_trace();
        let mut buffer = v2_bytes(&trace, 0);
        buffer.truncate(buffer.len() - 100);
        let mut reader = v2_chunks(buffer.as_slice()).unwrap();
        let mut good = 0u64;
        let mut failed = false;
        for chunk in &mut reader {
            match chunk {
                Ok(c) => good += c.records,
                Err(e) => {
                    assert_eq!(e.kind(), io::ErrorKind::InvalidData);
                    failed = true;
                }
            }
        }
        assert!(failed, "truncation must surface as an error");
        assert!(good < trace.len() as u64);
        // The iterator is fused after an error.
        assert!(reader.next().is_none());
    }

    #[test]
    fn chunk_reader_rejects_v1_and_garbage() {
        let trace = sample_trace();
        let mut v1 = Vec::new();
        trace.write_to(&mut v1).unwrap();
        assert!(v2_chunks(v1.as_slice()).is_err(), "v1 has no chunking");
        assert!(v2_chunks(&b"NOTATRACE..."[..]).is_err());
    }

    #[test]
    fn chunk_reader_empty_trace_yields_no_chunks() {
        let buffer = v2_bytes(&Trace::new(), 3);
        let mut reader = v2_chunks(buffer.as_slice()).unwrap();
        assert_eq!(reader.declared_records(), 0);
        assert!(reader.next().is_none());
    }

    #[test]
    fn faulty_writer_faults_after_budget() {
        let trace = sample_trace();
        let mut full = Vec::new();
        trace.write_to(&mut full).unwrap();
        let mut w = FaultyWriter::new(Vec::new(), 16);
        let err = trace.write_to(&mut w).unwrap_err();
        assert!(err.to_string().contains("injected write fault"));
        assert_eq!(w.into_inner(), full[..16].to_vec());
    }

    #[test]
    fn faulty_reader_faults_after_budget() {
        let trace = sample_trace();
        let mut buffer = Vec::new();
        trace.write_to(&mut buffer).unwrap();
        let half = buffer.len() as u64 / 2;
        let err = Trace::read_from(FaultyReader::new(buffer.as_slice(), half)).unwrap_err();
        assert!(err.to_string().contains("injected read fault"));
        // A budget covering the whole stream reads cleanly.
        let restored =
            Trace::read_from(FaultyReader::new(buffer.as_slice(), buffer.len() as u64)).unwrap();
        assert_eq!(restored, trace);
    }
}
