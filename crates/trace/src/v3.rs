//! The compressed `DFCMTRC3` trace format: per-chunk pc dictionaries
//! and transposed per-pc value streams behind the [`crate::compress`]
//! LZ+Huffman stage.
//!
//! v3 exists for paper-scale traces (the paper replays 123–157M records
//! per benchmark): it reaches ~10 bits per record on the synthetic
//! suite (~13× smaller than raw 16-byte records, ~3.5× smaller than
//! v2) while keeping every robustness property of v2 — chunked
//! framing, per-chunk CRC-32, typed errors, salvageability — and adds
//! the guard compression makes necessary: a decoder that never
//! allocates more than one chunk's worst-case packed size, no matter
//! what the file claims ([`TraceFormatError::DecompressionBomb`]).
//!
//! # File layout
//!
//! ```text
//! magic    8 bytes  "DFCMTRC3"
//! hlen     varint   byte length of the header payload
//! header            varint record count, varint generator seed,
//!                   varint format flags (must be 0) — same layout and
//!                   growth rules as v2
//! chunks            until `count` records are accounted for:
//!   records varint  records in this chunk (1 ..= 65536)
//!   packed  varint  uncompressed (packed) payload size in bytes;
//!                   bounded by `max_packed_len(records)`
//!   bytes   varint  compressed payload size in bytes
//!   crc32   4 bytes CRC-32 (IEEE, LE) of the *compressed* payload
//!   payload         a `compress` container holding the packed records
//! ```
//!
//! All model state (the pc dictionary and the per-pc value chains)
//! restarts at zero in every chunk and the compressor holds no
//! cross-chunk state, so every chunk decodes independently — the
//! property salvage and parallel streaming rely on.
//!
//! # Packed record encoding
//!
//! A packed chunk is a value-stream mode byte, then three sections, all
//! canonical LEB128 varints:
//!
//! 1. **Pc dictionary** — the chunk's distinct pcs, sorted and
//!    gap-coded, followed by a permutation assigning each entry its
//!    symbol rank, hottest jump targets first.
//! 2. **Pc stream** (behind a byte-length prefix) — one symbol per
//!    record: 0 means "previous pc + 4" (the in-block successor of a
//!    code-like trace), any other symbol is 1 + the rank of the jump
//!    target. Encoding jumps as dictionary ranks instead of pc deltas
//!    matters twice over: a delta of two independent jumps squares the
//!    symbol space, and frequency-ranking gives the hot targets
//!    one-byte symbols.
//! 3. **Value stream** — the values *transposed into per-pc buckets*
//!    (in order of each pc's first appearance), each value a zigzag
//!    delta against the previous value produced by the same static
//!    instruction — the paper's own value-locality insight turned into
//!    a compressor. Transposing restores each instruction's structure
//!    as byte-level repetition: constants become zero runs, strides
//!    become runs of their constant stride, periodic values short
//!    repeating cycles — exactly the shape the LZ stage eats. The
//!    encoder falls back to raw varints per chunk when deltas come out
//!    longer. The bucket boundaries are fully determined by the decoded
//!    pc stream, so the transpose costs no side metadata.
//!
//! # Bomb guards
//!
//! A legitimate chunk can expand at most ~600× through the pipeline
//! (LZ matches ≈ 75×, Huffman ≤ 8×). The reader enforces, before any
//! payload-sized allocation:
//!
//! * declared packed size ≤ [`max_packed_len`] (≈ 27 bytes/record),
//! * compressed size ≤ packed bound + container slack,
//! * packed/compressed ratio ≤ [`MAX_EXPANSION_RATIO`] once the chunk
//!   is past the small-chunk exemption.
//!
//! Violations surface as [`TraceFormatError::DecompressionBomb`]; the
//! payload length is still trusted enough to *skip*, so salvage drops
//! only the offending chunk.

use std::collections::HashMap;
use std::fs::File;
use std::io::{self, BufReader, Read, Write};
use std::path::Path;

use crate::compress::{compress, decompress, max_token_len};
use crate::crc::crc32;
use crate::io::{
    corruption_at, is_corruption, read_v2_header, read_varint, truncated, unzigzag, write_varint,
    zigzag, DroppedChunk, SalvageReport, TraceFormatError, TraceInfo, V2Header,
};
use crate::io::{ChunkInfo, MAX_PREALLOC};
use crate::record::{Trace, TraceRecord};

pub(crate) const MAGIC_V3: &[u8; 8] = b"DFCMTRC3";

/// Records per v3 chunk (the last chunk of a file holds the remainder).
pub const V3_CHUNK_RECORDS: usize = 1 << 16;

/// A chunk whose declared uncompressed size exceeds this many times its
/// compressed size is rejected as a decompression bomb. A legitimate
/// writer cannot exceed ~600× (see the module docs), so 1024 never
/// rejects real data while still capping a hostile chunk's
/// allocation-to-input ratio.
pub const MAX_EXPANSION_RATIO: u64 = 1024;

/// Chunks this small are exempt from the ratio guard: tiny inputs have
/// noisy ratios and a bounded absolute cost anyway.
const RATIO_EXEMPT_BYTES: u64 = 4096;

/// Worst-case packed size for `records` records: every record with a
/// distinct pc costs at most one 10-byte dictionary varint, a 3-byte
/// pc-stream symbol, and a 10-byte value varint; the constant covers
/// the mode byte and the length prefixes. This is the hard ceiling on
/// what a v3 chunk may declare as its uncompressed size — and therefore
/// on what the decoder will ever allocate for one chunk.
pub fn max_packed_len(records: u64) -> u64 {
    records * 27 + 16
}

/// Worst-case compressed size: the stored fallback plus container slack.
fn max_compressed_len(records: u64) -> u64 {
    max_packed_len(records) + 64
}

// ---------------------------------------------------------------------
// Record packing (stage 1)
// ---------------------------------------------------------------------

/// Value-stream mode: zigzag deltas against the previous value of the
/// same bucket — i.e. the previous value produced by the same static
/// instruction, the paper's value-locality insight as a compressor.
/// Constants pack to zero runs, strides to runs of their constant
/// stride, periodic values to short repeating cycles.
const MODE_BUCKET_DELTA: u8 = 0;
/// Value-stream mode: raw value varints per bucket, for value streams
/// no delta model improves (e.g. pure random data).
const MODE_RAW: u8 = 1;

/// Step between consecutive static instructions; a pc-stream symbol of
/// 0 means "previous pc plus this step", which covers every in-block
/// instruction of a code-like trace with a single hot symbol.
const PC_STEP: u64 = 4;

/// Packs one chunk of records into the dictionary + transposed-bucket
/// layout (see the module docs): a sorted pc dictionary (gap-coded),
/// then one pc-stream symbol per record (0 = previous pc + 4, else
/// 1 + dictionary index), then the values *grouped by pc* in order of
/// each pc's first appearance. Encoding jumps as dictionary indices
/// instead of pc deltas keeps their entropy at the size of the pc set
/// (a delta of two independent jumps squares it), and transposing the
/// values restores each instruction's own structure as byte-level
/// repetition the LZ stage can see. The encoder builds both candidate
/// value streams and keeps the shortest. All state restarts per chunk,
/// keeping chunks independently decodable.
fn pack_records(records: &[TraceRecord]) -> Vec<u8> {
    // Sorted pc dictionary and how often each entry is jumped to (i.e.
    // reached other than as the previous pc's successor).
    let mut dict: Vec<u64> = records.iter().map(|r| r.pc).collect();
    dict.sort_unstable();
    dict.dedup();
    let index: HashMap<u64, usize> = dict.iter().enumerate().map(|(i, &pc)| (pc, i)).collect();
    let mut jumps = vec![0u64; dict.len()];
    let mut prev_pc = 0u64;
    for r in records {
        if r.pc != prev_pc.wrapping_add(PC_STEP) {
            jumps[index[&r.pc]] += 1;
        }
        prev_pc = r.pc;
    }
    // Rank dictionary entries by jump frequency so the hottest jump
    // targets get the shortest pc-stream symbols.
    let mut by_freq: Vec<usize> = (0..dict.len()).collect();
    by_freq.sort_by_key(|&i| (u64::MAX - jumps[i], i));
    let mut rank = vec![0u64; dict.len()];
    for (r, &i) in by_freq.iter().enumerate() {
        rank[i] = r as u64;
    }

    // The pc stream, plus per-pc value buckets in first-appearance order.
    let mut pcs: Vec<u8> = Vec::with_capacity(records.len());
    let mut bucket_of: HashMap<u64, usize> = HashMap::new();
    let mut buckets: Vec<Vec<u64>> = Vec::new();
    let mut prev_pc = 0u64;
    for r in records {
        let symbol = if r.pc == prev_pc.wrapping_add(PC_STEP) {
            0
        } else {
            rank[index[&r.pc]] + 1
        };
        write_varint(&mut pcs, symbol).expect("vec write");
        prev_pc = r.pc;
        let b = *bucket_of.entry(r.pc).or_insert_with(|| {
            buckets.push(Vec::new());
            buckets.len() - 1
        });
        buckets[b].push(r.value);
    }

    // Candidate value streams over the transposed buckets.
    let mut delta: Vec<u8> = Vec::with_capacity(records.len() * 2);
    let mut raw: Vec<u8> = Vec::with_capacity(records.len() * 2);
    for bucket in &buckets {
        let mut prev = 0i64;
        for &v in bucket {
            write_varint(&mut delta, zigzag((v as i64).wrapping_sub(prev))).expect("vec write");
            write_varint(&mut raw, v).expect("vec write");
            prev = v as i64;
        }
    }
    let (mode, values) = if delta.len() <= raw.len() {
        (MODE_BUCKET_DELTA, &delta)
    } else {
        (MODE_RAW, &raw)
    };

    let mut out = Vec::with_capacity(pcs.len() + values.len() + dict.len() * 3 + 16);
    out.push(mode);
    write_varint(&mut out, dict.len() as u64).expect("vec write");
    let mut prev = 0u64;
    for (i, &pc) in dict.iter().enumerate() {
        // Gap-coded sorted dictionary: first entry verbatim, then the
        // strictly positive gaps.
        let gap = if i == 0 { pc } else { pc - prev };
        write_varint(&mut out, gap).expect("vec write");
        prev = pc;
    }
    for &r in &rank {
        // The frequency permutation: each sorted entry's symbol rank.
        write_varint(&mut out, r).expect("vec write");
    }
    write_varint(&mut out, pcs.len() as u64).expect("vec write");
    out.extend_from_slice(&pcs);
    out.extend_from_slice(values);
    out
}

/// Decodes a packed chunk back into exactly `records` records.
fn unpack_records(packed: &[u8], records: u64) -> Result<Vec<TraceRecord>, String> {
    let mut rest = packed;
    let mut mode = [0u8; 1];
    rest.read_exact(&mut mode)
        .map_err(|_| String::from("missing value-stream mode byte"))?;
    let mode = mode[0];
    if mode > MODE_RAW {
        return Err(format!("unknown value-stream mode {mode}"));
    }

    // Pc dictionary: gap-coded, at most one entry per record.
    let dict_len = read_varint(&mut rest).map_err(|e| format!("dictionary length: {e}"))?;
    if dict_len > records {
        return Err(format!(
            "dictionary declares {dict_len} pcs for {records} records"
        ));
    }
    let mut dict: Vec<u64> = Vec::with_capacity(dict_len as usize);
    let mut prev = 0u64;
    for i in 0..dict_len {
        let gap = read_varint(&mut rest).map_err(|e| format!("dictionary entry {i}: {e}"))?;
        let pc = if i == 0 {
            gap
        } else {
            prev.checked_add(gap)
                .ok_or_else(|| format!("dictionary entry {i} overflows"))?
        };
        dict.push(pc);
        prev = pc;
    }
    // The frequency permutation: pc_by_rank[rank of sorted entry i] =
    // dict[i]. Every rank must be in range and hit exactly once.
    let mut pc_by_rank: Vec<Option<u64>> = vec![None; dict_len as usize];
    for (i, &pc) in dict.iter().enumerate() {
        let r = read_varint(&mut rest).map_err(|e| format!("dictionary rank {i}: {e}"))?;
        let slot = pc_by_rank
            .get_mut(r as usize)
            .ok_or_else(|| format!("dictionary rank {r} outside {dict_len} entries"))?;
        if slot.replace(pc).is_some() {
            return Err(format!("dictionary rank {r} assigned twice"));
        }
    }
    let dict: Vec<u64> = pc_by_rank.into_iter().flatten().collect();

    // Pc stream: one symbol per record.
    let pc_len = read_varint(&mut rest).map_err(|e| format!("pc stream length: {e}"))?;
    if pc_len > rest.len() as u64 {
        return Err(format!(
            "pc stream length {pc_len} exceeds the {} payload bytes",
            rest.len()
        ));
    }
    let (mut pcs, mut values) = rest.split_at(pc_len as usize);
    let mut pc_seq: Vec<u64> = Vec::with_capacity(records as usize);
    let mut prev_pc = 0u64;
    for _ in 0..records {
        let symbol = read_varint(&mut pcs).map_err(|e| format!("pc stream: {e}"))?;
        let pc = if symbol == 0 {
            prev_pc.wrapping_add(PC_STEP)
        } else {
            *dict
                .get(symbol as usize - 1)
                .ok_or_else(|| format!("pc symbol {symbol} outside {dict_len}-entry dictionary"))?
        };
        pc_seq.push(pc);
        prev_pc = pc;
    }
    if !pcs.is_empty() {
        return Err(format!(
            "{} unused pc-stream bytes after the last record",
            pcs.len()
        ));
    }

    // Bucket sizes in first-appearance order, mirroring the encoder.
    let mut bucket_of: HashMap<u64, usize> = HashMap::new();
    let mut counts: Vec<usize> = Vec::new();
    for &pc in &pc_seq {
        let b = *bucket_of.entry(pc).or_insert_with(|| {
            counts.push(0);
            counts.len() - 1
        });
        counts[b] += 1;
    }

    // Value stream: decode each bucket, then deal values back out in
    // pc-sequence order.
    let mut buckets: Vec<Vec<u64>> = Vec::with_capacity(counts.len());
    for (b, &count) in counts.iter().enumerate() {
        let mut bucket = Vec::with_capacity(count);
        let mut prev = 0i64;
        for _ in 0..count {
            let field = read_varint(&mut values).map_err(|e| format!("value bucket {b}: {e}"))?;
            let value = match mode {
                MODE_BUCKET_DELTA => prev.wrapping_add(unzigzag(field)),
                _ => field as i64,
            };
            bucket.push(value as u64);
            prev = value;
        }
        buckets.push(bucket);
    }
    if !values.is_empty() {
        return Err(format!(
            "{} unused value-stream bytes after the last record",
            values.len()
        ));
    }
    let mut cursor = vec![0usize; buckets.len()];
    let mut out = Vec::with_capacity(records as usize);
    for &pc in &pc_seq {
        let b = bucket_of[&pc];
        let value = buckets[b][cursor[b]];
        cursor[b] += 1;
        out.push(TraceRecord::new(pc, value));
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Chunk wire format
// ---------------------------------------------------------------------

/// One undecoded v3 chunk: framing fields plus the raw compressed
/// payload. Produced by [`V3ChunkReader`]; the v3 counterpart of
/// [`crate::RawChunk`], with the same independence property — every
/// chunk decodes with no state from its neighbours.
#[derive(Debug, Clone)]
pub struct V3RawChunk {
    /// Zero-based position of this chunk in the file.
    pub index: usize,
    /// Records the chunk holds.
    pub records: u64,
    /// Declared uncompressed (bit-packed) payload size in bytes.
    pub packed_bytes: u64,
    /// CRC-32 (IEEE) stored in the file for the compressed payload.
    pub crc_stored: u32,
    /// The compressed chunk payload.
    pub payload: Vec<u8>,
}

impl V3RawChunk {
    /// Decompresses and unpacks the payload, verifying the CRC first.
    ///
    /// Allocation is bounded by the declared packed size, which is
    /// itself re-checked against [`max_packed_len`] so a hand-crafted
    /// chunk cannot demand more than one chunk's worst case.
    ///
    /// # Errors
    ///
    /// `InvalidData` carrying [`TraceFormatError::ChunkCrcMismatch`],
    /// [`TraceFormatError::DecompressionBomb`], or
    /// [`TraceFormatError::TruncatedTail`] for payloads that fail to
    /// decompress or unpack.
    pub fn decode(&self) -> io::Result<Vec<TraceRecord>> {
        if let Some(e) = bomb_guard(
            self.index,
            self.records,
            self.packed_bytes,
            self.payload.len() as u64,
        ) {
            return Err(e.into());
        }
        let computed = crc32(&self.payload);
        if computed != self.crc_stored {
            return Err(TraceFormatError::ChunkCrcMismatch {
                chunk: self.index,
                stored: self.crc_stored,
                computed,
            }
            .into());
        }
        let packed = decompress(&self.payload, self.packed_bytes as usize)
            .map_err(|e| truncated(self.index, format!("undecodable chunk: {e}")))?;
        unpack_records(&packed, self.records)
            .map_err(|detail| truncated(self.index, format!("undecodable chunk: {detail}")))
    }

    /// Peak bytes decoding this chunk may allocate: the packed buffer,
    /// the decoder's token scratch, and the decoded records.
    pub fn decode_footprint(&self) -> u64 {
        self.packed_bytes
            + max_token_len(self.packed_bytes as usize) as u64
            + self.records * std::mem::size_of::<TraceRecord>() as u64
    }
}

/// The bomb guard applied before any payload-sized work: `None` when
/// the declared sizes are consistent with a legitimate writer.
fn bomb_guard(
    chunk: usize,
    records: u64,
    packed_bytes: u64,
    payload_bytes: u64,
) -> Option<TraceFormatError> {
    let over_cap = packed_bytes > max_packed_len(records);
    let over_ratio = packed_bytes > RATIO_EXEMPT_BYTES
        && packed_bytes / payload_bytes.max(1) > MAX_EXPANSION_RATIO;
    (over_cap || over_ratio).then_some(TraceFormatError::DecompressionBomb {
        chunk,
        declared: packed_bytes,
        compressed: payload_bytes,
    })
}

/// Streams the chunks of a v3 (`DFCMTRC3`) trace without decoding them:
/// the v3 counterpart of [`crate::V2ChunkReader`]. Holds at most one
/// compressed chunk at a time; decoding (via [`V3RawChunk::decode`])
/// adds at most one decoded chunk, so a full-file scan runs in a
/// single-chunk working set regardless of file size.
#[derive(Debug)]
pub struct V3ChunkReader<R> {
    reader: R,
    header: V2Header,
    remaining: u64,
    index: usize,
    /// Set once a framing error is hit so iteration stops permanently.
    poisoned: bool,
}

/// Opens a v3 chunk stream over `reader`, which must be positioned at
/// the start of a `DFCMTRC3` file (magic included).
///
/// # Errors
///
/// Returns `InvalidData` for other formats or unrecognized magic and
/// for unreadable headers; propagates I/O errors from the reader.
pub fn v3_chunks<R: Read>(mut reader: R) -> io::Result<V3ChunkReader<R>> {
    let mut magic = [0u8; 8];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC_V3 {
        return Err(TraceFormatError::BadMagic { found: magic }.into());
    }
    let header = read_v2_header(&mut reader)?;
    Ok(V3ChunkReader {
        reader,
        remaining: header.records,
        header,
        index: 0,
        poisoned: false,
    })
}

impl V3ChunkReader<BufReader<File>> {
    /// Opens a v3 trace file as a chunk stream.
    ///
    /// # Errors
    ///
    /// As [`v3_chunks`], plus file-open errors.
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        v3_chunks(BufReader::new(File::open(path)?))
    }
}

impl<R: Read> V3ChunkReader<R> {
    /// Generator seed stamped in the file header.
    pub fn seed(&self) -> u64 {
        self.header.seed
    }

    /// Record count the header declares for the whole file.
    pub fn declared_records(&self) -> u64 {
        self.header.records
    }

    /// Reads the next chunk's framing and payload, applying the bomb
    /// guards before the payload allocation.
    fn read_chunk(&mut self) -> io::Result<V3RawChunk> {
        let index = self.index;
        let framing = read_v3_chunk_framing(&mut self.reader, index, self.remaining)?;
        if let Some(e) = bomb_guard(index, framing.records, framing.packed, framing.compressed) {
            return Err(e.into());
        }
        let mut crc_bytes = [0u8; 4];
        self.reader
            .read_exact(&mut crc_bytes)
            .map_err(|e| corruption_at(index, e, "chunk checksum cut short"))?;
        let mut payload = vec![0u8; framing.compressed as usize];
        self.reader
            .read_exact(&mut payload)
            .map_err(|e| corruption_at(index, e, "chunk payload cut short"))?;
        self.remaining -= framing.records;
        self.index += 1;
        Ok(V3RawChunk {
            index,
            records: framing.records,
            packed_bytes: framing.packed,
            crc_stored: u32::from_le_bytes(crc_bytes),
            payload,
        })
    }
}

impl<R: Read> Iterator for V3ChunkReader<R> {
    type Item = io::Result<V3RawChunk>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.poisoned || self.remaining == 0 {
            return None;
        }
        match self.read_chunk() {
            Ok(chunk) => Some(Ok(chunk)),
            Err(e) => {
                self.poisoned = true;
                Some(Err(e))
            }
        }
    }
}

/// The three framing varints of a v3 chunk, plausibility-checked up to
/// (but not including) the bomb guard.
struct V3ChunkFraming {
    records: u64,
    packed: u64,
    compressed: u64,
}

fn read_v3_chunk_framing<R: Read>(
    r: &mut R,
    index: usize,
    remaining: u64,
) -> io::Result<V3ChunkFraming> {
    let records = read_varint(r).map_err(|e| corruption_at(index, e, "chunk framing cut short"))?;
    if records == 0 || records > V3_CHUNK_RECORDS as u64 || records > remaining {
        return Err(truncated(
            index,
            format!("implausible chunk record count {records} ({remaining} outstanding)"),
        ));
    }
    let packed = read_varint(r).map_err(|e| corruption_at(index, e, "chunk framing cut short"))?;
    let compressed =
        read_varint(r).map_err(|e| corruption_at(index, e, "chunk framing cut short"))?;
    // The compressed length is what gets allocated *and* what a salvage
    // skip trusts to find the next chunk, so it must stay plausible even
    // when the packed length is a bomb.
    if compressed > max_compressed_len(records) {
        return Err(truncated(
            index,
            format!("implausible chunk byte length {compressed}"),
        ));
    }
    Ok(V3ChunkFraming {
        records,
        packed,
        compressed,
    })
}

// ---------------------------------------------------------------------
// Whole-file read / salvage / inspect
// ---------------------------------------------------------------------

/// One chunk as read off the wire during a salvage/inspect scan.
struct ScannedV3Chunk {
    index: usize,
    records: u64,
    packed_bytes: u64,
    payload_bytes: u64,
    crc_stored: u32,
    crc_computed: u32,
    /// The bomb-guard verdict, if it tripped (payload skipped).
    bomb: Option<TraceFormatError>,
    /// The decoded records, or why the payload failed to decode.
    decoded: Result<Vec<TraceRecord>, String>,
}

impl ScannedV3Chunk {
    fn intact(&self) -> bool {
        self.bomb.is_none() && self.crc_stored == self.crc_computed && self.decoded.is_ok()
    }
}

/// Reads chunks until `header.records` are accounted for, decoding what
/// it can. Bomb-guarded chunks are *skipped* (their compressed length
/// is plausibility-bounded, so the scan can step over the payload) and
/// reported in place, which is what lets salvage recover everything
/// after a bomb. Only environment I/O errors are returned as `Err`.
fn scan_v3<R: Read>(
    r: &mut R,
    header: &V2Header,
) -> io::Result<(Vec<ScannedV3Chunk>, Option<io::Error>)> {
    let mut chunks = Vec::new();
    let mut remaining = header.records;
    let mut index = 0usize;
    while remaining > 0 {
        let framing = match read_v3_chunk_framing(r, index, remaining) {
            Ok(f) => f,
            Err(e) if is_corruption(&e) => return Ok((chunks, Some(e))),
            Err(e) => return Err(e),
        };
        let mut crc_bytes = [0u8; 4];
        if let Err(e) = r.read_exact(&mut crc_bytes) {
            if is_corruption(&e) {
                return Ok((chunks, Some(truncated(index, "chunk checksum cut short"))));
            }
            return Err(e);
        }
        let mut payload = vec![0u8; framing.compressed as usize];
        if let Err(e) = r.read_exact(&mut payload) {
            if is_corruption(&e) {
                return Ok((chunks, Some(truncated(index, "chunk payload cut short"))));
            }
            return Err(e);
        }
        let crc_stored = u32::from_le_bytes(crc_bytes);
        let crc_computed = crc32(&payload);
        let bomb = bomb_guard(index, framing.records, framing.packed, framing.compressed);
        let decoded = match &bomb {
            Some(e) => Err(e.to_string()),
            None if crc_stored != crc_computed => {
                // CRC already failed; don't decode a payload known bad.
                Err("CRC mismatch".into())
            }
            None => decompress(&payload, framing.packed as usize)
                .map_err(|e| e.to_string())
                .and_then(|packed| unpack_records(&packed, framing.records)),
        };
        chunks.push(ScannedV3Chunk {
            index,
            records: framing.records,
            packed_bytes: framing.packed,
            payload_bytes: framing.compressed,
            crc_stored,
            crc_computed,
            bomb,
            decoded,
        });
        remaining -= framing.records;
        index += 1;
    }
    Ok((chunks, None))
}

/// Strict whole-file v3 read (magic already consumed): the body of
/// [`Trace::read_from`] for `DFCMTRC3` files.
pub(crate) fn read_v3_body<R: Read>(r: &mut R) -> io::Result<Trace> {
    let header = read_v2_header(r)?;
    let (chunks, framing_error) = scan_v3(r, &header)?;
    // Report the earliest-chunk problem, preferring the sharpest
    // diagnosis: bomb guard, then CRC, then decode failure.
    for c in &chunks {
        if let Some(bomb) = &c.bomb {
            return Err(bomb.clone().into());
        }
        if c.crc_stored != c.crc_computed {
            return Err(TraceFormatError::ChunkCrcMismatch {
                chunk: c.index,
                stored: c.crc_stored,
                computed: c.crc_computed,
            }
            .into());
        }
        if let Err(detail) = &c.decoded {
            return Err(truncated(c.index, format!("undecodable chunk: {detail}")));
        }
    }
    if let Some(e) = framing_error {
        return Err(e);
    }
    let mut trace = Trace::with_capacity(header.records.min(MAX_PREALLOC) as usize);
    for c in chunks {
        trace.extend(c.decoded.expect("checked above"));
    }
    Ok(trace)
}

/// v3 salvage (magic already consumed): recovers every intact chunk,
/// skipping bombs, CRC failures, and undecodable payloads individually.
pub(crate) fn salvage_v3<R: Read>(r: &mut R) -> io::Result<SalvageReport> {
    let header = read_v2_header(r)?;
    let (chunks, framing_error) = scan_v3(r, &header)?;
    let scanned = chunks.len();
    let mut recovered = Trace::with_capacity(header.records.min(MAX_PREALLOC) as usize);
    let mut recovered_chunks = 0usize;
    let mut dropped = Vec::new();
    let mut accounted = 0u64;
    for c in chunks {
        accounted += c.records;
        if c.intact() {
            recovered.extend(c.decoded.expect("intact chunk decoded"));
            recovered_chunks += 1;
            continue;
        }
        let reason = if let Some(bomb) = &c.bomb {
            bomb.to_string()
        } else if c.crc_stored != c.crc_computed {
            format!(
                "CRC mismatch (stored {:#010x}, computed {:#010x})",
                c.crc_stored, c.crc_computed
            )
        } else {
            format!(
                "undecodable payload: {}",
                c.decoded.as_ref().expect_err("not intact")
            )
        };
        dropped.push(DroppedChunk {
            chunk: c.index,
            records: c.records,
            reason,
        });
    }
    if let Some(e) = framing_error {
        dropped.push(DroppedChunk {
            chunk: scanned,
            records: header.records - accounted,
            reason: e.to_string(),
        });
    }
    Ok(SalvageReport {
        version: 3,
        declared_records: header.records,
        seed: Some(header.seed),
        recovered,
        total_chunks: header.records.div_ceil(V3_CHUNK_RECORDS as u64) as usize,
        recovered_chunks,
        dropped,
    })
}

/// v3 inspect (magic already consumed): the chunk map with per-chunk
/// CRC status and compressed/uncompressed sizes.
pub(crate) fn inspect_v3<R: Read>(r: &mut R) -> io::Result<TraceInfo> {
    let header = read_v2_header(r)?;
    let (chunks, framing_error) = scan_v3(r, &header)?;
    let decoded_records = chunks
        .iter()
        .filter(|c| c.intact())
        .map(|c| c.records)
        .sum();
    Ok(TraceInfo {
        version: 3,
        declared_records: header.records,
        decoded_records,
        seed: Some(header.seed),
        flags: header.flags,
        chunks: chunks
            .into_iter()
            .map(|c| ChunkInfo {
                chunk: c.index,
                records: c.records,
                payload_bytes: c.payload_bytes,
                uncompressed_bytes: c.packed_bytes,
                crc_stored: c.crc_stored,
                crc_computed: c.crc_computed,
                decodes: c.bomb.is_none() && c.decoded.is_ok(),
            })
            .collect(),
        trailing_bytes: 0,
        error: framing_error.map(|e| e.to_string()),
    })
}

// ---------------------------------------------------------------------
// Streaming writer
// ---------------------------------------------------------------------

/// Writes a v3 trace incrementally, one chunk at a time, so a trace of
/// any length can be emitted without ever materializing it: the writer
/// holds at most one chunk of records plus its encoding scratch.
///
/// The record count goes in the header up front, so it must be declared
/// at construction; [`finish`](V3StreamWriter::finish) enforces that
/// exactly that many records were pushed.
///
/// ```
/// use dfcm_trace::{Trace, TraceRecord, V3StreamWriter};
///
/// let mut out = Vec::new();
/// let mut w = V3StreamWriter::new(&mut out, 3, 42).unwrap();
/// for i in 0..3 {
///     w.push(TraceRecord::new(0x400 + 4 * i, i)).unwrap();
/// }
/// w.finish().unwrap();
/// assert_eq!(Trace::read_from(&out[..]).unwrap().len(), 3);
/// ```
#[derive(Debug)]
pub struct V3StreamWriter<W: Write> {
    w: W,
    declared: u64,
    written: u64,
    buf: Vec<TraceRecord>,
}

impl<W: Write> V3StreamWriter<W> {
    /// Starts a v3 stream declaring `records` records and stamping
    /// `seed` into the header.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the magic and header.
    pub fn new(mut w: W, records: u64, seed: u64) -> io::Result<Self> {
        w.write_all(MAGIC_V3)?;
        let mut header = Vec::with_capacity(24);
        write_varint(&mut header, records)?;
        write_varint(&mut header, seed)?;
        write_varint(&mut header, 0)?; // flags
        write_varint(&mut w, header.len() as u64)?;
        w.write_all(&header)?;
        Ok(V3StreamWriter {
            w,
            declared: records,
            written: 0,
            buf: Vec::with_capacity(V3_CHUNK_RECORDS.min(records as usize)),
        })
    }

    /// Appends one record, flushing a full chunk to the writer.
    ///
    /// # Errors
    ///
    /// `InvalidInput` when more records than declared are pushed;
    /// otherwise propagates I/O errors.
    pub fn push(&mut self, record: TraceRecord) -> io::Result<()> {
        if self.written == self.declared {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("trace declared {} records, got more", self.declared),
            ));
        }
        self.buf.push(record);
        self.written += 1;
        if self.buf.len() == V3_CHUNK_RECORDS {
            self.flush_chunk()?;
        }
        Ok(())
    }

    fn flush_chunk(&mut self) -> io::Result<()> {
        let packed = pack_records(&self.buf);
        let payload = compress(&packed);
        write_varint(&mut self.w, self.buf.len() as u64)?;
        write_varint(&mut self.w, packed.len() as u64)?;
        write_varint(&mut self.w, payload.len() as u64)?;
        self.w.write_all(&crc32(&payload).to_le_bytes())?;
        self.w.write_all(&payload)?;
        self.buf.clear();
        Ok(())
    }

    /// Flushes the final partial chunk and validates the record count,
    /// returning the underlying writer.
    ///
    /// # Errors
    ///
    /// `InvalidInput` when fewer records than declared were pushed
    /// (the header would lie); otherwise propagates I/O errors.
    pub fn finish(mut self) -> io::Result<W> {
        if self.written != self.declared {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "trace declared {} records, got {}",
                    self.declared, self.written
                ),
            ));
        }
        if !self.buf.is_empty() {
            self.flush_chunk()?;
        }
        self.w.flush()?;
        Ok(self.w)
    }
}

/// Writes a buffered trace in the v3 format (the [`Trace::write_with`]
/// body for [`crate::TraceFormat::V3`]).
pub(crate) fn write_v3<W: Write>(trace: &Trace, w: W, seed: u64) -> io::Result<()> {
    let mut writer = V3StreamWriter::new(w, trace.len() as u64, seed)?;
    for r in trace {
        writer.push(*r)?;
    }
    writer.finish()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::TraceFormat;
    use crate::rng::SplitMix64;

    fn mixed_trace(records: usize, salt: u64) -> Trace {
        let mut rng = SplitMix64::new(salt);
        (0..records as u64)
            .map(|i| {
                // Loop-like pcs, a mix of stride, constant, and random
                // values — exercises both block value modes.
                let pc = 0x40_0000 + 4 * (i % 331);
                let value = match i % 4 {
                    0 => i * 8,
                    1 => 7,
                    2 => rng.next_u64() & 0xFFFF_FFFF,
                    _ => i.wrapping_mul(0x9E37_79B9),
                };
                TraceRecord::new(pc, value)
            })
            .collect()
    }

    #[test]
    fn pack_roundtrip() {
        for records in [1usize, 2, 127, 128, 129, 1000, 4096] {
            let trace = mixed_trace(records, records as u64);
            let packed = pack_records(trace.records());
            assert!(packed.len() as u64 <= max_packed_len(records as u64));
            let restored = unpack_records(&packed, records as u64).unwrap();
            assert_eq!(restored, trace.records());
        }
    }

    #[test]
    fn pack_handles_extreme_values() {
        let trace: Trace = vec![
            TraceRecord::new(0, 0),
            TraceRecord::new(u64::MAX, u64::MAX),
            TraceRecord::new(0, 1),
            TraceRecord::new(u64::MAX / 2, u64::MAX / 2 + 3),
        ]
        .into_iter()
        .collect();
        let packed = pack_records(trace.records());
        let restored = unpack_records(&packed, 4).unwrap();
        assert_eq!(restored, trace.records());
    }

    #[test]
    fn file_roundtrip_multi_chunk() {
        let trace = mixed_trace(2 * V3_CHUNK_RECORDS + 777, 5);
        let mut bytes = Vec::new();
        write_v3(&trace, &mut bytes, 99).unwrap();
        let restored = Trace::read_from(bytes.as_slice()).unwrap();
        assert_eq!(trace, restored);
        // And the chunk reader agrees, chunk by chunk.
        let reader = v3_chunks(bytes.as_slice()).unwrap();
        assert_eq!(reader.seed(), 99);
        assert_eq!(reader.declared_records(), trace.len() as u64);
        let mut all = Vec::new();
        for chunk in reader {
            all.extend(chunk.unwrap().decode().unwrap());
        }
        assert_eq!(all, trace.records());
    }

    #[test]
    fn empty_trace_roundtrips() {
        let trace = Trace::new();
        let mut bytes = Vec::new();
        write_v3(&trace, &mut bytes, 0).unwrap();
        assert_eq!(Trace::read_from(bytes.as_slice()).unwrap().len(), 0);
        let report = crate::salvage_trace(bytes.as_slice()).unwrap();
        assert!(report.intact());
    }

    #[test]
    fn streaming_writer_matches_buffered() {
        let trace = mixed_trace(V3_CHUNK_RECORDS + 100, 11);
        let mut buffered = Vec::new();
        trace
            .write_with(&mut buffered, TraceFormat::V3 { seed: 4 })
            .unwrap();
        let mut streamed = Vec::new();
        let mut w = V3StreamWriter::new(&mut streamed, trace.len() as u64, 4).unwrap();
        for r in &trace {
            w.push(*r).unwrap();
        }
        w.finish().unwrap();
        assert_eq!(buffered, streamed);
    }

    #[test]
    fn writer_enforces_declared_count() {
        let mut out = Vec::new();
        let mut w = V3StreamWriter::new(&mut out, 2, 0).unwrap();
        w.push(TraceRecord::new(0, 0)).unwrap();
        assert!(w.finish().is_err(), "undershoot refused");

        let mut out = Vec::new();
        let mut w = V3StreamWriter::new(&mut out, 1, 0).unwrap();
        w.push(TraceRecord::new(0, 0)).unwrap();
        assert!(w.push(TraceRecord::new(0, 1)).is_err(), "overshoot refused");
    }

    #[test]
    fn bomb_guard_trips_on_oversized_declaration() {
        // A chunk declaring far more packed bytes than 65536 records
        // can legitimately produce.
        let e = bomb_guard(0, 100, max_packed_len(100) + 1, 50).unwrap();
        assert!(matches!(e, TraceFormatError::DecompressionBomb { .. }));
        // Ratio violation: 1MB declared from a 16-byte payload.
        let e = bomb_guard(0, 65536, 1 << 20, 16).unwrap();
        assert!(matches!(e, TraceFormatError::DecompressionBomb { .. }));
        // Legit chunks pass.
        assert!(bomb_guard(0, 65536, 1 << 20, 2048).is_none());
        assert!(bomb_guard(0, 100, 1600, 200).is_none());
    }

    #[test]
    fn density_beats_v2_on_suite_like_data() {
        let trace = mixed_trace(100_000, 3);
        let mut v2 = Vec::new();
        trace.write_v2_to(&mut v2, 0).unwrap();
        let mut v3 = Vec::new();
        write_v3(&trace, &mut v3, 0).unwrap();
        assert!(
            v3.len() < v2.len(),
            "v3 {} bytes should beat v2 {} bytes",
            v3.len(),
            v2.len()
        );
    }
}
