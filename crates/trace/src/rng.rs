/// A small, fast, deterministic pseudo-random generator (SplitMix64).
///
/// Workload generation must be exactly reproducible across platforms and
/// library versions — every figure in EXPERIMENTS.md is regenerated from a
/// seed — so the generator is pinned here rather than borrowed from an
/// external crate whose stream might change.
///
/// ```
/// use dfcm_trace::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed; equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is 0.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift range reduction; bias is negligible for the
        // workload-generation bounds used here (all far below 2^48).
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform value in the inclusive range `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        lo + self.next_below(hi - lo + 1)
    }

    /// Bernoulli draw with probability `num/denom`.
    ///
    /// # Panics
    ///
    /// Panics if `denom` is 0.
    pub fn chance(&mut self, num: u64, denom: u64) -> bool {
        self.next_below(denom) < num
    }

    /// Derives an independent child generator (for splitting one master
    /// seed across many pattern instances).
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(123);
            (0..10).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(123);
            (0..10).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn known_reference_value() {
        // SplitMix64 reference stream for seed 0 (from the published
        // algorithm): first output is 0xE220A8397B1DCDAF.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn bounded_draws_stay_in_range() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            assert!(r.next_below(7) < 7);
            let v = r.next_range(10, 12);
            assert!((10..=12).contains(&v));
        }
    }

    #[test]
    fn bounded_draws_cover_range() {
        let mut r = SplitMix64::new(5);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.next_below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(4);
        assert!(!r.chance(0, 10));
        assert!(r.chance(10, 10));
    }

    #[test]
    fn split_streams_are_independent() {
        let mut parent = SplitMix64::new(77);
        let mut c1 = parent.split();
        let mut c2 = parent.split();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    #[should_panic(expected = "bound")]
    fn zero_bound_panics() {
        SplitMix64::new(0).next_below(0);
    }
}
