//! Descriptive statistics over value traces — the Table 1 analogue.

use std::collections::HashMap;

use crate::record::Trace;

/// Summary statistics of one trace, as reported in the repository's
/// Table 1 analogue: size, static footprint, and the fractions of the
/// trace trivially predictable by last-value and stride oracles.
///
/// The oracles here are *per-PC unbounded tables* (no aliasing, no capacity
/// limits): `last_value_fraction` counts records equal to the previous
/// value of the same PC, and `stride_fraction` counts records equal to the
/// previous value plus the previous difference. They characterize the
/// workload itself, independent of any predictor configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceStats {
    /// Number of records.
    pub records: usize,
    /// Number of distinct static instructions.
    pub static_instructions: usize,
    /// Fraction of records equal to the same PC's previous value.
    pub last_value_fraction: f64,
    /// Fraction of records continuing the same PC's previous difference.
    pub stride_fraction: f64,
    /// Fraction of records whose value was produced before by the same PC
    /// (within the last 64 values) — an upper-bound locality indicator.
    pub reuse_fraction: f64,
}

impl TraceStats {
    /// Computes statistics over `trace`.
    pub fn measure(trace: &Trace) -> TraceStats {
        struct PcState {
            last: u64,
            stride: u64,
            seen: Vec<u64>,
            warm: u8,
        }
        let mut per_pc: HashMap<u64, PcState> = HashMap::new();
        let mut lv_hits = 0usize;
        let mut stride_hits = 0usize;
        let mut reuse_hits = 0usize;
        for r in trace {
            let state = per_pc.entry(r.pc).or_insert(PcState {
                last: 0,
                stride: 0,
                seen: Vec::new(),
                warm: 0,
            });
            if state.warm >= 1 && r.value == state.last {
                lv_hits += 1;
            }
            if state.warm >= 2 && r.value == state.last.wrapping_add(state.stride) {
                stride_hits += 1;
            }
            if state.seen.contains(&r.value) {
                reuse_hits += 1;
            }
            state.stride = r.value.wrapping_sub(state.last);
            state.last = r.value;
            state.warm = state.warm.saturating_add(1);
            if state.seen.len() == 64 {
                state.seen.remove(0);
            }
            state.seen.push(r.value);
        }
        let n = trace.len().max(1);
        TraceStats {
            records: trace.len(),
            static_instructions: per_pc.len(),
            last_value_fraction: lv_hits as f64 / n as f64,
            stride_fraction: stride_hits as f64 / n as f64,
            reuse_fraction: reuse_hits as f64 / n as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceRecord;

    #[test]
    fn constant_trace_is_fully_last_value_predictable() {
        let trace: Trace = (0..100).map(|_| TraceRecord::new(1, 7)).collect();
        let s = TraceStats::measure(&trace);
        assert!(s.last_value_fraction > 0.98);
        assert!(s.stride_fraction > 0.97);
        assert_eq!(s.static_instructions, 1);
        assert_eq!(s.records, 100);
    }

    #[test]
    fn stride_trace_is_stride_but_not_lv_predictable() {
        let trace: Trace = (0..100).map(|i| TraceRecord::new(1, 5 * i)).collect();
        let s = TraceStats::measure(&trace);
        assert!(s.last_value_fraction < 0.01);
        assert!(s.stride_fraction > 0.97);
    }

    #[test]
    fn random_trace_is_unpredictable() {
        let mut rng = crate::rng::SplitMix64::new(1);
        let trace: Trace = (0..500)
            .map(|_| TraceRecord::new(1, rng.next_u64()))
            .collect();
        let s = TraceStats::measure(&trace);
        assert!(s.last_value_fraction < 0.01);
        assert!(s.stride_fraction < 0.01);
        assert!(s.reuse_fraction < 0.01);
    }

    #[test]
    fn reuse_detects_periodic_values() {
        let pattern = [3u64, 9, 27];
        let trace: Trace = (0..90)
            .map(|i| TraceRecord::new(2, pattern[i % 3]))
            .collect();
        let s = TraceStats::measure(&trace);
        assert!(s.reuse_fraction > 0.95);
        assert!(s.last_value_fraction < 0.01);
    }

    #[test]
    fn multiple_pcs_tracked_independently() {
        let mut trace = Trace::new();
        for i in 0..50u64 {
            trace.push(TraceRecord::new(1, 7)); // constant
            trace.push(TraceRecord::new(2, 3 * i)); // stride
        }
        let s = TraceStats::measure(&trace);
        assert_eq!(s.static_instructions, 2);
        assert!(s.last_value_fraction > 0.45 && s.last_value_fraction < 0.55);
        assert!(s.stride_fraction > 0.95);
    }

    #[test]
    fn empty_trace_is_safe() {
        let s = TraceStats::measure(&Trace::new());
        assert_eq!(s.records, 0);
        assert_eq!(s.static_instructions, 0);
        assert_eq!(s.last_value_fraction, 0.0);
    }
}
