use std::collections::VecDeque;

use crate::pattern::{Pattern, PatternState};
use crate::record::{TraceRecord, TraceSource};
use crate::rng::SplitMix64;

/// Address of the first synthetic static instruction; subsequent
/// instructions are laid out 4 bytes apart, like MIPS code.
pub const BASE_PC: u64 = 0x0040_0000;

/// Builder for [`SyntheticProgram`]; obtained from
/// [`SyntheticProgram::builder`].
///
/// A synthetic program is a set of *basic blocks*. Each block models a loop
/// body or straight-line fragment: a group of static instructions (with
/// consecutive PCs) that always execute together, each producing values
/// from its own [`Pattern`]. Execution repeatedly selects a block with
/// probability proportional to its weight and emits one record per
/// instruction in the block — giving realistic burstiness and per-PC
/// recurrence distances without simulating control flow.
#[derive(Debug)]
pub struct ProgramBuilder {
    seed: u64,
    blocks: Vec<(u64, Vec<Pattern>)>,
}

impl ProgramBuilder {
    /// Adds a single-instruction block of the given selection `weight`.
    pub fn inst(&mut self, pattern: Pattern, weight: u64) -> &mut Self {
        self.block(weight, vec![pattern])
    }

    /// Adds a multi-instruction block (e.g. a loop body) of the given
    /// selection `weight`. Instructions receive consecutive PCs.
    pub fn block(&mut self, weight: u64, patterns: Vec<Pattern>) -> &mut Self {
        assert!(
            !patterns.is_empty(),
            "a block must contain at least one instruction"
        );
        assert!(weight > 0, "block weight must be positive");
        self.blocks.push((weight, patterns));
        self
    }

    /// Builds the program.
    ///
    /// # Panics
    ///
    /// Panics if no block was added.
    pub fn build(&self) -> SyntheticProgram {
        assert!(
            !self.blocks.is_empty(),
            "a program needs at least one block"
        );
        let mut rng = SplitMix64::new(self.seed);
        let mut insts = Vec::new();
        let mut blocks = Vec::new();
        let mut cumulative = Vec::with_capacity(self.blocks.len());
        let mut total = 0u64;
        for (weight, patterns) in &self.blocks {
            let mut indices = Vec::with_capacity(patterns.len());
            for pattern in patterns {
                let pc = BASE_PC + 4 * insts.len() as u64;
                indices.push(insts.len());
                insts.push(InstState {
                    pc,
                    state: pattern.start(rng.next_u64()),
                });
            }
            blocks.push(indices);
            total += weight;
            cumulative.push(total);
        }
        SyntheticProgram {
            insts,
            blocks,
            cumulative,
            total_weight: total,
            rng,
            queue: VecDeque::new(),
        }
    }
}

#[derive(Debug)]
struct InstState {
    pc: u64,
    state: PatternState,
}

/// An endless synthetic value-trace source composed of weighted basic
/// blocks of patterned static instructions.
///
/// ```
/// use dfcm_trace::{Pattern, SyntheticProgram, TraceSource};
///
/// let mut p = SyntheticProgram::builder(1)
///     .block(10, vec![
///         Pattern::StrideReset { start: 0, stride: 1, period: 100 }, // i
///         Pattern::StrideReset { start: 0x8000, stride: 8, period: 100 }, // &a[i]
///     ])
///     .inst(Pattern::Constant(1), 3) // slt result
///     .build();
/// let trace = p.take_trace(1000);
/// assert_eq!(trace.len(), 1000);
/// assert_eq!(p.num_static_instructions(), 3);
/// ```
#[derive(Debug)]
pub struct SyntheticProgram {
    insts: Vec<InstState>,
    blocks: Vec<Vec<usize>>,
    cumulative: Vec<u64>,
    total_weight: u64,
    rng: SplitMix64,
    queue: VecDeque<usize>,
}

impl SyntheticProgram {
    /// Starts building a program; `seed` fixes block selection and all
    /// pattern randomness.
    pub fn builder(seed: u64) -> ProgramBuilder {
        ProgramBuilder {
            seed,
            blocks: Vec::new(),
        }
    }

    /// Number of static instructions across all blocks.
    pub fn num_static_instructions(&self) -> usize {
        self.insts.len()
    }

    /// Number of basic blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }
}

impl TraceSource for SyntheticProgram {
    fn next_record(&mut self) -> Option<TraceRecord> {
        if self.queue.is_empty() {
            let draw = self.rng.next_below(self.total_weight);
            let block = self.cumulative.partition_point(|&c| c <= draw);
            self.queue.extend(self.blocks[block].iter().copied());
        }
        let idx = self.queue.pop_front().expect("queue refilled above");
        let inst = &mut self.insts[idx];
        Some(TraceRecord::new(inst.pc, inst.state.next_value()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn deterministic_for_equal_seeds() {
        let build = || {
            SyntheticProgram::builder(5)
                .inst(Pattern::Random { bits: 32 }, 2)
                .inst(
                    Pattern::Stride {
                        start: 0,
                        stride: 4,
                    },
                    3,
                )
                .build()
        };
        let a = build().take_trace(500);
        let b = build().take_trace(500);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let build = |seed| {
            SyntheticProgram::builder(seed)
                .inst(Pattern::Random { bits: 32 }, 1)
                .build()
        };
        assert_ne!(build(1).take_trace(50), build(2).take_trace(50));
    }

    #[test]
    fn block_instructions_emit_consecutively() {
        let mut p = SyntheticProgram::builder(3)
            .block(
                1,
                vec![
                    Pattern::Constant(1),
                    Pattern::Constant(2),
                    Pattern::Constant(3),
                ],
            )
            .build();
        let trace = p.take_trace(9);
        let pcs: Vec<u64> = trace.iter().map(|r| r.pc).collect();
        assert_eq!(
            pcs,
            vec![
                BASE_PC,
                BASE_PC + 4,
                BASE_PC + 8,
                BASE_PC,
                BASE_PC + 4,
                BASE_PC + 8,
                BASE_PC,
                BASE_PC + 4,
                BASE_PC + 8
            ]
        );
    }

    #[test]
    fn weights_bias_block_frequency() {
        let mut p = SyntheticProgram::builder(7)
            .inst(Pattern::Constant(0), 9)
            .inst(Pattern::Constant(1), 1)
            .build();
        let trace = p.take_trace(10_000);
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for r in &trace {
            *counts.entry(r.pc).or_default() += 1;
        }
        let heavy = counts[&BASE_PC] as f64;
        let light = counts[&(BASE_PC + 4)] as f64;
        let ratio = heavy / light;
        assert!((6.0..=13.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn per_pc_patterns_are_preserved_under_interleaving() {
        let mut p = SyntheticProgram::builder(11)
            .inst(
                Pattern::Stride {
                    start: 100,
                    stride: 5,
                },
                1,
            )
            .inst(Pattern::Constant(42), 1)
            .build();
        let trace = p.take_trace(2000);
        let strides: Vec<u64> = trace
            .iter()
            .filter(|r| r.pc == BASE_PC)
            .map(|r| r.value)
            .collect();
        for (i, w) in strides.windows(2).enumerate() {
            assert_eq!(w[1] - w[0], 5, "at {i}");
        }
        assert!(trace
            .iter()
            .filter(|r| r.pc == BASE_PC + 4)
            .all(|r| r.value == 42));
    }

    #[test]
    fn counts_structure() {
        let p = SyntheticProgram::builder(0)
            .block(1, vec![Pattern::Constant(0), Pattern::Constant(1)])
            .inst(Pattern::Constant(2), 1)
            .build();
        assert_eq!(p.num_static_instructions(), 3);
        assert_eq!(p.num_blocks(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn empty_program_rejected() {
        let _ = SyntheticProgram::builder(0).build();
    }

    #[test]
    #[should_panic(expected = "at least one instruction")]
    fn empty_block_rejected() {
        let _ = SyntheticProgram::builder(0).block(1, vec![]);
    }
}
