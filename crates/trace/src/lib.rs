//! Value-trace model and synthetic workload generation for value-predictor
//! evaluation.
//!
//! The paper evaluates predictors on value traces produced by SimpleScalar
//! `sim-safe` running SPECint95: one record per dynamic integer
//! register-writing instruction, carrying the instruction address and the
//! produced value (§4). This crate provides the same abstraction —
//! [`TraceRecord`] streams via [`TraceSource`] — together with two trace
//! producers:
//!
//! * [`SyntheticProgram`]: a loop-structured generator that composes
//!   per-static-instruction value [`Pattern`]s (constant, stride,
//!   stride-with-reset, periodic context, random) into a full program
//!   trace, and
//! * [`suite::standard_suite`]: eight benchmark profiles named after the
//!   SPECint95 programs, with pattern mixes calibrated so the
//!   cross-benchmark predictability ordering matches the paper's
//!   Figure 10(b) (see DESIGN.md for the substitution argument).
//!
//! Genuine program traces (from real kernels running on a small RISC VM)
//! are produced by the companion `dfcm-vm` crate, which also emits
//! [`TraceRecord`]s.
//!
//! ```
//! use dfcm_trace::{Pattern, SyntheticProgram, TraceSource};
//!
//! let mut program = SyntheticProgram::builder(42)
//!     .inst(Pattern::Stride { start: 0x1000, stride: 8 }, 4)
//!     .inst(Pattern::Constant(7), 1)
//!     .build();
//! let record = program.next_record().expect("endless source");
//! assert!(record.pc >= dfcm_trace::BASE_PC);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compress;
pub mod crc;
mod deadline;
pub mod io;
mod pattern;
mod phases;
mod program;
mod record;
mod rng;
pub mod stats;
pub mod suite;
mod v3;

pub use crate::deadline::Deadline;
pub use crate::io::{
    atomic_write, atomic_write_with, inspect_trace, read_varint, salvage_trace, v2_chunks,
    write_varint, ChunkInfo, DroppedChunk, RawChunk, SalvageReport, TraceFormat, TraceFormatError,
    TraceInfo, V2ChunkReader, V2_CHUNK_RECORDS,
};
pub use crate::pattern::{Pattern, PatternState};
pub use crate::phases::PhasedProgram;
pub use crate::program::{ProgramBuilder, SyntheticProgram, BASE_PC};
pub use crate::record::{Trace, TraceRecord, TraceSource};
pub use crate::rng::SplitMix64;
pub use crate::suite::{BenchmarkSpec, BenchmarkTrace};
pub use crate::v3::{
    max_packed_len as v3_max_packed_len, v3_chunks, V3ChunkReader, V3RawChunk, V3StreamWriter,
    MAX_EXPANSION_RATIO, V3_CHUNK_RECORDS,
};
