use std::fmt;

/// One predicted dynamic instruction: its address and the value it produced.
///
/// This is the unit of trace-driven evaluation (§4 of the paper): only
/// integer register-writing instructions appear in a trace, loads included,
/// branches and jumps excluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceRecord {
    /// Address of the static instruction.
    ///
    /// Instruction addresses are expected to be 4-byte aligned, as on the
    /// Alpha machines the paper traces. Predictors index their level-1
    /// table with `pc >> 2` (see `dfcm::pc_index`), discarding the two
    /// always-zero low bits; records with unaligned PCs therefore alias:
    /// e.g. PCs 16..=19 all map to the same table entry. Synthetic traces
    /// should generate PCs as multiples of 4.
    pub pc: u64,
    /// The integer value the instruction produced.
    pub value: u64,
}

impl TraceRecord {
    /// Convenience constructor.
    #[inline]
    pub fn new(pc: u64, value: u64) -> Self {
        TraceRecord { pc, value }
    }
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}: {}", self.pc, self.value)
    }
}

/// A stream of trace records.
///
/// Sources may be endless (synthetic generators produce records on demand);
/// callers bound the simulation by the number of records they pull. For a
/// finite, buffered trace use [`Trace`].
pub trait TraceSource {
    /// Produces the next record, or `None` when the source is exhausted.
    fn next_record(&mut self) -> Option<TraceRecord>;

    /// Pulls at most `n` records into an owned [`Trace`].
    fn take_trace(&mut self, n: usize) -> Trace
    where
        Self: Sized,
    {
        let mut trace = Trace::with_capacity(n);
        for _ in 0..n {
            match self.next_record() {
                Some(r) => trace.push(r),
                None => break,
            }
        }
        trace
    }
}

impl<S: TraceSource + ?Sized> TraceSource for &mut S {
    fn next_record(&mut self) -> Option<TraceRecord> {
        (**self).next_record()
    }
}

impl<S: TraceSource + ?Sized> TraceSource for Box<S> {
    fn next_record(&mut self) -> Option<TraceRecord> {
        (**self).next_record()
    }
}

/// An owned, finite value trace.
///
/// ```
/// use dfcm_trace::{Trace, TraceRecord};
///
/// let trace: Trace = (0..4).map(|i| TraceRecord::new(0x40, i * 3)).collect();
/// assert_eq!(trace.len(), 4);
/// assert_eq!(trace.records()[2].value, 6);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    records: Vec<TraceRecord>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Creates an empty trace with preallocated capacity.
    pub fn with_capacity(n: usize) -> Self {
        Trace {
            records: Vec::with_capacity(n),
        }
    }

    /// Appends a record.
    #[inline]
    pub fn push(&mut self, record: TraceRecord) {
        self.records.push(record);
    }

    /// Number of records.
    #[inline]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the trace holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records as a slice.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Iterates over the records.
    pub fn iter(&self) -> std::slice::Iter<'_, TraceRecord> {
        self.records.iter()
    }

    /// Iterates over the records in contiguous chunks of at most
    /// `records_per_chunk` records (the final chunk holds the remainder).
    ///
    /// This is the in-memory counterpart of the v2 on-disk chunking (see
    /// [`crate::V2_CHUNK_RECORDS`]): chunk-granular consumers — the
    /// streaming simulation runner, parallel decoders — can process a
    /// buffered trace with the same boundaries a saved file would have.
    ///
    /// # Panics
    ///
    /// Panics if `records_per_chunk` is 0.
    pub fn chunks(&self, records_per_chunk: usize) -> std::slice::Chunks<'_, TraceRecord> {
        self.records.chunks(records_per_chunk)
    }

    /// A replayable [`TraceSource`] over this trace.
    pub fn source(&self) -> TraceReplay<'_> {
        TraceReplay {
            records: &self.records,
            position: 0,
        }
    }
}

impl FromIterator<TraceRecord> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceRecord>>(iter: I) -> Self {
        Trace {
            records: iter.into_iter().collect(),
        }
    }
}

impl Extend<TraceRecord> for Trace {
    fn extend<I: IntoIterator<Item = TraceRecord>>(&mut self, iter: I) {
        self.records.extend(iter);
    }
}

impl IntoIterator for Trace {
    type Item = TraceRecord;
    type IntoIter = std::vec::IntoIter<TraceRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.into_iter()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceRecord;
    type IntoIter = std::slice::Iter<'a, TraceRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

/// Replays a borrowed [`Trace`] as a [`TraceSource`]; produced by
/// [`Trace::source`].
#[derive(Debug, Clone)]
pub struct TraceReplay<'a> {
    records: &'a [TraceRecord],
    position: usize,
}

impl TraceSource for TraceReplay<'_> {
    fn next_record(&mut self) -> Option<TraceRecord> {
        let record = self.records.get(self.position).copied();
        self.position += usize::from(record.is_some());
        record
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_trace_bounds_endless_sources() {
        struct Endless(u64);
        impl TraceSource for Endless {
            fn next_record(&mut self) -> Option<TraceRecord> {
                self.0 += 1;
                Some(TraceRecord::new(1, self.0))
            }
        }
        let trace = Endless(0).take_trace(10);
        assert_eq!(trace.len(), 10);
        assert_eq!(trace.records()[9].value, 10);
    }

    #[test]
    fn take_trace_stops_at_exhaustion() {
        let trace: Trace = (0..3).map(|i| TraceRecord::new(0, i)).collect();
        let mut replay = trace.source();
        let taken = replay.take_trace(100);
        assert_eq!(taken.len(), 3);
    }

    #[test]
    fn replay_yields_records_in_order() {
        let trace: Trace = (0..5).map(|i| TraceRecord::new(i, i * i)).collect();
        let mut src = trace.source();
        for i in 0..5 {
            assert_eq!(src.next_record(), Some(TraceRecord::new(i, i * i)));
        }
        assert_eq!(src.next_record(), None);
        assert_eq!(src.next_record(), None, "stays exhausted");
    }

    #[test]
    fn extend_and_collect() {
        let mut trace = Trace::new();
        assert!(trace.is_empty());
        trace.extend((0..2).map(|i| TraceRecord::new(9, i)));
        assert_eq!(trace.len(), 2);
        let values: Vec<u64> = (&trace).into_iter().map(|r| r.value).collect();
        assert_eq!(values, vec![0, 1]);
        let owned: Vec<TraceRecord> = trace.into_iter().collect();
        assert_eq!(owned.len(), 2);
    }

    #[test]
    fn source_through_reference_and_box() {
        let trace: Trace = (0..2).map(|i| TraceRecord::new(0, i)).collect();
        let mut replay = trace.source();
        let by_ref: &mut dyn TraceSource = &mut replay;
        let mut boxed: Box<dyn TraceSource + '_> = Box::new(by_ref);
        assert!(boxed.next_record().is_some());
    }

    #[test]
    fn record_display() {
        assert_eq!(TraceRecord::new(0x400, 12).to_string(), "0x400: 12");
    }
}
