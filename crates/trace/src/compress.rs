//! Std-only general-purpose byte compression for the v3 trace format:
//! an LZSS match stage over a 64 KiB window followed by an order-0
//! canonical-Huffman entropy stage, with a stored-block fallback so
//! compression never expands input by more than one byte.
//!
//! The decoder side is written for untrusted input. [`decompress`] is
//! given the *declared* output length up front and treats it as a hard
//! contract: it never allocates more than `declared_len` bytes of output
//! (plus a bounded token scratch buffer), rejects streams that produce
//! any other length, and decodes every malformed table, offset, or
//! bitstream to a typed `InvalidData` error — never a panic, hang, or
//! unbounded allocation. Callers (the v3 chunk reader) bound
//! `declared_len` itself before calling in, so a hostile file cannot
//! demand memory beyond one chunk's worst-case packed size.
//!
//! # Compressed container layout
//!
//! ```text
//! method  1 byte   0 = stored, 1 = LZ + Huffman
//!
//! method 0 (stored): the raw bytes follow verbatim.
//!
//! method 1:
//!   lz_len  varint     byte length of the LZ token stream
//!   lengths 128 bytes  canonical-Huffman code lengths for all 256 byte
//!                      symbols, one nibble each (low nibble = even
//!                      symbol), 0 = symbol absent, else 1..=15 bits
//!   bits               MSB-first canonical codes for exactly `lz_len`
//!                      token-stream bytes
//! ```
//!
//! # LZ token grammar
//!
//! ```text
//! T < 31   literal run: the next T+1 bytes are raw output
//! T = 31   long literal run: varint L follows, then 32+L raw bytes
//! T >= 32  match: length T-28 (4..=227), then u16 LE offset
//!          (1..=65535) back into the output produced so far
//! ```
//!
//! Literal runs cost one token byte per 31 output bytes, so the token
//! stream is never longer than `out + out/31 + C` — the bound
//! [`max_token_len`] that caps the decoder's scratch allocation.

use std::io::{self, Read, Write};

use crate::io::{read_varint, write_varint};

/// Longest Huffman code, in bits; lengths are stored as nibbles.
const MAX_CODE_BITS: u32 = 15;

/// Longest LZ match a single token can encode.
const MAX_MATCH: usize = 227;

/// Shortest LZ match worth a token (a match token costs 3 bytes).
const MIN_MATCH: usize = 4;

/// LZ window: matches reach at most this far back.
const MAX_OFFSET: usize = 65535;

/// Literal-run lengths 1..=31 fit the token byte itself.
const SHORT_LIT_MAX: usize = 31;

/// Upper bound on the LZ token stream for `out_len` output bytes.
///
/// Literal runs add one token byte per `SHORT_LIT_MAX` (31) output bytes;
/// matches always shrink. The constant slack covers the final partial
/// run and long-run varints.
pub fn max_token_len(out_len: usize) -> usize {
    out_len + out_len / SHORT_LIT_MAX + 64
}

fn invalid(detail: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, detail.into())
}

// ---------------------------------------------------------------------
// LZ stage
// ---------------------------------------------------------------------

/// Hash of the 4 bytes at `data[i..]` for the match table.
#[inline]
fn hash4(data: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    (v.wrapping_mul(0x9E37_79B1) >> 18) as usize
}

const HASH_SLOTS: usize = 1 << 14;

/// Emits one literal run covering `data[start..end]`.
fn push_literals(out: &mut Vec<u8>, data: &[u8], mut start: usize, end: usize) {
    while start < end {
        let run = end - start;
        if run <= SHORT_LIT_MAX {
            out.push(run as u8 - 1);
            out.extend_from_slice(&data[start..end]);
            return;
        }
        // Long runs take the varint form; cap each at a round 4 KiB so
        // the encoder stays single-pass without lookahead buffering.
        let take = run.min(4096);
        if take <= SHORT_LIT_MAX {
            out.push(take as u8 - 1);
        } else {
            out.push(31);
            let _ = write_varint(&mut *out, (take - 32) as u64);
        }
        out.extend_from_slice(&data[start..start + take]);
        start += take;
    }
}

/// Candidates examined per position in the hash chain; bounds encoder
/// time while still finding long matches in repetitive data.
const MAX_CHAIN: usize = 64;

/// Longest match among the chained candidates for `data[i..]`.
fn best_match(data: &[u8], head: &[usize], chain: &[usize], i: usize) -> (usize, usize) {
    let limit = (data.len() - i).min(MAX_MATCH);
    let mut best_len = 0usize;
    let mut best_src = 0usize;
    let mut cand = head[hash4(data, i)];
    let mut steps = 0usize;
    while cand != usize::MAX && i - cand <= MAX_OFFSET && steps < MAX_CHAIN {
        let mut l = 0usize;
        while l < limit && data[cand + l] == data[i + l] {
            l += 1;
        }
        if l > best_len {
            best_len = l;
            best_src = cand;
            if l == limit {
                break;
            }
        }
        cand = chain[cand];
        steps += 1;
    }
    (best_len, best_src)
}

/// Single-pass LZSS over `data` with hash chains and one-step lazy
/// matching; returns the token stream.
fn lz_compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    if data.len() < MIN_MATCH {
        push_literals(&mut out, data, 0, data.len());
        return out;
    }
    let mut head = vec![usize::MAX; HASH_SLOTS];
    let mut chain = vec![usize::MAX; data.len()];
    let insertable = data.len() - MIN_MATCH;
    let mut ins = 0usize; // next position to enter the hash chain
    let mut i = 0usize;
    let mut lit_start = 0usize;
    while i + MIN_MATCH <= data.len() {
        while ins < i.min(insertable + 1) {
            let h = hash4(data, ins);
            chain[ins] = head[h];
            head[h] = ins;
            ins += 1;
        }
        let (len, src) = best_match(data, &head, &chain, i);
        // A minimum-length match only pays once its offset bytes stop
        // costing more than the literals it replaces.
        if len < MIN_MATCH || (len == MIN_MATCH && i - src > 1024) {
            i += 1;
            continue;
        }
        // Lazy step: if the next position holds a longer match, emit
        // this byte as a literal and take the better match there.
        if i + 1 + MIN_MATCH <= data.len() {
            let h = hash4(data, i);
            chain[i] = head[h];
            head[h] = i;
            ins = i + 1;
            let (next_len, _) = best_match(data, &head, &chain, i + 1);
            if next_len > len {
                i += 1;
                continue;
            }
        }
        push_literals(&mut out, data, lit_start, i);
        out.push((len + 28) as u8);
        out.extend_from_slice(&((i - src) as u16).to_le_bytes());
        i += len;
        lit_start = i;
    }
    push_literals(&mut out, data, lit_start, data.len());
    out
}

/// Decodes an LZ token stream into exactly `declared_len` bytes.
fn lz_decode(mut tokens: &[u8], declared_len: usize) -> io::Result<Vec<u8>> {
    let mut out = Vec::with_capacity(declared_len);
    while let Some((&t, rest)) = tokens.split_first() {
        tokens = rest;
        if t < 32 {
            let run = if t < 31 {
                t as usize + 1
            } else {
                let long = read_varint(&mut tokens)
                    .map_err(|e| invalid(format!("literal run length: {e}")))?;
                usize::try_from(long)
                    .ok()
                    .and_then(|l| l.checked_add(32))
                    .ok_or_else(|| invalid("literal run length overflows"))?
            };
            if run > tokens.len() {
                return Err(invalid("literal run past end of token stream"));
            }
            if out.len() + run > declared_len {
                return Err(invalid("output exceeds declared length"));
            }
            out.extend_from_slice(&tokens[..run]);
            tokens = &tokens[run..];
        } else {
            let len = t as usize - 28;
            if tokens.len() < 2 {
                return Err(invalid("match offset cut short"));
            }
            let offset = u16::from_le_bytes([tokens[0], tokens[1]]) as usize;
            tokens = &tokens[2..];
            if offset == 0 || offset > out.len() {
                return Err(invalid(format!(
                    "match offset {offset} outside {} decoded bytes",
                    out.len()
                )));
            }
            if out.len() + len > declared_len {
                return Err(invalid("output exceeds declared length"));
            }
            // Matches may overlap their own output (offset < len), so
            // copy byte-wise from the back of `out`.
            let start = out.len() - offset;
            for k in 0..len {
                let byte = out[start + k];
                out.push(byte);
            }
        }
    }
    if out.len() != declared_len {
        return Err(invalid(format!(
            "token stream produced {} of {declared_len} declared bytes",
            out.len()
        )));
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Huffman stage
// ---------------------------------------------------------------------

/// Computes length-limited (≤ [`MAX_CODE_BITS`]) code lengths for the
/// byte frequencies in `freq`. Absent symbols get length 0.
fn code_lengths(freq: &[u64; 256]) -> [u8; 256] {
    let mut lengths = [0u8; 256];
    let used: Vec<usize> = (0..256).filter(|&s| freq[s] > 0).collect();
    match used.len() {
        0 => return lengths,
        1 => {
            // A single-symbol alphabet still needs one bit per symbol so
            // the bitstream has a defined length.
            lengths[used[0]] = 1;
            return lengths;
        }
        _ => {}
    }
    // Standard heap-free Huffman over a sorted leaf array.
    #[derive(Clone, Copy)]
    struct Node {
        weight: u64,
        // Leaf: symbol index. Internal: left/right into `nodes`.
        symbol: Option<usize>,
        children: Option<(usize, usize)>,
    }
    let mut nodes: Vec<Node> = used
        .iter()
        .map(|&s| Node {
            weight: freq[s],
            symbol: Some(s),
            children: None,
        })
        .collect();
    let mut live: Vec<usize> = (0..nodes.len()).collect();
    while live.len() > 1 {
        live.sort_by(|&a, &b| nodes[b].weight.cmp(&nodes[a].weight));
        let x = live.pop().unwrap();
        let y = live.pop().unwrap();
        nodes.push(Node {
            weight: nodes[x].weight.saturating_add(nodes[y].weight),
            symbol: None,
            children: Some((x, y)),
        });
        live.push(nodes.len() - 1);
    }
    // Depth-first walk assigns raw (unlimited) depths.
    let mut stack = vec![(live[0], 0u32)];
    while let Some((n, depth)) = stack.pop() {
        if let Some(s) = nodes[n].symbol {
            lengths[s] = depth.clamp(1, 255) as u8;
        } else if let Some((l, r)) = nodes[n].children {
            stack.push((l, depth + 1));
            stack.push((r, depth + 1));
        }
    }
    // Length-limit: clamp overlong codes, then restore the Kraft
    // inequality by deepening the shallowest-affordable codes.
    for s in &used {
        lengths[*s] = lengths[*s].min(MAX_CODE_BITS as u8);
    }
    let kraft = |lengths: &[u8; 256]| -> u64 {
        used.iter()
            .map(|&s| 1u64 << (MAX_CODE_BITS - u32::from(lengths[s])))
            .sum()
    };
    while kraft(&lengths) > 1 << MAX_CODE_BITS {
        // Deepen the deepest code that still has room; there is always
        // one while the sum is oversubscribed.
        let s = *used
            .iter()
            .filter(|&&s| u32::from(lengths[s]) < MAX_CODE_BITS)
            .max_by_key(|&&s| lengths[s])
            .expect("oversubscribed code must have a deepenable symbol");
        lengths[s] += 1;
    }
    lengths
}

/// Canonical code assignment: symbols sorted by (length, value) receive
/// consecutive codes. Returns (code, length) per symbol.
fn canonical_codes(lengths: &[u8; 256]) -> [(u16, u8); 256] {
    let mut codes = [(0u16, 0u8); 256];
    let mut order: Vec<usize> = (0..256).filter(|&s| lengths[s] > 0).collect();
    order.sort_by_key(|&s| (lengths[s], s));
    let mut code = 0u32;
    let mut prev_len = 0u8;
    for s in order {
        code <<= lengths[s] - prev_len;
        prev_len = lengths[s];
        codes[s] = (code as u16, lengths[s]);
        code += 1;
    }
    codes
}

struct BitWriter<'a> {
    out: &'a mut Vec<u8>,
    acc: u64,
    bits: u32,
}

impl BitWriter<'_> {
    fn push(&mut self, code: u16, len: u8) {
        self.acc = (self.acc << len) | u64::from(code);
        self.bits += u32::from(len);
        while self.bits >= 8 {
            self.bits -= 8;
            self.out.push((self.acc >> self.bits) as u8);
        }
    }

    fn finish(self) {
        if self.bits > 0 {
            self.out.push((self.acc << (8 - self.bits)) as u8);
        }
    }
}

/// Huffman-encodes `tokens`; `None` when the encoded form (table
/// included) would not beat storing the tokens raw.
fn huffman_compress(tokens: &[u8]) -> Option<Vec<u8>> {
    let mut freq = [0u64; 256];
    for &b in tokens {
        freq[usize::from(b)] += 1;
    }
    let lengths = code_lengths(&freq);
    let codes = canonical_codes(&lengths);
    let payload_bits: u64 = (0..256).map(|s| freq[s] * u64::from(lengths[s])).sum();
    let mut out = Vec::new();
    let _ = write_varint(&mut out, tokens.len() as u64);
    for pair in lengths.chunks(2) {
        out.push(pair[0] | (pair[1] << 4));
    }
    if out.len() as u64 + payload_bits.div_ceil(8) >= tokens.len() as u64 {
        return None;
    }
    out.reserve(payload_bits.div_ceil(8) as usize);
    let mut bw = BitWriter {
        out: &mut out,
        acc: 0,
        bits: 0,
    };
    for &b in tokens {
        let (code, len) = codes[usize::from(b)];
        bw.push(code, len);
    }
    bw.finish();
    Some(out)
}

/// Canonical-Huffman decoder state built from the stored length table.
struct HuffmanTable {
    /// Per length 1..=15: count of codes and the first canonical code.
    count: [u32; 16],
    first_code: [u32; 16],
    /// Index into `symbols` of the first code of each length.
    first_index: [u32; 16],
    /// Symbols sorted by (length, value).
    symbols: Vec<u8>,
}

impl HuffmanTable {
    fn from_lengths(lengths: &[u8; 256]) -> io::Result<Self> {
        let mut count = [0u32; 16];
        for &l in lengths.iter() {
            if l > 0 {
                count[usize::from(l)] += 1;
            }
        }
        let mut symbols = Vec::with_capacity(count.iter().sum::<u32>() as usize);
        for len in 1..=MAX_CODE_BITS as usize {
            for (s, &l) in lengths.iter().enumerate() {
                if usize::from(l) == len {
                    symbols.push(s as u8);
                }
            }
        }
        if symbols.is_empty() {
            return Err(invalid("huffman table has no symbols"));
        }
        // Reject oversubscribed tables (more codes than the tree has
        // room for); undersubscribed tables are allowed, their unused
        // codes simply decode to an error if they appear.
        let mut first_code = [0u32; 16];
        let mut first_index = [0u32; 16];
        let mut code = 0u32;
        let mut index = 0u32;
        for len in 1..=MAX_CODE_BITS as usize {
            first_code[len] = code;
            first_index[len] = index;
            code = code
                .checked_add(count[len])
                .ok_or_else(|| invalid("huffman table overflows"))?;
            index += count[len];
            if code > 1 << len {
                return Err(invalid("oversubscribed huffman table"));
            }
            code <<= 1;
        }
        Ok(HuffmanTable {
            count,
            first_code,
            first_index,
            symbols,
        })
    }
}

struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    acc: u64,
    bits: u32,
}

impl BitReader<'_> {
    #[inline]
    fn next_bit(&mut self) -> io::Result<u32> {
        if self.bits == 0 {
            if self.pos >= self.data.len() {
                return Err(invalid("huffman bitstream exhausted"));
            }
            self.acc = u64::from(self.data[self.pos]);
            self.pos += 1;
            self.bits = 8;
        }
        self.bits -= 1;
        Ok(((self.acc >> self.bits) & 1) as u32)
    }
}

/// Decodes exactly `lz_len` symbols from the Huffman bitstream.
fn huffman_decode(table: &HuffmanTable, data: &[u8], lz_len: usize) -> io::Result<Vec<u8>> {
    let mut out = Vec::with_capacity(lz_len);
    let mut br = BitReader {
        data,
        pos: 0,
        acc: 0,
        bits: 0,
    };
    for _ in 0..lz_len {
        let mut code = 0u32;
        let mut decoded = false;
        for len in 1..=MAX_CODE_BITS as usize {
            code = (code << 1) | br.next_bit()?;
            let offset = code.wrapping_sub(table.first_code[len]);
            if offset < table.count[len] {
                out.push(table.symbols[(table.first_index[len] + offset) as usize]);
                decoded = true;
                break;
            }
        }
        if !decoded {
            return Err(invalid("invalid huffman code"));
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Public container API
// ---------------------------------------------------------------------

const METHOD_STORED: u8 = 0;
const METHOD_LZ_HUFFMAN: u8 = 1;

/// Compresses `input`. The output is at most `input.len() + 1` bytes
/// (the stored fallback) and decompresses back exactly via
/// [`decompress`] given `input.len()` as the declared length.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let tokens = lz_compress(input);
    if let Some(encoded) = huffman_compress(&tokens) {
        // Only worth it if the whole pipeline beats storing raw input.
        if encoded.len() + 1 < input.len() {
            let mut out = Vec::with_capacity(encoded.len() + 1);
            out.push(METHOD_LZ_HUFFMAN);
            out.extend_from_slice(&encoded);
            return out;
        }
    }
    let mut out = Vec::with_capacity(input.len() + 1);
    out.push(METHOD_STORED);
    out.extend_from_slice(input);
    out
}

/// Decompresses a [`compress`] container into exactly `declared_len`
/// bytes.
///
/// Written for untrusted input: output allocation is capped at
/// `declared_len`, the token scratch buffer at
/// [`max_token_len`]`(declared_len)`, and any stream that is malformed
/// or produces a different length is rejected.
///
/// # Errors
///
/// Returns `InvalidData` for unknown methods, malformed Huffman tables
/// or bitstreams, invalid LZ tokens/offsets, or any output-length
/// mismatch.
pub fn decompress(input: &[u8], declared_len: usize) -> io::Result<Vec<u8>> {
    let Some((&method, body)) = input.split_first() else {
        return Err(invalid("empty compressed payload"));
    };
    match method {
        METHOD_STORED => {
            if body.len() != declared_len {
                return Err(invalid(format!(
                    "stored payload holds {} of {declared_len} declared bytes",
                    body.len()
                )));
            }
            Ok(body.to_vec())
        }
        METHOD_LZ_HUFFMAN => {
            let mut r = body;
            let lz_len = read_varint(&mut r)
                .map_err(|e| invalid(format!("unreadable token-stream length: {e}")))?;
            if lz_len > max_token_len(declared_len) as u64 {
                return Err(invalid(format!(
                    "token-stream length {lz_len} exceeds bound for {declared_len} output bytes"
                )));
            }
            if r.len() < 128 {
                return Err(invalid("huffman length table cut short"));
            }
            let (packed_lengths, bits) = r.split_at(128);
            let mut lengths = [0u8; 256];
            for (i, &b) in packed_lengths.iter().enumerate() {
                lengths[2 * i] = b & 0x0F;
                lengths[2 * i + 1] = b >> 4;
            }
            let table = HuffmanTable::from_lengths(&lengths)?;
            let tokens = huffman_decode(&table, bits, lz_len as usize)?;
            lz_decode(&tokens, declared_len)
        }
        other => Err(invalid(format!("unknown compression method {other}"))),
    }
}

/// [`compress`] through a [`Write`], returning the compressed size.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn compress_to<W: Write>(w: &mut W, input: &[u8]) -> io::Result<usize> {
    let out = compress(input);
    w.write_all(&out)?;
    Ok(out.len())
}

/// Reads `compressed_len` bytes from `r` and decompresses them.
///
/// # Errors
///
/// As [`decompress`], plus read errors.
pub fn decompress_from<R: Read>(
    r: &mut R,
    compressed_len: usize,
    declared_len: usize,
) -> io::Result<Vec<u8>> {
    let mut buf = vec![0u8; compressed_len];
    r.read_exact(&mut buf)?;
    decompress(&buf, declared_len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    fn roundtrip(data: &[u8]) {
        let compressed = compress(data);
        assert!(
            compressed.len() <= data.len() + 1,
            "{} bytes compressed to {}",
            data.len(),
            compressed.len()
        );
        let restored = decompress(&compressed, data.len()).unwrap();
        assert_eq!(restored, data);
    }

    #[test]
    fn roundtrips_basic_inputs() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abcabcabcabcabcabcabcabc");
        roundtrip(&[0u8; 10_000]);
        roundtrip(
            "the quick brown fox jumps over the lazy dog "
                .repeat(100)
                .as_bytes(),
        );
    }

    #[test]
    fn roundtrips_random_and_structured() {
        let mut rng = SplitMix64::new(42);
        let random: Vec<u8> = (0..50_000).map(|_| rng.next_u64() as u8).collect();
        roundtrip(&random);
        let structured: Vec<u8> = (0..50_000u32).flat_map(|i| (i / 7).to_le_bytes()).collect();
        roundtrip(&structured);
        // Overlapping-match territory: short period repeats.
        let periodic: Vec<u8> = (0..10_000).map(|i| (i % 3) as u8).collect();
        roundtrip(&periodic);
    }

    #[test]
    fn compresses_redundant_input() {
        let data = b"abcdefgh".repeat(4096);
        let compressed = compress(&data);
        assert!(
            compressed.len() < data.len() / 8,
            "{} -> {}",
            data.len(),
            compressed.len()
        );
    }

    #[test]
    fn wrong_declared_length_rejected() {
        let data = b"hello world hello world hello world".to_vec();
        let compressed = compress(&data);
        assert!(decompress(&compressed, data.len() + 1).is_err());
        assert!(decompress(&compressed, data.len() - 1).is_err());
    }

    #[test]
    fn malformed_streams_are_typed_errors() {
        assert!(decompress(&[], 0).is_err());
        assert!(decompress(&[7, 1, 2, 3], 3).is_err(), "unknown method");
        assert!(decompress(&[1], 10).is_err(), "missing token length");
        assert!(decompress(&[1, 200], 10).is_err(), "truncated varint");
        // Declared token stream far beyond the output bound.
        let mut bomb = vec![1u8];
        crate::io::write_varint(&mut bomb, u64::MAX / 2).unwrap();
        bomb.extend_from_slice(&[0u8; 200]);
        assert!(decompress(&bomb, 10).is_err());
    }

    #[test]
    fn corrupted_bytes_never_panic() {
        let data = b"some moderately compressible payload ".repeat(64);
        let compressed = compress(&data);
        let mut rng = SplitMix64::new(7);
        for _ in 0..500 {
            let mut bad = compressed.clone();
            let at = (rng.next_u64() as usize) % bad.len();
            bad[at] ^= 1 << (rng.next_u64() % 8);
            // Either decodes to *something* of the right length or
            // errors; must never panic or over-allocate.
            if let Ok(out) = decompress(&bad, data.len()) {
                assert_eq!(out.len(), data.len());
            }
        }
    }

    #[test]
    fn truncation_never_panics() {
        let data = b"truncation probe ".repeat(256);
        let compressed = compress(&data);
        for cut in 0..compressed.len() {
            let _ = decompress(&compressed[..cut], data.len());
        }
    }
}
