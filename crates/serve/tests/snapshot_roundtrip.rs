//! Property tests of the `DFCMSNAP1` snapshot format.
//!
//! Mirrors `crates/trace/tests/fuzz_decode.rs`: round-trips must be
//! exact for every predictor kind and arbitrary warm-up streams, and no
//! truncation or bit flip may panic the decoder or smuggle altered state
//! into a restored session.

use dfcm::ValuePredictor;
use dfcm_serve::{decode_snapshot, encode_snapshot, SessionRecord, SessionStore};
use dfcm_sim::StreamPredictor;
use proptest::prelude::*;

const SPECS: &[&str] = &["lvp:4", "stride:4", "2delta:4", "fcm:4:6", "dfcm:4:6"];

fn arb_stream() -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec((0u64..32, 0u64..100_000), 0..200).prop_map(|v| {
        v.into_iter()
            .map(|(pc, value)| (0x40_0000 + pc * 4, value))
            .collect()
    })
}

/// Builds one warmed session record per predictor kind from the stream.
fn warmed_records(stream: &[(u64, u64)]) -> Vec<SessionRecord> {
    SPECS
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let mut predictor = StreamPredictor::parse_spec(spec).unwrap();
            for &(pc, value) in stream {
                predictor.access(pc, value);
            }
            SessionRecord {
                id: i as u64 + 1,
                last_seq: stream.len() as u64,
                last_reply: vec![i as u8; i],
                spec: (*spec).to_owned(),
                words: predictor.state_words(),
            }
        })
        .collect()
}

proptest! {
    /// Serialize → decode → re-encode is byte-identical, and restoring
    /// into a store reproduces the same records, for every predictor
    /// kind and any warm-up stream.
    #[test]
    fn snapshot_round_trips_for_every_predictor_kind(stream in arb_stream()) {
        let records = warmed_records(&stream);
        let bytes = encode_snapshot(&records);
        let (decoded, report) = decode_snapshot(&bytes).unwrap();
        prop_assert!(report.clean_end);
        prop_assert_eq!(report.restored, records.len());
        prop_assert_eq!(&decoded, &records);
        prop_assert_eq!(encode_snapshot(&decoded), bytes);

        // Materializing through a live store keeps state identical too.
        let store = SessionStore::new("lvp:4", 64).unwrap();
        prop_assert_eq!(store.restore(&decoded), records.len());
        prop_assert_eq!(store.records(), records);
    }

    /// Behavioural equivalence: a predictor restored from snapshot words
    /// produces the same outcomes as the original on a continuation.
    #[test]
    fn restored_predictors_behave_identically(stream in arb_stream()) {
        for spec in SPECS {
            let mut original = StreamPredictor::parse_spec(spec).unwrap();
            for &(pc, value) in &stream {
                original.access(pc, value);
            }
            let mut restored = StreamPredictor::parse_spec(spec).unwrap();
            restored.load_state_words(&original.state_words()).unwrap();
            for i in 0..50u64 {
                let (pc, value) = (0x40_0000 + (i % 16) * 4, i.wrapping_mul(31) % 1000);
                let a = original.access(pc, value);
                let b = restored.access(pc, value);
                prop_assert_eq!(a.predicted, b.predicted);
                prop_assert_eq!(a.correct, b.correct);
            }
        }
    }

    /// Any truncation salvages a prefix of intact sessions and never
    /// panics.
    #[test]
    fn truncation_salvages_a_prefix(stream in arb_stream(), cut_frac in 0.0f64..1.0) {
        let records = warmed_records(&stream);
        let bytes = encode_snapshot(&records);
        let cut = (bytes.len() as f64 * cut_frac) as usize;
        match decode_snapshot(&bytes[..cut.min(bytes.len())]) {
            Ok((decoded, _)) => {
                // Salvaged sessions must be a bit-identical prefix.
                prop_assert!(decoded.len() <= records.len());
                for (d, r) in decoded.iter().zip(&records) {
                    prop_assert_eq!(d, r);
                }
            }
            Err(_) => {
                // Only a cut inside the magic may be fatal.
                prop_assert!(cut < 9);
            }
        }
    }

    /// Any single bit flip either drops sections or leaves only
    /// bit-identical sessions — never an altered one (mirrors the trace
    /// fuzz harness's integrity property).
    #[test]
    fn bit_flips_cannot_corrupt_restored_sessions(
        stream in arb_stream(),
        byte_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let records = warmed_records(&stream);
        let bytes = encode_snapshot(&records);
        let idx = 9 + ((bytes.len() - 10) as f64 * byte_frac) as usize;
        let mut bad = bytes.clone();
        bad[idx] ^= 1 << bit;
        if let Ok((decoded, _)) = decode_snapshot(&bad) {
            for d in &decoded {
                prop_assert!(
                    records.iter().any(|r| r == d),
                    "flip at byte {} restored an altered session", idx
                );
            }
        }
    }
}
