//! End-to-end chaos tests: faults, overload, deadlines, panic
//! isolation, and the kill-and-restart drill.
//!
//! Every test runs a real daemon on a loopback socket. Fault injection
//! is deterministic ([`FaultPlan`] seeded), so failures reproduce.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use dfcm::ValuePredictor;
use dfcm_serve::protocol::{encode_frame, read_frame, Reply, Request};
use dfcm_serve::{
    run_loadgen, LoadGenConfig, ServeClient, ServeConfig, ServeLimits, Server, ServerHandle,
};
use dfcm_sim::engine::{RetryPolicy, TaskError};
use dfcm_sim::{FaultPlan, StreamPredictor};
use dfcm_trace::{Trace, TraceRecord};

/// Starts a daemon and returns its address, handle, and join handle.
fn start_server(
    config: ServeConfig,
) -> (
    std::net::SocketAddr,
    ServerHandle,
    std::thread::JoinHandle<dfcm_serve::ShutdownReport>,
) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle, join)
}

fn mixed_trace(n: u64) -> Trace {
    (0..n)
        .map(|i| {
            TraceRecord::new(
                0x40_0000 + 4 * (i % 23),
                (i / 3).wrapping_mul(13).wrapping_sub(i % 5),
            )
        })
        .collect()
}

fn quick_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 10,
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(50),
    }
}

#[test]
fn clean_load_is_fully_acked_and_verified() {
    let (addr, handle, join) = start_server(ServeConfig::new("dfcm:6:8"));
    let trace = mixed_trace(300);
    let mut config = LoadGenConfig::new(addr, 3, "dfcm:6:8");
    config.retry = quick_retry();
    let report = run_loadgen(&config, &trace).expect("loadgen");
    assert_eq!(report.failed, 0, "clean run must ack everything");
    assert_eq!(report.corrupted, 0);
    assert_eq!(report.acked, report.requests);
    assert_eq!(report.verified, report.requests);
    assert!(report.throughput_rps > 0.0);
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn chaos_load_with_all_fault_kinds_loses_nothing() {
    let (addr, handle, join) = start_server(ServeConfig::new("stride:6"));
    let trace = mixed_trace(200);
    let mut config = LoadGenConfig::new(addr, 2, "stride:6");
    config.session_base = 100;
    config.retry = quick_retry();
    // ~5% connection drops, ~3% corrupt frames, ~2% slow-loris stalls.
    config.faults = Some(
        FaultPlan::new(42)
            .with_panics(50)
            .with_transient_io(30)
            .with_delays(20, Duration::from_millis(10)),
    );
    let report = run_loadgen(&config, &trace).expect("loadgen");
    assert_eq!(
        report.failed, 0,
        "transient chaos must be absorbed by retries"
    );
    assert_eq!(report.corrupted, 0, "acked replies must match the shadow");
    assert_eq!(report.acked, report.requests);
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn overload_sheds_with_an_explicit_reply() {
    let mut config = ServeConfig::new("lvp:4");
    config.limits = ServeLimits {
        queue_depth: 1,
        workers: 1,
        ..ServeLimits::default()
    };
    let (addr, handle, join) = start_server(config);

    // First connection occupies the single live slot.
    let _held = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(120));
    // The next connection must be shed with Overloaded, not left to
    // stall.
    let mut refused = TcpStream::connect(addr).unwrap();
    refused
        .set_read_timeout(Some(Duration::from_secs(2)))
        .unwrap();
    let payload = read_frame(&mut refused).expect("shed reply");
    assert_eq!(Reply::decode(&payload).unwrap(), Reply::Overloaded);
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn slow_processing_trips_the_request_deadline() {
    let mut config = ServeConfig::new("lvp:4");
    config.process_delay = Duration::from_millis(30);
    config.limits.request_deadline = Duration::from_millis(5);
    let (addr, handle, join) = start_server(config);

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(2)))
        .unwrap();
    let request = Request::Update {
        session: 1,
        seq: 1,
        pc: 0x40_0000,
        value: 9,
    };
    stream.write_all(&encode_frame(&request.encode())).unwrap();
    let payload = read_frame(&mut stream).expect("deadline reply");
    assert_eq!(
        Reply::decode(&payload).unwrap(),
        Reply::DeadlineExceeded { seq: 1 }
    );
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn a_panicking_session_poisons_only_itself() {
    let (addr, handle, join) = start_server(ServeConfig::new("lvp:4"));
    let mut victim = ServeClient::new(addr, 7, quick_retry());
    let mut bystander = ServeClient::new(addr, 8, quick_retry());

    bystander.update(0x40_0000, 1).expect("healthy before");
    victim.debug_panic().expect("panic injection");
    // The victim's session is quarantined...
    match victim.update(0x40_0000, 2) {
        Err(TaskError::Permanent(msg)) => assert!(msg.contains("poisoned"), "{msg}"),
        other => panic!("expected poisoned session, got {other:?}"),
    }
    // ...while the bystander (and the daemon) keep serving.
    bystander.update(0x40_0000, 3).expect("healthy after");
    handle.shutdown();
    let report = join.join().unwrap();
    // The poisoned session is not snapshotted.
    assert_eq!(report.sessions, 1);
}

#[test]
fn duplicate_seq_replays_the_cached_reply_without_reapplying() {
    let (addr, handle, join) = start_server(ServeConfig::new("lvp:4"));
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(2)))
        .unwrap();
    let update = Request::Update {
        session: 5,
        seq: 1,
        pc: 0x40_0000,
        value: 77,
    };
    let frame = encode_frame(&update.encode());
    stream.write_all(&frame).unwrap();
    let first = read_frame(&mut stream).unwrap();
    // Retransmit the identical request (a retry after a lost ack).
    stream.write_all(&frame).unwrap();
    let second = read_frame(&mut stream).unwrap();
    assert_eq!(first, second, "replayed reply must be byte-identical");
    // The update applied once: a predict still sees 77, and the first
    // reply reported the pre-update prediction of 0.
    assert_eq!(
        Reply::decode(&first).unwrap(),
        Reply::Updated {
            seq: 1,
            predicted: 0,
            correct: false
        }
    );
    let predict = Request::Predict {
        session: 5,
        seq: 2,
        pc: 0x40_0000,
    };
    stream.write_all(&encode_frame(&predict.encode())).unwrap();
    let payload = read_frame(&mut stream).unwrap();
    assert_eq!(
        Reply::decode(&payload).unwrap(),
        Reply::Predicted { seq: 2, value: 77 }
    );
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn malformed_frames_are_rejected_and_the_connection_closed() {
    let (addr, handle, join) = start_server(ServeConfig::new("lvp:4"));
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(2)))
        .unwrap();
    let mut frame = encode_frame(&Request::Stats.encode());
    let last = frame.len() - 1;
    frame[last] ^= 0x80;
    stream.write_all(&frame).unwrap();
    let payload = read_frame(&mut stream).expect("malformed reply");
    assert_eq!(Reply::decode(&payload).unwrap(), Reply::Malformed);
    // The server closes after a malformed frame.
    assert!(read_frame(&mut stream).is_err());
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn stats_frame_returns_prometheus_text() {
    let mut config = ServeConfig::new("lvp:4");
    config.obs = dfcm_obs::Obs::enabled();
    let (addr, handle, join) = start_server(config);
    let mut client = ServeClient::new(addr, 1, quick_retry());
    client.update(0x40_0000, 5).unwrap();
    let text = client.stats().expect("stats");
    assert!(
        text.contains("serve_requests"),
        "prometheus text should carry request counters:\n{text}"
    );
    // The scrape adds rolling-window latency percentiles and per-spec
    // session telemetry, all rendered by the one dfcm-obs formatter, so
    // the whole exposition must parse.
    let samples = dfcm_obs::summary::parse_prometheus(&text).expect("valid exposition");
    let quantiles: Vec<f64> = samples
        .iter()
        .filter(|(n, _, _)| n == "serve_recent_request_us")
        .map(|(_, _, v)| *v)
        .collect();
    assert_eq!(quantiles.len(), 4, "p50/p90/p99/max:\n{text}");
    let live = samples
        .iter()
        .find(|(n, l, _)| {
            n == "serve_live_sessions" && l.contains(&("spec".into(), "lvp:4".into()))
        })
        .expect("live session telemetry");
    assert_eq!(live.2, 1.0);
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn stats_frame_works_without_obs() {
    // The rolling window and session telemetry are independent of the
    // obs handle: an uninstrumented daemon still serves a useful scrape.
    let (addr, handle, join) = start_server(ServeConfig::new("stride:4"));
    let mut client = ServeClient::new(addr, 9, quick_retry());
    client.update(0x40_0000, 5).unwrap();
    let text = client.stats().expect("stats");
    let samples = dfcm_obs::summary::parse_prometheus(&text).expect("valid exposition");
    assert!(samples
        .iter()
        .any(|(n, _, _)| n == "serve_recent_request_us"));
    assert!(samples
        .iter()
        .any(|(n, _, v)| n == "serve_recent_window" && *v >= 1.0));
    handle.shutdown();
    join.join().unwrap();
}

/// The kill-and-restart drill: load, SIGTERM-style graceful shutdown
/// with a snapshot, restart from the snapshot, continue the load — the
/// served predictions must equal an uninterrupted local run, and a
/// re-snapshot of the restored state must be byte-identical.
#[test]
fn kill_and_restart_preserves_state_byte_identically() {
    let dir = std::env::temp_dir().join(format!("dfcm_serve_drill_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snap_path = dir.join("sessions.snap");
    let spec = "dfcm:6:8";
    let session = 42u64;
    let trace = mixed_trace(400);
    let (first_half, second_half) = trace.records().split_at(200);

    // Phase 1: serve the first half, then shut down gracefully.
    let mut config = ServeConfig::new(spec);
    config.snapshot_path = Some(snap_path.clone());
    let (addr, handle, join) = start_server(config.clone());
    let mut client = ServeClient::new(addr, session, quick_retry());
    let mut reference = StreamPredictor::parse_spec(spec).unwrap();
    for record in first_half {
        let (predicted, correct) = client.update(record.pc, record.value).expect("phase 1");
        let expected = reference.access(record.pc, record.value);
        assert_eq!((predicted, correct), (expected.predicted, expected.correct));
    }
    handle.shutdown();
    let report = join.join().unwrap();
    assert_eq!(report.sessions, 1);
    assert!(report.snapshot_bytes > 0);
    let snapshot_at_kill = std::fs::read(&snap_path).unwrap();

    // Phase 2: restart from the snapshot and continue the trace. The
    // server must behave as if it never died.
    let (addr2, handle2, join2) = start_server(config);
    let mut client2 = ServeClient::new(addr2, session, quick_retry());
    // A fresh client's seqs restart at 1; the restored session replays
    // only on an exact last-seq match, so request 1 processes normally.
    for record in second_half {
        let (predicted, correct) = client2.update(record.pc, record.value).expect("phase 2");
        let expected = reference.access(record.pc, record.value);
        assert_eq!(
            (predicted, correct),
            (expected.predicted, expected.correct),
            "restored server diverged from the uninterrupted reference"
        );
    }
    handle2.shutdown();
    let report2 = join2.join().unwrap();
    assert_eq!(report2.restored, 1, "snapshot restore must have happened");

    // Byte-identity: restoring the kill-time snapshot and immediately
    // re-snapshotting reproduces it exactly.
    let (records, salvage) = dfcm_serve::decode_snapshot(&snapshot_at_kill).unwrap();
    assert!(salvage.clean_end);
    assert_eq!(dfcm_serve::encode_snapshot(&records), snapshot_at_kill);

    let _ = std::fs::remove_dir_all(&dir);
}
