//! The chaos-driven load generator.
//!
//! Replays a trace against a running daemon as N concurrent client
//! sessions and verifies every acknowledged reply against a local
//! *shadow predictor*: each client simulates the exact predictor the
//! server holds for its session, so a corrupted ack — wrong value, lost
//! update, double-applied update — is detected as a shadow mismatch, not
//! just a transport error.
//!
//! Faults are injected deterministically from the simulation engine's
//! [`FaultPlan`], mapped onto serving-shaped chaos:
//!
//! * `Panic` → drop the connection before the request (forces reconnect
//!   + seq-replay),
//! * `TransientIo` → send a corrupt frame first (forces the server's
//!   CRC reject + connection close),
//! * `Delay` → a slow-loris stats exchange (forces partial-frame
//!   buffering on the server).
//!
//! The real request always follows the injected fault, so a run with
//! faults must still end with `failed == 0 && corrupted == 0` — the
//! zero-loss property the CI chaos smoke gates on.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use dfcm::ValuePredictor;
use dfcm_obs::json::JsonObj;
use dfcm_obs::metrics::Histogram;
use dfcm_sim::engine::RetryPolicy;
use dfcm_sim::{FaultPlan, InjectedFault, StreamPredictor};
use dfcm_trace::Trace;

use crate::client::ServeClient;
use crate::server::REQUEST_US_BOUNDS;

/// Load-generation parameters.
#[derive(Debug, Clone)]
pub struct LoadGenConfig {
    /// Daemon address.
    pub addr: SocketAddr,
    /// Concurrent client sessions.
    pub clients: usize,
    /// First session id; client `i` uses `session_base + i`. Use fresh
    /// ids per run so shadow verification starts from a cold session.
    pub session_base: u64,
    /// Predictor spec the server creates sessions with — the shadow
    /// predictors must match it for verification to be meaningful.
    pub spec: String,
    /// Deterministic fault plan; `None` for a clean run.
    pub faults: Option<FaultPlan>,
    /// Retry policy for each request.
    pub retry: RetryPolicy,
}

impl LoadGenConfig {
    /// A clean (fault-free) plan for `clients` sessions against `addr`.
    pub fn new(addr: SocketAddr, clients: usize, spec: &str) -> Self {
        LoadGenConfig {
            addr,
            clients,
            session_base: 1,
            spec: spec.to_owned(),
            faults: None,
            retry: RetryPolicy {
                max_attempts: 8,
                base_backoff: Duration::from_millis(10),
                max_backoff: Duration::from_millis(500),
            },
        }
    }
}

/// Aggregated results of one load-generation run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadGenReport {
    /// Client sessions driven.
    pub clients: usize,
    /// Requests attempted (clients × trace records).
    pub requests: u64,
    /// Requests acknowledged by the server.
    pub acked: u64,
    /// Requests never acknowledged after all retries.
    pub failed: u64,
    /// Acknowledged replies that contradicted the shadow predictor.
    pub corrupted: u64,
    /// Acknowledged replies that were shadow-verified (verification
    /// stops for a client after its first failed request, because the
    /// server may or may not have applied it).
    pub verified: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Acknowledged-request throughput.
    pub throughput_rps: f64,
    /// Latency percentiles over acknowledged requests, microseconds.
    pub p50_us: u64,
    /// 99th percentile latency.
    pub p99_us: u64,
    /// Maximum latency.
    pub max_us: u64,
    /// Full latency histogram (bounds = `REQUEST_US_BOUNDS`).
    pub histogram: Histogram,
}

/// Replays `trace` through `config.clients` concurrent sessions.
///
/// Each client drives its own session (`session_base + i`) over the full
/// trace with a shadow predictor checking every ack. Fault injection is
/// deterministic in (client, request index), so two runs with the same
/// config and trace inject exactly the same chaos.
///
/// # Errors
///
/// Returns the shadow spec parse error, if any; per-request failures are
/// counted in the report, not returned.
pub fn run_loadgen(config: &LoadGenConfig, trace: &Trace) -> Result<LoadGenReport, String> {
    // Fail fast on a bad spec before spawning anything.
    StreamPredictor::parse_spec(&config.spec).map_err(|e| e.to_string())?;
    let started = Instant::now();
    let results: Vec<ClientStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.clients)
            .map(|i| scope.spawn(move || drive_client(config, trace, i)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect()
    });
    let elapsed = started.elapsed();

    let mut report = LoadGenReport {
        clients: config.clients,
        requests: (config.clients * trace.len()) as u64,
        acked: 0,
        failed: 0,
        corrupted: 0,
        verified: 0,
        elapsed,
        throughput_rps: 0.0,
        p50_us: 0,
        p99_us: 0,
        max_us: 0,
        histogram: Histogram::new(REQUEST_US_BOUNDS),
    };
    let mut latencies: Vec<u64> = Vec::new();
    for stats in results {
        report.acked += stats.acked;
        report.failed += stats.failed;
        report.corrupted += stats.corrupted;
        report.verified += stats.verified;
        latencies.extend(stats.latencies_us);
    }
    latencies.sort_unstable();
    for &us in &latencies {
        report.histogram.observe(us as f64);
    }
    if let Some(&max) = latencies.last() {
        report.max_us = max;
        report.p50_us = percentile(&latencies, 0.50);
        report.p99_us = percentile(&latencies, 0.99);
    }
    if !elapsed.is_zero() {
        report.throughput_rps = report.acked as f64 / elapsed.as_secs_f64();
    }
    Ok(report)
}

#[derive(Debug, Default)]
struct ClientStats {
    acked: u64,
    failed: u64,
    corrupted: u64,
    verified: u64,
    latencies_us: Vec<u64>,
}

fn drive_client(config: &LoadGenConfig, trace: &Trace, index: usize) -> ClientStats {
    let mut client = ServeClient::new(
        config.addr,
        config.session_base + index as u64,
        config.retry.clone(),
    );
    let mut shadow = StreamPredictor::parse_spec(&config.spec).expect("spec pre-validated");
    let mut stats = ClientStats::default();
    let mut verifying = true;
    for (i, record) in trace.records().iter().enumerate() {
        if let Some(plan) = &config.faults {
            // Spread fault rolls across clients deterministically: the
            // plan is indexed by a (client, request) pairing.
            let roll = index * 1_000_003 + i;
            match plan.fault_for(roll, 0) {
                Some(InjectedFault::Panic) => client.drop_connection(),
                Some(InjectedFault::TransientIo) => client.send_corrupt_frame(),
                Some(InjectedFault::Delay(stall)) => {
                    let _ = client.slow_stats(stall);
                }
                None => {}
            }
        }
        let sent = Instant::now();
        match client.update(record.pc, record.value) {
            Ok((predicted, correct)) => {
                stats.acked += 1;
                stats
                    .latencies_us
                    .push(sent.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
                if verifying {
                    let expected = shadow.access(record.pc, record.value);
                    stats.verified += 1;
                    if expected.predicted != predicted || expected.correct != correct {
                        stats.corrupted += 1;
                    }
                }
            }
            Err(_) => {
                // The server may or may not have applied this update
                // (the ack could have been lost), so the shadow can no
                // longer be trusted for later requests.
                stats.failed += 1;
                verifying = false;
            }
        }
    }
    stats
}

pub(crate) fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Renders the report as one `dfcm-bench-serve/v1` JSON object (the
/// `BENCH_serve.json` schema validated by `dfcm-tools bench check`).
pub fn bench_json(report: &LoadGenReport) -> String {
    JsonObj::new()
        .str("schema", "dfcm-bench-serve/v1")
        .u64("clients", report.clients as u64)
        .u64("requests", report.requests)
        .u64("acked", report.acked)
        .u64("failed", report.failed)
        .u64("corrupted", report.corrupted)
        .u64("verified", report.verified)
        .f64("elapsed_s", report.elapsed.as_secs_f64(), 6)
        .f64("throughput_rps", report.throughput_rps, 1)
        .u64("p50_us", report.p50_us)
        .u64("p99_us", report.p99_us)
        .u64("max_us", report.max_us)
        .finish()
}

/// Renders the latency histogram as JSONL lines (one bucket per line),
/// for the CI artifact upload.
pub fn histogram_jsonl(report: &LoadGenReport) -> Vec<String> {
    let mut lines = Vec::with_capacity(report.histogram.bounds.len() + 1);
    for (i, bound) in report.histogram.bounds.iter().enumerate() {
        lines.push(
            JsonObj::new()
                .f64("le_us", *bound, 1)
                .u64("count", report.histogram.cumulative(i))
                .finish(),
        );
    }
    lines.push(
        JsonObj::new()
            .str("le_us", "+Inf")
            .u64("count", report.histogram.count)
            .finish(),
    );
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_on_small_sets() {
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.99), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.50), 51);
        assert_eq!(percentile(&v, 0.99), 99);
    }

    #[test]
    fn bench_json_is_parseable_and_schema_tagged() {
        let report = LoadGenReport {
            clients: 2,
            requests: 10,
            acked: 10,
            failed: 0,
            corrupted: 0,
            verified: 10,
            elapsed: Duration::from_millis(5),
            throughput_rps: 2000.0,
            p50_us: 40,
            p99_us: 90,
            max_us: 95,
            histogram: Histogram::new(REQUEST_US_BOUNDS),
        };
        let json = bench_json(&report);
        let parsed = dfcm_obs::json::parse(&json).unwrap();
        assert_eq!(
            parsed.get("schema").and_then(|v| v.as_str()),
            Some("dfcm-bench-serve/v1")
        );
        assert_eq!(parsed.get("acked").and_then(|v| v.as_u64()), Some(10));
        for line in histogram_jsonl(&report) {
            dfcm_obs::json::parse(&line).unwrap();
        }
    }
}
