//! The wire protocol: length-prefixed, CRC-checked binary frames.
//!
//! Every message — request or reply — travels as one frame:
//!
//! ```text
//! payload_len: u32 LE | crc32(payload): u32 LE | payload
//! ```
//!
//! The CRC is the same polynomial the `DFCMTRC2` trace format uses
//! ([`dfcm_trace::crc::crc32`]), so a bit flip anywhere in the payload is
//! detected before any field is interpreted. Payload fields are LEB128
//! varints (shared with the trace codec); multi-byte fixed-width integers
//! appear only in the frame header.
//!
//! Requests carry a `(session, seq)` pair. Sequence numbers are the
//! exactly-once mechanism: the server remembers each session's last
//! processed `seq` and replays the cached reply when it sees the same
//! `seq` again, so a client that lost an ack can safely retry without
//! double-applying an update.

use std::io::{self, Read, Write};

use dfcm_trace::crc::crc32;
use dfcm_trace::{read_varint, write_varint};

/// Hard upper bound on a frame payload; anything longer is rejected
/// before allocation. Stats dumps are the largest legitimate payload and
/// stay far below this.
pub const MAX_FRAME_BYTES: u32 = 1 << 20;

/// A request frame payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Read the prediction for `pc` without updating any state.
    Predict {
        /// Client session id.
        session: u64,
        /// Per-session sequence number (starts at 1).
        seq: u64,
        /// Program counter to predict for.
        pc: u64,
    },
    /// Fused predict-and-train on the observed `value` (the serving
    /// analogue of [`dfcm::ValuePredictor::access`]).
    Update {
        /// Client session id.
        session: u64,
        /// Per-session sequence number (starts at 1).
        seq: u64,
        /// Program counter.
        pc: u64,
        /// The value the instruction actually produced.
        value: u64,
    },
    /// Ask the server to write a snapshot to its configured path.
    Snapshot,
    /// Fetch the server metrics rendered as Prometheus text.
    Stats,
    /// Chaos hook: panic inside the worker while holding the session —
    /// exercises the fault-isolation path (the session is poisoned, the
    /// server survives).
    DebugPanic {
        /// Session to poison.
        session: u64,
        /// Sequence number (echoed in the poisoned reply).
        seq: u64,
    },
}

/// A reply frame payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// Prediction for a [`Request::Predict`].
    Predicted {
        /// Echo of the request seq.
        seq: u64,
        /// The predicted value.
        value: u64,
    },
    /// Outcome of a [`Request::Update`].
    Updated {
        /// Echo of the request seq.
        seq: u64,
        /// The value that was predicted before training.
        predicted: u64,
        /// Whether the prediction matched the observed value.
        correct: bool,
    },
    /// Prometheus-rendered metrics text.
    StatsText(String),
    /// Snapshot written; payload is its size in bytes.
    SnapshotDone(u64),
    /// The connection queue was full; the request was shed, not queued.
    /// Retry after backoff.
    Overloaded,
    /// The frame failed its CRC or did not parse. The server closes the
    /// connection after sending this.
    Malformed,
    /// The per-request deadline expired before the request was processed.
    DeadlineExceeded {
        /// Echo of the request seq.
        seq: u64,
    },
    /// The server is draining for shutdown; reconnect later.
    ShuttingDown,
    /// The session was poisoned by an earlier panic; its state is
    /// quarantined and requests against it fail permanently.
    Poisoned {
        /// Echo of the request seq.
        seq: u64,
    },
    /// A server-side operation (e.g. an on-demand snapshot write)
    /// failed; retrying may help.
    Failed,
}

const OP_PREDICT: u8 = 1;
const OP_UPDATE: u8 = 2;
const OP_SNAPSHOT: u8 = 3;
const OP_STATS: u8 = 4;
const OP_DEBUG_PANIC: u8 = 5;

const ST_PREDICTED: u8 = 0;
const ST_UPDATED: u8 = 1;
const ST_STATS: u8 = 2;
const ST_SNAPSHOT_DONE: u8 = 3;
const ST_OVERLOADED: u8 = 4;
const ST_MALFORMED: u8 = 5;
const ST_DEADLINE: u8 = 6;
const ST_SHUTTING_DOWN: u8 = 7;
const ST_POISONED: u8 = 8;
const ST_FAILED: u8 = 9;

/// Why a frame or payload could not be decoded.
#[derive(Debug)]
pub enum FrameError {
    /// The transport failed (or hit its read timeout) mid-frame.
    Io(io::Error),
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// The frame is structurally invalid: oversized length, CRC
    /// mismatch, unknown opcode/status, or trailing bytes.
    Corrupt(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o: {e}"),
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Corrupt(why) => write!(f, "corrupt frame: {why}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Wraps `payload` in a frame: length, CRC, bytes.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Writes `payload` as one frame.
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    w.write_all(&encode_frame(payload))?;
    w.flush()
}

/// Reads one frame payload.
///
/// # Errors
///
/// [`FrameError::Closed`] on EOF at a frame boundary, [`FrameError::Io`]
/// on transport errors (including read timeouts) anywhere, and
/// [`FrameError::Corrupt`] for oversized frames or CRC mismatches.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; 8];
    match r.read_exact(&mut header[..1]) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Err(FrameError::Closed),
        Err(e) => return Err(FrameError::Io(e)),
    }
    r.read_exact(&mut header[1..])?;
    let len = u32::from_le_bytes(header[..4].try_into().expect("4-byte slice"));
    let want_crc = u32::from_le_bytes(header[4..].try_into().expect("4-byte slice"));
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::Corrupt(format!(
            "payload of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let got_crc = crc32(&payload);
    if got_crc != want_crc {
        return Err(FrameError::Corrupt(format!(
            "crc mismatch: header says {want_crc:#010x}, payload hashes to {got_crc:#010x}"
        )));
    }
    Ok(payload)
}

impl Request {
    /// Serializes the request as a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        match self {
            Request::Predict { session, seq, pc } => {
                out.push(OP_PREDICT);
                put(&mut out, &[*session, *seq, *pc]);
            }
            Request::Update {
                session,
                seq,
                pc,
                value,
            } => {
                out.push(OP_UPDATE);
                put(&mut out, &[*session, *seq, *pc, *value]);
            }
            Request::Snapshot => out.push(OP_SNAPSHOT),
            Request::Stats => out.push(OP_STATS),
            Request::DebugPanic { session, seq } => {
                out.push(OP_DEBUG_PANIC);
                put(&mut out, &[*session, *seq]);
            }
        }
        out
    }

    /// Parses a frame payload into a request.
    ///
    /// # Errors
    ///
    /// [`FrameError::Corrupt`] on empty payloads, unknown opcodes,
    /// truncated fields, or trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Request, FrameError> {
        let (&op, mut rest) = payload
            .split_first()
            .ok_or_else(|| FrameError::Corrupt("empty payload".into()))?;
        let request = match op {
            OP_PREDICT => {
                let [session, seq, pc] = take(&mut rest)?;
                Request::Predict { session, seq, pc }
            }
            OP_UPDATE => {
                let [session, seq, pc, value] = take(&mut rest)?;
                Request::Update {
                    session,
                    seq,
                    pc,
                    value,
                }
            }
            OP_SNAPSHOT => Request::Snapshot,
            OP_STATS => Request::Stats,
            OP_DEBUG_PANIC => {
                let [session, seq] = take(&mut rest)?;
                Request::DebugPanic { session, seq }
            }
            other => return Err(FrameError::Corrupt(format!("unknown opcode {other}"))),
        };
        ensure_drained(rest)?;
        Ok(request)
    }

    /// The session this request addresses, if it is session-scoped.
    pub fn session(&self) -> Option<u64> {
        match self {
            Request::Predict { session, .. }
            | Request::Update { session, .. }
            | Request::DebugPanic { session, .. } => Some(*session),
            Request::Snapshot | Request::Stats => None,
        }
    }

    /// The sequence number carried by this request, if any.
    pub fn seq(&self) -> Option<u64> {
        match self {
            Request::Predict { seq, .. }
            | Request::Update { seq, .. }
            | Request::DebugPanic { seq, .. } => Some(*seq),
            Request::Snapshot | Request::Stats => None,
        }
    }
}

impl Reply {
    /// Serializes the reply as a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        match self {
            Reply::Predicted { seq, value } => {
                out.push(ST_PREDICTED);
                put(&mut out, &[*seq, *value]);
            }
            Reply::Updated {
                seq,
                predicted,
                correct,
            } => {
                out.push(ST_UPDATED);
                put(&mut out, &[*seq, *predicted]);
                out.push(u8::from(*correct));
            }
            Reply::StatsText(text) => {
                out.push(ST_STATS);
                put(&mut out, &[text.len() as u64]);
                out.extend_from_slice(text.as_bytes());
            }
            Reply::SnapshotDone(bytes) => {
                out.push(ST_SNAPSHOT_DONE);
                put(&mut out, &[*bytes]);
            }
            Reply::Overloaded => out.push(ST_OVERLOADED),
            Reply::Malformed => out.push(ST_MALFORMED),
            Reply::DeadlineExceeded { seq } => {
                out.push(ST_DEADLINE);
                put(&mut out, &[*seq]);
            }
            Reply::ShuttingDown => out.push(ST_SHUTTING_DOWN),
            Reply::Poisoned { seq } => {
                out.push(ST_POISONED);
                put(&mut out, &[*seq]);
            }
            Reply::Failed => out.push(ST_FAILED),
        }
        out
    }

    /// Parses a frame payload into a reply.
    ///
    /// # Errors
    ///
    /// [`FrameError::Corrupt`] on empty payloads, unknown status bytes,
    /// truncated fields, non-UTF-8 stats text, or trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Reply, FrameError> {
        let (&status, mut rest) = payload
            .split_first()
            .ok_or_else(|| FrameError::Corrupt("empty payload".into()))?;
        let reply = match status {
            ST_PREDICTED => {
                let [seq, value] = take(&mut rest)?;
                Reply::Predicted { seq, value }
            }
            ST_UPDATED => {
                let [seq, predicted] = take(&mut rest)?;
                let (&flag, tail) = rest
                    .split_first()
                    .ok_or_else(|| FrameError::Corrupt("missing correct flag".into()))?;
                rest = tail;
                Reply::Updated {
                    seq,
                    predicted,
                    correct: flag != 0,
                }
            }
            ST_STATS => {
                let [len] = take(&mut rest)?;
                if rest.len() as u64 != len {
                    return Err(FrameError::Corrupt(format!(
                        "stats text length {len} does not match remaining {} bytes",
                        rest.len()
                    )));
                }
                let text = String::from_utf8(rest.to_vec())
                    .map_err(|_| FrameError::Corrupt("stats text is not utf-8".into()))?;
                rest = &[];
                Reply::StatsText(text)
            }
            ST_SNAPSHOT_DONE => {
                let [bytes] = take(&mut rest)?;
                Reply::SnapshotDone(bytes)
            }
            ST_OVERLOADED => Reply::Overloaded,
            ST_MALFORMED => Reply::Malformed,
            ST_DEADLINE => {
                let [seq] = take(&mut rest)?;
                Reply::DeadlineExceeded { seq }
            }
            ST_SHUTTING_DOWN => Reply::ShuttingDown,
            ST_POISONED => {
                let [seq] = take(&mut rest)?;
                Reply::Poisoned { seq }
            }
            ST_FAILED => Reply::Failed,
            other => return Err(FrameError::Corrupt(format!("unknown status {other}"))),
        };
        ensure_drained(rest)?;
        Ok(reply)
    }
}

fn put(out: &mut Vec<u8>, fields: &[u64]) {
    for &v in fields {
        write_varint(out, v).expect("vec write is infallible");
    }
}

fn take<const N: usize>(rest: &mut &[u8]) -> Result<[u64; N], FrameError> {
    let mut fields = [0u64; N];
    for field in &mut fields {
        *field = read_varint(rest).map_err(|e| FrameError::Corrupt(format!("bad varint: {e}")))?;
    }
    Ok(fields)
}

fn ensure_drained(rest: &[u8]) -> Result<(), FrameError> {
    if rest.is_empty() {
        Ok(())
    } else {
        Err(FrameError::Corrupt(format!(
            "{} trailing byte(s) after payload",
            rest.len()
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn requests() -> Vec<Request> {
        vec![
            Request::Predict {
                session: 7,
                seq: 1,
                pc: 0x40_0000,
            },
            Request::Update {
                session: u64::MAX,
                seq: 1 << 40,
                pc: 4,
                value: u64::MAX - 1,
            },
            Request::Snapshot,
            Request::Stats,
            Request::DebugPanic { session: 0, seq: 9 },
        ]
    }

    fn replies() -> Vec<Reply> {
        vec![
            Reply::Predicted { seq: 1, value: 42 },
            Reply::Updated {
                seq: 2,
                predicted: u64::MAX,
                correct: true,
            },
            Reply::StatsText("# HELP x\nx 1\n".into()),
            Reply::SnapshotDone(12345),
            Reply::Overloaded,
            Reply::Malformed,
            Reply::DeadlineExceeded { seq: 3 },
            Reply::ShuttingDown,
            Reply::Poisoned { seq: 4 },
            Reply::Failed,
        ]
    }

    #[test]
    fn requests_round_trip() {
        for request in requests() {
            assert_eq!(Request::decode(&request.encode()).unwrap(), request);
        }
    }

    #[test]
    fn replies_round_trip() {
        for reply in replies() {
            assert_eq!(Reply::decode(&reply.encode()).unwrap(), reply);
        }
    }

    #[test]
    fn frames_round_trip_through_a_stream() {
        let mut wire = Vec::new();
        for request in requests() {
            write_frame(&mut wire, &request.encode()).unwrap();
        }
        let mut r: &[u8] = &wire;
        for request in requests() {
            let payload = read_frame(&mut r).unwrap();
            assert_eq!(Request::decode(&payload).unwrap(), request);
        }
        assert!(matches!(read_frame(&mut r), Err(FrameError::Closed)));
    }

    #[test]
    fn every_payload_bit_flip_is_detected() {
        let request = Request::Update {
            session: 3,
            seq: 5,
            pc: 0x40_0008,
            value: 17,
        };
        let frame = encode_frame(&request.encode());
        for byte in 8..frame.len() {
            for bit in 0..8 {
                let mut bad = frame.clone();
                bad[byte] ^= 1 << bit;
                let mut r: &[u8] = &bad;
                assert!(
                    matches!(read_frame(&mut r), Err(FrameError::Corrupt(_))),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut frame = Vec::new();
        frame.extend_from_slice(&u32::MAX.to_le_bytes());
        frame.extend_from_slice(&0u32.to_le_bytes());
        let mut r: &[u8] = &frame;
        assert!(matches!(read_frame(&mut r), Err(FrameError::Corrupt(_))));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = Request::Stats.encode();
        payload.push(0);
        assert!(matches!(
            Request::decode(&payload),
            Err(FrameError::Corrupt(_))
        ));
    }

    #[test]
    fn unknown_opcode_and_status_are_rejected() {
        assert!(matches!(
            Request::decode(&[0xEE]),
            Err(FrameError::Corrupt(_))
        ));
        assert!(matches!(
            Reply::decode(&[0xEE]),
            Err(FrameError::Corrupt(_))
        ));
        assert!(matches!(Request::decode(&[]), Err(FrameError::Corrupt(_))));
    }
}
