//! Prediction-as-a-service for the DFCM reproduction.
//!
//! This crate turns the single-pass streaming predictor core
//! ([`dfcm_sim::StreamPredictor`]) into a long-lived, crash-tolerant
//! network daemon, plus the client and chaos-driven load generator used
//! to validate it:
//!
//! * [`protocol`] — length-prefixed, CRC-checked binary frames
//!   (`predict` / `update` / `snapshot` / `stats`), sharing the trace
//!   crate's CRC-32 and varint codecs.
//! * [`session`] — per-client predictor state, sharded, LRU-capped, with
//!   exactly-once request replay.
//! * [`snapshot`] — the `DFCMSNAP1` crash-consistent snapshot format:
//!   per-section CRCs, salvage-style partial restore, byte-identical
//!   re-encoding.
//! * [`server`] — the daemon: threaded acceptor, bounded-queue worker
//!   pool, per-request deadlines, backpressure shedding, panic
//!   quarantine, graceful drain + snapshot on shutdown.
//! * [`signal`] — std-only `SIGTERM`/`SIGINT` hookup.
//! * [`client`] — reconnecting client with typed transient/permanent
//!   errors and capped backoff.
//! * [`loadgen`] — concurrent replay with shadow-predictor verification
//!   and deterministic fault injection.
//!
//! The robustness contract, end to end: a request is either
//! acknowledged with the same bytes a local predictor would produce, or
//! it fails with a typed, retryable error — never silently lost or
//! corrupted — and a `SIGTERM`'d daemon restarts into byte-identical
//! predictor state.

pub mod client;
pub mod loadgen;
pub mod protocol;
pub mod server;
pub mod session;
pub mod signal;
pub mod snapshot;

pub use crate::client::ServeClient;
pub use crate::loadgen::{bench_json, histogram_jsonl, run_loadgen, LoadGenConfig, LoadGenReport};
pub use crate::protocol::{Reply, Request, MAX_FRAME_BYTES};
pub use crate::server::{
    ServeConfig, ServeError, ServeLimits, Server, ServerHandle, ShutdownReport,
};
pub use crate::session::SessionStore;
pub use crate::signal::{install_shutdown_signals, request_shutdown, shutdown_requested};
pub use crate::snapshot::{
    decode_snapshot, encode_snapshot, SessionRecord, SnapshotReport, SNAPSHOT_MAGIC,
};
