//! A reconnecting client with typed errors and capped backoff.
//!
//! The client wraps one session's view of the daemon: it numbers its
//! requests (the server's exactly-once replay key), reconnects on broken
//! connections, and retries transient failures — `Overloaded` sheds,
//! `ShuttingDown` drains, dropped connections — under the engine's
//! [`RetryPolicy`], classifying failures with the same
//! [`TaskError`] Transient/Permanent split the simulation engine uses.
//! Because the sequence number does not change across retries of one
//! request, a retry that reaches a server which already processed the
//! original gets the cached reply, not a second state change.

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use dfcm_sim::engine::{RetryPolicy, TaskError};

use crate::protocol::{encode_frame, read_frame, Reply, Request};

/// One session's connection to the daemon.
#[derive(Debug)]
pub struct ServeClient {
    addr: SocketAddr,
    session: u64,
    seq: u64,
    retry: RetryPolicy,
    stream: Option<TcpStream>,
    /// Read timeout on replies; a server stall beyond this is treated as
    /// a transient failure (reconnect and retry).
    pub reply_timeout: Duration,
}

impl ServeClient {
    /// A client for `session` talking to `addr`, retrying under
    /// `retry`.
    pub fn new(addr: SocketAddr, session: u64, retry: RetryPolicy) -> Self {
        ServeClient {
            addr,
            session,
            seq: 0,
            retry,
            stream: None,
            reply_timeout: Duration::from_secs(2),
        }
    }

    /// The session id this client drives.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Drops the current connection (the next request reconnects). Used
    /// by the load generator to inject connection-drop faults.
    pub fn drop_connection(&mut self) {
        self.stream = None;
    }

    /// Sends `bytes` on the wire verbatim, without awaiting a reply —
    /// the load generator's hook for corrupt-frame and slow-loris
    /// injection. When `stall` is set, the bytes go out in two halves
    /// with a pause in between.
    ///
    /// # Errors
    ///
    /// Returns a transient [`TaskError`] when the connection fails.
    pub fn send_raw(&mut self, bytes: &[u8], stall: Option<Duration>) -> Result<(), TaskError> {
        let stream = self.connect()?;
        let result = match stall {
            Some(pause) if bytes.len() > 1 => {
                let (a, b) = bytes.split_at(bytes.len() / 2);
                stream.write_all(a).and_then(|()| {
                    std::thread::sleep(pause);
                    stream.write_all(b)
                })
            }
            _ => stream.write_all(bytes),
        };
        result.map_err(|e| {
            self.stream = None;
            TaskError::Transient(format!("raw send: {e}"))
        })
    }

    /// Reads predicted value for `pc` without touching predictor state.
    ///
    /// # Errors
    ///
    /// [`TaskError::Transient`] when retries were exhausted on shed /
    /// drained / dropped connections; [`TaskError::Permanent`] for
    /// poisoned sessions or protocol violations.
    pub fn predict(&mut self, pc: u64) -> Result<u64, TaskError> {
        self.seq += 1;
        let request = Request::Predict {
            session: self.session,
            seq: self.seq,
            pc,
        };
        match self.request_with_retry(&request)? {
            Reply::Predicted { value, .. } => Ok(value),
            other => Err(unexpected(&other)),
        }
    }

    /// Trains on `(pc, value)` and returns `(predicted, correct)` — the
    /// server-side [`dfcm::ValuePredictor::access`] outcome.
    ///
    /// # Errors
    ///
    /// As [`predict`](ServeClient::predict).
    pub fn update(&mut self, pc: u64, value: u64) -> Result<(u64, bool), TaskError> {
        self.seq += 1;
        let request = Request::Update {
            session: self.session,
            seq: self.seq,
            pc,
            value,
        };
        match self.request_with_retry(&request)? {
            Reply::Updated {
                predicted, correct, ..
            } => Ok((predicted, correct)),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the server to write a snapshot; returns its size.
    ///
    /// # Errors
    ///
    /// As [`predict`](ServeClient::predict); also fails permanently when
    /// the server has no snapshot path configured.
    pub fn snapshot(&mut self) -> Result<u64, TaskError> {
        match self.request_with_retry(&Request::Snapshot)? {
            Reply::SnapshotDone(bytes) => Ok(bytes),
            Reply::Failed => Err(TaskError::Permanent("server cannot snapshot".into())),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the server metrics as Prometheus text.
    ///
    /// # Errors
    ///
    /// As [`predict`](ServeClient::predict).
    pub fn stats(&mut self) -> Result<String, TaskError> {
        match self.request_with_retry(&Request::Stats)? {
            Reply::StatsText(text) => Ok(text),
            other => Err(unexpected(&other)),
        }
    }

    /// Poisons this client's session via the chaos hook; succeeds when
    /// the server confirms the quarantine.
    ///
    /// # Errors
    ///
    /// Propagates transport failures; any reply other than
    /// [`Reply::Poisoned`] is a protocol violation.
    pub fn debug_panic(&mut self) -> Result<(), TaskError> {
        self.seq += 1;
        let request = Request::DebugPanic {
            session: self.session,
            seq: self.seq,
        };
        match self.request_with_retry(&request) {
            Err(TaskError::Permanent(msg)) if msg.contains("poisoned") => Ok(()),
            Ok(other) => Err(unexpected(&other)),
            Err(e) => Err(e),
        }
    }

    /// Chaos helper: sends a deliberately corrupt frame (last payload
    /// byte flipped), then drops the connection — the server answers
    /// `Malformed` and closes its side, and the next real request starts
    /// on a fresh connection.
    pub fn send_corrupt_frame(&mut self) {
        let mut frame = encode_frame(&Request::Stats.encode());
        if let Some(last) = frame.last_mut() {
            *last ^= 0x01;
        }
        let _ = self.send_raw(&frame, None);
        self.drop_connection();
    }

    /// Chaos helper: a slow-loris stats request — the frame bytes go out
    /// in two halves with `stall` between them, then the reply is read
    /// and discarded. Exercises the server's partial-frame buffering and
    /// idle accounting.
    ///
    /// # Errors
    ///
    /// Transient [`TaskError`] when the server closes mid-exchange (e.g.
    /// the stall exceeded its idle timeout).
    pub fn slow_stats(&mut self, stall: Duration) -> Result<(), TaskError> {
        let frame = encode_frame(&Request::Stats.encode());
        self.send_raw(&frame, Some(stall))?;
        let stream = self.stream.as_mut().expect("send_raw connected");
        let result = read_frame(stream)
            .map_err(|e| TaskError::Transient(format!("slow stats recv: {e}")))
            .and_then(|payload| {
                Reply::decode(&payload).map_err(|e| TaskError::Transient(format!("bad reply: {e}")))
            });
        if result.is_err() {
            self.stream = None;
        }
        result.map(|_| ())
    }

    /// One request/reply exchange with reconnect-and-retry under the
    /// policy. Transient outcomes (dropped connection, `Overloaded`,
    /// `ShuttingDown`, `DeadlineExceeded`) back off and retry with the
    /// *same* sequence number; the server's replay cache makes that safe.
    fn request_with_retry(&mut self, request: &Request) -> Result<Reply, TaskError> {
        let payload = request.encode();
        let mut last = TaskError::Transient("no attempt made".into());
        for attempt in 0..self.retry.max_attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(self.retry.backoff(attempt - 1));
            }
            match self.exchange(&payload) {
                Ok(Reply::Overloaded) => {
                    last = TaskError::Transient("server overloaded".into());
                }
                Ok(Reply::ShuttingDown) => {
                    self.stream = None;
                    last = TaskError::Transient("server shutting down".into());
                }
                Ok(Reply::DeadlineExceeded { .. }) => {
                    last = TaskError::Transient("request deadline exceeded".into());
                }
                Ok(Reply::Poisoned { .. }) => {
                    return Err(TaskError::Permanent("session poisoned".into()));
                }
                Ok(Reply::Malformed) => {
                    // The server is about to close this connection.
                    self.stream = None;
                    return Err(TaskError::Permanent("server rejected frame".into()));
                }
                Ok(reply) => return Ok(reply),
                Err(e) => {
                    self.stream = None;
                    last = e;
                }
            }
        }
        Err(last)
    }

    fn exchange(&mut self, payload: &[u8]) -> Result<Reply, TaskError> {
        let stream = self.connect()?;
        stream
            .write_all(&encode_frame(payload))
            .map_err(|e| TaskError::Transient(format!("send: {e}")))?;
        let reply_payload =
            read_frame(stream).map_err(|e| TaskError::Transient(format!("recv: {e}")))?;
        Reply::decode(&reply_payload).map_err(|e| TaskError::Transient(format!("bad reply: {e}")))
    }

    fn connect(&mut self) -> Result<&mut TcpStream, TaskError> {
        if self.stream.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, Duration::from_secs(2))
                .map_err(|e| TaskError::Transient(format!("connect {}: {e}", self.addr)))?;
            stream
                .set_read_timeout(Some(self.reply_timeout))
                .map_err(|e| TaskError::Transient(format!("socket: {e}")))?;
            let _ = stream.set_nodelay(true);
            let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
            self.stream = Some(stream);
        }
        Ok(self.stream.as_mut().expect("just connected"))
    }
}

fn unexpected(reply: &Reply) -> TaskError {
    TaskError::Permanent(format!("unexpected reply {reply:?}"))
}
