//! Crash-consistent session snapshots (`DFCMSNAP1`).
//!
//! A snapshot freezes every live serving session — predictor
//! configuration, table state, and the exactly-once replay cache — so a
//! restarted daemon resumes exactly where the previous one stopped. The
//! format follows the trace crate's corruption philosophy: sections are
//! individually CRC-framed, decoding is salvage-style (a corrupt or
//! truncated tail drops the sections it covers, never the whole file),
//! and writes go through [`dfcm_trace::atomic_write`] so a crash
//! mid-snapshot leaves the previous snapshot intact.
//!
//! ```text
//! "DFCMSNAP1"                                 9-byte magic
//! section*                                    in ascending session id
//! end section                                 kind 0, empty body
//!
//! section = kind: varint | body_len: varint | crc32(body): u32 LE | body
//! ```
//!
//! Section kind 1 is a session; its body is
//! `id | last_seq | reply_len | reply bytes | spec_len | spec bytes |
//! word_count | word*` (all integers varint). Kind 0 is the end marker:
//! its presence distinguishes a cleanly written file from a truncated
//! one. Sessions are written in ascending id order, so encoding the
//! decoded records reproduces the input byte for byte — the invariant the
//! kill-and-restart drill checks.

use std::io::Read;

use dfcm_trace::crc::crc32;
use dfcm_trace::{read_varint, write_varint};

/// The 9-byte magic prefixing every snapshot.
pub const SNAPSHOT_MAGIC: &[u8; 9] = b"DFCMSNAP1";

const KIND_END: u64 = 0;
const KIND_SESSION: u64 = 1;

/// Upper bound on a single section body; guards allocation against
/// hostile length fields.
const MAX_SECTION_BYTES: u64 = 64 << 20;

/// One serialized serving session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionRecord {
    /// Client-chosen session id.
    pub id: u64,
    /// Last processed sequence number (0 when none).
    pub last_seq: u64,
    /// Encoded reply payload cached for `last_seq` replays.
    pub last_reply: Vec<u8>,
    /// Predictor spec (`StreamPredictor::spec` grammar).
    pub spec: String,
    /// Predictor table state (`StreamPredictor::state_words` layout).
    pub words: Vec<u64>,
}

/// What a salvage-style decode recovered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SnapshotReport {
    /// Sessions restored.
    pub restored: usize,
    /// Sections dropped to corruption or truncation.
    pub dropped: usize,
    /// Whether the end marker was seen (false means the file was
    /// truncated, even if every session before the cut decoded).
    pub clean_end: bool,
}

/// A snapshot whose prefix was unusable.
#[derive(Debug)]
pub enum SnapshotError {
    /// The file does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a DFCMSNAP1 snapshot (bad magic)"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Encodes `records` as a snapshot. Records are sorted by session id, so
/// the encoding of a decoded snapshot is byte-identical to the original.
pub fn encode_snapshot(records: &[SessionRecord]) -> Vec<u8> {
    let mut sorted: Vec<&SessionRecord> = records.iter().collect();
    sorted.sort_by_key(|r| r.id);
    let mut out = Vec::new();
    out.extend_from_slice(SNAPSHOT_MAGIC);
    for record in sorted {
        let mut body = Vec::new();
        let _ = write_varint(&mut body, record.id);
        let _ = write_varint(&mut body, record.last_seq);
        let _ = write_varint(&mut body, record.last_reply.len() as u64);
        body.extend_from_slice(&record.last_reply);
        let _ = write_varint(&mut body, record.spec.len() as u64);
        body.extend_from_slice(record.spec.as_bytes());
        let _ = write_varint(&mut body, record.words.len() as u64);
        for &word in &record.words {
            let _ = write_varint(&mut body, word);
        }
        write_section(&mut out, KIND_SESSION, &body);
    }
    write_section(&mut out, KIND_END, &[]);
    out
}

fn write_section(out: &mut Vec<u8>, kind: u64, body: &[u8]) {
    let _ = write_varint(out, kind);
    let _ = write_varint(out, body.len() as u64);
    out.extend_from_slice(&crc32(body).to_le_bytes());
    out.extend_from_slice(body);
}

/// Decodes a snapshot, salvaging what it can.
///
/// Sections decode until the first corruption (bad CRC, truncated body,
/// malformed fields, an unknown kind) — everything after the first bad
/// section is dropped, mirroring [`dfcm_trace::salvage_trace`]'s
/// prefix-salvage semantics; the report counts one dropped section for
/// the cut. Duplicate session ids keep the *last* occurrence (later
/// sections are newer).
///
/// # Errors
///
/// Only a missing or wrong magic is fatal; any other damage degrades to
/// a partial restore.
pub fn decode_snapshot(
    bytes: &[u8],
) -> Result<(Vec<SessionRecord>, SnapshotReport), SnapshotError> {
    let rest = bytes
        .strip_prefix(SNAPSHOT_MAGIC.as_slice())
        .ok_or(SnapshotError::BadMagic)?;
    let mut r: &[u8] = rest;
    let mut records: Vec<SessionRecord> = Vec::new();
    let mut report = SnapshotReport::default();
    loop {
        if r.is_empty() {
            // Ran off the end without an end marker: truncated.
            break;
        }
        let section = read_section(&mut r);
        match section {
            Ok((KIND_END, _)) => {
                report.clean_end = true;
                break;
            }
            Ok((KIND_SESSION, body)) => match parse_session(&body) {
                Ok(record) => {
                    if let Some(existing) = records.iter_mut().find(|x| x.id == record.id) {
                        *existing = record;
                    } else {
                        records.push(record);
                    }
                }
                Err(_) => {
                    report.dropped += 1;
                    break;
                }
            },
            Ok((_, _)) | Err(()) => {
                report.dropped += 1;
                break;
            }
        }
    }
    report.restored = records.len();
    Ok((records, report))
}

fn read_section(r: &mut &[u8]) -> Result<(u64, Vec<u8>), ()> {
    let kind = read_varint(r).map_err(|_| ())?;
    let len = read_varint(r).map_err(|_| ())?;
    if len > MAX_SECTION_BYTES {
        return Err(());
    }
    let mut crc_bytes = [0u8; 4];
    r.read_exact(&mut crc_bytes).map_err(|_| ())?;
    let want = u32::from_le_bytes(crc_bytes);
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body).map_err(|_| ())?;
    if crc32(&body) != want {
        return Err(());
    }
    Ok((kind, body))
}

fn parse_session(body: &[u8]) -> Result<SessionRecord, ()> {
    let mut r: &[u8] = body;
    let id = read_varint(&mut r).map_err(|_| ())?;
    let last_seq = read_varint(&mut r).map_err(|_| ())?;
    let reply_len = read_varint(&mut r).map_err(|_| ())? as usize;
    if r.len() < reply_len {
        return Err(());
    }
    let (reply, rest) = r.split_at(reply_len);
    r = rest;
    let spec_len = read_varint(&mut r).map_err(|_| ())? as usize;
    if r.len() < spec_len {
        return Err(());
    }
    let (spec_bytes, rest) = r.split_at(spec_len);
    r = rest;
    let spec = std::str::from_utf8(spec_bytes).map_err(|_| ())?.to_owned();
    let word_count = read_varint(&mut r).map_err(|_| ())? as usize;
    // Ten bytes is the longest varint, one the shortest: a count that
    // cannot fit in the remaining bytes is hostile.
    if word_count > r.len() {
        return Err(());
    }
    let mut words = Vec::with_capacity(word_count);
    for _ in 0..word_count {
        words.push(read_varint(&mut r).map_err(|_| ())?);
    }
    if !r.is_empty() {
        return Err(());
    }
    Ok(SessionRecord {
        id,
        last_seq,
        last_reply: reply.to_vec(),
        spec,
        words,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<SessionRecord> {
        vec![
            SessionRecord {
                id: 9,
                last_seq: 120,
                last_reply: vec![0, 5, 6],
                spec: "dfcm:8:10".into(),
                words: (0..40).map(|i| i * 7).collect(),
            },
            SessionRecord {
                id: 2,
                last_seq: 0,
                last_reply: Vec::new(),
                spec: "lvp:4".into(),
                words: vec![u64::MAX; 16],
            },
        ]
    }

    #[test]
    fn snapshot_round_trips_and_is_canonical() {
        let bytes = encode_snapshot(&sample());
        let (records, report) = decode_snapshot(&bytes).unwrap();
        assert_eq!(report.restored, 2);
        assert_eq!(report.dropped, 0);
        assert!(report.clean_end);
        // Decoded records come back in id order; re-encoding reproduces
        // the exact bytes (the kill-and-restart invariant).
        assert_eq!(records[0].id, 2);
        assert_eq!(encode_snapshot(&records), bytes);
    }

    #[test]
    fn empty_snapshot_is_valid() {
        let bytes = encode_snapshot(&[]);
        let (records, report) = decode_snapshot(&bytes).unwrap();
        assert!(records.is_empty());
        assert!(report.clean_end);
    }

    #[test]
    fn wrong_magic_is_fatal() {
        assert!(decode_snapshot(b"DFCMTRC2whatever").is_err());
        assert!(decode_snapshot(b"").is_err());
    }

    #[test]
    fn truncation_salvages_the_prefix() {
        let bytes = encode_snapshot(&sample());
        // Cut inside the second section: the first session survives.
        let cut = bytes.len() - 20;
        let (records, report) = decode_snapshot(&bytes[..cut]).unwrap();
        assert_eq!(records.len(), 1);
        assert!(!report.clean_end);
    }

    #[test]
    fn bit_flips_never_panic_and_never_corrupt_restored_sessions() {
        let bytes = encode_snapshot(&sample());
        let originals = sample();
        for byte in SNAPSHOT_MAGIC.len()..bytes.len() {
            let mut bad = bytes.clone();
            bad[byte] ^= 0x10;
            if let Ok((records, _)) = decode_snapshot(&bad) {
                // Whatever was restored must be one of the original
                // records, bit-identical: CRC framing prevents a flipped
                // body from surviving into a session.
                for record in &records {
                    assert!(
                        originals.iter().any(|o| o == record),
                        "flip at byte {byte} restored an altered session"
                    );
                }
            }
        }
    }
}
