//! Sharded per-client session state with LRU capacity enforcement.
//!
//! Each client session owns a [`StreamPredictor`] plus the exactly-once
//! replay cache (last processed seq and its encoded reply). Sessions are
//! sharded by id so worker threads touching different clients never
//! contend on one lock.
//!
//! Capacity is the graceful-degradation lever: when a shard is full, the
//! least-recently-touched session is evicted to make room. An evicted
//! client is *not* an error — its next request recreates the session with
//! a cold predictor, trading accuracy for availability.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use dfcm_sim::{SpecError, StreamPredictor};

use crate::snapshot::SessionRecord;

/// Number of independently locked shards.
const SHARDS: usize = 8;

/// One client's serving state.
#[derive(Debug, Clone)]
pub struct Session {
    /// The predictor trained by this session's updates.
    pub predictor: StreamPredictor,
    /// Last processed sequence number (0 before the first request).
    pub last_seq: u64,
    /// Encoded reply payload for `last_seq`, replayed on duplicate seqs.
    pub last_reply: Vec<u8>,
    /// Set when a request against this session panicked; the state is
    /// quarantined and all further requests fail permanently.
    pub poisoned: bool,
    /// LRU clock value of the most recent touch.
    touched: u64,
}

/// Point-in-time session summary produced by
/// [`SessionStore::telemetry`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SessionTelemetry {
    /// Healthy live sessions per predictor spec (sorted by spec).
    pub by_spec: std::collections::BTreeMap<String, u64>,
    /// Sessions currently quarantined after a panic.
    pub poisoned: u64,
}

/// Sharded session map with a per-shard LRU cap.
#[derive(Debug)]
pub struct SessionStore {
    shards: Vec<Mutex<HashMap<u64, Session>>>,
    clock: AtomicU64,
    evictions: AtomicU64,
    spec: String,
    cold: StreamPredictor,
    per_shard_cap: usize,
}

impl SessionStore {
    /// Creates a store whose new sessions clone a cold predictor built
    /// from `spec`, holding at most `max_sessions` sessions (rounded up
    /// to a multiple of the shard count; at least one per shard).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] when `spec` does not parse.
    pub fn new(spec: &str, max_sessions: usize) -> Result<SessionStore, SpecError> {
        let cold = StreamPredictor::parse_spec(spec)?;
        Ok(SessionStore {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            clock: AtomicU64::new(1),
            evictions: AtomicU64::new(0),
            spec: cold.spec(),
            cold,
            per_shard_cap: max_sessions.div_ceil(SHARDS).max(1),
        })
    }

    /// The canonical spec new sessions are created from.
    pub fn spec(&self) -> &str {
        &self.spec
    }

    /// Total live sessions across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).len())
            .sum()
    }

    /// True when no sessions are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sessions evicted to the LRU cap since creation.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Runs `f` over the session `id`, creating it cold (and possibly
    /// evicting the shard's least-recently-touched session) if absent.
    /// The shard lock is held for the duration of `f`.
    pub fn with_session<T>(&self, id: u64, f: impl FnOnce(&mut Session) -> T) -> T {
        let mut shard = self
            .shard(id)
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let tick = self.clock.fetch_add(1, Ordering::Relaxed);
        if !shard.contains_key(&id) && shard.len() >= self.per_shard_cap {
            // Evict the coldest session to stay within the cap: the
            // evicted client degrades to a cold predictor on its next
            // request instead of anyone being refused service.
            if let Some(&coldest) = shard
                .iter()
                .min_by_key(|(_, s)| s.touched)
                .map(|(id, _)| id)
            {
                shard.remove(&coldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        let session = shard.entry(id).or_insert_with(|| Session {
            predictor: self.cold.clone(),
            last_seq: 0,
            last_reply: Vec::new(),
            poisoned: false,
            touched: tick,
        });
        session.touched = tick;
        f(session)
    }

    /// Marks session `id` poisoned (creating it if needed, so the
    /// quarantine survives an eviction race).
    pub fn poison(&self, id: u64) {
        self.with_session(id, |s| s.poisoned = true);
    }

    /// A cheap point-in-time summary of the live sessions for scrape
    /// endpoints: per-spec live counts plus the poisoned total. Unlike
    /// [`records`](SessionStore::records) this never clones predictor
    /// state, so it is safe to call while the daemon is under load.
    pub fn telemetry(&self) -> SessionTelemetry {
        let mut by_spec: std::collections::BTreeMap<String, u64> =
            std::collections::BTreeMap::new();
        let mut poisoned = 0u64;
        for shard in &self.shards {
            let shard = shard.lock().unwrap_or_else(PoisonError::into_inner);
            for session in shard.values() {
                if session.poisoned {
                    poisoned += 1;
                } else {
                    *by_spec.entry(session.predictor.spec()).or_insert(0) += 1;
                }
            }
        }
        SessionTelemetry { by_spec, poisoned }
    }

    /// Serializes every healthy session for a snapshot. Poisoned
    /// sessions are quarantined state and deliberately not persisted —
    /// a restart gives the client a fresh cold session.
    pub fn records(&self) -> Vec<SessionRecord> {
        let mut records = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().unwrap_or_else(PoisonError::into_inner);
            for (&id, session) in shard.iter() {
                if session.poisoned {
                    continue;
                }
                records.push(SessionRecord {
                    id,
                    last_seq: session.last_seq,
                    last_reply: session.last_reply.clone(),
                    spec: session.predictor.spec(),
                    words: session.predictor.state_words(),
                });
            }
        }
        records.sort_by_key(|r| r.id);
        records
    }

    /// Materializes snapshot records into live sessions, replacing any
    /// current state for the same ids. Records whose spec does not parse
    /// or whose state words do not fit are skipped (the client degrades
    /// to a cold session); returns how many were restored.
    pub fn restore(&self, records: &[SessionRecord]) -> usize {
        let mut restored = 0;
        for record in records {
            let Ok(mut predictor) = StreamPredictor::parse_spec(&record.spec) else {
                continue;
            };
            if predictor.load_state_words(&record.words).is_err() {
                continue;
            }
            let tick = self.clock.fetch_add(1, Ordering::Relaxed);
            let mut shard = self
                .shard(record.id)
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            shard.insert(
                record.id,
                Session {
                    predictor,
                    last_seq: record.last_seq,
                    last_reply: record.last_reply.clone(),
                    poisoned: false,
                    touched: tick,
                },
            );
            restored += 1;
        }
        restored
    }

    fn shard(&self, id: u64) -> &Mutex<HashMap<u64, Session>> {
        // splitmix-style spread so consecutive ids land on different
        // shards.
        let mut h = id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 32;
        &self.shards[(h as usize) % SHARDS]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sessions_are_created_cold_and_persist() {
        let store = SessionStore::new("lvp:4", 64).unwrap();
        store.with_session(1, |s| {
            assert_eq!(s.last_seq, 0);
            s.last_seq = 5;
        });
        store.with_session(1, |s| assert_eq!(s.last_seq, 5));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn cap_evicts_least_recently_touched() {
        // Cap of 8 = 1 per shard: a second id on any shard evicts the
        // first.
        let store = SessionStore::new("lvp:4", 1).unwrap();
        for id in 0..64 {
            store.with_session(id, |s| s.last_seq = id + 1);
        }
        assert!(store.len() <= 8);
        assert!(store.evictions() > 0);
        // An evicted id comes back cold rather than erroring.
        store.with_session(0, |s| assert_eq!(s.last_seq, 0));
    }

    #[test]
    fn snapshot_records_skip_poisoned_sessions() {
        let store = SessionStore::new("stride:4", 64).unwrap();
        store.with_session(1, |s| s.last_seq = 1);
        store.with_session(2, |s| s.last_seq = 2);
        store.poison(2);
        let records = store.records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].id, 1);
    }

    #[test]
    fn restore_round_trips_state() {
        let store = SessionStore::new("dfcm:4:6", 64).unwrap();
        store.with_session(7, |s| {
            for i in 0..100u64 {
                s.predictor
                    .load_state_words(&s.predictor.state_words())
                    .unwrap();
                use dfcm::ValuePredictor;
                s.predictor.access(0x40_0000 + (i % 8) * 4, i * 3);
            }
            s.last_seq = 100;
            s.last_reply = vec![1, 2, 3];
        });
        let records = store.records();
        let other = SessionStore::new("dfcm:4:6", 64).unwrap();
        assert_eq!(other.restore(&records), 1);
        assert_eq!(other.records(), records);
    }

    #[test]
    fn restore_skips_bad_records() {
        let store = SessionStore::new("lvp:4", 64).unwrap();
        let bad_spec = SessionRecord {
            id: 1,
            last_seq: 0,
            last_reply: Vec::new(),
            spec: "bogus:1".into(),
            words: Vec::new(),
        };
        let bad_words = SessionRecord {
            id: 2,
            last_seq: 0,
            last_reply: Vec::new(),
            spec: "lvp:4".into(),
            words: vec![0; 3],
        };
        assert_eq!(store.restore(&[bad_spec, bad_words]), 0);
        assert!(store.is_empty());
    }
}
