//! Minimal std-only POSIX signal hookup for graceful shutdown.
//!
//! The daemon needs exactly one bit from the OS: "a terminate signal
//! arrived". Rather than pull in a signal-handling crate, this module
//! declares libc's `signal(2)` directly and installs an async-signal-safe
//! handler that sets an atomic flag; the serving loop polls
//! [`shutdown_requested`] and performs the actual drain-and-snapshot on a
//! normal thread.
//!
//! On non-Unix targets [`install_shutdown_signals`] is a no-op and the
//! flag can still be raised programmatically for tests via
//! [`request_shutdown`].

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe work here: one relaxed store.
        super::SHUTDOWN.store(true, std::sync::atomic::Ordering::Relaxed);
    }

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_signal as *const () as usize);
            signal(SIGINT, on_signal as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs handlers for `SIGTERM` and `SIGINT` that raise the shutdown
/// flag. Safe to call more than once. No-op off Unix.
pub fn install_shutdown_signals() {
    imp::install();
}

/// Whether a shutdown signal (or [`request_shutdown`]) has been seen.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::Relaxed)
}

/// Raises the shutdown flag programmatically (tests, embedding).
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    #[test]
    fn programmatic_shutdown_raises_the_flag() {
        super::request_shutdown();
        assert!(super::shutdown_requested());
    }
}
