//! The serving daemon: threaded acceptor, worker pool, bounded queue.
//!
//! Architecture (all std, no event loop):
//!
//! * The **acceptor** (the thread that called [`Server::run`]) accepts
//!   connections and pushes them onto a bounded queue. A full queue is
//!   the backpressure signal: the connection is refused with one
//!   [`Reply::Overloaded`] frame instead of being left to stall.
//! * **Workers** round-robin over live connections: pop one, poll it for
//!   a frame in a short read slice, process at most one request, push it
//!   back. Long-lived idle connections therefore cost a read slice per
//!   rotation, not a dedicated thread, and more clients than workers
//!   still all make progress.
//! * **Fault isolation**: request processing runs under `catch_unwind`.
//!   A panic poisons only the session that triggered it (all its later
//!   requests get [`Reply::Poisoned`]); every other session, and the
//!   daemon itself, keeps serving.
//! * **Deadlines**: each parsed request gets a monotonic
//!   [`Deadline`]; expired requests are answered with
//!   [`Reply::DeadlineExceeded`] rather than processed late. A
//!   connection that completes no frame within the idle timeout is
//!   closed, which also bounds slow-loris writers.
//! * **Graceful shutdown**: [`ServerHandle::shutdown`] (or a signal via
//!   [`crate::signal`]) stops the acceptor, lets in-flight requests
//!   finish, answers drained connections with [`Reply::ShuttingDown`],
//!   and writes a crash-consistent snapshot (temp + fsync + rename) of
//!   every healthy session before [`Server::run`] returns.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

use dfcm::ValuePredictor;
use dfcm_obs::Obs;
use dfcm_trace::{atomic_write, Deadline};

use crate::protocol::{encode_frame, read_frame, FrameError, Reply, Request};
use crate::session::SessionStore;
use crate::snapshot::{decode_snapshot, encode_snapshot};

/// Latency histogram bounds for `serve.request_us`, in microseconds.
pub const REQUEST_US_BOUNDS: &[f64] = &[
    10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1_000.0, 2_500.0, 5_000.0, 10_000.0, 50_000.0, 250_000.0,
];

/// Resource and robustness limits for a serving daemon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeLimits {
    /// Live session cap; beyond it the least-recently-used session is
    /// evicted (its client degrades to a cold predictor, it is not
    /// refused).
    pub max_sessions: usize,
    /// Worker threads processing requests.
    pub workers: usize,
    /// Live-connection cap: a new connection beyond it is shed with
    /// [`Reply::Overloaded`] instead of queued.
    pub queue_depth: usize,
    /// Per-request processing deadline, measured from the moment the
    /// request frame has been fully read.
    pub request_deadline: Duration,
    /// A connection that completes no frame for this long is closed.
    pub idle_timeout: Duration,
}

impl Default for ServeLimits {
    fn default() -> Self {
        ServeLimits {
            max_sessions: 1024,
            workers: 4,
            queue_depth: 64,
            request_deadline: Duration::from_millis(250),
            idle_timeout: Duration::from_secs(10),
        }
    }
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Predictor spec for new (and evicted-then-recreated) sessions.
    pub spec: String,
    /// Resource limits.
    pub limits: ServeLimits,
    /// Snapshot file: restored from (salvage-style) at startup if it
    /// exists, written atomically on graceful shutdown and on
    /// [`Request::Snapshot`].
    pub snapshot_path: Option<PathBuf>,
    /// Observability handle; disabled handles cost one branch per event.
    pub obs: Obs,
    /// Test/chaos hook: artificial per-request processing time, used to
    /// exercise the deadline path deterministically. Zero in production.
    pub process_delay: Duration,
}

impl ServeConfig {
    /// A daemon serving `spec` with default limits, no snapshot file,
    /// and observability disabled.
    pub fn new(spec: &str) -> Self {
        ServeConfig {
            spec: spec.to_owned(),
            limits: ServeLimits::default(),
            snapshot_path: None,
            obs: Obs::disabled(),
            process_delay: Duration::ZERO,
        }
    }
}

/// What a gracefully stopped daemon left behind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShutdownReport {
    /// Healthy sessions at shutdown.
    pub sessions: usize,
    /// Bytes of the final snapshot (0 when no snapshot path is set).
    pub snapshot_bytes: u64,
    /// Sessions restored from the snapshot at startup.
    pub restored: usize,
}

/// A handle for stopping a running daemon from another thread.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    shutdown: Arc<AtomicBool>,
}

impl ServerHandle {
    /// Requests a graceful shutdown: drain, snapshot, return.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }
}

/// A connection owned by the worker pool.
struct Conn {
    stream: TcpStream,
    /// Bytes received but not yet parsed into a frame.
    buf: Vec<u8>,
    /// Closes the connection when no frame completes before it expires.
    idle: Deadline,
}

/// The bounded connection queue workers rotate over.
struct ConnQueue {
    queue: Mutex<VecDeque<Conn>>,
    available: Condvar,
}

impl ConnQueue {
    fn new() -> Self {
        ConnQueue {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<Conn>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Admits a new connection unless `cap` live connections exist
    /// (queued plus checked-out); returns the stream back on refusal.
    fn admit(&self, conn: Conn, cap: usize, live: usize) -> Result<(), Conn> {
        if live >= cap {
            return Err(conn);
        }
        self.lock().push_back(conn);
        self.available.notify_one();
        Ok(())
    }

    /// Returns a connection a worker finished a slice with.
    fn requeue(&self, conn: Conn) {
        self.lock().push_back(conn);
        self.available.notify_one();
    }

    /// Pops the next connection, waiting briefly; `None` on timeout.
    fn pop(&self, wait: Duration) -> Option<Conn> {
        let guard = self.lock();
        let (mut guard, _) = self
            .available
            .wait_timeout_while(guard, wait, |q| q.is_empty())
            .unwrap_or_else(PoisonError::into_inner);
        guard.pop_front()
    }

    fn len(&self) -> usize {
        self.lock().len()
    }
}

/// Requests kept in the rolling latency window the scrape path reports
/// percentiles over.
const RECENT_WINDOW: usize = 1024;

struct ServerCtx {
    config: ServeConfig,
    store: SessionStore,
    queue: ConnQueue,
    shutdown: Arc<AtomicBool>,
    /// Connections currently checked out by workers (for the live cap).
    checked_out: std::sync::atomic::AtomicUsize,
    restored: usize,
    /// Rolling window of the last [`RECENT_WINDOW`] request latencies in
    /// microseconds — always on (independent of the obs handle) so a
    /// scrape reports live percentiles even on an uninstrumented daemon.
    recent_us: Mutex<VecDeque<u64>>,
}

/// A bound, not-yet-running serving daemon.
pub struct Server {
    listener: TcpListener,
    ctx: Arc<ServerCtx>,
}

/// Errors surfaced while starting a daemon.
#[derive(Debug)]
pub enum ServeError {
    /// Socket setup failed.
    Io(io::Error),
    /// The predictor spec did not parse.
    Spec(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "serve i/o: {e}"),
            ServeError::Spec(e) => write!(f, "serve spec: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// How often blocking points poll the shutdown flag.
const POLL_SLICE: Duration = Duration::from_millis(20);
/// Per-rotation socket read slice.
const READ_SLICE: Duration = Duration::from_millis(5);

impl Server {
    /// Binds `addr` and prepares the daemon: parses the spec, and — if a
    /// snapshot file exists at the configured path — restores every
    /// salvageable session from it.
    ///
    /// # Errors
    ///
    /// Fails on socket errors or an unparsable predictor spec. A
    /// missing, truncated, or partially corrupt snapshot is *not* an
    /// error (salvage restores the healthy prefix); only an unreadable
    /// file with valid magic... is still not fatal — the daemon starts
    /// cold and logs via metrics.
    pub fn bind<A: ToSocketAddrs>(addr: A, config: ServeConfig) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let store = SessionStore::new(&config.spec, config.limits.max_sessions)
            .map_err(|e| ServeError::Spec(e.to_string()))?;
        let mut restored = 0;
        if let Some(path) = &config.snapshot_path {
            if let Ok(bytes) = std::fs::read(path) {
                match decode_snapshot(&bytes) {
                    Ok((records, report)) => {
                        restored = store.restore(&records);
                        config.obs.add("serve_restored_total", &[], restored as u64);
                        config
                            .obs
                            .add("serve_snapshot_dropped_total", &[], report.dropped as u64);
                    }
                    Err(_) => {
                        config.obs.add("serve_snapshot_unreadable_total", &[], 1);
                    }
                }
            }
        }
        Ok(Server {
            listener,
            ctx: Arc::new(ServerCtx {
                config,
                store,
                queue: ConnQueue::new(),
                shutdown: Arc::new(AtomicBool::new(false)),
                checked_out: std::sync::atomic::AtomicUsize::new(0),
                restored,
                recent_us: Mutex::new(VecDeque::with_capacity(RECENT_WINDOW)),
            }),
        })
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop this daemon from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shutdown: Arc::clone(&self.ctx.shutdown),
        }
    }

    /// Runs the daemon until a shutdown is requested, then drains and
    /// snapshots. Blocks the calling thread (it becomes the acceptor).
    ///
    /// # Errors
    ///
    /// Returns the final snapshot write error, if any; serving errors on
    /// individual connections are handled per connection.
    pub fn run(self) -> Result<ShutdownReport, ServeError> {
        let ctx = &self.ctx;
        std::thread::scope(|scope| {
            for _ in 0..ctx.config.limits.workers.max(1) {
                scope.spawn(|| worker_loop(ctx));
            }
            // Acceptor loop.
            while !ctx.shutdown.load(Ordering::SeqCst) {
                match self.listener.accept() {
                    Ok((stream, _)) => accept_connection(ctx, stream),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(POLL_SLICE);
                    }
                    Err(_) => std::thread::sleep(POLL_SLICE),
                }
            }
        });
        // Workers have drained: write the final snapshot.
        let records = ctx.store.records();
        let mut snapshot_bytes = 0u64;
        if let Some(path) = &ctx.config.snapshot_path {
            let bytes = encode_snapshot(&records);
            snapshot_bytes = bytes.len() as u64;
            atomic_write(path, &bytes)?;
        }
        Ok(ShutdownReport {
            sessions: records.len(),
            snapshot_bytes,
            restored: ctx.restored,
        })
    }
}

fn accept_connection(ctx: &ServerCtx, stream: TcpStream) {
    let live = ctx.queue.len() + ctx.checked_out.load(Ordering::Relaxed);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_SLICE));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let conn = Conn {
        stream,
        buf: Vec::new(),
        idle: Deadline::after(ctx.config.limits.idle_timeout),
    };
    match ctx.queue.admit(conn, ctx.config.limits.queue_depth, live) {
        Ok(()) => {
            ctx.config
                .obs
                .gauge("serve_queue_depth", &[], ctx.queue.len() as f64);
        }
        Err(mut refused) => {
            // Shed, never stall: one Overloaded frame, then drop.
            let _ = refused
                .stream
                .write_all(&encode_frame(&Reply::Overloaded.encode()));
            ctx.config.obs.add("serve_shed_total", &[], 1);
            count(ctx, "overloaded");
        }
    }
}

fn worker_loop(ctx: &ServerCtx) {
    loop {
        let Some(conn) = ctx.queue.pop(POLL_SLICE) else {
            if ctx.shutdown.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        ctx.checked_out.fetch_add(1, Ordering::Relaxed);
        let keep = serve_slice(ctx, conn);
        // Requeue before releasing the checked-out slot so the live
        // count never transiently under-reports (which would let the
        // acceptor admit past the cap).
        if let Some(conn) = keep {
            ctx.queue.requeue(conn);
        }
        ctx.checked_out.fetch_sub(1, Ordering::Relaxed);
        ctx.config
            .obs
            .gauge("serve_sessions", &[], ctx.store.len() as f64);
    }
}

/// Serves at most one request from `conn`; returns the connection if it
/// should stay live.
fn serve_slice(ctx: &ServerCtx, mut conn: Conn) -> Option<Conn> {
    if ctx.shutdown.load(Ordering::SeqCst) {
        // Drain: tell the client to come back after the restart.
        let _ = conn
            .stream
            .write_all(&encode_frame(&Reply::ShuttingDown.encode()));
        count(ctx, "shutting_down");
        return None;
    }
    match poll_frame(&mut conn) {
        Poll::Frame(payload) => {
            conn.idle = Deadline::after(ctx.config.limits.idle_timeout);
            let deadline = Deadline::after(ctx.config.limits.request_deadline);
            let started = std::time::Instant::now();
            let (reply_bytes, outcome) = handle_payload(ctx, &payload, deadline);
            let elapsed_us = started.elapsed().as_micros() as u64;
            ctx.config.obs.observe(
                "serve_request_us",
                &[],
                REQUEST_US_BOUNDS,
                elapsed_us as f64,
            );
            {
                let mut recent = ctx.recent_us.lock().unwrap_or_else(PoisonError::into_inner);
                if recent.len() == RECENT_WINDOW {
                    recent.pop_front();
                }
                recent.push_back(elapsed_us);
            }
            count(ctx, outcome);
            let closing = outcome == "malformed";
            if conn.stream.write_all(&encode_frame(&reply_bytes)).is_err() || closing {
                // Malformed framing is unrecoverable mid-stream: close
                // so the client reconnects cleanly.
                return None;
            }
            Some(conn)
        }
        Poll::NoData => {
            if conn.idle.expired() {
                count(ctx, "idle_closed");
                None
            } else {
                Some(conn)
            }
        }
        Poll::Closed => None,
        Poll::Corrupt => {
            let _ = conn
                .stream
                .write_all(&encode_frame(&Reply::Malformed.encode()));
            count(ctx, "malformed");
            None
        }
    }
}

enum Poll {
    Frame(Vec<u8>),
    NoData,
    Closed,
    Corrupt,
}

/// Pulls available bytes and tries to complete one frame. A frame
/// already buffered is returned without touching the socket.
fn poll_frame(conn: &mut Conn) -> Poll {
    loop {
        // Try to parse a complete frame from the buffer.
        let mut slice: &[u8] = &conn.buf;
        match read_frame(&mut slice) {
            Ok(payload) => {
                let consumed = conn.buf.len() - slice.len();
                conn.buf.drain(..consumed);
                return Poll::Frame(payload);
            }
            Err(FrameError::Closed) => {} // empty buffer: read more
            Err(FrameError::Io(e)) if e.kind() == io::ErrorKind::UnexpectedEof => {
                // Incomplete frame: read more.
            }
            Err(FrameError::Corrupt(_)) => return Poll::Corrupt,
            Err(FrameError::Io(_)) => return Poll::Corrupt,
        }
        let mut chunk = [0u8; 4096];
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                return if conn.buf.is_empty() {
                    Poll::Closed
                } else {
                    // EOF mid-frame: nothing more will complete it.
                    Poll::Corrupt
                };
            }
            Ok(n) => conn.buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                return Poll::NoData;
            }
            Err(_) => return Poll::Closed,
        }
    }
}

/// Decodes and executes one request payload. Returns the encoded reply
/// payload and the outcome label for metrics.
fn handle_payload(ctx: &ServerCtx, payload: &[u8], deadline: Deadline) -> (Vec<u8>, &'static str) {
    let request = match Request::decode(payload) {
        Ok(request) => request,
        Err(_) => return (Reply::Malformed.encode(), "malformed"),
    };
    if !ctx.config.process_delay.is_zero() {
        std::thread::sleep(ctx.config.process_delay);
    }
    if deadline.expired() {
        let seq = request.seq().unwrap_or(0);
        return (Reply::DeadlineExceeded { seq }.encode(), "deadline");
    }
    match request {
        Request::Predict { session, seq, pc } => run_session_op(ctx, session, seq, move |s| {
            let value = s.predictor.predict(pc);
            Reply::Predicted { seq, value }
        }),
        Request::Update {
            session,
            seq,
            pc,
            value,
        } => run_session_op(ctx, session, seq, move |s| {
            let outcome = s.predictor.access(pc, value);
            Reply::Updated {
                seq,
                predicted: outcome.predicted,
                correct: outcome.correct,
            }
        }),
        Request::DebugPanic { session, seq } => run_session_op(ctx, session, seq, move |_| {
            panic!("injected panic for session {session} seq {seq}")
        }),
        Request::Snapshot => {
            let Some(path) = &ctx.config.snapshot_path else {
                return (Reply::Failed.encode(), "failed");
            };
            let bytes = encode_snapshot(&ctx.store.records());
            match atomic_write(path, &bytes) {
                Ok(()) => (Reply::SnapshotDone(bytes.len() as u64).encode(), "ok"),
                Err(_) => (Reply::Failed.encode(), "failed"),
            }
        }
        Request::Stats => (Reply::StatsText(scrape_text(ctx)).encode(), "ok"),
    }
}

/// Renders the scrape exposition: rolling-window latency percentiles and
/// per-spec live-session telemetry (computed fresh per scrape, cheap
/// enough to serve under load), merged with the obs registry when the
/// daemon is instrumented — all through the one `dfcm-obs` Prometheus
/// formatter, so every exposed metric shares a single escaping and
/// label convention.
fn scrape_text(ctx: &ServerCtx) -> String {
    let registry = dfcm_obs::metrics::MetricsRegistry::new();
    let mut sorted: Vec<u64> = {
        let recent = ctx.recent_us.lock().unwrap_or_else(PoisonError::into_inner);
        recent.iter().copied().collect()
    };
    registry.gauge("serve_recent_window", &[], sorted.len() as f64);
    if !sorted.is_empty() {
        sorted.sort_unstable();
        for (label, q) in [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99)] {
            registry.gauge(
                "serve_recent_request_us",
                &[("quantile", label)],
                crate::loadgen::percentile(&sorted, q) as f64,
            );
        }
        registry.gauge(
            "serve_recent_request_us",
            &[("quantile", "1")],
            *sorted.last().expect("non-empty") as f64,
        );
    }
    let telemetry = ctx.store.telemetry();
    for (spec, live) in &telemetry.by_spec {
        registry.gauge("serve_live_sessions", &[("spec", spec)], *live as f64);
    }
    registry.gauge("serve_poisoned_sessions", &[], telemetry.poisoned as f64);
    let mut merged = registry.snapshot();
    let (_, obs_metrics) = ctx.config.obs.snapshot();
    merged.merge(&obs_metrics);
    dfcm_obs::export::to_prometheus(&merged)
}

/// Runs a session-scoped operation with exactly-once replay and panic
/// quarantine.
fn run_session_op(
    ctx: &ServerCtx,
    session: u64,
    seq: u64,
    op: impl FnOnce(&mut crate::session::Session) -> Reply,
) -> (Vec<u8>, &'static str) {
    let result = catch_unwind(AssertUnwindSafe(|| {
        ctx.store.with_session(session, |s| {
            if s.poisoned {
                return (Reply::Poisoned { seq }.encode(), "poisoned");
            }
            if seq != 0 && seq == s.last_seq && !s.last_reply.is_empty() {
                // Retry of the last processed request: replay the cached
                // reply instead of double-applying the update.
                return (s.last_reply.clone(), "replayed");
            }
            let bytes = op(s).encode();
            if seq != 0 {
                s.last_seq = seq;
                s.last_reply = bytes.clone();
            }
            (bytes, "ok")
        })
    }));
    match result {
        Ok(reply) => reply,
        Err(_) => {
            // The panic unwound out of the shard lock; quarantine the
            // session so its (possibly half-updated) state is never
            // served or snapshotted again.
            ctx.store.poison(session);
            ctx.config.obs.add("serve_panics_total", &[], 1);
            (Reply::Poisoned { seq }.encode(), "panicked")
        }
    }
}

fn count(ctx: &ServerCtx, outcome: &str) {
    ctx.config
        .obs
        .add("serve_requests_total", &[("outcome", outcome)], 1);
    if ctx.store.evictions() > 0 {
        ctx.config
            .obs
            .gauge("serve_evictions", &[], ctx.store.evictions() as f64);
    }
}
