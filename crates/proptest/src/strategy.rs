//! The [`Strategy`] trait and the combinators this workspace uses.

use std::ops::{Range, RangeInclusive};

use crate::pattern::generate_pattern;
use crate::test_runner::TestRng;

/// Produces values of an associated type from an RNG. The shim has no
/// shrinking: a strategy is just a generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Boxes a strategy; used by `prop_oneof!` to unify branch types.
pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

/// The [`Strategy::prop_map`] adaptor.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the held value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (the `prop_oneof!` backend).
pub struct Union<T> {
    branches: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union; `branches` must be nonempty.
    pub fn new(branches: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(
            !branches.is_empty(),
            "prop_oneof! needs at least one branch"
        );
        Union { branches }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.branches.len() as u64) as usize;
        self.branches[pick].generate(rng)
    }
}

macro_rules! uint_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = u64::from(self.end - self.start);
                    self.start + rng.below(span) as $ty
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = u64::from(self.end() - self.start());
                    if span == u64::MAX {
                        return rng.next_u64() as $ty;
                    }
                    self.start() + rng.below(span + 1) as $ty
                }
            }
        )*
    };
}

uint_range_strategy!(u8, u16, u32);

macro_rules! int_range_strategy {
    ($($ty:ty => $wide:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as $wide - self.start as $wide) as u64;
                    (self.start as $wide + rng.below(span) as $wide) as $ty
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() as $wide - *self.start() as $wide) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $ty;
                    }
                    (*self.start() as $wide + rng.below(span + 1) as $wide) as $ty
                }
            }
        )*
    };
}

int_range_strategy!(u64 => u128, usize => u128, i8 => i128, i16 => i128, i32 => i128, i64 => i128, isize => i128);

macro_rules! float_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    // Uniform in [start, end): 53 random bits scaled into
                    // the unit interval, then into the range. Rounding can
                    // land exactly on `end`; fall back to `start` to keep
                    // the half-open contract.
                    let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                    let span = self.end as f64 - self.start as f64;
                    let value = (self.start as f64 + unit * span) as $ty;
                    if value >= self.start && value < self.end {
                        value
                    } else {
                        self.start
                    }
                }
            }
        )*
    };
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {
        $(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// String literals act as (a small subset of) regex generators, as in
/// real proptest; see [`crate::pattern`] for the supported syntax.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_ranges_cover_negative_spans() {
        let mut rng = TestRng::new(7);
        for _ in 0..200 {
            let v = (-127i64..=127).generate(&mut rng);
            assert!((-127..=127).contains(&v));
            let w = (-64i64..64).generate(&mut rng);
            assert!((-64..64).contains(&w));
        }
    }

    #[test]
    fn full_u64_range_does_not_overflow() {
        let mut rng = TestRng::new(11);
        let _ = (0u64..=u64::MAX).generate(&mut rng);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = TestRng::new(1);
        let _ = (5u32..5).generate(&mut rng);
    }
}
