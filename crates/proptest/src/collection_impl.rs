//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A `Vec` strategy with a length drawn from `len`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.len.clone().generate(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Vectors of `element` values with a length in `len`
/// (`prop::collection::vec`).
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, len }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_drawn_from_range() {
        let strategy = vec(0u32..5, 2..6);
        let mut rng = TestRng::new(3);
        for _ in 0..100 {
            let v = strategy.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }
}
