//! Deterministic RNG and case bookkeeping for the `proptest!` macro.

/// Splitmix64 — small, fast, and good enough to drive test-case
/// generation. Deterministic across platforms and runs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `0..bound` (`bound` must be nonzero). The modulo
    /// bias is irrelevant at test-generation quality.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// Number of cases per property test (`PROPTEST_CASES`, default 64).
pub fn case_count() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(64)
}

/// The seed of one case: an FNV-1a hash of the test name mixed with the
/// case index, so every test walks its own reproducible sequence.
pub fn case_seed(name: &str, case: u32) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x1_0000_01B3);
    }
    hash ^ (u64::from(case) << 32) ^ u64::from(case)
}

/// Prints which case failed when a property test panics (this shim does
/// not shrink; the seed makes the case reproducible).
pub struct CaseGuard {
    name: &'static str,
    case: u32,
    seed: u64,
    armed: bool,
}

impl CaseGuard {
    /// Arms the guard for one case.
    pub fn new(name: &'static str, case: u32, seed: u64) -> Self {
        CaseGuard {
            name,
            case,
            seed,
            armed: true,
        }
    }

    /// Disarms after the case body passed.
    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!(
                "proptest (offline shim): `{}` failed at case {} (seed {:#018x})",
                self.name, self.case, self.seed
            );
        }
    }
}
