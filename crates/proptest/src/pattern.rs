//! A tiny regex-like string generator.
//!
//! Real proptest treats string literals as regexes. This shim supports
//! the subset the workspace's tests use: a sequence of atoms, where an
//! atom is a literal character, an escape (`\n`, `\t`, `\\`), or a
//! character class `[...]` (with `a-b` ranges and the same escapes), each
//! optionally followed by a `{m,n}` repetition.

use crate::test_runner::TestRng;

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

/// One parsed atom: the characters it may produce and its repetition.
struct Atom {
    choices: Vec<char>,
    min: u32,
    max: u32,
}

fn parse(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = match chars[i] {
            '[' => {
                i += 1;
                let mut set = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let c = if chars[i] == '\\' {
                        i += 1;
                        unescape(chars[i])
                    } else {
                        chars[i]
                    };
                    // `a-b` range (a trailing `-` is a literal).
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let hi = chars[i + 2];
                        assert!(c <= hi, "bad pattern range `{c}-{hi}`");
                        set.extend(c..=hi);
                        i += 3;
                    } else {
                        set.push(c);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in `{pattern}`");
                i += 1; // past ']'
                set
            }
            '\\' => {
                i += 1;
                let c = unescape(chars[i]);
                i += 1;
                vec![c]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unterminated repetition");
            let body: String = chars[i + 1..i + close].iter().collect();
            i += close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.parse().expect("bad repetition"),
                    hi.parse().expect("bad repetition"),
                ),
                None => {
                    let n = body.parse().expect("bad repetition");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "bad repetition in `{pattern}`");
        assert!(!choices.is_empty(), "empty class in `{pattern}`");
        atoms.push(Atom { choices, min, max });
    }
    atoms
}

/// Generates one string conforming to `pattern`.
pub fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for atom in parse(pattern) {
        let count = atom.min + rng.below(u64::from(atom.max - atom.min) + 1) as u32;
        for _ in 0..count {
            out.push(atom.choices[rng.below(atom.choices.len() as u64) as usize]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_range_and_escape() {
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let s = generate_pattern("[ -~\n]{0,30}", &mut rng);
            assert!(s.len() <= 30);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn literal_repetition() {
        let mut rng = TestRng::new(2);
        for _ in 0..50 {
            let s = generate_pattern(" {0,4}", &mut rng);
            assert!(s.len() <= 4);
            assert!(s.chars().all(|c| c == ' '));
        }
    }

    #[test]
    fn plain_literals_pass_through() {
        let mut rng = TestRng::new(3);
        assert_eq!(generate_pattern("abc", &mut rng), "abc");
        assert_eq!(generate_pattern("a\\nb", &mut rng), "a\nb");
    }

    #[test]
    fn exact_repetition() {
        let mut rng = TestRng::new(4);
        assert_eq!(generate_pattern("x{3}", &mut rng), "xxx");
    }
}
