//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships a small std-only implementation of the `proptest` subset its
//! test suites use: the [`strategy::Strategy`] trait over a deterministic RNG, the
//! `proptest!`, `prop_assert*` and `prop_oneof!` macros, numeric-range /
//! tuple / collection / simple-regex strategies, and `any::<T>()`.
//!
//! Semantics differ from real proptest in two deliberate ways: cases are
//! generated from a seed derived from the test name (reproducible without
//! a persisted failure file), and failing cases are reported but not
//! shrunk. Set `PROPTEST_CASES` to change the number of cases per test
//! (default 64).

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection_impl;
pub mod pattern;
pub mod strategy;
pub mod test_runner;

/// Mirrors `proptest::prelude` for the subset this workspace uses.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Mirrors the `prop` module paths (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection_impl as collection;
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::test_runner::case_count();
                for case in 0..cases {
                    let seed = $crate::test_runner::case_seed(stringify!($name), case);
                    let mut rng = $crate::test_runner::TestRng::new(seed);
                    let guard = $crate::test_runner::CaseGuard::new(stringify!($name), case, seed);
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                    $body
                    guard.disarm();
                }
            }
        )*
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Picks uniformly among the listed strategies (all must share a value
/// type). Real proptest supports weights; this subset does not need them.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Ranges stay in bounds and tuples/maps compose.
        #[test]
        fn ranges_and_maps(x in 3u32..10, y in -5i64..=5, s in (0u64..4, any::<bool>()).prop_map(|(a, b)| (a * 2, b))) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!(s.0 <= 6 && s.0 % 2 == 0);
        }

        /// Collections respect their length range.
        #[test]
        fn vec_lengths(v in prop::collection::vec(any::<u8>(), 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
        }

        /// Simple regex-like patterns produce conforming strings.
        #[test]
        fn patterns(text in "[a-c]{1,4}", pad in " {0,3}") {
            prop_assert!((1..=4).contains(&text.len()));
            prop_assert!(text.chars().all(|c| ('a'..='c').contains(&c)));
            prop_assert!(pad.len() <= 3 && pad.chars().all(|c| c == ' '));
        }

        /// prop_oneof picks only from the listed strategies.
        #[test]
        fn oneof_members(v in prop_oneof![Just(1u32), Just(5u32), 10u32..12]) {
            prop_assert!(v == 1 || v == 5 || v == 10 || v == 11);
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        use crate::strategy::Strategy;
        let s = crate::collection_impl::vec(0u64..1000, 5..20);
        let mut a = crate::test_runner::TestRng::new(crate::test_runner::case_seed("x", 0));
        let mut b = crate::test_runner::TestRng::new(crate::test_runner::case_seed("x", 0));
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
