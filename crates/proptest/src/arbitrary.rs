//! `any::<T>()` for the primitive types this workspace generates.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($ty:ty),*) => {
        $(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*
    };
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A full-domain strategy for `T`, as `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}
