//! Predictions-per-second throughput suite.
//!
//! Measures the simulator's hot path over the eight-benchmark synthetic
//! suite and emits a machine-readable `BENCH_throughput.json` (schema
//! `dfcm-bench-throughput/v1`, validated by `dfcm-tools bench check`) at
//! the repo root, so throughput can be compared across commits. Two paths
//! per predictor:
//!
//! * **dyn** — the classic per-predictor pass: `Box<dyn ValuePredictor>`
//!   driven through the predict-then-update protocol, one full suite walk
//!   per configuration (the pre-streaming hot path).
//! * **stream** — one [`StreamPredictor`] lane through the single-pass
//!   streaming core (fused access, enum dispatch).
//!
//! Per-predictor entries time the walk alone (traces already in memory),
//! giving the raw predictions/sec trajectory for each of the four paper
//! predictors at eval-sized tables. The headline aggregate times the
//! workload the streaming core exists for: a paper-style table-size sweep
//! (16 configurations) over the suite stored as DFCMTRC2 traces. The
//! baseline is the pre-streaming workflow — one cold start per
//! configuration, each paying a full v2 decode (CRC + varint) of every
//! benchmark plus a dyn walk, exactly what 16 separate `dfcm-tools eval`
//! invocations cost. The streaming side decodes each benchmark ONCE and
//! feeds all 16 lanes in a single pass (`dfcm-tools eval --streaming`):
//! `aggregate.speedup = baseline_dyn_seconds / stream_seconds`.
//!
//! Not a Criterion bench: the in-workspace criterion shim measures
//! internally but does not expose timings, and this suite must write its
//! numbers out. `--test` / `--quick` (or `DFCM_BENCH_QUICK=1`) selects a
//! small-trace smoke mode for CI; `DFCM_BENCH_OUT` overrides the output
//! path.

use std::path::PathBuf;
use std::time::Instant;

use dfcm::{DfcmPredictor, FcmPredictor, LastValuePredictor, StridePredictor, ValuePredictor};
use dfcm_obs::json::JsonObj;
use dfcm_sim::{stream_trace, StreamPredictor};
use dfcm_trace::suite::{standard_traces, BenchmarkTrace};
use dfcm_trace::Trace;

/// One measured pass.
struct Measurement {
    predictor: String,
    kind: &'static str,
    path: &'static str,
    records: u64,
    seconds: f64,
}

impl Measurement {
    fn predictions_per_sec(&self) -> f64 {
        self.records as f64 / self.seconds
    }
}

/// Best-of-`reps` wall time of `run`, each rep on freshly built state.
fn best_of<T>(reps: usize, mut build: impl FnMut() -> T, mut run: impl FnMut(&mut T)) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut state = build();
        let start = Instant::now();
        run(&mut state);
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// The four paper predictors at eval-sized tables, as streaming lanes.
fn lanes() -> Vec<(&'static str, StreamPredictor)> {
    vec![
        ("lvp", LastValuePredictor::new(16).into()),
        ("stride", StridePredictor::new(16).into()),
        (
            "fcm",
            FcmPredictor::builder()
                .l1_bits(16)
                .l2_bits(12)
                .build()
                .unwrap()
                .into(),
        ),
        (
            "dfcm",
            DfcmPredictor::builder()
                .l1_bits(16)
                .l2_bits(12)
                .build()
                .unwrap()
                .into(),
        ),
    ]
}

/// The aggregate's sweep: lvp/stride at 2^{10,12,14,16} entries and
/// fcm/dfcm at l1 = 2^16 with l2 = 2^{8,10,12,14} — the repo's standard
/// table-size sweep shape (16 configurations).
fn sweep_lanes() -> Vec<StreamPredictor> {
    let mut v: Vec<StreamPredictor> = Vec::new();
    for bits in [10u32, 12, 14, 16] {
        v.push(LastValuePredictor::new(bits).into());
        v.push(StridePredictor::new(bits).into());
    }
    for l2 in [8u32, 10, 12, 14] {
        v.push(
            FcmPredictor::builder()
                .l1_bits(16)
                .l2_bits(l2)
                .build()
                .unwrap()
                .into(),
        );
        v.push(
            DfcmPredictor::builder()
                .l1_bits(16)
                .l2_bits(l2)
                .build()
                .unwrap()
                .into(),
        );
    }
    v
}

/// The pre-streaming reference pass: dyn dispatch, predict then update
/// (two table index computations per record), counting like the classic
/// `simulate_trace`.
fn dyn_pass(p: &mut Box<dyn ValuePredictor>, trace: &Trace) -> u64 {
    let mut correct = 0u64;
    for r in trace {
        let predicted = p.predict(r.pc);
        p.update(r.pc, r.value);
        correct += u64::from(predicted == r.value);
    }
    correct
}

/// A dyn suite walk: fresh predictor per benchmark, like `run_suite`.
fn dyn_suite(lane: &StreamPredictor, suite: &[BenchmarkTrace]) -> u64 {
    let mut correct = 0u64;
    for bench in suite {
        let mut p: Box<dyn ValuePredictor> = Box::new(lane.clone());
        correct += dyn_pass(&mut p, &bench.trace);
    }
    correct
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--test" || a == "--quick")
        || std::env::var_os("DFCM_BENCH_QUICK").is_some();
    // Criterion-style harness flags that other benches accept are
    // irrelevant here but must not error under `cargo bench -- --test`.
    let mode = if quick { "quick" } else { "full" };
    let scale = if quick { 0.01 } else { 0.1 };
    let reps = if quick { 1 } else { 3 };

    eprintln!("throughput: generating synthetic suite (scale {scale}, {mode} mode)...");
    let suite = standard_traces(0xBEEF, scale);
    let records: u64 = suite.iter().map(|b| b.trace.len() as u64).sum();

    let mut results: Vec<Measurement> = Vec::new();

    // Per-predictor: dyn reference walk vs single-lane streaming walk,
    // traces in memory, fresh predictor per benchmark.
    for (kind, lane) in lanes() {
        let name = lane.name();
        let dyn_s = best_of(
            reps,
            || (),
            |()| {
                std::hint::black_box(dyn_suite(&lane, &suite));
            },
        );
        results.push(Measurement {
            predictor: name.clone(),
            kind,
            path: "dyn",
            records,
            seconds: dyn_s,
        });
        let stream_s = best_of(
            reps,
            || (),
            |()| {
                for bench in &suite {
                    let mut l = vec![lane.clone()];
                    std::hint::black_box(stream_trace(&mut l, &bench.trace));
                }
            },
        );
        results.push(Measurement {
            predictor: name,
            kind,
            path: "stream",
            records,
            seconds: stream_s,
        });
    }

    // Aggregate: the table-size sweep on the suite stored as v2 traces.
    // Baseline = one cold start per configuration (every benchmark
    // decoded, then a dyn walk — what 16 separate `eval` invocations
    // cost); stream = each benchmark decoded ONCE, feeding all 16 lanes
    // in a single pass.
    let encoded: Vec<Vec<u8>> = suite
        .iter()
        .map(|b| {
            let mut v = Vec::new();
            b.trace
                .write_v2_to(&mut v, 0xBEEF)
                .expect("in-memory v2 encode cannot fail");
            v
        })
        .collect();
    let sweep = sweep_lanes();
    let configs = sweep.len() as u64;
    let baseline_dyn_seconds = best_of(
        reps,
        || (),
        |()| {
            for lane in &sweep {
                for bytes in &encoded {
                    let trace = Trace::read_from(bytes.as_slice()).expect("suite decodes");
                    let mut p: Box<dyn ValuePredictor> = Box::new(lane.clone());
                    std::hint::black_box(dyn_pass(&mut p, &trace));
                }
            }
        },
    );
    let stream_seconds = best_of(
        reps,
        || (),
        |()| {
            for bytes in &encoded {
                let trace = Trace::read_from(bytes.as_slice()).expect("suite decodes");
                let mut l = sweep.clone();
                std::hint::black_box(stream_trace(&mut l, &trace));
            }
        },
    );
    let speedup = baseline_dyn_seconds / stream_seconds;

    println!("predictions/sec on the synthetic suite ({records} records, {mode} mode):");
    for m in &results {
        println!(
            "  {:<16} {:<6} {:>12.0} pred/s  ({:.4}s)",
            m.predictor,
            m.path,
            m.predictions_per_sec(),
            m.seconds
        );
    }
    println!(
        "  aggregate ({configs}-config sweep): {configs} cold starts (decode + dyn walk) \
         {baseline_dyn_seconds:.4}s vs one decode + {configs}-lane stream pass \
         {stream_seconds:.4}s -> {speedup:.2}x"
    );

    // Emit the artifact.
    let out_path = std::env::var_os("DFCM_BENCH_OUT").map_or_else(
        || {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("BENCH_throughput.json")
        },
        PathBuf::from,
    );
    let result_objs: Vec<String> = results
        .iter()
        .map(|m| {
            JsonObj::new()
                .str("predictor", &m.predictor)
                .str("kind", m.kind)
                .str("path", m.path)
                .u64("records", m.records)
                .f64("seconds", m.seconds, 6)
                .f64("predictions_per_sec", m.predictions_per_sec(), 1)
                .finish()
        })
        .collect();
    let machine = JsonObj::new()
        .str("os", std::env::consts::OS)
        .str("arch", std::env::consts::ARCH)
        .u64(
            "threads",
            std::thread::available_parallelism().map_or(1, |n| n.get() as u64),
        )
        .finish();
    let aggregate = JsonObj::new()
        .u64("configs", configs)
        .f64("baseline_dyn_seconds", baseline_dyn_seconds, 6)
        .f64("stream_seconds", stream_seconds, 6)
        .f64("speedup", speedup, 3)
        .finish();
    let doc = JsonObj::new()
        .str("schema", "dfcm-bench-throughput/v1")
        .str("mode", mode)
        .str("suite", "synthetic-suite")
        .u64("records", records)
        .raw("machine", &machine)
        .raw("results", &format!("[{}]", result_objs.join(",")))
        .raw("aggregate", &aggregate)
        .finish();
    match dfcm_trace::atomic_write(&out_path, format!("{doc}\n").as_bytes()) {
        Ok(()) => println!("wrote {}", out_path.display()),
        Err(e) => {
            eprintln!("error writing {}: {e}", out_path.display());
            std::process::exit(1);
        }
    }
}
