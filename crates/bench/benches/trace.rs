//! Trace-format benchmark: v3 (compressed) against v2 on the synthetic
//! suite.
//!
//! For every suite benchmark this encodes the same trace as v2 and v3,
//! reports per-format sizes and bits/record, times v3 encode/decode
//! (MB/s against the raw record size, 16 bytes/record), and streams both
//! files through a DFCM lane to compare end-to-end predictions/sec. It
//! emits `BENCH_trace.json` (schema `dfcm-bench-trace/v1`, validated by
//! `dfcm-tools bench check`) at the repo root.
//!
//! Density is an acceptance gate, not just a report: the validator
//! requires every suite trace to come in at or under 16 bits/record in
//! v3, the aggregate at or under 12, and the aggregate ratio over v2 at
//! 2x or better, so a packing or compression regression fails CI.
//!
//! Not a Criterion bench: the in-workspace criterion shim measures
//! internally but does not expose timings, and this suite must write
//! its numbers out. `--test` / `--quick` (or `DFCM_BENCH_QUICK=1`)
//! selects a small smoke mode for CI; `DFCM_BENCH_OUT` overrides the
//! output path.

use std::path::PathBuf;
use std::time::Instant;

use dfcm_obs::json::JsonObj;
use dfcm_sim::{stream_v2_file, stream_v3_file, StreamPredictor};
use dfcm_trace::suite::standard_suite;
use dfcm_trace::{Trace, TraceFormat, TraceSource};

/// Raw size of one record before any encoding (pc + value, 8 bytes each).
const RAW_RECORD_BYTES: f64 = 16.0;

/// Best-of-`reps` wall time for `run`.
fn best_of<T>(reps: usize, mut run: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let start = Instant::now();
        let value = run();
        best = best.min(start.elapsed().as_secs_f64());
        last = Some(value);
    }
    (best, last.expect("reps >= 1"))
}

struct SuiteResult {
    name: &'static str,
    records: u64,
    v2_bytes: u64,
    v3_bytes: u64,
    encode_seconds: f64,
    decode_seconds: f64,
}

impl SuiteResult {
    fn v2_bits_record(&self) -> f64 {
        self.v2_bytes as f64 * 8.0 / self.records as f64
    }
    fn v3_bits_record(&self) -> f64 {
        self.v3_bytes as f64 * 8.0 / self.records as f64
    }
    fn encode_mb_s(&self) -> f64 {
        self.records as f64 * RAW_RECORD_BYTES / 1e6 / self.encode_seconds
    }
    fn decode_mb_s(&self) -> f64 {
        self.records as f64 * RAW_RECORD_BYTES / 1e6 / self.decode_seconds
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--test" || a == "--quick")
        || std::env::var_os("DFCM_BENCH_QUICK").is_some();
    let mode = if quick { "quick" } else { "full" };
    let records_per_trace: usize = if quick { 80_000 } else { 1_000_000 };
    let reps = if quick { 1 } else { 3 };
    let seed = 0xBEEF;

    eprintln!(
        "trace: encoding {} suite benchmarks at {records_per_trace} records ({mode} mode)...",
        standard_suite().len()
    );

    let mut results: Vec<SuiteResult> = Vec::new();
    let mut traces: Vec<(&'static str, Trace)> = Vec::new();
    for spec in standard_suite() {
        let trace = spec.program(seed).take_trace(records_per_trace);
        let mut v2 = Vec::new();
        trace.write_v2_to(&mut v2, seed).expect("vec write");
        let (encode_seconds, v3) = best_of(reps, || {
            let mut buf = Vec::new();
            trace
                .write_with(&mut buf, TraceFormat::V3 { seed })
                .expect("vec write");
            buf
        });
        let (decode_seconds, decoded) =
            best_of(reps, || Trace::read_from(&v3[..]).expect("own encoding"));
        assert_eq!(
            decoded.records(),
            trace.records(),
            "{}: v3 round-trip diverged",
            spec.name()
        );
        results.push(SuiteResult {
            name: spec.name(),
            records: trace.len() as u64,
            v2_bytes: v2.len() as u64,
            v3_bytes: v3.len() as u64,
            encode_seconds,
            decode_seconds,
        });
        traces.push((spec.name(), trace));
    }

    // End-to-end streaming: one suite-sized trace per format on disk,
    // DFCM lane, same thread count both ways.
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get().min(4));
    let dir = std::env::temp_dir().join(format!("dfcm_bench_trace_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let stream_trace: Trace = traces
        .iter()
        .flat_map(|(_, t)| t.records().iter().copied())
        .collect();
    let v2_path = dir.join("stream.v2.trc");
    let v3_path = dir.join("stream.v3.trc");
    stream_trace
        .save_with(&v2_path, TraceFormat::V2 { seed })
        .expect("temp write");
    stream_trace
        .save_with(&v3_path, TraceFormat::V3 { seed })
        .expect("temp write");
    let lane = || -> Vec<StreamPredictor> {
        vec![StreamPredictor::parse_spec("dfcm:12:12").expect("valid spec")]
    };
    let (v2_seconds, v2_report) = best_of(reps, || {
        stream_v2_file(&v2_path, &mut lane(), threads).expect("intact file")
    });
    let (v3_seconds, v3_report) = best_of(reps, || {
        stream_v3_file(&v3_path, &mut lane(), threads).expect("intact file")
    });
    assert_eq!(
        v2_report.stats, v3_report.stats,
        "v2 and v3 streaming paths diverged"
    );
    let v2_pred_s = v2_report.records as f64 / v2_seconds;
    let v3_pred_s = v3_report.records as f64 / v3_seconds;
    std::fs::remove_dir_all(&dir).ok();

    let total_records: u64 = results.iter().map(|r| r.records).sum();
    let total_v2: u64 = results.iter().map(|r| r.v2_bytes).sum();
    let total_v3: u64 = results.iter().map(|r| r.v3_bytes).sum();
    let agg_v2_bits = total_v2 as f64 * 8.0 / total_records as f64;
    let agg_v3_bits = total_v3 as f64 * 8.0 / total_records as f64;
    let encode_mb_s = total_records as f64 * RAW_RECORD_BYTES
        / 1e6
        / results.iter().map(|r| r.encode_seconds).sum::<f64>();
    let decode_mb_s = total_records as f64 * RAW_RECORD_BYTES
        / 1e6
        / results.iter().map(|r| r.decode_seconds).sum::<f64>();

    println!("Trace format density and throughput ({mode} mode):");
    for r in &results {
        println!(
            "  {:<10} {:>9} records  v2 {:>6.2} b/rec  v3 {:>6.2} b/rec  \
             encode {:>7.1} MB/s  decode {:>7.1} MB/s",
            r.name,
            r.records,
            r.v2_bits_record(),
            r.v3_bits_record(),
            r.encode_mb_s(),
            r.decode_mb_s(),
        );
    }
    println!(
        "  aggregate: v2 {agg_v2_bits:.2} -> v3 {agg_v3_bits:.2} bits/record \
         ({:.2}x); stream {v2_pred_s:.0} -> {v3_pred_s:.0} pred/s ({:.2}x, {threads} threads)",
        agg_v2_bits / agg_v3_bits,
        v3_pred_s / v2_pred_s,
    );

    let out_path = std::env::var_os("DFCM_BENCH_OUT").map_or_else(
        || {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("BENCH_trace.json")
        },
        PathBuf::from,
    );
    let suite_objs: Vec<String> = results
        .iter()
        .map(|r| {
            JsonObj::new()
                .str("name", r.name)
                .u64("records", r.records)
                .u64("v2_bytes", r.v2_bytes)
                .u64("v3_bytes", r.v3_bytes)
                .f64("v2_bits_record", r.v2_bits_record(), 3)
                .f64("v3_bits_record", r.v3_bits_record(), 3)
                .f64("encode_mb_s", r.encode_mb_s(), 1)
                .f64("decode_mb_s", r.decode_mb_s(), 1)
                .finish()
        })
        .collect();
    let machine = JsonObj::new()
        .str("os", std::env::consts::OS)
        .str("arch", std::env::consts::ARCH)
        .u64(
            "threads",
            std::thread::available_parallelism().map_or(1, |n| n.get() as u64),
        )
        .finish();
    let aggregate = JsonObj::new()
        .f64("v2_bits_record", agg_v2_bits, 3)
        .f64("v3_bits_record", agg_v3_bits, 3)
        .f64("ratio_vs_v2", agg_v2_bits / agg_v3_bits, 3)
        .f64("encode_mb_s", encode_mb_s, 1)
        .f64("decode_mb_s", decode_mb_s, 1)
        .f64("v2_stream_pred_s", v2_pred_s, 1)
        .f64("v3_stream_pred_s", v3_pred_s, 1)
        .f64("stream_ratio", v3_pred_s / v2_pred_s, 3)
        .u64("stream_threads", threads as u64)
        .finish();
    let doc = JsonObj::new()
        .str("schema", "dfcm-bench-trace/v1")
        .str("mode", mode)
        .u64("records", total_records)
        .raw("machine", &machine)
        .raw("suite", &format!("[{}]", suite_objs.join(",")))
        .raw("aggregate", &aggregate)
        .finish();
    match dfcm_trace::atomic_write(&out_path, format!("{doc}\n").as_bytes()) {
        Ok(()) => println!("wrote {}", out_path.display()),
        Err(e) => {
            eprintln!("error writing {}: {e}", out_path.display());
            std::process::exit(1);
        }
    }
}
