//! End-to-end simulation speed: workload generation, VM execution, and a
//! full suite evaluation — the costs that bound how far the `--scale` and
//! `--full` knobs of `dfcm-repro` can be pushed.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dfcm::DfcmPredictor;
use dfcm_bench::fixture_trace;
use dfcm_sim::{run_suite, simulate_trace};
use dfcm_trace::suite::standard_traces;
use dfcm_trace::TraceSource;
use dfcm_vm::{assemble, programs, Vm};
use std::hint::black_box;

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");

    group.throughput(Throughput::Elements(50_000));
    group.bench_function("generate_trace_50k", |b| {
        b.iter(|| black_box(fixture_trace(50_000)))
    });

    group.bench_function("vm_execute_norm_100k_steps", |b| {
        let program = assemble(programs::NORM).unwrap();
        b.iter(|| {
            let mut vm = Vm::new(program.clone());
            black_box(vm.take_trace(50_000))
        })
    });

    group.bench_function("suite_run_dfcm_scale_0.01", |b| {
        let traces = standard_traces(1, 0.01);
        b.iter(|| {
            black_box(run_suite(
                || {
                    DfcmPredictor::builder()
                        .l1_bits(14)
                        .l2_bits(12)
                        .build()
                        .unwrap()
                },
                &traces,
            ))
        })
    });

    group.bench_function("simulate_dfcm_50k", |b| {
        let trace = fixture_trace(50_000);
        b.iter(|| {
            let mut p = DfcmPredictor::builder()
                .l1_bits(14)
                .l2_bits(12)
                .build()
                .unwrap();
            black_box(simulate_trace(&mut p, &trace))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
