//! Engine scheduling overhead and scaling: the serial `sweep` reference
//! against `sweep_engine` at 1, 2 and 4 workers on a Figure 10(a)-sized
//! sweep. At 1 worker the comparison isolates the queue/merge overhead;
//! higher counts show the scaling the host's cores allow (on a
//! single-core host all counts collapse to the serial cost, which is
//! itself the interesting result).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dfcm::DfcmPredictor;
use dfcm_sim::{sweep, sweep_engine, EngineConfig};
use dfcm_trace::suite::standard_traces;
use std::hint::black_box;

fn bench_engine_vs_serial(c: &mut Criterion) {
    let traces = standard_traces(1, 0.01);
    let configs: Vec<u32> = (8..=16).step_by(2).collect();
    let factory = |&l2: &u32| {
        DfcmPredictor::builder()
            .l1_bits(16)
            .l2_bits(l2)
            .build()
            .unwrap()
    };
    let records: u64 = traces.iter().map(|b| b.trace.len() as u64).sum();

    let mut group = c.benchmark_group("engine");
    group.throughput(Throughput::Elements(records * configs.len() as u64));
    group.bench_function("serial_sweep", |b| {
        b.iter(|| black_box(sweep(&configs, factory, &traces)))
    });
    for threads in [1usize, 2, 4] {
        group.bench_function(BenchmarkId::new("sweep_engine", threads), |b| {
            let engine = EngineConfig::threads(threads);
            b.iter(|| black_box(sweep_engine(&configs, factory, &traces, &engine)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine_vs_serial);
criterion_main!(benches);
