//! Throughput of the history hash functions (the per-access critical
//! operation of both two-level predictors).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dfcm::HashFunction;
use std::hint::black_box;

fn bench_hashes(c: &mut Criterion) {
    let values: Vec<u64> = (0..4096u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect();
    let mut group = c.benchmark_group("hash_fold_update");
    group.throughput(Throughput::Elements(values.len() as u64));
    for (label, hash) in [
        ("fs_r5", HashFunction::FsR5),
        ("fold_xor", HashFunction::FoldXor),
        ("concat", HashFunction::Concat { order: 3 }),
    ] {
        for bits in [12u32, 20] {
            if hash.validate(bits).is_err() {
                continue;
            }
            group.bench_function(BenchmarkId::new(label, bits), |b| {
                b.iter(|| {
                    let mut h = 0u64;
                    for &v in &values {
                        h = hash.fold_update(h, v, bits);
                    }
                    black_box(h)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_hashes);
criterion_main!(benches);
