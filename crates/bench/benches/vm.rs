//! VM execution-tier benchmark: interpreter vs fast tier.
//!
//! Runs every bundled kernel to the same record cap on both tiers,
//! checks the emitted traces are bit-identical (the fast tier's whole
//! contract), and emits `BENCH_vm.json` (schema `dfcm-bench-vm/v1`,
//! validated by `dfcm-tools bench check`) at the repo root so the
//! speedup can be compared across commits.
//!
//! The timed window is execution only (`try_take_trace` on a freshly
//! built `Vm`): a constructed machine generates traces for an entire
//! workload, so construction — the fast tier's pre-decode, profiling
//! and fusion passes — is a per-workload cost, reported separately as
//! `setup_seconds` per tier rather than folded into the rate. Rates are
//! instructions/sec (`vm.steps()` / wall time) — both tiers execute
//! exactly the same instruction count, so the per-kernel `speedup` is
//! also the wall-time ratio.
//!
//! Not a Criterion bench: the in-workspace criterion shim measures
//! internally but does not expose timings, and this suite must write
//! its numbers out. `--test` / `--quick` (or `DFCM_BENCH_QUICK=1`)
//! selects a small-cap smoke mode for CI; `DFCM_BENCH_OUT` overrides
//! the output path.

use std::path::PathBuf;
use std::time::Instant;

use dfcm_obs::json::JsonObj;
use dfcm_trace::Trace;
use dfcm_vm::{assemble, programs, Program, Tier, TierStats, Vm, VmLimits};

/// One tier's measured run of one kernel.
struct TierRun {
    trace: Trace,
    steps: u64,
    setup_seconds: f64,
    seconds: f64,
    stats: Option<TierStats>,
}

/// Best-of-`reps` execution wall time (construction timed separately);
/// the last rep's trace and stats are kept for the equivalence check.
fn run_tier(program: &Program, tier: Tier, max_records: usize, reps: usize) -> TierRun {
    let mut best_setup = f64::INFINITY;
    let mut best = f64::INFINITY;
    let mut last: Option<TierRun> = None;
    for _ in 0..reps {
        let start = Instant::now();
        let mut vm = Vm::with_tier(program.clone(), VmLimits::default(), tier)
            .expect("bundled kernels load");
        best_setup = best_setup.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        let trace = vm
            .try_take_trace(max_records)
            .expect("bundled kernels run clean");
        best = best.min(start.elapsed().as_secs_f64());
        last = Some(TierRun {
            trace,
            steps: vm.steps(),
            setup_seconds: 0.0,
            seconds: 0.0,
            stats: vm.tier_stats().cloned(),
        });
    }
    let mut run = last.expect("reps >= 1");
    run.setup_seconds = best_setup;
    run.seconds = best;
    run
}

/// One kernel's interp-vs-fast comparison.
struct KernelResult {
    kernel: &'static str,
    instructions: u64,
    interp_seconds: f64,
    fast_seconds: f64,
    interp_setup_seconds: f64,
    fast_setup_seconds: f64,
    fused_fraction: f64,
    replay_fraction: f64,
    equivalent: bool,
}

impl KernelResult {
    fn speedup(&self) -> f64 {
        self.interp_seconds / self.fast_seconds
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--test" || a == "--quick")
        || std::env::var_os("DFCM_BENCH_QUICK").is_some();
    let mode = if quick { "quick" } else { "full" };
    let max_records = if quick { 20_000 } else { 200_000 };
    let reps = if quick { 1 } else { 5 };

    eprintln!(
        "vm: running {} kernels on both tiers ({mode} mode, {max_records} record cap)...",
        programs::all().len()
    );

    let mut results: Vec<KernelResult> = Vec::new();
    let mut records: u64 = 0;
    for (kernel, src) in programs::all() {
        let program = assemble(src).expect("bundled kernels assemble");
        let interp = run_tier(&program, Tier::Interp, max_records, reps);
        let fast = run_tier(&program, Tier::Fast, max_records, reps);
        // Bit-identity is the contract being benchmarked: traces AND
        // retired-instruction counts must match exactly.
        let equivalent = interp.trace == fast.trace && interp.steps == fast.steps;
        let stats = fast.stats.expect("fast tier reports stats");
        let instructions = fast.steps;
        records += fast.trace.len() as u64;
        results.push(KernelResult {
            kernel,
            instructions,
            interp_seconds: interp.seconds,
            fast_seconds: fast.seconds,
            interp_setup_seconds: interp.setup_seconds,
            fast_setup_seconds: fast.setup_seconds,
            // A fused superinstruction retires two architectural
            // instructions in one dispatch.
            fused_fraction: 2.0 * stats.fused_executed as f64 / instructions as f64,
            replay_fraction: stats.replay_instructions as f64 / instructions as f64,
            equivalent,
        });
    }

    let equivalent = results.iter().all(|r| r.equivalent);
    let speedups: Vec<f64> = results.iter().map(KernelResult::speedup).collect();
    let min_speedup = speedups.iter().copied().fold(f64::INFINITY, f64::min);
    let max_speedup = speedups.iter().copied().fold(0.0f64, f64::max);
    let geomean_speedup =
        (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();

    println!("VM tier speedup, interp -> fast ({mode} mode):");
    for r in &results {
        println!(
            "  {:<10} {:>10} inst  interp {:>9.4}s  fast {:>9.4}s  {:>6.2}x  \
             fused {:>4.0}%  replay {:>4.0}%{}",
            r.kernel,
            r.instructions,
            r.interp_seconds,
            r.fast_seconds,
            r.speedup(),
            100.0 * r.fused_fraction,
            100.0 * r.replay_fraction,
            if r.equivalent { "" } else { "  TRACE MISMATCH" },
        );
    }
    println!(
        "  aggregate: min {min_speedup:.2}x  geomean {geomean_speedup:.2}x  max {max_speedup:.2}x"
    );

    let out_path = std::env::var_os("DFCM_BENCH_OUT").map_or_else(
        || {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("BENCH_vm.json")
        },
        PathBuf::from,
    );
    let kernel_objs: Vec<String> = results
        .iter()
        .map(|r| {
            JsonObj::new()
                .str("kernel", r.kernel)
                .u64("instructions", r.instructions)
                .f64("interp_seconds", r.interp_seconds, 6)
                .f64("interp_ips", r.instructions as f64 / r.interp_seconds, 1)
                .f64("fast_seconds", r.fast_seconds, 6)
                .f64("fast_ips", r.instructions as f64 / r.fast_seconds, 1)
                .f64("speedup", r.speedup(), 3)
                .f64("interp_setup_seconds", r.interp_setup_seconds, 6)
                .f64("fast_setup_seconds", r.fast_setup_seconds, 6)
                .f64("fused_fraction", r.fused_fraction, 4)
                .f64("replay_fraction", r.replay_fraction, 4)
                .finish()
        })
        .collect();
    let machine = JsonObj::new()
        .str("os", std::env::consts::OS)
        .str("arch", std::env::consts::ARCH)
        .u64(
            "threads",
            std::thread::available_parallelism().map_or(1, |n| n.get() as u64),
        )
        .finish();
    let aggregate = JsonObj::new()
        .u64("kernels", results.len() as u64)
        .f64("min_speedup", min_speedup, 3)
        .f64("geomean_speedup", geomean_speedup, 3)
        .f64("max_speedup", max_speedup, 3)
        .finish();
    let doc = JsonObj::new()
        .str("schema", "dfcm-bench-vm/v1")
        .str("mode", mode)
        .u64("records", records)
        .raw("machine", &machine)
        .raw("equivalent", if equivalent { "true" } else { "false" })
        .raw("kernels", &format!("[{}]", kernel_objs.join(",")))
        .raw("aggregate", &aggregate)
        .finish();
    match dfcm_trace::atomic_write(&out_path, format!("{doc}\n").as_bytes()) {
        Ok(()) => println!("wrote {}", out_path.display()),
        Err(e) => {
            eprintln!("error writing {}: {e}", out_path.display());
            std::process::exit(1);
        }
    }
    if !equivalent {
        eprintln!("error: tiers diverged — the artifact records the failure");
        std::process::exit(1);
    }
}
