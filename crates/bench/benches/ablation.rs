//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! Criterion measures time; each bench also prints the accuracy of the
//! ablated configuration once, so a single run shows both sides of each
//! trade-off (the accuracy numbers are also covered by `dfcm-repro`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dfcm::{DfcmPredictor, HashFunction, StridePredictor, StrideWidth, TwoDeltaStridePredictor};
use dfcm_bench::fixture_trace;
use dfcm_sim::simulate_trace;
use std::hint::black_box;
use std::sync::Once;

static PRINT_ACCURACY: Once = Once::new();

fn bench_hash_ablation(c: &mut Criterion) {
    let trace = fixture_trace(30_000);
    PRINT_ACCURACY.call_once(|| {
        println!("\nablation accuracies on the li fixture (30k records, 2^12/2^12):");
        for (label, hash) in [
            ("fs_r5", HashFunction::FsR5),
            ("fold_xor", HashFunction::FoldXor),
            ("concat3", HashFunction::Concat { order: 3 }),
        ] {
            let mut p = DfcmPredictor::builder()
                .l1_bits(12)
                .l2_bits(12)
                .hash(hash)
                .build()
                .unwrap();
            let acc = simulate_trace(&mut p, &trace).accuracy();
            println!("  hash {label:<9} accuracy {acc:.3}");
        }
        for (label, width) in [
            ("full", StrideWidth::Full),
            ("16b", StrideWidth::Bits(16)),
            ("8b", StrideWidth::Bits(8)),
        ] {
            let mut p = DfcmPredictor::builder()
                .l1_bits(12)
                .l2_bits(12)
                .stride_width(width)
                .build()
                .unwrap();
            let acc = simulate_trace(&mut p, &trace).accuracy();
            println!("  stride width {label:<5} accuracy {acc:.3}");
        }
        let mut guarded = StridePredictor::new(12);
        let mut two_delta = TwoDeltaStridePredictor::new(12);
        println!(
            "  stride policy: confidence-guarded {:.3}, two-delta {:.3}",
            simulate_trace(&mut guarded, &trace).accuracy(),
            simulate_trace(&mut two_delta, &trace).accuracy()
        );
        println!();
    });

    let mut group = c.benchmark_group("ablation");
    for (label, hash) in [
        ("fs_r5", HashFunction::FsR5),
        ("fold_xor", HashFunction::FoldXor),
        ("concat3", HashFunction::Concat { order: 3 }),
    ] {
        group.bench_function(BenchmarkId::new("dfcm_hash", label), |b| {
            b.iter(|| {
                let mut p = DfcmPredictor::builder()
                    .l1_bits(12)
                    .l2_bits(12)
                    .hash(hash)
                    .build()
                    .unwrap();
                black_box(simulate_trace(&mut p, &trace))
            })
        });
    }
    for (label, width) in [
        ("full", StrideWidth::Full),
        ("16b", StrideWidth::Bits(16)),
        ("8b", StrideWidth::Bits(8)),
    ] {
        group.bench_function(BenchmarkId::new("dfcm_width", label), |b| {
            b.iter(|| {
                let mut p = DfcmPredictor::builder()
                    .l1_bits(12)
                    .l2_bits(12)
                    .stride_width(width)
                    .build()
                    .unwrap();
                black_box(simulate_trace(&mut p, &trace))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hash_ablation);
criterion_main!(benches);
