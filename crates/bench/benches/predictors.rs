//! Throughput of each predictor's predict+update step on a mixed trace.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dfcm::{
    DfcmPredictor, FcmPredictor, LastValuePredictor, StridePredictor, TwoDeltaStridePredictor,
};
use dfcm_bench::fixture_trace;
use dfcm_sim::simulate_trace;
use std::hint::black_box;

fn bench_predictors(c: &mut Criterion) {
    let trace = fixture_trace(50_000);
    let n = trace.len() as u64;
    let mut group = c.benchmark_group("predictors");
    group.throughput(Throughput::Elements(n));

    group.bench_function(BenchmarkId::new("lvp", "2^12"), |b| {
        b.iter(|| {
            let mut p = LastValuePredictor::new(12);
            black_box(simulate_trace(&mut p, &trace))
        })
    });
    group.bench_function(BenchmarkId::new("stride", "2^12"), |b| {
        b.iter(|| {
            let mut p = StridePredictor::new(12);
            black_box(simulate_trace(&mut p, &trace))
        })
    });
    group.bench_function(BenchmarkId::new("two_delta", "2^12"), |b| {
        b.iter(|| {
            let mut p = TwoDeltaStridePredictor::new(12);
            black_box(simulate_trace(&mut p, &trace))
        })
    });
    group.bench_function(BenchmarkId::new("fcm", "2^12/2^12"), |b| {
        b.iter(|| {
            let mut p = FcmPredictor::builder()
                .l1_bits(12)
                .l2_bits(12)
                .build()
                .unwrap();
            black_box(simulate_trace(&mut p, &trace))
        })
    });
    group.bench_function(BenchmarkId::new("dfcm", "2^12/2^12"), |b| {
        b.iter(|| {
            let mut p = DfcmPredictor::builder()
                .l1_bits(12)
                .l2_bits(12)
                .build()
                .unwrap();
            black_box(simulate_trace(&mut p, &trace))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_predictors);
criterion_main!(benches);
