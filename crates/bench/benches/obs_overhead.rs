//! Observability overhead: the engine sweep with the obs handle
//! disabled (the default), enabled, and the serial reference. The
//! disabled case must stay within noise of a build that predates the
//! obs hooks — the handle is an `Option<Arc>` checked once per task
//! attempt, so an obs-free run costs one branch. The enabled case
//! prices the spans, per-task histogram updates and table trackers,
//! which is worth knowing before shipping `--obs` into a large sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dfcm::DfcmPredictor;
use dfcm_obs::Obs;
use dfcm_sim::{sweep, sweep_engine, EngineConfig};
use dfcm_trace::suite::standard_traces;
use std::hint::black_box;

fn bench_obs_overhead(c: &mut Criterion) {
    let traces = standard_traces(1, 0.01);
    let configs: Vec<u32> = (8..=16).step_by(2).collect();
    let factory = |&l2: &u32| {
        DfcmPredictor::builder()
            .l1_bits(16)
            .l2_bits(l2)
            .build()
            .unwrap()
    };
    let records: u64 = traces.iter().map(|b| b.trace.len() as u64).sum();

    let mut group = c.benchmark_group("obs_overhead");
    group.throughput(Throughput::Elements(records * configs.len() as u64));
    group.bench_function("serial_sweep", |b| {
        b.iter(|| black_box(sweep(&configs, factory, &traces)))
    });
    for threads in [1usize, 2, 4] {
        group.bench_function(BenchmarkId::new("engine_obs_off", threads), |b| {
            let engine = EngineConfig::threads(threads);
            b.iter(|| black_box(sweep_engine(&configs, factory, &traces, &engine)))
        });
        group.bench_function(BenchmarkId::new("engine_obs_on", threads), |b| {
            let engine = EngineConfig {
                obs: Obs::enabled(),
                ..EngineConfig::threads(threads)
            };
            b.iter(|| black_box(sweep_engine(&configs, factory, &traces, &engine)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
