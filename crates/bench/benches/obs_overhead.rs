//! Observability overhead: the engine sweep with the obs handle
//! disabled (the default), enabled, and the serial reference. The
//! disabled case must stay within noise of a build that predates the
//! obs hooks — the handle is an `Option<Arc>` checked once per task
//! attempt, so an obs-free run costs one branch. The enabled case
//! prices the spans, per-task histogram updates and table trackers,
//! which is worth knowing before shipping `--obs` into a large sweep.
//!
//! The `obs_stream_overhead` group prices the windowed phase-series +
//! top-K fold on the streaming core: `stream_off` is the plain
//! single-pass path (the observed entry point short-circuits to it when
//! obs is disabled, so it must match `stream_v2_file` within noise),
//! `stream_series` adds the per-record window/top-K fold, and
//! `stream_series_classified` additionally runs the aliasing taxonomy.
//!
//! Fold placement decides what `stream_series` costs. On hosts with
//! more than one hardware thread the fold runs on a dedicated thread
//! and the streaming consumer only pays for writing outcome tuples into
//! a recycled buffer — a few percent of the core, which is how the
//! fold stays off the critical path. On a single-core host the fold
//! runs inline (a fold thread would only time-slice against the
//! consumer) and its full price lands on the core: roughly 2.3x on
//! this deliberately miss-heavy two-lane suite, dominated by the
//! per-miss top-K and histogram updates. `stream_series_classified`
//! additionally pays the alias analyzer itself inside each lane access
//! — predictor-side work that exists independently of the series fold.
//! Either placement folds the identical outcome sequence, so the
//! exported series is bit-identical (pinned by the dfcm-sim tests).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dfcm::DfcmPredictor;
use dfcm_obs::Obs;
use dfcm_sim::{stream_v2_file_observed, sweep, sweep_engine, EngineConfig, StreamPredictor};
use dfcm_trace::suite::standard_traces;
use dfcm_trace::{Trace, TraceFormat};
use std::hint::black_box;

fn bench_obs_overhead(c: &mut Criterion) {
    let traces = standard_traces(1, 0.01);
    let configs: Vec<u32> = (8..=16).step_by(2).collect();
    let factory = |&l2: &u32| {
        DfcmPredictor::builder()
            .l1_bits(16)
            .l2_bits(l2)
            .build()
            .unwrap()
    };
    let records: u64 = traces.iter().map(|b| b.trace.len() as u64).sum();

    let mut group = c.benchmark_group("obs_overhead");
    group.throughput(Throughput::Elements(records * configs.len() as u64));
    group.bench_function("serial_sweep", |b| {
        b.iter(|| black_box(sweep(&configs, factory, &traces)))
    });
    for threads in [1usize, 2, 4] {
        group.bench_function(BenchmarkId::new("engine_obs_off", threads), |b| {
            let engine = EngineConfig::threads(threads);
            b.iter(|| black_box(sweep_engine(&configs, factory, &traces, &engine)))
        });
        group.bench_function(BenchmarkId::new("engine_obs_on", threads), |b| {
            let engine = EngineConfig {
                obs: Obs::enabled(),
                ..EngineConfig::threads(threads)
            };
            b.iter(|| black_box(sweep_engine(&configs, factory, &traces, &engine)))
        });
    }
    group.finish();
}

fn bench_stream_series_overhead(c: &mut Criterion) {
    // One merged suite trace on disk: the streaming core's real input.
    let dir = std::env::temp_dir().join("dfcm_bench_obs_stream");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("suite.v2.trc");
    let mut merged = Trace::new();
    for b in standard_traces(1, 0.02) {
        for r in &b.trace {
            merged.push(*r);
        }
    }
    let records = merged.len() as u64;
    merged
        .save_with(&path, TraceFormat::V2 { seed: 1 })
        .expect("save trace");

    let lanes = || {
        vec![
            StreamPredictor::parse_spec("dfcm:12:12").expect("spec"),
            StreamPredictor::parse_spec("fcm:12:12").expect("spec"),
        ]
    };
    let mut group = c.benchmark_group("obs_stream_overhead");
    group.throughput(Throughput::Elements(records * 2));
    // Disabled handle: short-circuits to the plain streaming pass.
    group.bench_function(BenchmarkId::new("stream_off", 1), |b| {
        b.iter(|| {
            let mut lanes = lanes();
            black_box(
                stream_v2_file_observed(&path, &mut lanes, 1, &Obs::disabled(), false)
                    .expect("stream"),
            )
        })
    });
    // Windowed series + top-K fold, no alias classification (the cheap
    // default for observed streaming).
    group.bench_function(BenchmarkId::new("stream_series", 1), |b| {
        b.iter(|| {
            let mut lanes = lanes();
            black_box(
                stream_v2_file_observed(&path, &mut lanes, 1, &Obs::enabled(), false)
                    .expect("stream"),
            )
        })
    });
    // Series fold plus the full aliasing taxonomy (what `eval
    // --streaming --obs` runs).
    group.bench_function(BenchmarkId::new("stream_series_classified", 1), |b| {
        b.iter(|| {
            let mut lanes = lanes();
            black_box(
                stream_v2_file_observed(&path, &mut lanes, 1, &Obs::enabled(), true)
                    .expect("stream"),
            )
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_obs_overhead, bench_stream_series_overhead);
criterion_main!(benches);
