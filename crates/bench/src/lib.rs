//! Shared fixtures for the Criterion benchmarks.
//!
//! The benches measure implementation throughput (predictions per second)
//! and run the ablations DESIGN.md calls out: hash function, stride
//! policy, stride width, and the history order implied by the level-2
//! size. The *accuracy* reproductions live in `dfcm-repro`; these benches
//! answer "how fast is the simulator" and "what do the design knobs cost".

use dfcm_trace::suite::standard_suite;
use dfcm_trace::Trace;

/// A standard mixed-workload fixture: the `li` benchmark trace at a small
/// scale, deterministic across runs.
pub fn fixture_trace(records: usize) -> Trace {
    let spec = standard_suite()
        .into_iter()
        .find(|b| b.name() == "li")
        .expect("li exists");
    let scale = records as f64 / spec.predictions(1.0) as f64;
    spec.trace(0xBEEF, scale.max(1e-6)).trace
}

/// A pure stride-pattern fixture (best case for stride-aware predictors).
pub fn stride_trace(records: usize) -> Trace {
    (0..records as u64)
        .map(|i| dfcm_trace::TraceRecord::new(0x400000 + 4 * (i % 16), 3 * (i / 16)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_have_requested_magnitude() {
        let t = fixture_trace(10_000);
        assert!((9_000..=11_000).contains(&t.len()), "{}", t.len());
        assert_eq!(stride_trace(500).len(), 500);
    }

    #[test]
    fn fixtures_are_deterministic() {
        assert_eq!(fixture_trace(2_000), fixture_trace(2_000));
    }
}
