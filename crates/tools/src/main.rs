//! `dfcm-tools` — command-line front end; see the library crate for the
//! implementation of each subcommand.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage:
  dfcm-tools gen <workload> <records> <out.trc> [--seed N]
  dfcm-tools stats <trace.trc>
  dfcm-tools eval <trace.trc> <predictor>...   (lvp:B | stride:B | 2delta:B | fcm:L1:L2 | dfcm:L1:L2)
  dfcm-tools disasm <kernel>
  dfcm-tools profile <kernel> [max_steps]
  dfcm-tools kernels
  dfcm-tools benchmarks";

fn run() -> Result<String, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        return Err(USAGE.to_owned());
    };
    match command.as_str() {
        "gen" => {
            let mut rest = rest.to_vec();
            let mut seed = 12345u64;
            if let Some(pos) = rest.iter().position(|a| a == "--seed") {
                let value = rest
                    .get(pos + 1)
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|_| "bad seed".to_owned())?;
                seed = value;
                rest.drain(pos..=pos + 1);
            }
            let [workload, records, out] = rest.as_slice() else {
                return Err(USAGE.to_owned());
            };
            let records: usize = records.parse().map_err(|_| "bad record count".to_owned())?;
            dfcm_tools::generate(workload, records, &PathBuf::from(out), seed)
                .map_err(|e| e.to_string())
        }
        "stats" => {
            let [path] = rest else {
                return Err(USAGE.to_owned());
            };
            dfcm_tools::stats(&PathBuf::from(path)).map_err(|e| e.to_string())
        }
        "eval" => {
            let Some((path, specs)) = rest.split_first() else {
                return Err(USAGE.to_owned());
            };
            if specs.is_empty() {
                return Err(USAGE.to_owned());
            }
            dfcm_tools::eval(&PathBuf::from(path), specs).map_err(|e| e.to_string())
        }
        "disasm" => {
            let [kernel] = rest else {
                return Err(USAGE.to_owned());
            };
            dfcm_tools::disasm(kernel).map_err(|e| e.to_string())
        }
        "profile" => {
            let (kernel, max_steps) = match rest {
                [kernel] => (kernel, 50_000_000),
                [kernel, steps] => (
                    kernel,
                    steps.parse().map_err(|_| "bad step count".to_owned())?,
                ),
                _ => return Err(USAGE.to_owned()),
            };
            dfcm_tools::profile(kernel, max_steps).map_err(|e| e.to_string())
        }
        "kernels" => Ok(dfcm_tools::kernels()),
        "benchmarks" => Ok(dfcm_tools::benchmarks()),
        "help" | "--help" | "-h" => Ok(USAGE.to_owned()),
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(output) => {
            println!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
