//! `dfcm-tools` — command-line front end; see the library crate for the
//! implementation of each subcommand.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage:
  dfcm-tools gen <workload> <records> <out.trc> [--seed N] [--vm-tier fast|interp]
             [--format v1|v2|v3]
             (--vm-tier picks the VM execution tier for kernel workloads;
              the tiers are bit-identical — fast, the default, is just
              faster; --format picks the trace encoding — v2, the default,
              is the CRC-framed format, v3 adds per-chunk compression and
              is written streaming, so record counts beyond memory are
              fine)
  dfcm-tools stats <trace.trc>
  dfcm-tools eval <trace.trc> <predictor>... [--streaming] [--threads N] [--progress]
             [--metrics FILE] [--obs DIR] [--retries N]
             [--inject-faults SEED[:PANIC[:TRANSIENT[:DELAY]]]] [--strict]
             (predictors: lvp:B | stride:B | 2delta:B | fcm:L1:L2 | dfcm:L1:L2;
              --streaming decodes and walks the trace once, feeding every
              predictor in a single pass (same results, higher throughput);
              --threads 0 = one per hardware thread; --metrics writes engine JSONL;
              --obs enables table-usage/aliasing observability and writes
              events.jsonl, trace.json (Perfetto) and metrics.prom into DIR;
              --retries sets attempts per task for transient failures;
              --inject-faults injects deterministic faults at permille rates, for
              testing recovery; failed tasks are reported and, with --strict,
              make the command exit nonzero)
  dfcm-tools trace inspect <trace.trc>
  dfcm-tools trace verify <trace.trc>
  dfcm-tools trace salvage <trace.trc> --output <out.trc>
  dfcm-tools trace compress <trace.trc> --output <out.trc> [--format v1|v2|v3]
             (inspect: header, chunk map, CRC status and, for v3,
              compressed density; verify: exit nonzero on any corruption;
              salvage: recover intact chunks into a fresh file — v3 input
              re-emits v3 — and report what was dropped; compress:
              re-encode a trace into another format, v3 by default)
  dfcm-tools obs summarize <dir> [--check]
             (table-usage report for an --obs export directory; --check
              validates all three export files and exits nonzero on any
              malformed or inconsistent export)
  dfcm-tools obs report <dir> [--check]
             (windowed phase report from the directory's series.jsonl:
              per-lane accuracy/miss sparklines, alias-class miss mix and
              the top-K hard-to-predict PC table; --check validates the
              series stream and cross-reconciles it against the aggregate
              metrics, exiting nonzero on any disagreement)
  dfcm-tools bench check <BENCH_file.json>
             (validates a benchmark artifact against its declared schema —
              dfcm-bench-throughput/v1, dfcm-bench-serve/v1,
              dfcm-bench-vm/v1 or dfcm-bench-trace/v1; exits nonzero on
              any violation)
  dfcm-tools bench trend --baseline <dir> [--current <dir>]
             [--threshold PCT] [--report-only]
             (compares the current BENCH_*.json artifacts — current
              defaults to `.` — against a committed baseline directory
              and exits nonzero on any headline metric regressed beyond
              the threshold, default 10%; --report-only reports without
              failing, for advisory gates on noisy runners)
  dfcm-tools serve <addr> <predictor> [--snapshot FILE] [--max-sessions N]
             [--workers N] [--queue N] [--deadline-ms N] [--idle-ms N]
             (runs the prediction daemon until SIGTERM/SIGINT, then drains
              in-flight requests and writes a crash-consistent snapshot;
              --snapshot is also restored, salvage-style, at startup;
              --queue caps live connections — beyond it new connections are
              shed with an explicit Overloaded reply)
  dfcm-tools loadgen <trace.trc> <addr> <predictor> [--clients N]
             [--session-base N] [--inject-faults SEED[:P[:T[:D]]]]
             [--strict] [--bench-out FILE] [--hist-out FILE]
             (replays the trace as N concurrent sessions, verifying every
              acknowledged reply against a local shadow predictor;
              --inject-faults adds deterministic chaos — connection drops,
              corrupt frames, slow-loris stalls — at permille rates;
              corrupted acknowledgements always exit nonzero, unacked
              requests only under --strict; --bench-out writes the
              dfcm-bench-serve/v1 artifact for `bench check`, --hist-out
              the latency histogram as JSONL)
  dfcm-tools scrape <addr>
             (fetches a running daemon's metrics as Prometheus text:
              rolling-window latency quantiles, live per-spec session
              counts and, on instrumented daemons, the full obs registry;
              read-only, safe under load)
  dfcm-tools disasm <kernel>
  dfcm-tools profile <kernel> [max_steps]
  dfcm-tools vm profile <kernel> [max_steps]
             (fast-tier planning view: per-opcode histogram plus the hot
              adjacent-pair histogram with superinstruction-fusion
              classification — the data the fast tier's fusion selection
              runs on)
  dfcm-tools kernels
  dfcm-tools benchmarks";

fn run() -> Result<String, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        return Err(USAGE.to_owned());
    };
    match command.as_str() {
        "gen" => {
            let mut rest = rest.to_vec();
            let mut seed = 12345u64;
            let mut tier = dfcm_vm::Tier::Fast;
            if let Some(pos) = rest.iter().position(|a| a == "--seed") {
                let value = rest
                    .get(pos + 1)
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|_| "bad seed".to_owned())?;
                seed = value;
                rest.drain(pos..=pos + 1);
            }
            if let Some(pos) = rest.iter().position(|a| a == "--vm-tier") {
                tier = rest
                    .get(pos + 1)
                    .ok_or("--vm-tier needs a value")?
                    .parse()
                    .map_err(|e: String| e)?;
                rest.drain(pos..=pos + 1);
            }
            let mut format_spec: Option<String> = None;
            if let Some(pos) = rest.iter().position(|a| a == "--format") {
                format_spec = Some(rest.get(pos + 1).ok_or("--format needs a value")?.clone());
                rest.drain(pos..=pos + 1);
            }
            let [workload, records, out] = rest.as_slice() else {
                return Err(USAGE.to_owned());
            };
            let records: usize = records.parse().map_err(|_| "bad record count".to_owned())?;
            let format = match format_spec {
                Some(spec) => {
                    dfcm_tools::parse_trace_format(&spec, seed).map_err(|e| e.to_string())?
                }
                None => dfcm_trace::TraceFormat::V2 { seed },
            };
            dfcm_tools::generate_formatted(
                workload,
                records,
                &PathBuf::from(out),
                seed,
                tier,
                format,
            )
            .map_err(|e| e.to_string())
        }
        "stats" => {
            let [path] = rest else {
                return Err(USAGE.to_owned());
            };
            dfcm_tools::stats(&PathBuf::from(path)).map_err(|e| e.to_string())
        }
        "eval" => {
            let mut rest = rest.to_vec();
            let mut engine = dfcm_sim::EngineConfig::default();
            let mut metrics_path: Option<PathBuf> = None;
            if let Some(pos) = rest.iter().position(|a| a == "--threads") {
                engine.threads = rest
                    .get(pos + 1)
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|_| "bad thread count".to_owned())?;
                rest.drain(pos..=pos + 1);
            }
            if let Some(pos) = rest.iter().position(|a| a == "--progress") {
                engine.progress = true;
                rest.remove(pos);
            }
            if let Some(pos) = rest.iter().position(|a| a == "--metrics") {
                metrics_path = Some(PathBuf::from(
                    rest.get(pos + 1).ok_or("--metrics needs a value")?,
                ));
                rest.drain(pos..=pos + 1);
            }
            let mut obs_dir: Option<PathBuf> = None;
            if let Some(pos) = rest.iter().position(|a| a == "--obs") {
                obs_dir = Some(PathBuf::from(
                    rest.get(pos + 1).ok_or("--obs needs a value")?,
                ));
                engine.obs = dfcm_obs::Obs::enabled();
                rest.drain(pos..=pos + 1);
            }
            if let Some(pos) = rest.iter().position(|a| a == "--retries") {
                engine.retry.max_attempts = rest
                    .get(pos + 1)
                    .ok_or("--retries needs a value")?
                    .parse()
                    .map_err(|_| "bad retry count".to_owned())?;
                rest.drain(pos..=pos + 1);
            }
            if let Some(pos) = rest.iter().position(|a| a == "--inject-faults") {
                let spec = rest.get(pos + 1).ok_or("--inject-faults needs a value")?;
                engine.faults = Some(dfcm_sim::FaultPlan::parse(spec)?);
                rest.drain(pos..=pos + 1);
            }
            let mut strict = false;
            if let Some(pos) = rest.iter().position(|a| a == "--strict") {
                strict = true;
                rest.remove(pos);
            }
            let mut streaming = false;
            if let Some(pos) = rest.iter().position(|a| a == "--streaming") {
                streaming = true;
                rest.remove(pos);
            }
            let Some((path, specs)) = rest.split_first() else {
                return Err(USAGE.to_owned());
            };
            if specs.is_empty() {
                return Err(USAGE.to_owned());
            }
            let (out, report) = if streaming {
                dfcm_tools::eval_streaming(&PathBuf::from(path), specs, &engine)
            } else {
                dfcm_tools::eval(&PathBuf::from(path), specs, &engine)
            }
            .map_err(|e| e.to_string())?;
            if let Some(metrics_path) = metrics_path {
                report
                    .write_jsonl(&metrics_path)
                    .map_err(|e| format!("writing {}: {e}", metrics_path.display()))?;
            }
            if let Some(obs_dir) = obs_dir {
                engine
                    .obs
                    .write_exports(&obs_dir)
                    .map_err(|e| format!("writing {}: {e}", obs_dir.display()))?;
            }
            if strict && !report.all_ok() {
                let failed: Vec<&str> = report.failures().map(|t| t.label.as_str()).collect();
                return Err(format!(
                    "{out}\nerror: {} task(s) failed under --strict: {}",
                    failed.len(),
                    failed.join(", ")
                ));
            }
            Ok(out)
        }
        "obs" => match rest {
            [sub, dir] if sub == "summarize" => {
                dfcm_tools::obs_summarize(&PathBuf::from(dir), false).map_err(|e| e.to_string())
            }
            [sub, dir, flag] if sub == "summarize" && flag == "--check" => {
                dfcm_tools::obs_summarize(&PathBuf::from(dir), true).map_err(|e| e.to_string())
            }
            [sub, dir] if sub == "report" => {
                dfcm_tools::obs_report(&PathBuf::from(dir), false).map_err(|e| e.to_string())
            }
            [sub, dir, flag] if sub == "report" && flag == "--check" => {
                dfcm_tools::obs_report(&PathBuf::from(dir), true).map_err(|e| e.to_string())
            }
            _ => Err(USAGE.to_owned()),
        },
        "trace" => match rest {
            [sub, path] if sub == "inspect" => {
                dfcm_tools::trace_inspect(&PathBuf::from(path)).map_err(|e| e.to_string())
            }
            [sub, path] if sub == "verify" => {
                dfcm_tools::trace_verify(&PathBuf::from(path)).map_err(|e| e.to_string())
            }
            [sub, path, flag, out] if sub == "salvage" && flag == "--output" => {
                dfcm_tools::trace_salvage(&PathBuf::from(path), &PathBuf::from(out))
                    .map_err(|e| e.to_string())
            }
            [sub, path, flag, out] if sub == "compress" && flag == "--output" => {
                dfcm_tools::trace_compress(&PathBuf::from(path), &PathBuf::from(out), None)
                    .map_err(|e| e.to_string())
            }
            [sub, path, flag, out, fmt_flag, fmt]
                if sub == "compress" && flag == "--output" && fmt_flag == "--format" =>
            {
                dfcm_tools::trace_compress(&PathBuf::from(path), &PathBuf::from(out), Some(fmt))
                    .map_err(|e| e.to_string())
            }
            _ => Err(USAGE.to_owned()),
        },
        "bench" => match rest.split_first() {
            Some((sub, [path])) if sub == "check" => {
                dfcm_tools::bench_check(&PathBuf::from(path)).map_err(|e| e.to_string())
            }
            Some((sub, args)) if sub == "trend" => {
                let mut rest = args.to_vec();
                let mut take_value = |flag: &str| -> Result<Option<String>, String> {
                    match rest.iter().position(|a| a == flag) {
                        Some(pos) => {
                            let value = rest
                                .get(pos + 1)
                                .cloned()
                                .ok_or_else(|| format!("{flag} needs a value"))?;
                            rest.drain(pos..=pos + 1);
                            Ok(Some(value))
                        }
                        None => Ok(None),
                    }
                };
                let baseline = take_value("--baseline")?.ok_or("bench trend needs --baseline")?;
                let current = take_value("--current")?.unwrap_or_else(|| ".".to_owned());
                let threshold = take_value("--threshold")?
                    .map(|s| s.parse::<f64>().map_err(|_| "bad --threshold".to_owned()))
                    .transpose()?
                    .unwrap_or(10.0);
                let report_only = if let Some(pos) = rest.iter().position(|a| a == "--report-only")
                {
                    rest.remove(pos);
                    true
                } else {
                    false
                };
                if !rest.is_empty() {
                    return Err(USAGE.to_owned());
                }
                dfcm_tools::bench_trend(
                    &PathBuf::from(current),
                    &PathBuf::from(baseline),
                    threshold,
                    report_only,
                )
                .map_err(|e| e.to_string())
            }
            _ => Err(USAGE.to_owned()),
        },
        "serve" => {
            let mut rest = rest.to_vec();
            let mut take_value = |flag: &str| -> Result<Option<String>, String> {
                match rest.iter().position(|a| a == flag) {
                    Some(pos) => {
                        let value = rest
                            .get(pos + 1)
                            .cloned()
                            .ok_or_else(|| format!("{flag} needs a value"))?;
                        rest.drain(pos..=pos + 1);
                        Ok(Some(value))
                    }
                    None => Ok(None),
                }
            };
            let snapshot = take_value("--snapshot")?;
            let max_sessions = take_value("--max-sessions")?;
            let workers = take_value("--workers")?;
            let queue = take_value("--queue")?;
            let deadline_ms = take_value("--deadline-ms")?;
            let idle_ms = take_value("--idle-ms")?;
            let [addr, spec] = rest.as_slice() else {
                return Err(USAGE.to_owned());
            };
            let mut opts = dfcm_tools::ServeOpts::new(addr, spec);
            opts.snapshot = snapshot.map(PathBuf::from);
            let parsed = |v: Option<String>, what: &str| -> Result<Option<u64>, String> {
                v.map(|s| s.parse().map_err(|_| format!("bad {what}")))
                    .transpose()
            };
            if let Some(n) = parsed(max_sessions, "--max-sessions")? {
                opts.limits.max_sessions = n as usize;
            }
            if let Some(n) = parsed(workers, "--workers")? {
                opts.limits.workers = n as usize;
            }
            if let Some(n) = parsed(queue, "--queue")? {
                opts.limits.queue_depth = n as usize;
            }
            if let Some(n) = parsed(deadline_ms, "--deadline-ms")? {
                opts.limits.request_deadline = std::time::Duration::from_millis(n);
            }
            if let Some(n) = parsed(idle_ms, "--idle-ms")? {
                opts.limits.idle_timeout = std::time::Duration::from_millis(n);
            }
            dfcm_tools::serve(&opts).map_err(|e| e.to_string())
        }
        "loadgen" => {
            let mut rest = rest.to_vec();
            let mut take_value = |flag: &str| -> Result<Option<String>, String> {
                match rest.iter().position(|a| a == flag) {
                    Some(pos) => {
                        let value = rest
                            .get(pos + 1)
                            .cloned()
                            .ok_or_else(|| format!("{flag} needs a value"))?;
                        rest.drain(pos..=pos + 1);
                        Ok(Some(value))
                    }
                    None => Ok(None),
                }
            };
            let clients = take_value("--clients")?;
            let session_base = take_value("--session-base")?;
            let faults = take_value("--inject-faults")?;
            let bench_out = take_value("--bench-out")?;
            let hist_out = take_value("--hist-out")?;
            let strict = if let Some(pos) = rest.iter().position(|a| a == "--strict") {
                rest.remove(pos);
                true
            } else {
                false
            };
            let [trace, addr, spec] = rest.as_slice() else {
                return Err(USAGE.to_owned());
            };
            let mut opts = dfcm_tools::LoadGenOpts::new(addr, spec);
            if let Some(n) = clients {
                opts.clients = n.parse().map_err(|_| "bad --clients".to_owned())?;
            }
            if let Some(n) = session_base {
                opts.session_base = n.parse().map_err(|_| "bad --session-base".to_owned())?;
            }
            opts.faults = faults;
            opts.strict = strict;
            opts.bench_out = bench_out.map(PathBuf::from);
            opts.hist_out = hist_out.map(PathBuf::from);
            dfcm_tools::loadgen(&PathBuf::from(trace), &opts).map_err(|e| e.to_string())
        }
        "scrape" => {
            let [addr] = rest else {
                return Err(USAGE.to_owned());
            };
            dfcm_tools::scrape(addr).map_err(|e| e.to_string())
        }
        "disasm" => {
            let [kernel] = rest else {
                return Err(USAGE.to_owned());
            };
            dfcm_tools::disasm(kernel).map_err(|e| e.to_string())
        }
        "profile" => {
            let (kernel, max_steps) = match rest {
                [kernel] => (kernel, 50_000_000),
                [kernel, steps] => (
                    kernel,
                    steps.parse().map_err(|_| "bad step count".to_owned())?,
                ),
                _ => return Err(USAGE.to_owned()),
            };
            dfcm_tools::profile(kernel, max_steps).map_err(|e| e.to_string())
        }
        "vm" => {
            let (kernel, max_steps) = match rest {
                [sub, kernel] if sub == "profile" => (kernel, 1_000_000),
                [sub, kernel, steps] if sub == "profile" => (
                    kernel,
                    steps.parse().map_err(|_| "bad step count".to_owned())?,
                ),
                _ => return Err(USAGE.to_owned()),
            };
            dfcm_tools::vm_profile(kernel, max_steps).map_err(|e| e.to_string())
        }
        "kernels" => Ok(dfcm_tools::kernels()),
        "benchmarks" => Ok(dfcm_tools::benchmarks()),
        "help" | "--help" | "-h" => Ok(USAGE.to_owned()),
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(output) => {
            println!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
