//! Library half of `dfcm-tools`: each subcommand as a callable function
//! returning its output as a `String`, so the test suite can exercise the
//! tool end to end.
//!
//! Subcommands (see `dfcm-tools help`):
//!
//! * `gen` — generate a trace (synthetic benchmark or VM kernel) and save
//!   it in the compact binary format.
//! * `stats` — trace statistics (Table 1-style) for a saved trace.
//! * `eval` — run a predictor configuration over a saved trace.
//! * `trace` — integrity tooling for saved traces: `inspect` (header and
//!   chunk map), `verify` (fail on any corruption), `salvage` (recover
//!   intact chunks into a fresh file).
//! * `obs` — observability tooling: `summarize` renders the table-usage
//!   report for an export directory, `--check` validates the exports.
//! * `disasm` — print the assembly listing of a bundled kernel.
//! * `profile` — execute a kernel and print its execution profile.
//! * `kernels` / `benchmarks` — list what `gen` accepts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::fs::File;
use std::io::BufReader;
use std::path::Path;

use dfcm::{
    DfcmPredictor, FcmPredictor, LastValuePredictor, StridePredictor, TwoDeltaStridePredictor,
    ValuePredictor,
};
use dfcm_sim::engine::{run_tasks_ft, TaskOutput};
use dfcm_sim::{
    simulate_trace_observed, stream_trace, EngineConfig, EngineReport, StreamPredictor,
};
use dfcm_trace::stats::TraceStats;
use dfcm_trace::suite::standard_suite;
use dfcm_trace::{inspect_trace, salvage_trace, Trace, TraceFormat, TraceSource};
use dfcm_vm::{assemble, disassemble, programs, Vm, VmLimits};

/// Errors surfaced to the command line.
#[derive(Debug)]
pub struct ToolError(pub String);

impl std::fmt::Display for ToolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ToolError {}

fn err(message: impl Into<String>) -> ToolError {
    ToolError(message.into())
}

/// `gen <workload> <records> <out.trc> [--seed N]` — generates and saves a
/// trace. `<workload>` is a synthetic benchmark name (`cc1` … `vortex`) or
/// a VM kernel name (`norm`, `queens`, …).
///
/// # Errors
///
/// Returns [`ToolError`] for unknown workloads or I/O failures.
pub fn generate(
    workload: &str,
    records: usize,
    out: &Path,
    seed: u64,
) -> Result<String, ToolError> {
    let trace = trace_for(workload, records, seed)?;
    trace
        .save_with(out, TraceFormat::V2 { seed })
        .map_err(|e| err(format!("writing {}: {e}", out.display())))?;
    Ok(format!(
        "wrote {} records to {}",
        trace.len(),
        out.display()
    ))
}

/// Builds a trace for a named workload (shared by `gen` and tests).
///
/// # Errors
///
/// Returns [`ToolError`] if the name matches neither a synthetic
/// benchmark nor a bundled kernel.
pub fn trace_for(workload: &str, records: usize, seed: u64) -> Result<Trace, ToolError> {
    if let Some(spec) = standard_suite().into_iter().find(|b| b.name() == workload) {
        return Ok(spec.program(seed).take_trace(records));
    }
    if let Some(src) = programs::by_name(workload) {
        let program = assemble(src).map_err(|e| err(format!("{workload}: {e}")))?;
        // Budget generously above any plausible instructions-per-record
        // ratio: a kernel that stops emitting (or never halts) degrades
        // to an error instead of hanging `gen`.
        let limits = VmLimits {
            max_instructions: Some(
                (records as u64)
                    .saturating_mul(1_000)
                    .saturating_add(10_000_000),
            ),
            ..VmLimits::default()
        };
        let mut vm =
            Vm::with_limits(program, limits).map_err(|e| err(format!("{workload}: {e}")))?;
        return vm
            .try_take_trace(records)
            .map_err(|e| err(format!("{workload} faulted: {e}")));
    }
    Err(err(format!(
        "unknown workload `{workload}` (see `dfcm-tools benchmarks` and `dfcm-tools kernels`)"
    )))
}

/// `stats <trace.trc>` — Table 1-style statistics of a saved trace.
///
/// # Errors
///
/// Returns [`ToolError`] for unreadable or malformed files.
pub fn stats(path: &Path) -> Result<String, ToolError> {
    let trace = Trace::load(path).map_err(|e| err(format!("{}: {e}", path.display())))?;
    let s = TraceStats::measure(&trace);
    let mut out = String::new();
    let _ = writeln!(out, "{}:", path.display());
    let _ = writeln!(out, "  records              {}", s.records);
    let _ = writeln!(out, "  static instructions  {}", s.static_instructions);
    let _ = writeln!(out, "  last-value fraction  {:.3}", s.last_value_fraction);
    let _ = writeln!(out, "  stride fraction      {:.3}", s.stride_fraction);
    let _ = writeln!(out, "  reuse fraction       {:.3}", s.reuse_fraction);
    Ok(out)
}

/// Builds a predictor from a spec string like `dfcm:16:12`, `fcm:12:12`,
/// `stride:14`, `2delta:14` or `lvp:12`.
///
/// # Errors
///
/// Returns [`ToolError`] for unknown predictor names or malformed specs.
pub fn predictor_for(spec: &str) -> Result<Box<dyn ValuePredictor>, ToolError> {
    let parts: Vec<&str> = spec.split(':').collect();
    let bits = |i: usize| -> Result<u32, ToolError> {
        parts
            .get(i)
            .ok_or_else(|| err(format!("`{spec}`: missing table-size field {i}")))?
            .parse()
            .map_err(|_| err(format!("`{spec}`: bad table size")))
    };
    match parts[0] {
        "lvp" => Ok(Box::new(LastValuePredictor::new(bits(1)?))),
        "stride" => Ok(Box::new(StridePredictor::new(bits(1)?))),
        "2delta" => Ok(Box::new(TwoDeltaStridePredictor::new(bits(1)?))),
        "fcm" => Ok(Box::new(
            FcmPredictor::builder()
                .l1_bits(bits(1)?)
                .l2_bits(bits(2)?)
                .build()
                .map_err(|e| err(e.to_string()))?,
        )),
        "dfcm" => Ok(Box::new(
            DfcmPredictor::builder()
                .l1_bits(bits(1)?)
                .l2_bits(bits(2)?)
                .build()
                .map_err(|e| err(e.to_string()))?,
        )),
        other => Err(err(format!(
            "unknown predictor `{other}` (use lvp|stride|2delta|fcm|dfcm)"
        ))),
    }
}

/// Builds a streaming lane from the same spec grammar as
/// [`predictor_for`]. The streaming core dispatches through an enum, so
/// only the five concrete predictor kinds are available — which is
/// exactly what the spec grammar covers.
///
/// # Errors
///
/// Returns [`ToolError`] for unknown predictor names or malformed specs.
pub fn stream_predictor_for(spec: &str) -> Result<StreamPredictor, ToolError> {
    let parts: Vec<&str> = spec.split(':').collect();
    let bits = |i: usize| -> Result<u32, ToolError> {
        parts
            .get(i)
            .ok_or_else(|| err(format!("`{spec}`: missing table-size field {i}")))?
            .parse()
            .map_err(|_| err(format!("`{spec}`: bad table size")))
    };
    match parts[0] {
        "lvp" => Ok(LastValuePredictor::new(bits(1)?).into()),
        "stride" => Ok(StridePredictor::new(bits(1)?).into()),
        "2delta" => Ok(TwoDeltaStridePredictor::new(bits(1)?).into()),
        "fcm" => Ok(FcmPredictor::builder()
            .l1_bits(bits(1)?)
            .l2_bits(bits(2)?)
            .build()
            .map_err(|e| err(e.to_string()))?
            .into()),
        "dfcm" => Ok(DfcmPredictor::builder()
            .l1_bits(bits(1)?)
            .l2_bits(bits(2)?)
            .build()
            .map_err(|e| err(e.to_string()))?
            .into()),
        other => Err(err(format!(
            "unknown predictor `{other}` (use lvp|stride|2delta|fcm|dfcm)"
        ))),
    }
}

/// `eval --streaming` — runs every spec as a lane of the single-pass
/// streaming core: the trace is decoded and walked once, all predictors
/// update in the same pass (one engine task, so `--metrics`, retries and
/// `--strict` still apply to it).
///
/// Output lines match [`eval`]'s layout and ordering. The streaming pass
/// is bit-identical to the per-predictor path; what changes is
/// throughput. With `engine.obs` enabled the per-spec `eval_accuracy`
/// gauge is still recorded, but the per-predictor occupancy time series
/// of the observed path is not (use the non-streaming `eval --obs` for
/// that).
///
/// # Errors
///
/// Returns [`ToolError`] for unreadable traces or bad predictor specs.
pub fn eval_streaming(
    path: &Path,
    specs: &[String],
    engine: &EngineConfig,
) -> Result<(String, EngineReport), ToolError> {
    let trace = Trace::load(path).map_err(|e| err(format!("{}: {e}", path.display())))?;
    let lanes = specs
        .iter()
        .map(|s| stream_predictor_for(s))
        .collect::<Result<Vec<StreamPredictor>, ToolError>>()?;
    let label = format!("stream[{}]", specs.join(","));
    let (mut values, report) = run_tasks_ft(
        vec![label.clone()],
        |_| {
            let mut lanes = lanes.clone();
            let stats = stream_trace(&mut lanes, &trace);
            let lines: Vec<String> = lanes
                .iter()
                .zip(&stats)
                .zip(specs)
                .map(|((lane, s), spec)| {
                    if engine.obs.is_enabled() {
                        engine
                            .obs
                            .gauge("eval_accuracy", &[("spec", spec)], s.accuracy());
                    }
                    format!(
                        "  {:<32} accuracy {:.3}  ({:.1} Kbit)",
                        lane.name(),
                        s.accuracy(),
                        lane.storage().kbits()
                    )
                })
                .collect();
            Ok(TaskOutput {
                // One streaming task touches every record once per lane.
                records: trace.len() as u64 * specs.len() as u64,
                value: lines,
            })
        },
        engine,
    );
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} ({} records, streaming x{}):",
        path.display(),
        trace.len(),
        specs.len()
    );
    match values.pop().flatten() {
        Some(lines) => {
            for line in lines {
                let _ = writeln!(out, "{line}");
            }
        }
        None => {
            let outcome = report
                .tasks
                .first()
                .map(|t| t.outcome.to_string())
                .unwrap_or_default();
            let _ = writeln!(out, "  {label:<32} FAILED: {outcome}");
        }
    }
    Ok((out, report))
}

/// `eval <trace.trc> <predictor-spec>...` — runs predictors over a saved
/// trace and reports accuracies.
///
/// Each predictor runs as one engine task; `engine` picks the worker
/// count, progress reporting, retry policy and (for testing) fault
/// injection. Lines appear in spec order regardless of scheduling, and
/// the returned [`EngineReport`] carries the run metrics (per-task
/// timing, outcome, per-worker utilization).
///
/// A task that panics or exhausts its retries does not abort the run:
/// its line reads `FAILED` with the outcome, the other predictors still
/// report, and the failure stays visible in the report (callers decide
/// whether that is fatal — the CLI's `--strict` flag does exactly that).
///
/// With `engine.obs` enabled, every predictor additionally runs with
/// table-usage instrumentation (occupancy samples, write/overwrite
/// counters, the paper's aliasing taxonomy for FCM/DFCM and the
/// `eval_accuracy` gauge) accumulated into the shared handle; the CLI's
/// `--obs DIR` flag dumps the three export formats from it.
///
/// # Errors
///
/// Returns [`ToolError`] for unreadable traces or bad predictor specs.
pub fn eval(
    path: &Path,
    specs: &[String],
    engine: &EngineConfig,
) -> Result<(String, EngineReport), ToolError> {
    let trace = Trace::load(path).map_err(|e| err(format!("{}: {e}", path.display())))?;
    // Surface bad specs (in order) before any simulation runs.
    for spec in specs {
        predictor_for(spec)?;
    }
    let (lines, report) = run_tasks_ft(
        specs.to_vec(),
        |i| {
            let mut p = predictor_for(&specs[i]).expect("spec validated above");
            let stats = simulate_trace_observed(&mut p, &trace, &engine.obs, &specs[i]);
            Ok(TaskOutput {
                value: format!(
                    "  {:<32} accuracy {:.3}  ({:.1} Kbit)",
                    p.name(),
                    stats.accuracy(),
                    p.storage().kbits()
                ),
                records: trace.len() as u64,
            })
        },
        engine,
    );
    let mut out = String::new();
    let _ = writeln!(out, "{} ({} records):", path.display(), trace.len());
    for (line, metric) in lines.iter().zip(&report.tasks) {
        match line {
            Some(line) => {
                let _ = writeln!(out, "{line}");
            }
            None => {
                let _ = writeln!(out, "  {:<32} FAILED: {}", metric.label, metric.outcome);
            }
        }
    }
    Ok((out, report))
}

/// `trace inspect <file>` — header, chunk map and CRC status of a saved
/// trace, whether or not the file is intact.
///
/// # Errors
///
/// Returns [`ToolError`] only when the file cannot be opened or its
/// header is unreadable; corruption in the body is *reported*, not an
/// error (use [`trace_verify`] to fail on it).
pub fn trace_inspect(path: &Path) -> Result<String, ToolError> {
    let file = File::open(path).map_err(|e| err(format!("{}: {e}", path.display())))?;
    let info =
        inspect_trace(BufReader::new(file)).map_err(|e| err(format!("{}: {e}", path.display())))?;
    let mut out = String::new();
    let _ = writeln!(out, "{}:", path.display());
    let _ = writeln!(out, "  format            v{}", info.version);
    let _ = writeln!(out, "  declared records  {}", info.declared_records);
    let _ = writeln!(out, "  decoded records   {}", info.decoded_records);
    if let Some(seed) = info.seed {
        let _ = writeln!(out, "  generator seed    {seed}");
    }
    if info.version >= 2 {
        let _ = writeln!(out, "  flags             {:#x}", info.flags);
        let _ = writeln!(out, "  chunks            {}", info.chunks.len());
        for c in &info.chunks {
            let status = if c.intact() {
                "ok".to_owned()
            } else if c.crc_stored != c.crc_computed {
                format!("CRC MISMATCH (computed {:08x})", c.crc_computed)
            } else {
                "UNDECODABLE".to_owned()
            };
            let _ = writeln!(
                out,
                "    chunk {:>3}  {:>7} records  {:>9} bytes  crc {:08x}  {status}",
                c.chunk, c.records, c.payload_bytes, c.crc_stored
            );
        }
    }
    if info.trailing_bytes > 0 {
        let _ = writeln!(out, "  trailing bytes    {}", info.trailing_bytes);
    }
    if let Some(e) = &info.error {
        let _ = writeln!(out, "  error             {e}");
    }
    let _ = writeln!(
        out,
        "  status            {}",
        if info.intact() { "intact" } else { "CORRUPT" }
    );
    Ok(out)
}

/// `trace verify <file>` — succeeds only when the file is fully intact
/// (every declared record decodes, every chunk CRC matches, no trailing
/// bytes), so scripts can gate on the exit status.
///
/// # Errors
///
/// Returns [`ToolError`] for unreadable files and for *any* corruption.
pub fn trace_verify(path: &Path) -> Result<String, ToolError> {
    let file = File::open(path).map_err(|e| err(format!("{}: {e}", path.display())))?;
    let info =
        inspect_trace(BufReader::new(file)).map_err(|e| err(format!("{}: {e}", path.display())))?;
    if info.intact() {
        return Ok(format!(
            "{}: OK (v{}, {} records, {} chunk{})",
            path.display(),
            info.version,
            info.decoded_records,
            info.chunks.len().max(1),
            if info.chunks.len() == 1 { "" } else { "s" }
        ));
    }
    let mut detail = Vec::new();
    let bad: Vec<String> = info
        .chunks
        .iter()
        .filter(|c| !c.intact())
        .map(|c| c.chunk.to_string())
        .collect();
    if !bad.is_empty() {
        detail.push(format!("bad chunk(s) {}", bad.join(", ")));
    }
    if info.decoded_records != info.declared_records {
        detail.push(format!(
            "decoded {} of {} declared records",
            info.decoded_records, info.declared_records
        ));
    }
    if info.trailing_bytes > 0 {
        detail.push(format!("{} trailing bytes", info.trailing_bytes));
    }
    if let Some(e) = &info.error {
        detail.push(e.clone());
    }
    Err(err(format!(
        "{}: CORRUPT ({})",
        path.display(),
        detail.join("; ")
    )))
}

/// `trace salvage <file> --output <out>` — recovers every intact chunk
/// into a fresh v2 file (re-stamping the original generator seed when
/// the header survived) and summarizes what was dropped.
///
/// # Errors
///
/// Returns [`ToolError`] when the file cannot be read at all, when the
/// header is unrecoverable, or when nothing could be salvaged from a
/// nonempty trace.
pub fn trace_salvage(path: &Path, output: &Path) -> Result<String, ToolError> {
    let file = File::open(path).map_err(|e| err(format!("{}: {e}", path.display())))?;
    let report =
        salvage_trace(BufReader::new(file)).map_err(|e| err(format!("{}: {e}", path.display())))?;
    if report.recovered.is_empty() && report.declared_records > 0 {
        return Err(err(format!(
            "{}: nothing recoverable ({} records declared, every chunk damaged)",
            path.display(),
            report.declared_records
        )));
    }
    report
        .recovered
        .save_with(
            output,
            TraceFormat::V2 {
                seed: report.seed.unwrap_or(0),
            },
        )
        .map_err(|e| err(format!("writing {}: {e}", output.display())))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "recovered {} of {} records ({}/{} chunks) from {} into {}",
        report.recovered.len(),
        report.declared_records,
        report.recovered_chunks,
        report.total_chunks,
        path.display(),
        output.display()
    );
    for d in &report.dropped {
        let _ = writeln!(
            out,
            "  dropped chunk {} ({} records): {}",
            d.chunk, d.records, d.reason
        );
    }
    if report.intact() {
        let _ = writeln!(out, "  source was fully intact; output is a clean rewrite");
    }
    Ok(out)
}

/// `obs summarize <dir> [--check]` — renders the table-usage report for
/// an observability export directory (as written by `eval --obs DIR` or
/// a repro binary's `--obs DIR`). With `check`, first validates all
/// three export files (JSONL stream, Chrome trace, Prometheus text) for
/// well-formedness and internal consistency and fails on any problem.
///
/// # Errors
///
/// Returns [`ToolError`] when the directory's JSONL export is missing or
/// malformed, or (with `check`) listing every validation problem found.
pub fn obs_summarize(dir: &Path, check: bool) -> Result<String, ToolError> {
    if check {
        dfcm_obs::summary::check(dir).map_err(|problems| {
            err(format!(
                "{}: {} problem(s):\n  {}",
                dir.display(),
                problems.len(),
                problems.join("\n  ")
            ))
        })?;
    }
    let data = dfcm_obs::summary::load(dir).map_err(err)?;
    let mut out = dfcm_obs::summary::summarize(&data);
    if check {
        out.push_str("check: all exports well-formed and consistent\n");
    }
    Ok(out)
}

/// `bench check <file>` — validates a `BENCH_throughput.json` artifact
/// (as emitted by `cargo bench --bench throughput`) against the
/// documented `dfcm-bench-throughput/v1` schema, so CI can gate on the
/// exit status without external JSON tooling.
///
/// Checks: well-formed JSON; the schema tag; `mode`, `records` and
/// `machine` fields; a non-empty `results` array whose entries carry
/// positive, finite timings; `stream`-path coverage of all four paper
/// predictors (lvp, stride, fcm, dfcm); and an `aggregate` with a
/// positive sweep `configs` count whose `speedup` is consistent with its
/// own numerator and denominator.
///
/// # Errors
///
/// Returns [`ToolError`] listing every schema violation found.
pub fn bench_check(path: &Path) -> Result<String, ToolError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| err(format!("{}: {e}", path.display())))?;
    let doc = dfcm_obs::json::parse(&text)
        .map_err(|e| err(format!("{}: malformed JSON: {e}", path.display())))?;
    let mut problems: Vec<String> = Vec::new();
    let mut problem = |p: String| problems.push(p);

    match doc.get("schema").and_then(|v| v.as_str()) {
        Some("dfcm-bench-throughput/v1") => {}
        Some(other) => problem(format!("unknown schema `{other}`")),
        None => problem("missing string field `schema`".into()),
    }
    match doc.get("mode").and_then(|v| v.as_str()) {
        Some("quick") | Some("full") => {}
        Some(other) => problem(format!("`mode` must be quick|full, got `{other}`")),
        None => problem("missing string field `mode`".into()),
    }
    if doc
        .get("records")
        .and_then(|v| v.as_u64())
        .is_none_or(|n| n == 0)
    {
        problem("`records` must be a positive integer".into());
    }
    match doc.get("machine") {
        Some(machine) => {
            for key in ["os", "arch"] {
                if machine.get(key).and_then(|v| v.as_str()).is_none() {
                    problem(format!("`machine.{key}` must be a string"));
                }
            }
            if machine
                .get("threads")
                .and_then(|v| v.as_u64())
                .is_none_or(|n| n == 0)
            {
                problem("`machine.threads` must be a positive integer".into());
            }
        }
        None => problem("missing object field `machine`".into()),
    }

    let mut stream_kinds: Vec<String> = Vec::new();
    match doc.get("results").and_then(|v| v.as_arr()) {
        Some([]) => problem("`results` must be non-empty".into()),
        Some(results) => {
            for (i, entry) in results.iter().enumerate() {
                for key in ["predictor", "kind"] {
                    if entry.get(key).and_then(|v| v.as_str()).is_none() {
                        problem(format!("results[{i}].{key} must be a string"));
                    }
                }
                let path_kind = entry.get("path").and_then(|v| v.as_str());
                if !matches!(path_kind, Some("dyn") | Some("stream")) {
                    problem(format!("results[{i}].path must be dyn|stream"));
                }
                if entry
                    .get("records")
                    .and_then(|v| v.as_u64())
                    .is_none_or(|n| n == 0)
                {
                    problem(format!("results[{i}].records must be a positive integer"));
                }
                for key in ["seconds", "predictions_per_sec"] {
                    if !entry
                        .get(key)
                        .and_then(|v| v.as_f64())
                        .is_some_and(|x| x.is_finite() && x > 0.0)
                    {
                        problem(format!("results[{i}].{key} must be finite and positive"));
                    }
                }
                if path_kind == Some("stream") {
                    if let Some(kind) = entry.get("kind").and_then(|v| v.as_str()) {
                        stream_kinds.push(kind.to_owned());
                    }
                }
            }
        }
        None => problem("missing array field `results`".into()),
    }
    for kind in ["lvp", "stride", "fcm", "dfcm"] {
        if !stream_kinds.iter().any(|k| k == kind) {
            problem(format!("no stream-path result for predictor kind `{kind}`"));
        }
    }

    match doc.get("aggregate") {
        Some(agg) => {
            if agg
                .get("configs")
                .and_then(|v| v.as_u64())
                .is_none_or(|n| n == 0)
            {
                problem("`aggregate.configs` must be a positive integer".into());
            }
            let field = |key: &str| agg.get(key).and_then(|v| v.as_f64());
            match (
                field("baseline_dyn_seconds"),
                field("stream_seconds"),
                field("speedup"),
            ) {
                (Some(base), Some(stream), Some(speedup))
                    if base > 0.0 && stream > 0.0 && speedup > 0.0 =>
                {
                    // The file rounds each field independently; allow a
                    // small tolerance around base/stream.
                    let expected = base / stream;
                    if (speedup - expected).abs() > 0.05 * expected {
                        problem(format!(
                            "aggregate.speedup {speedup} inconsistent with \
                             {base}/{stream} = {expected:.3}"
                        ));
                    }
                }
                _ => problem(
                    "aggregate needs positive baseline_dyn_seconds, \
                     stream_seconds and speedup"
                        .into(),
                ),
            }
        }
        None => problem("missing object field `aggregate`".into()),
    }

    if problems.is_empty() {
        Ok(format!(
            "{}: OK (dfcm-bench-throughput/v1, {} result(s))",
            path.display(),
            doc.get("results")
                .and_then(|v| v.as_arr())
                .map_or(0, <[_]>::len)
        ))
    } else {
        Err(err(format!(
            "{}: {} schema problem(s):\n  {}",
            path.display(),
            problems.len(),
            problems.join("\n  ")
        )))
    }
}

/// `disasm <kernel>` — assembly listing of a bundled kernel (assembled and
/// disassembled, so what is printed is exactly what executes).
///
/// # Errors
///
/// Returns [`ToolError`] for unknown kernel names.
pub fn disasm(kernel: &str) -> Result<String, ToolError> {
    let src = programs::by_name(kernel).ok_or_else(|| {
        err(format!(
            "unknown kernel `{kernel}` (see `dfcm-tools kernels`)"
        ))
    })?;
    let program = assemble(src).map_err(|e| err(format!("{kernel}: {e}")))?;
    Ok(disassemble(&program))
}

/// `profile <kernel> [max_steps]` — executes a kernel and prints its
/// execution profile.
///
/// # Errors
///
/// Returns [`ToolError`] for unknown kernels or faulting runs.
pub fn profile(kernel: &str, max_steps: u64) -> Result<String, ToolError> {
    let src = programs::by_name(kernel).ok_or_else(|| err(format!("unknown kernel `{kernel}`")))?;
    let mut vm = Vm::new(assemble(src).map_err(|e| err(format!("{kernel}: {e}")))?);
    let profile = dfcm_vm::profile::run_profiled(&mut vm, max_steps)
        .map_err(|e| err(format!("{kernel}: {e}")))?;
    let mut out = format!("{kernel}:\n{profile}\n");
    let _ = writeln!(out, "\n  hottest static instructions:");
    for (index, count) in profile.hottest(5) {
        let inst = vm
            .inst_at(index)
            .map(|i| dfcm_vm::render_inst(&i))
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "    {:#08x}  {count:>10}x  {inst}",
            dfcm_vm::profile::pc_of_index(index)
        );
    }
    Ok(out)
}

/// `kernels` — the bundled kernel names.
pub fn kernels() -> String {
    programs::all()
        .iter()
        .map(|&(n, _)| n)
        .collect::<Vec<_>>()
        .join("\n")
}

/// `benchmarks` — the synthetic benchmark names.
pub fn benchmarks() -> String {
    standard_suite()
        .iter()
        .map(|b| b.name())
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictor_specs_parse() {
        assert!(predictor_for("lvp:10").is_ok());
        assert!(predictor_for("stride:10").is_ok());
        assert!(predictor_for("2delta:10").is_ok());
        assert!(predictor_for("fcm:12:12").is_ok());
        assert!(predictor_for("dfcm:16:12").is_ok());
        assert!(predictor_for("magic:3").is_err());
        assert!(predictor_for("fcm:12").is_err());
        assert!(predictor_for("dfcm:99:12").is_err());
        assert!(predictor_for("dfcm:a:12").is_err());
    }

    #[test]
    fn stream_predictor_specs_parse() {
        for spec in [
            "lvp:10",
            "stride:10",
            "2delta:10",
            "fcm:12:12",
            "dfcm:16:12",
        ] {
            let lane = stream_predictor_for(spec).unwrap();
            // The lane reports the same name/cost as the dyn-path build.
            let boxed = predictor_for(spec).unwrap();
            assert_eq!(lane.name(), boxed.name());
            assert_eq!(lane.storage().total_bits(), boxed.storage().total_bits());
        }
        assert!(stream_predictor_for("magic:3").is_err());
        assert!(stream_predictor_for("fcm:12").is_err());
    }

    #[test]
    fn eval_streaming_reports_same_lines_as_eval() {
        let dir = std::env::temp_dir().join("dfcm_tools_stream_eval_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("li.trc");
        generate("li", 4000, &path, 7).unwrap();
        let specs: Vec<String> = ["lvp:8", "stride:8", "fcm:8:10", "dfcm:8:10"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let engine = EngineConfig::default();
        let (classic, _) = eval(&path, &specs, &engine).unwrap();
        let (streamed, report) = eval_streaming(&path, &specs, &engine).unwrap();
        // Identical per-spec result lines (headers differ), in spec order.
        let body = |s: &str| s.lines().skip(1).map(str::to_owned).collect::<Vec<_>>();
        assert_eq!(body(&streamed), body(&classic));
        assert!(report.all_ok());
        // One task, records = trace.len() × lanes.
        assert_eq!(report.tasks.len(), 1);
        assert_eq!(report.tasks[0].records, 4000 * 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eval_streaming_rejects_bad_specs_before_running() {
        let dir = std::env::temp_dir().join("dfcm_tools_stream_badspec_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.trc");
        generate("li", 100, &path, 1).unwrap();
        let e = eval_streaming(&path, &["nope:1".to_owned()], &EngineConfig::default());
        assert!(e.is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn bench_doc(speedup: f64) -> String {
        let result = |kind: &str, path: &str| {
            format!(
                r#"{{"predictor":"{kind}(2^16)","kind":"{kind}","path":"{path}","records":100000,"seconds":0.5,"predictions_per_sec":200000.0}}"#
            )
        };
        let results: Vec<String> = ["lvp", "stride", "fcm", "dfcm"]
            .iter()
            .flat_map(|k| [result(k, "dyn"), result(k, "stream")])
            .collect();
        format!(
            r#"{{"schema":"dfcm-bench-throughput/v1","mode":"quick","records":100000,
               "machine":{{"os":"linux","arch":"x86_64","threads":8}},
               "results":[{}],
               "aggregate":{{"configs":16,"baseline_dyn_seconds":2.0,"stream_seconds":0.5,"speedup":{speedup}}}}}"#,
            results.join(",")
        )
    }

    #[test]
    fn bench_check_accepts_valid_artifact() {
        let path = std::env::temp_dir().join("dfcm_tools_bench_ok.json");
        std::fs::write(&path, bench_doc(4.0)).unwrap();
        let out = bench_check(&path).unwrap();
        assert!(out.contains("OK"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bench_check_rejects_schema_violations() {
        let dir = std::env::temp_dir().join("dfcm_tools_bench_bad");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // Inconsistent speedup.
        let p1 = dir.join("speedup.json");
        std::fs::write(&p1, bench_doc(9.0)).unwrap();
        assert!(bench_check(&p1)
            .unwrap_err()
            .to_string()
            .contains("speedup"));
        // Missing stream coverage for dfcm.
        let p2 = dir.join("coverage.json");
        std::fs::write(
            &p2,
            bench_doc(4.0).replace(
                r#""kind":"dfcm","path":"stream""#,
                r#""kind":"dfcm","path":"dyn""#,
            ),
        )
        .unwrap();
        assert!(bench_check(&p2).unwrap_err().to_string().contains("dfcm"));
        // Not JSON at all.
        let p3 = dir.join("garbage.json");
        std::fs::write(&p3, "not json").unwrap();
        assert!(bench_check(&p3).is_err());
        // Wrong schema tag.
        let p4 = dir.join("tag.json");
        std::fs::write(
            &p4,
            bench_doc(4.0).replace("throughput/v1", "throughput/v9"),
        )
        .unwrap();
        assert!(bench_check(&p4).unwrap_err().to_string().contains("schema"));
        // Missing sweep config count.
        let p5 = dir.join("configs.json");
        std::fs::write(&p5, bench_doc(4.0).replace(r#""configs":16,"#, "")).unwrap();
        assert!(bench_check(&p5)
            .unwrap_err()
            .to_string()
            .contains("configs"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_for_accepts_both_tiers() {
        assert_eq!(trace_for("li", 500, 1).unwrap().len(), 500);
        assert_eq!(trace_for("sieve", 500, 1).unwrap().len(), 500);
        assert!(trace_for("nothing", 10, 1).is_err());
    }

    #[test]
    fn listings_are_nonempty() {
        assert!(kernels().contains("norm"));
        assert!(benchmarks().contains("vortex"));
    }

    #[test]
    fn disasm_output_reassembles() {
        let listing = disasm("queens").unwrap();
        assert!(dfcm_vm::assemble(&listing).is_ok());
        assert!(disasm("nope").is_err());
    }

    #[test]
    fn profile_reports_hot_spots() {
        let report = profile("sieve", 500_000).unwrap();
        assert!(report.contains("hottest"));
        assert!(report.contains("instructions executed"));
    }
}
