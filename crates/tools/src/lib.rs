//! Library half of `dfcm-tools`: each subcommand as a callable function
//! returning its output as a `String`, so the test suite can exercise the
//! tool end to end.
//!
//! Subcommands (see `dfcm-tools help`):
//!
//! * `gen` — generate a trace (synthetic benchmark or VM kernel) and save
//!   it in the compact binary format (`--format v1|v2|v3`; v3 synthetic
//!   traces are streamed to disk without materializing, so record counts
//!   in the hundreds of millions stay flat-memory).
//! * `stats` — trace statistics (Table 1-style) for a saved trace.
//! * `eval` — run a predictor configuration over a saved trace
//!   (`--streaming` feeds every predictor in one bounded-memory pass
//!   straight off the file, any format).
//! * `trace` — integrity tooling for saved traces: `inspect` (header and
//!   chunk map, with per-chunk compressed/packed sizes and bits/record
//!   for v3), `verify` (fail on any corruption), `salvage` (recover
//!   intact chunks into a fresh file of the same format), `compress`
//!   (convert between formats).
//! * `obs` — observability tooling: `summarize` renders the table-usage
//!   report for an export directory, `report` the windowed phase report
//!   (accuracy/miss sparklines, alias-class mix, top-K hard-to-predict
//!   PCs) from its `series.jsonl`; `--check` validates the exports.
//! * `bench` — `check` validates benchmark artifacts
//!   (`BENCH_throughput.json`, `BENCH_serve.json`, …) for CI gating;
//!   `trend` compares them against a committed baseline and fails on
//!   regressions beyond a noise threshold.
//! * `serve` — run the crash-tolerant prediction daemon (the
//!   `dfcm-serve` crate) until a shutdown signal.
//! * `loadgen` — chaos-driven load generation against a running daemon,
//!   with shadow-predictor verification.
//! * `scrape` — fetch a running daemon's metrics as Prometheus text.
//! * `disasm` — print the assembly listing of a bundled kernel.
//! * `profile` — execute a kernel and print its execution profile.
//! * `kernels` / `benchmarks` — list what `gen` accepts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::fs::File;
use std::io::BufReader;
use std::net::{SocketAddr, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dfcm::ValuePredictor;
use dfcm_sim::engine::{run_tasks_ft, TaskError, TaskOutput};
use dfcm_sim::{
    simulate_trace_observed, stream_trace_file_observed, EngineConfig, EngineReport,
    StreamPredictor,
};
use dfcm_trace::stats::TraceStats;
use dfcm_trace::suite::standard_suite;
use dfcm_trace::{
    atomic_write_with, inspect_trace, salvage_trace, Trace, TraceFormat, TraceSource,
    V3StreamWriter,
};
use dfcm_vm::{assemble, classify_pair, disassemble, programs, Tier, Vm, VmLimits};

/// Errors surfaced to the command line.
#[derive(Debug)]
pub struct ToolError(pub String);

impl std::fmt::Display for ToolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ToolError {}

fn err(message: impl Into<String>) -> ToolError {
    ToolError(message.into())
}

/// Parses a `--format` argument (`v1`, `v2` or `v3`) into a
/// [`TraceFormat`] stamped with `seed`.
///
/// # Errors
///
/// Returns [`ToolError`] for anything else.
pub fn parse_trace_format(s: &str, seed: u64) -> Result<TraceFormat, ToolError> {
    match s {
        "v1" | "1" => Ok(TraceFormat::V1),
        "v2" | "2" => Ok(TraceFormat::V2 { seed }),
        "v3" | "3" => Ok(TraceFormat::V3 { seed }),
        other => Err(err(format!("unknown trace format `{other}` (v1, v2, v3)"))),
    }
}

/// `gen <workload> <records> <out.trc> [--seed N]` — generates and saves a
/// trace. `<workload>` is a synthetic benchmark name (`cc1` … `vortex`) or
/// a VM kernel name (`norm`, `queens`, …).
///
/// # Errors
///
/// Returns [`ToolError`] for unknown workloads or I/O failures.
pub fn generate(
    workload: &str,
    records: usize,
    out: &Path,
    seed: u64,
) -> Result<String, ToolError> {
    generate_tiered(workload, records, out, seed, Tier::Fast)
}

/// [`generate`] with an explicit VM execution tier (`--vm-tier`). The
/// tiers are differentially verified bit-identical, so this only changes
/// wall-clock for kernel workloads; synthetic benchmarks ignore it.
///
/// # Errors
///
/// Returns [`ToolError`] for unknown workloads or I/O failures.
pub fn generate_tiered(
    workload: &str,
    records: usize,
    out: &Path,
    seed: u64,
    tier: Tier,
) -> Result<String, ToolError> {
    generate_formatted(workload, records, out, seed, tier, TraceFormat::V2 { seed })
}

/// [`generate_tiered`] with an explicit on-disk format (`--format`).
///
/// Synthetic workloads written as v3 never materialize the trace: records
/// are pulled from the generator straight into a [`V3StreamWriter`], so
/// memory stays flat no matter how many records are requested — that is
/// the path for producing 100M+-record traces. Kernel workloads and the
/// other formats build the trace in memory first.
///
/// # Errors
///
/// Returns [`ToolError`] for unknown workloads or I/O failures.
pub fn generate_formatted(
    workload: &str,
    records: usize,
    out: &Path,
    seed: u64,
    tier: Tier,
    format: TraceFormat,
) -> Result<String, ToolError> {
    if matches!(format, TraceFormat::V3 { .. }) {
        if let Some(spec) = standard_suite().into_iter().find(|b| b.name() == workload) {
            let mut program = spec.program(seed);
            atomic_write_with(out, |w| {
                let mut writer = V3StreamWriter::new(&mut *w, records as u64, seed)?;
                for _ in 0..records {
                    // The synthetic generator is endless by construction.
                    let record = program
                        .next_record()
                        .expect("synthetic sources are endless");
                    writer.push(record)?;
                }
                writer.finish()?;
                Ok(())
            })
            .map_err(|e| err(format!("writing {}: {e}", out.display())))?;
            return Ok(format!("wrote {} records to {}", records, out.display()));
        }
    }
    let trace = trace_for_tiered(workload, records, seed, tier)?;
    trace
        .save_with(out, format)
        .map_err(|e| err(format!("writing {}: {e}", out.display())))?;
    Ok(format!(
        "wrote {} records to {}",
        trace.len(),
        out.display()
    ))
}

/// Builds a trace for a named workload (shared by `gen` and tests).
///
/// # Errors
///
/// Returns [`ToolError`] if the name matches neither a synthetic
/// benchmark nor a bundled kernel.
pub fn trace_for(workload: &str, records: usize, seed: u64) -> Result<Trace, ToolError> {
    trace_for_tiered(workload, records, seed, Tier::Fast)
}

/// [`trace_for`] with an explicit VM execution tier for kernel workloads.
///
/// # Errors
///
/// Returns [`ToolError`] if the name matches neither a synthetic
/// benchmark nor a bundled kernel.
pub fn trace_for_tiered(
    workload: &str,
    records: usize,
    seed: u64,
    tier: Tier,
) -> Result<Trace, ToolError> {
    if let Some(spec) = standard_suite().into_iter().find(|b| b.name() == workload) {
        return Ok(spec.program(seed).take_trace(records));
    }
    if let Some(src) = programs::by_name(workload) {
        let program = assemble(src).map_err(|e| err(format!("{workload}: {e}")))?;
        // Budget generously above any plausible instructions-per-record
        // ratio: a kernel that stops emitting (or never halts) degrades
        // to an error instead of hanging `gen`.
        let limits = VmLimits {
            max_instructions: Some(
                (records as u64)
                    .saturating_mul(1_000)
                    .saturating_add(10_000_000),
            ),
            ..VmLimits::default()
        };
        let mut vm =
            Vm::with_tier(program, limits, tier).map_err(|e| err(format!("{workload}: {e}")))?;
        return vm
            .try_take_trace(records)
            .map_err(|e| err(format!("{workload} faulted: {e}")));
    }
    Err(err(format!(
        "unknown workload `{workload}` (see `dfcm-tools benchmarks` and `dfcm-tools kernels`)"
    )))
}

/// `stats <trace.trc>` — Table 1-style statistics of a saved trace.
///
/// # Errors
///
/// Returns [`ToolError`] for unreadable or malformed files.
pub fn stats(path: &Path) -> Result<String, ToolError> {
    let trace = Trace::load(path).map_err(|e| err(format!("{}: {e}", path.display())))?;
    let s = TraceStats::measure(&trace);
    let mut out = String::new();
    let _ = writeln!(out, "{}:", path.display());
    let _ = writeln!(out, "  records              {}", s.records);
    let _ = writeln!(out, "  static instructions  {}", s.static_instructions);
    let _ = writeln!(out, "  last-value fraction  {:.3}", s.last_value_fraction);
    let _ = writeln!(out, "  stride fraction      {:.3}", s.stride_fraction);
    let _ = writeln!(out, "  reuse fraction       {:.3}", s.reuse_fraction);
    Ok(out)
}

/// Builds a predictor from a spec string like `dfcm:16:12`, `fcm:12:12`,
/// `stride:14`, `2delta:14` or `lvp:12`.
///
/// # Errors
///
/// Returns [`ToolError`] for unknown predictor names or malformed specs.
pub fn predictor_for(spec: &str) -> Result<Box<dyn ValuePredictor>, ToolError> {
    Ok(Box::new(stream_predictor_for(spec)?))
}

/// Builds a streaming lane from the same spec grammar as
/// [`predictor_for`]. The streaming core dispatches through an enum, so
/// only the five concrete predictor kinds are available — which is
/// exactly what the spec grammar covers.
///
/// # Errors
///
/// Returns [`ToolError`] for unknown predictor names or malformed specs.
pub fn stream_predictor_for(spec: &str) -> Result<StreamPredictor, ToolError> {
    StreamPredictor::parse_spec(spec).map_err(|e| err(e.to_string()))
}

/// `eval --streaming` — runs every spec as a lane of the single-pass
/// streaming core: the trace is decoded and walked once straight off the
/// file, all predictors update in the same pass (one engine task, so
/// `--metrics`, retries and `--strict` still apply to it).
///
/// Any trace format is accepted (the magic is sniffed). Chunked formats
/// (v2, v3) stream with a bounded working set — O(decode threads) chunks
/// — so arbitrarily large traces evaluate in flat memory; the engine's
/// thread count doubles as the chunk-decode thread count.
///
/// Output lines match [`eval`]'s layout and ordering. The streaming pass
/// is bit-identical to the per-predictor path; what changes is
/// throughput. With `engine.obs` enabled the streaming pass records the
/// same telemetry as the per-predictor path: the per-spec
/// `eval_accuracy` gauge, table occupancy/write counters, the paper's
/// aliasing taxonomy, chunk-boundary occupancy samples, and the
/// windowed phase series with top-K per-PC attribution (rendered by
/// `dfcm-tools obs report`). The series are bit-identical at any decode
/// thread count.
///
/// # Errors
///
/// Returns [`ToolError`] for unreadable traces or bad predictor specs.
pub fn eval_streaming(
    path: &Path,
    specs: &[String],
    engine: &EngineConfig,
) -> Result<(String, EngineReport), ToolError> {
    let lanes = specs
        .iter()
        .map(|s| stream_predictor_for(s))
        .collect::<Result<Vec<StreamPredictor>, ToolError>>()?;
    let decode_threads = if engine.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        engine.threads
    };
    let label = format!("stream[{}]", specs.join(","));
    let (mut values, report) = run_tasks_ft(
        vec![label.clone()],
        |_| {
            let mut lanes = lanes.clone();
            // The observed entry point records the full telemetry set
            // (eval_accuracy, table/alias counters, phase series) and
            // falls back to the plain streaming pass when obs is off.
            let file_report =
                stream_trace_file_observed(path, &mut lanes, decode_threads, &engine.obs, true)
                    // Corruption won't heal on retry; read hiccups might.
                    .map_err(|e| match e.kind() {
                        std::io::ErrorKind::InvalidData => {
                            TaskError::Permanent(format!("{}: {e}", path.display()))
                        }
                        _ => TaskError::Transient(format!("{}: {e}", path.display())),
                    })?;
            let lines: Vec<String> = lanes
                .iter()
                .zip(&file_report.stats)
                .map(|(lane, s)| {
                    format!(
                        "  {:<32} accuracy {:.3}  ({:.1} Kbit)",
                        lane.name(),
                        s.accuracy(),
                        lane.storage().kbits()
                    )
                })
                .collect();
            Ok(TaskOutput {
                // One streaming task touches every record once per lane.
                records: file_report.records * specs.len() as u64,
                value: (file_report.records, lines),
            })
        },
        engine,
    );
    let mut out = String::new();
    match values.pop().flatten() {
        Some((records, lines)) => {
            let _ = writeln!(
                out,
                "{} ({} records, streaming x{}):",
                path.display(),
                records,
                specs.len()
            );
            for line in lines {
                let _ = writeln!(out, "{line}");
            }
        }
        None => {
            let outcome = report
                .tasks
                .first()
                .map(|t| t.outcome.to_string())
                .unwrap_or_default();
            let _ = writeln!(out, "{} (streaming x{}):", path.display(), specs.len());
            let _ = writeln!(out, "  {label:<32} FAILED: {outcome}");
        }
    }
    Ok((out, report))
}

/// `eval <trace.trc> <predictor-spec>...` — runs predictors over a saved
/// trace and reports accuracies.
///
/// Each predictor runs as one engine task; `engine` picks the worker
/// count, progress reporting, retry policy and (for testing) fault
/// injection. Lines appear in spec order regardless of scheduling, and
/// the returned [`EngineReport`] carries the run metrics (per-task
/// timing, outcome, per-worker utilization).
///
/// A task that panics or exhausts its retries does not abort the run:
/// its line reads `FAILED` with the outcome, the other predictors still
/// report, and the failure stays visible in the report (callers decide
/// whether that is fatal — the CLI's `--strict` flag does exactly that).
///
/// With `engine.obs` enabled, every predictor additionally runs with
/// table-usage instrumentation (occupancy samples, write/overwrite
/// counters, the paper's aliasing taxonomy for FCM/DFCM and the
/// `eval_accuracy` gauge) accumulated into the shared handle; the CLI's
/// `--obs DIR` flag dumps the three export formats from it.
///
/// # Errors
///
/// Returns [`ToolError`] for unreadable traces or bad predictor specs.
pub fn eval(
    path: &Path,
    specs: &[String],
    engine: &EngineConfig,
) -> Result<(String, EngineReport), ToolError> {
    let trace = Trace::load(path).map_err(|e| err(format!("{}: {e}", path.display())))?;
    // Surface bad specs (in order) before any simulation runs.
    for spec in specs {
        predictor_for(spec)?;
    }
    let (lines, report) = run_tasks_ft(
        specs.to_vec(),
        |i| {
            let mut p = predictor_for(&specs[i]).expect("spec validated above");
            let stats = simulate_trace_observed(&mut p, &trace, &engine.obs, &specs[i]);
            Ok(TaskOutput {
                value: format!(
                    "  {:<32} accuracy {:.3}  ({:.1} Kbit)",
                    p.name(),
                    stats.accuracy(),
                    p.storage().kbits()
                ),
                records: trace.len() as u64,
            })
        },
        engine,
    );
    let mut out = String::new();
    let _ = writeln!(out, "{} ({} records):", path.display(), trace.len());
    for (line, metric) in lines.iter().zip(&report.tasks) {
        match line {
            Some(line) => {
                let _ = writeln!(out, "{line}");
            }
            None => {
                let _ = writeln!(out, "  {:<32} FAILED: {}", metric.label, metric.outcome);
            }
        }
    }
    Ok((out, report))
}

/// `trace inspect <file>` — header, chunk map and CRC status of a saved
/// trace, whether or not the file is intact.
///
/// # Errors
///
/// Returns [`ToolError`] only when the file cannot be opened or its
/// header is unreadable; corruption in the body is *reported*, not an
/// error (use [`trace_verify`] to fail on it).
pub fn trace_inspect(path: &Path) -> Result<String, ToolError> {
    let file = File::open(path).map_err(|e| err(format!("{}: {e}", path.display())))?;
    let info =
        inspect_trace(BufReader::new(file)).map_err(|e| err(format!("{}: {e}", path.display())))?;
    let mut out = String::new();
    let _ = writeln!(out, "{}:", path.display());
    let _ = writeln!(out, "  format            v{}", info.version);
    let _ = writeln!(out, "  declared records  {}", info.declared_records);
    let _ = writeln!(out, "  decoded records   {}", info.decoded_records);
    if let Some(seed) = info.seed {
        let _ = writeln!(out, "  generator seed    {seed}");
    }
    if info.version >= 2 {
        let _ = writeln!(out, "  flags             {:#x}", info.flags);
        let _ = writeln!(out, "  chunks            {}", info.chunks.len());
        for c in &info.chunks {
            let status = if c.intact() {
                "ok".to_owned()
            } else if c.crc_stored != c.crc_computed {
                format!("CRC MISMATCH (computed {:08x})", c.crc_computed)
            } else {
                "UNDECODABLE".to_owned()
            };
            if info.version >= 3 {
                let _ = writeln!(
                    out,
                    "    chunk {:>3}  {:>7} records  {:>9} compressed  {:>9} packed  crc {:08x}  {status}",
                    c.chunk, c.records, c.payload_bytes, c.uncompressed_bytes, c.crc_stored
                );
            } else {
                let _ = writeln!(
                    out,
                    "    chunk {:>3}  {:>7} records  {:>9} bytes  crc {:08x}  {status}",
                    c.chunk, c.records, c.payload_bytes, c.crc_stored
                );
            }
        }
        if info.decoded_records > 0 {
            let payload: u64 = info.chunks.iter().map(|c| c.payload_bytes).sum();
            let _ = writeln!(
                out,
                "  payload density   {:.2} bits/record",
                payload as f64 * 8.0 / info.decoded_records as f64
            );
        }
    }
    if info.trailing_bytes > 0 {
        let _ = writeln!(out, "  trailing bytes    {}", info.trailing_bytes);
    }
    if let Some(e) = &info.error {
        let _ = writeln!(out, "  error             {e}");
    }
    let _ = writeln!(
        out,
        "  status            {}",
        if info.intact() { "intact" } else { "CORRUPT" }
    );
    Ok(out)
}

/// `trace verify <file>` — succeeds only when the file is fully intact
/// (every declared record decodes, every chunk CRC matches, no trailing
/// bytes), so scripts can gate on the exit status.
///
/// # Errors
///
/// Returns [`ToolError`] for unreadable files and for *any* corruption.
pub fn trace_verify(path: &Path) -> Result<String, ToolError> {
    let file = File::open(path).map_err(|e| err(format!("{}: {e}", path.display())))?;
    let info =
        inspect_trace(BufReader::new(file)).map_err(|e| err(format!("{}: {e}", path.display())))?;
    if info.intact() {
        let density = if info.version >= 3 && info.decoded_records > 0 {
            let payload: u64 = info.chunks.iter().map(|c| c.payload_bytes).sum();
            format!(
                ", {:.2} bits/record",
                payload as f64 * 8.0 / info.decoded_records as f64
            )
        } else {
            String::new()
        };
        return Ok(format!(
            "{}: OK (v{}, {} records, {} chunk{}{density})",
            path.display(),
            info.version,
            info.decoded_records,
            info.chunks.len().max(1),
            if info.chunks.len() == 1 { "" } else { "s" }
        ));
    }
    let mut detail = Vec::new();
    let bad: Vec<String> = info
        .chunks
        .iter()
        .filter(|c| !c.intact())
        .map(|c| c.chunk.to_string())
        .collect();
    if !bad.is_empty() {
        detail.push(format!("bad chunk(s) {}", bad.join(", ")));
    }
    if info.decoded_records != info.declared_records {
        detail.push(format!(
            "decoded {} of {} declared records",
            info.decoded_records, info.declared_records
        ));
    }
    if info.trailing_bytes > 0 {
        detail.push(format!("{} trailing bytes", info.trailing_bytes));
    }
    if let Some(e) = &info.error {
        detail.push(e.clone());
    }
    Err(err(format!(
        "{}: CORRUPT ({})",
        path.display(),
        detail.join("; ")
    )))
}

/// `trace salvage <file> --output <out>` — recovers every intact chunk
/// into a fresh file of the *same format as the input* (re-stamping the
/// original generator seed when the header survived) and summarizes what
/// was dropped. Salvaging a v3 trace re-emits v3; v1 and v2 inputs
/// re-emit v2 (v1 has no seed or chunk structure worth preserving).
///
/// # Errors
///
/// Returns [`ToolError`] when the file cannot be read at all, when the
/// header is unrecoverable, or when nothing could be salvaged from a
/// nonempty trace.
pub fn trace_salvage(path: &Path, output: &Path) -> Result<String, ToolError> {
    let file = File::open(path).map_err(|e| err(format!("{}: {e}", path.display())))?;
    let report =
        salvage_trace(BufReader::new(file)).map_err(|e| err(format!("{}: {e}", path.display())))?;
    if report.recovered.is_empty() && report.declared_records > 0 {
        return Err(err(format!(
            "{}: nothing recoverable ({} records declared, every chunk damaged)",
            path.display(),
            report.declared_records
        )));
    }
    let seed = report.seed.unwrap_or(0);
    let format = if report.version >= 3 {
        TraceFormat::V3 { seed }
    } else {
        TraceFormat::V2 { seed }
    };
    report
        .recovered
        .save_with(output, format)
        .map_err(|e| err(format!("writing {}: {e}", output.display())))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "recovered {} of {} records ({}/{} chunks) from {} into {}",
        report.recovered.len(),
        report.declared_records,
        report.recovered_chunks,
        report.total_chunks,
        path.display(),
        output.display()
    );
    for d in &report.dropped {
        let _ = writeln!(
            out,
            "  dropped chunk {} ({} records): {}",
            d.chunk, d.records, d.reason
        );
    }
    if report.intact() {
        let _ = writeln!(out, "  source was fully intact; output is a clean rewrite");
    }
    Ok(out)
}

/// Streams already-decoded chunks into a fresh v3 file — the flat-memory
/// half of [`trace_compress`].
fn write_v3_streaming<I>(output: &Path, records: u64, seed: u64, chunks: I) -> std::io::Result<()>
where
    I: Iterator<Item = std::io::Result<Vec<dfcm_trace::TraceRecord>>>,
{
    atomic_write_with(output, |w| {
        let mut writer = V3StreamWriter::new(&mut *w, records, seed)?;
        for chunk in chunks {
            for record in chunk? {
                writer.push(record)?;
            }
        }
        writer.finish()?;
        Ok(())
    })
}

/// `trace compress <file> --output <out> [--format v1|v2|v3]` — rewrites
/// a saved trace in another format (default v3, the compressed tier).
///
/// Chunked inputs (v2, v3) converted to v3 are streamed chunk by chunk —
/// decode one, re-encode it, drop it — so the conversion runs in flat
/// memory at any trace size. The generator seed from a v2/v3 header is
/// carried over; v1 inputs (which have no seed) stamp 0.
///
/// # Errors
///
/// Returns [`ToolError`] for unreadable or corrupt inputs, unknown
/// target formats, and I/O failures.
pub fn trace_compress(
    path: &Path,
    output: &Path,
    format: Option<&str>,
) -> Result<String, ToolError> {
    let in_err = |e: std::io::Error| err(format!("{}: {e}", path.display()));
    let out_err = |e: std::io::Error| err(format!("writing {}: {e}", output.display()));
    let mut magic = [0u8; 8];
    {
        use std::io::Read as _;
        File::open(path)
            .map_err(in_err)?
            .read_exact(&mut magic)
            .map_err(in_err)?;
    }
    let seed = match &magic {
        b"DFCMTRC2" => dfcm_trace::V2ChunkReader::open(path)
            .map_err(in_err)?
            .seed(),
        b"DFCMTRC3" => dfcm_trace::V3ChunkReader::open(path)
            .map_err(in_err)?
            .seed(),
        _ => 0,
    };
    let target = parse_trace_format(format.unwrap_or("v3"), seed)?;
    let records = match (&magic, target) {
        (b"DFCMTRC2", TraceFormat::V3 { .. }) => {
            let reader = dfcm_trace::V2ChunkReader::open(path).map_err(in_err)?;
            let records = reader.declared_records();
            write_v3_streaming(
                output,
                records,
                seed,
                reader.map(|c| c.and_then(|c| c.decode())),
            )
            .map_err(out_err)?;
            records
        }
        (b"DFCMTRC3", TraceFormat::V3 { .. }) => {
            let reader = dfcm_trace::V3ChunkReader::open(path).map_err(in_err)?;
            let records = reader.declared_records();
            write_v3_streaming(
                output,
                records,
                seed,
                reader.map(|c| c.and_then(|c| c.decode())),
            )
            .map_err(out_err)?;
            records
        }
        _ => {
            let trace = Trace::load(path).map_err(in_err)?;
            trace.save_with(output, target).map_err(out_err)?;
            trace.len() as u64
        }
    };
    let in_bytes = std::fs::metadata(path).map_err(in_err)?.len();
    let out_bytes = std::fs::metadata(output).map_err(out_err)?.len();
    Ok(format!(
        "{} -> {}: {} records, {} -> {} bytes ({:.2}x, {:.2} bits/record)",
        path.display(),
        output.display(),
        records,
        in_bytes,
        out_bytes,
        in_bytes as f64 / out_bytes.max(1) as f64,
        out_bytes as f64 * 8.0 / records.max(1) as f64
    ))
}

/// `obs summarize <dir> [--check]` — renders the table-usage report for
/// an observability export directory (as written by `eval --obs DIR` or
/// a repro binary's `--obs DIR`). With `check`, first validates all
/// three export files (JSONL stream, Chrome trace, Prometheus text) for
/// well-formedness and internal consistency and fails on any problem.
///
/// # Errors
///
/// Returns [`ToolError`] when the directory's JSONL export is missing or
/// malformed, or (with `check`) listing every validation problem found.
pub fn obs_summarize(dir: &Path, check: bool) -> Result<String, ToolError> {
    if check {
        dfcm_obs::summary::check(dir).map_err(|problems| {
            err(format!(
                "{}: {} problem(s):\n  {}",
                dir.display(),
                problems.len(),
                problems.join("\n  ")
            ))
        })?;
    }
    let data = dfcm_obs::summary::load(dir).map_err(err)?;
    let mut out = dfcm_obs::summary::summarize(&data);
    if check {
        out.push_str("check: all exports well-formed and consistent\n");
    }
    Ok(out)
}

/// `obs report <dir> [--check]` — renders the per-benchmark *phase*
/// report from an export directory's `series.jsonl` (the
/// `dfcm-obs-series/v1` stream written by observed runs): per lane a
/// windowed accuracy/miss sparkline, the alias-class miss mix, and the
/// top-K hard-to-predict PC table with its space-saving error bounds.
///
/// With `check`, first validates the series stream's internal
/// consistency ([`dfcm_obs::timeseries::check_series`]) *and*
/// cross-reconciles the series against the aggregate metrics in
/// `events.jsonl`: the footer accuracy must match the `eval_accuracy`
/// gauge and the summed per-window class counts must match the
/// `predictor_alias_total` counters for every spec present in both.
///
/// # Errors
///
/// Returns [`ToolError`] when the series file is missing or malformed,
/// or (with `check`) listing every reconciliation problem found.
pub fn obs_report(dir: &Path, check: bool) -> Result<String, ToolError> {
    let lanes = dfcm_obs::timeseries::load_series(dir).map_err(err)?;
    if check {
        let mut problems = dfcm_obs::timeseries::check_series(&lanes);
        check_series_vs_aggregates(dir, &lanes, &mut problems);
        if !problems.is_empty() {
            return Err(err(format!(
                "{}: {} series problem(s):\n  {}",
                dir.display(),
                problems.len(),
                problems.join("\n  ")
            )));
        }
    }
    let mut out = format!("obs phase report: {}\n", dir.display());
    for lane in &lanes {
        render_lane_report(&mut out, lane);
    }
    if check {
        let _ = writeln!(
            out,
            "check: {} series lane(s) reconcile with the aggregate exports",
            lanes.len()
        );
    }
    Ok(out)
}

/// Renders one lane of the phase report (see [`obs_report`]).
fn render_lane_report(out: &mut String, lane: &dfcm_obs::timeseries::LoadedSeries) {
    let predictions: u64 = lane.windows.iter().map(|w| w.predictions).sum();
    let correct: u64 = lane.windows.iter().map(|w| w.correct).sum();
    let accuracy = correct as f64 / predictions.max(1) as f64;
    let _ = writeln!(
        out,
        "\n{}: {predictions} prediction(s) in {} window(s) of {}, accuracy {accuracy:.3}",
        lane.spec,
        lane.windows.len(),
        lane.window_len
    );
    let acc: Vec<f64> = lane.windows.iter().map(|w| w.accuracy).collect();
    let misses: Vec<f64> = lane.windows.iter().map(|w| w.misses as f64).collect();
    let (min_i, min_v) = extreme(&acc, |a, b| a < b);
    let (max_i, max_v) = extreme(&acc, |a, b| a > b);
    let _ = writeln!(
        out,
        "  accuracy {}  min {min_v:.3} (w{min_i})  max {max_v:.3} (w{max_i})",
        dfcm_obs::summary::sparkline(&acc)
    );
    let _ = writeln!(
        out,
        "  misses   {}  total {}",
        dfcm_obs::summary::sparkline(&misses),
        predictions - correct
    );
    // Alias-class miss mix across the whole series (non-zero classes
    // only; unclassified lanes show everything under `unclassified`).
    let mix: Vec<String> = lane
        .classes
        .iter()
        .enumerate()
        .filter_map(|(slot, class)| {
            let total: u64 = lane
                .windows
                .iter()
                .map(|w| w.class_total.get(slot).copied().unwrap_or(0))
                .sum();
            let ok: u64 = lane
                .windows
                .iter()
                .map(|w| w.class_correct.get(slot).copied().unwrap_or(0))
                .sum();
            (total > 0).then(|| format!("{class} {}", total - ok))
        })
        .collect();
    if !mix.is_empty() {
        let _ = writeln!(out, "  class misses: {}", mix.join(", "));
    }
    if lane.top.is_empty() {
        let _ = writeln!(out, "  hard-to-predict PCs: none recorded");
        return;
    }
    let _ = writeln!(
        out,
        "  hard-to-predict PCs (top {} tracked, capacity {}):",
        lane.top.len(),
        lane.top_k
    );
    for entry in &lane.top {
        let classes: Vec<String> = lane
            .classes
            .iter()
            .zip(&entry.class_miss)
            .filter(|(_, &n)| n > 0)
            .map(|(class, n)| format!("{class}:{n}"))
            .collect();
        let _ = writeln!(
            out,
            "    #{:<3} {:#018x}  {:>8} miss(es) (err <= {})  {}",
            entry.rank,
            entry.pc,
            entry.count,
            entry.error,
            classes.join(" ")
        );
    }
}

/// Index and value of the extreme element under `better` (0/0.0 for an
/// empty slice).
fn extreme(values: &[f64], better: impl Fn(f64, f64) -> bool) -> (usize, f64) {
    let mut best = (0usize, values.first().copied().unwrap_or(0.0));
    for (i, &v) in values.iter().enumerate() {
        if better(v, best.1) {
            best = (i, v);
        }
    }
    best
}

/// The series↔aggregate reconciliation half of `obs report --check`:
/// for every series lane whose spec also appears in the `events.jsonl`
/// aggregates, the footer accuracy must match the `eval_accuracy` gauge
/// (within 1e-4, the export's rounding) and the summed per-window class
/// totals must match the `predictor_alias_total` counters exactly.
fn check_series_vs_aggregates(
    dir: &Path,
    lanes: &[dfcm_obs::timeseries::LoadedSeries],
    problems: &mut Vec<String>,
) {
    let data = match dfcm_obs::summary::load(dir) {
        Ok(data) => data,
        Err(e) => {
            problems.push(format!("series/aggregate cross-check impossible: {e}"));
            return;
        }
    };
    let metric_for = |name: &str, spec: &str, class: Option<&str>| {
        data.metrics.iter().find(|m| {
            m.name == name
                && m.labels.iter().any(|(k, v)| k == "spec" && v == spec)
                && class.is_none_or(|c| m.labels.iter().any(|(k, v)| k == "class" && v == c))
        })
    };
    for lane in lanes {
        let Some(totals) = &lane.totals else {
            continue;
        };
        if let Some(gauge) = metric_for("eval_accuracy", &lane.spec, None) {
            let series_acc = totals.correct as f64 / totals.predictions.max(1) as f64;
            if (series_acc - gauge.value).abs() > 1e-4 {
                problems.push(format!(
                    "spec {}: series accuracy {series_acc:.6} disagrees with the \
                     eval_accuracy gauge {:.6}",
                    lane.spec, gauge.value
                ));
            }
        }
        for (slot, class) in lane.classes.iter().enumerate() {
            let Some(counter) = metric_for("predictor_alias_total", &lane.spec, Some(class)) else {
                continue;
            };
            let series_total: u64 = lane
                .windows
                .iter()
                .map(|w| w.class_total.get(slot).copied().unwrap_or(0))
                .sum();
            if (counter.value - series_total as f64).abs() > 0.5 {
                problems.push(format!(
                    "spec {} class {class}: series total {series_total} disagrees with \
                     the predictor_alias_total counter {}",
                    lane.spec, counter.value
                ));
            }
        }
    }
}

/// `bench check <file>` — validates a benchmark artifact against its
/// declared schema, so CI can gate on the exit status without external
/// JSON tooling. Dispatches on the `schema` field:
///
/// * `dfcm-bench-throughput/v1` (`BENCH_throughput.json`, emitted by
///   `cargo bench --bench throughput`): `mode`, `records` and `machine`
///   fields; a non-empty `results` array whose entries carry positive,
///   finite timings; `stream`-path coverage of all four paper predictors
///   (lvp, stride, fcm, dfcm); and an `aggregate` with a positive sweep
///   `configs` count whose `speedup` is consistent with its own
///   numerator and denominator.
/// * `dfcm-bench-serve/v1` (`BENCH_serve.json`, emitted by
///   `dfcm-tools loadgen --bench-out`): counter fields present, every
///   request accounted for (`acked + failed == requests`), zero
///   `corrupted` acknowledgements, `verified ≤ acked`, ordered latency
///   percentiles, and finite timing/throughput numbers.
/// * `dfcm-bench-trace/v1` (`BENCH_trace.json`, emitted by
///   `cargo bench --bench trace`): `mode`, `records` and `machine`
///   fields; a non-empty `suite` array whose entries carry positive
///   byte counts, density and encode/decode rates, with every suite
///   trace at or under 16 bits/record in v3; and an `aggregate` whose
///   v3 density is at or under 12 bits/record, whose `ratio_vs_v2` is
///   at least 2 and consistent with its own density fields, and whose
///   streaming predictions/sec are finite and positive for both
///   formats.
///
/// # Errors
///
/// Returns [`ToolError`] listing every schema violation found.
pub fn bench_check(path: &Path) -> Result<String, ToolError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| err(format!("{}: {e}", path.display())))?;
    let doc = dfcm_obs::json::parse(&text)
        .map_err(|e| err(format!("{}: malformed JSON: {e}", path.display())))?;
    let mut problems: Vec<String> = Vec::new();
    let summary = match doc.get("schema").and_then(|v| v.as_str()) {
        Some("dfcm-bench-throughput/v1") => check_bench_throughput(&doc, &mut problems),
        Some("dfcm-bench-serve/v1") => check_bench_serve(&doc, &mut problems),
        Some("dfcm-bench-vm/v1") => check_bench_vm(&doc, &mut problems),
        Some("dfcm-bench-trace/v1") => check_bench_trace(&doc, &mut problems),
        Some(other) => {
            problems.push(format!("unknown schema `{other}`"));
            String::new()
        }
        None => {
            problems.push("missing string field `schema`".into());
            String::new()
        }
    };
    if problems.is_empty() {
        Ok(format!("{}: OK ({summary})", path.display()))
    } else {
        Err(err(format!(
            "{}: {} schema problem(s):\n  {}",
            path.display(),
            problems.len(),
            problems.join("\n  ")
        )))
    }
}

/// The `dfcm-bench-throughput/v1` validator (see [`bench_check`]).
fn check_bench_throughput(doc: &dfcm_obs::json::Json, problems: &mut Vec<String>) -> String {
    let mut problem = |p: String| problems.push(p);
    match doc.get("mode").and_then(|v| v.as_str()) {
        Some("quick") | Some("full") => {}
        Some(other) => problem(format!("`mode` must be quick|full, got `{other}`")),
        None => problem("missing string field `mode`".into()),
    }
    if doc
        .get("records")
        .and_then(|v| v.as_u64())
        .is_none_or(|n| n == 0)
    {
        problem("`records` must be a positive integer".into());
    }
    match doc.get("machine") {
        Some(machine) => {
            for key in ["os", "arch"] {
                if machine.get(key).and_then(|v| v.as_str()).is_none() {
                    problem(format!("`machine.{key}` must be a string"));
                }
            }
            if machine
                .get("threads")
                .and_then(|v| v.as_u64())
                .is_none_or(|n| n == 0)
            {
                problem("`machine.threads` must be a positive integer".into());
            }
        }
        None => problem("missing object field `machine`".into()),
    }

    let mut stream_kinds: Vec<String> = Vec::new();
    match doc.get("results").and_then(|v| v.as_arr()) {
        Some([]) => problem("`results` must be non-empty".into()),
        Some(results) => {
            for (i, entry) in results.iter().enumerate() {
                for key in ["predictor", "kind"] {
                    if entry.get(key).and_then(|v| v.as_str()).is_none() {
                        problem(format!("results[{i}].{key} must be a string"));
                    }
                }
                let path_kind = entry.get("path").and_then(|v| v.as_str());
                if !matches!(path_kind, Some("dyn") | Some("stream")) {
                    problem(format!("results[{i}].path must be dyn|stream"));
                }
                if entry
                    .get("records")
                    .and_then(|v| v.as_u64())
                    .is_none_or(|n| n == 0)
                {
                    problem(format!("results[{i}].records must be a positive integer"));
                }
                for key in ["seconds", "predictions_per_sec"] {
                    if !entry
                        .get(key)
                        .and_then(|v| v.as_f64())
                        .is_some_and(|x| x.is_finite() && x > 0.0)
                    {
                        problem(format!("results[{i}].{key} must be finite and positive"));
                    }
                }
                if path_kind == Some("stream") {
                    if let Some(kind) = entry.get("kind").and_then(|v| v.as_str()) {
                        stream_kinds.push(kind.to_owned());
                    }
                }
            }
        }
        None => problem("missing array field `results`".into()),
    }
    for kind in ["lvp", "stride", "fcm", "dfcm"] {
        if !stream_kinds.iter().any(|k| k == kind) {
            problem(format!("no stream-path result for predictor kind `{kind}`"));
        }
    }

    match doc.get("aggregate") {
        Some(agg) => {
            if agg
                .get("configs")
                .and_then(|v| v.as_u64())
                .is_none_or(|n| n == 0)
            {
                problem("`aggregate.configs` must be a positive integer".into());
            }
            let field = |key: &str| agg.get(key).and_then(|v| v.as_f64());
            match (
                field("baseline_dyn_seconds"),
                field("stream_seconds"),
                field("speedup"),
            ) {
                (Some(base), Some(stream), Some(speedup))
                    if base > 0.0 && stream > 0.0 && speedup > 0.0 =>
                {
                    // The file rounds each field independently; allow a
                    // small tolerance around base/stream.
                    let expected = base / stream;
                    if (speedup - expected).abs() > 0.05 * expected {
                        problem(format!(
                            "aggregate.speedup {speedup} inconsistent with \
                             {base}/{stream} = {expected:.3}"
                        ));
                    }
                }
                _ => problem(
                    "aggregate needs positive baseline_dyn_seconds, \
                     stream_seconds and speedup"
                        .into(),
                ),
            }
        }
        None => problem("missing object field `aggregate`".into()),
    }

    format!(
        "dfcm-bench-throughput/v1, {} result(s)",
        doc.get("results")
            .and_then(|v| v.as_arr())
            .map_or(0, <[_]>::len)
    )
}

/// The `dfcm-bench-serve/v1` validator (see [`bench_check`]): the
/// loadgen artifact written by `dfcm-tools loadgen --bench-out`.
fn check_bench_serve(doc: &dfcm_obs::json::Json, problems: &mut Vec<String>) -> String {
    let field = |key: &str| doc.get(key).and_then(|v| v.as_u64());
    let mut problem = |p: String| problems.push(p);
    for key in ["clients", "requests"] {
        if field(key).is_none_or(|n| n == 0) {
            problem(format!("`{key}` must be a positive integer"));
        }
    }
    for key in [
        "acked",
        "failed",
        "corrupted",
        "verified",
        "p50_us",
        "p99_us",
        "max_us",
    ] {
        if field(key).is_none() {
            problem(format!("`{key}` must be a non-negative integer"));
        }
    }
    if let (Some(requests), Some(acked), Some(failed)) =
        (field("requests"), field("acked"), field("failed"))
    {
        if acked.checked_add(failed) != Some(requests) {
            problem(format!(
                "acked {acked} + failed {failed} != requests {requests}: \
                 requests unaccounted for"
            ));
        }
    }
    if field("corrupted").is_some_and(|n| n > 0) {
        problem(
            "`corrupted` must be 0: an acknowledged reply contradicted \
             the shadow predictor"
                .into(),
        );
    }
    if let (Some(verified), Some(acked)) = (field("verified"), field("acked")) {
        if verified > acked {
            problem(format!("verified {verified} exceeds acked {acked}"));
        }
    }
    if let (Some(p50), Some(p99), Some(max)) = (field("p50_us"), field("p99_us"), field("max_us")) {
        if p50 > p99 || p99 > max {
            problem(format!(
                "latency percentiles out of order: p50 {p50}, p99 {p99}, max {max}"
            ));
        }
    }
    for key in ["elapsed_s", "throughput_rps"] {
        if !doc
            .get(key)
            .and_then(|v| v.as_f64())
            .is_some_and(|x| x.is_finite() && x >= 0.0)
        {
            problem(format!("`{key}` must be finite and non-negative"));
        }
    }
    format!(
        "dfcm-bench-serve/v1, {}/{} acked",
        field("acked").unwrap_or(0),
        field("requests").unwrap_or(0)
    )
}

/// The `dfcm-bench-vm/v1` validator (see [`bench_check`]): the VM-tier
/// benchmark artifact written by `cargo bench --bench vm`. Unknown
/// fields are ignored, like the other validators; missing kernels and
/// non-positive rates are rejected.
fn check_bench_vm(doc: &dfcm_obs::json::Json, problems: &mut Vec<String>) -> String {
    let mut problem = |p: String| problems.push(p);
    match doc.get("mode").and_then(|v| v.as_str()) {
        Some("quick") | Some("full") => {}
        Some(other) => problem(format!("`mode` must be quick|full, got `{other}`")),
        None => problem("missing string field `mode`".into()),
    }
    if doc
        .get("records")
        .and_then(|v| v.as_u64())
        .is_none_or(|n| n == 0)
    {
        problem("`records` must be a positive integer".into());
    }
    match doc.get("machine") {
        Some(machine) => {
            for key in ["os", "arch"] {
                if machine.get(key).and_then(|v| v.as_str()).is_none() {
                    problem(format!("`machine.{key}` must be a string"));
                }
            }
            if machine
                .get("threads")
                .and_then(|v| v.as_u64())
                .is_none_or(|n| n == 0)
            {
                problem("`machine.threads` must be a positive integer".into());
            }
        }
        None => problem("missing object field `machine`".into()),
    }
    // The whole point of the fast tier is that it is bit-identical; an
    // artifact that measured divergent tiers is invalid, not just slow.
    match doc.get("equivalent") {
        Some(dfcm_obs::json::Json::Bool(true)) => {}
        Some(dfcm_obs::json::Json::Bool(false)) => {
            problem("`equivalent` is false: the tiers emitted different traces".into());
        }
        _ => problem("missing boolean field `equivalent`".into()),
    }

    let mut seen: Vec<String> = Vec::new();
    match doc.get("kernels").and_then(|v| v.as_arr()) {
        Some([]) => problem("`kernels` must be non-empty".into()),
        Some(entries) => {
            for (i, entry) in entries.iter().enumerate() {
                match entry.get("kernel").and_then(|v| v.as_str()) {
                    Some(name) => seen.push(name.to_owned()),
                    None => problem(format!("kernels[{i}].kernel must be a string")),
                }
                if entry
                    .get("instructions")
                    .and_then(|v| v.as_u64())
                    .is_none_or(|n| n == 0)
                {
                    problem(format!(
                        "kernels[{i}].instructions must be a positive integer"
                    ));
                }
                let rate = |key: &str| entry.get(key).and_then(|v| v.as_f64());
                for key in [
                    "interp_seconds",
                    "interp_ips",
                    "fast_seconds",
                    "fast_ips",
                    "speedup",
                ] {
                    if !rate(key).is_some_and(|x| x.is_finite() && x > 0.0) {
                        problem(format!("kernels[{i}].{key} must be finite and positive"));
                    }
                }
                if let (Some(interp), Some(fast), Some(speedup)) = (
                    rate("interp_seconds"),
                    rate("fast_seconds"),
                    rate("speedup"),
                ) {
                    if interp > 0.0 && fast > 0.0 && speedup > 0.0 {
                        let expected = interp / fast;
                        if (speedup - expected).abs() > 0.05 * expected {
                            problem(format!(
                                "kernels[{i}].speedup {speedup} inconsistent with \
                                 {interp}/{fast} = {expected:.3}"
                            ));
                        }
                    }
                }
                for key in ["fused_fraction", "replay_fraction"] {
                    if !rate(key).is_some_and(|x| (0.0..=1.0).contains(&x)) {
                        problem(format!("kernels[{i}].{key} must be within [0, 1]"));
                    }
                }
            }
        }
        None => problem("missing array field `kernels`".into()),
    }
    for (name, _) in programs::all() {
        if !seen.iter().any(|k| k == name) {
            problem(format!("bundled kernel `{name}` missing from `kernels`"));
        }
    }

    match doc.get("aggregate") {
        Some(agg) => {
            if agg
                .get("kernels")
                .and_then(|v| v.as_u64())
                .is_none_or(|n| n as usize != seen.len())
            {
                problem(format!(
                    "`aggregate.kernels` must equal the kernel entry count ({})",
                    seen.len()
                ));
            }
            let field = |key: &str| agg.get(key).and_then(|v| v.as_f64());
            match (
                field("min_speedup"),
                field("geomean_speedup"),
                field("max_speedup"),
            ) {
                (Some(min), Some(geo), Some(max))
                    if min > 0.0 && geo > 0.0 && max > 0.0 && min <= geo && geo <= max => {}
                _ => problem(
                    "aggregate needs positive, ordered min_speedup <= \
                     geomean_speedup <= max_speedup"
                        .into(),
                ),
            }
        }
        None => problem("missing object field `aggregate`".into()),
    }

    format!("dfcm-bench-vm/v1, {} kernel(s)", seen.len())
}

/// Per-suite v3 density ceiling (bits/record) for `bench check`. The
/// suite's worst case is `go` (wide random value blocks) at ~15 in
/// quick mode; anything past this means packing or compression
/// regressed.
const TRACE_SUITE_MAX_BITS: f64 = 16.0;
/// Aggregate v3 density ceiling (bits/record); measured ~10.8.
const TRACE_AGG_MAX_BITS: f64 = 12.0;
/// Minimum aggregate size ratio over v2; measured ~3.3x.
const TRACE_MIN_RATIO_VS_V2: f64 = 2.0;

/// The `dfcm-bench-trace/v1` validator (see [`bench_check`]): the
/// trace-format benchmark artifact written by `cargo bench --bench
/// trace`. Density ceilings are acceptance gates — a suite entry over
/// [`TRACE_SUITE_MAX_BITS`] bits/record in v3, an aggregate over
/// [`TRACE_AGG_MAX_BITS`], or an aggregate ratio under
/// [`TRACE_MIN_RATIO_VS_V2`]x is rejected, not just reported.
fn check_bench_trace(doc: &dfcm_obs::json::Json, problems: &mut Vec<String>) -> String {
    let mut problem = |p: String| problems.push(p);
    match doc.get("mode").and_then(|v| v.as_str()) {
        Some("quick") | Some("full") => {}
        Some(other) => problem(format!("`mode` must be quick|full, got `{other}`")),
        None => problem("missing string field `mode`".into()),
    }
    if doc
        .get("records")
        .and_then(|v| v.as_u64())
        .is_none_or(|n| n == 0)
    {
        problem("`records` must be a positive integer".into());
    }
    match doc.get("machine") {
        Some(machine) => {
            for key in ["os", "arch"] {
                if machine.get(key).and_then(|v| v.as_str()).is_none() {
                    problem(format!("`machine.{key}` must be a string"));
                }
            }
            if machine
                .get("threads")
                .and_then(|v| v.as_u64())
                .is_none_or(|n| n == 0)
            {
                problem("`machine.threads` must be a positive integer".into());
            }
        }
        None => problem("missing object field `machine`".into()),
    }

    let mut entries_seen = 0usize;
    match doc.get("suite").and_then(|v| v.as_arr()) {
        Some([]) => problem("`suite` must be non-empty".into()),
        Some(entries) => {
            entries_seen = entries.len();
            for (i, entry) in entries.iter().enumerate() {
                if entry.get("name").and_then(|v| v.as_str()).is_none() {
                    problem(format!("suite[{i}].name must be a string"));
                }
                for key in ["records", "v2_bytes", "v3_bytes"] {
                    if entry
                        .get(key)
                        .and_then(|v| v.as_u64())
                        .is_none_or(|n| n == 0)
                    {
                        problem(format!("suite[{i}].{key} must be a positive integer"));
                    }
                }
                let rate = |key: &str| entry.get(key).and_then(|v| v.as_f64());
                for key in [
                    "v2_bits_record",
                    "v3_bits_record",
                    "encode_mb_s",
                    "decode_mb_s",
                ] {
                    if !rate(key).is_some_and(|x| x.is_finite() && x > 0.0) {
                        problem(format!("suite[{i}].{key} must be finite and positive"));
                    }
                }
                if let Some(bits) = rate("v3_bits_record") {
                    if bits > TRACE_SUITE_MAX_BITS {
                        problem(format!(
                            "suite[{i}].v3_bits_record {bits} exceeds the \
                             {TRACE_SUITE_MAX_BITS} bits/record density gate"
                        ));
                    }
                }
            }
        }
        None => problem("missing array field `suite`".into()),
    }

    match doc.get("aggregate") {
        Some(agg) => {
            let field = |key: &str| agg.get(key).and_then(|v| v.as_f64());
            for key in [
                "v2_bits_record",
                "v3_bits_record",
                "ratio_vs_v2",
                "encode_mb_s",
                "decode_mb_s",
                "v2_stream_pred_s",
                "v3_stream_pred_s",
                "stream_ratio",
            ] {
                if !field(key).is_some_and(|x| x.is_finite() && x > 0.0) {
                    problem(format!("aggregate.{key} must be finite and positive"));
                }
            }
            if agg
                .get("stream_threads")
                .and_then(|v| v.as_u64())
                .is_none_or(|n| n == 0)
            {
                problem("`aggregate.stream_threads` must be a positive integer".into());
            }
            if let Some(bits) = field("v3_bits_record") {
                if bits > TRACE_AGG_MAX_BITS {
                    problem(format!(
                        "aggregate.v3_bits_record {bits} exceeds the \
                         {TRACE_AGG_MAX_BITS} bits/record density gate"
                    ));
                }
            }
            if let (Some(v2), Some(v3), Some(ratio)) = (
                field("v2_bits_record"),
                field("v3_bits_record"),
                field("ratio_vs_v2"),
            ) {
                if v2 > 0.0 && v3 > 0.0 && ratio > 0.0 {
                    if ratio < TRACE_MIN_RATIO_VS_V2 {
                        problem(format!(
                            "aggregate.ratio_vs_v2 {ratio} under the \
                             {TRACE_MIN_RATIO_VS_V2}x compression gate"
                        ));
                    }
                    let expected = v2 / v3;
                    if (ratio - expected).abs() > 0.05 * expected {
                        problem(format!(
                            "aggregate.ratio_vs_v2 {ratio} inconsistent with \
                             {v2}/{v3} = {expected:.3}"
                        ));
                    }
                }
            }
            if let (Some(v2_ps), Some(v3_ps), Some(ratio)) = (
                field("v2_stream_pred_s"),
                field("v3_stream_pred_s"),
                field("stream_ratio"),
            ) {
                if v2_ps > 0.0 && v3_ps > 0.0 && ratio > 0.0 {
                    let expected = v3_ps / v2_ps;
                    if (ratio - expected).abs() > 0.05 * expected {
                        problem(format!(
                            "aggregate.stream_ratio {ratio} inconsistent with \
                             {v3_ps}/{v2_ps} = {expected:.3}"
                        ));
                    }
                }
            }
        }
        None => problem("missing object field `aggregate`".into()),
    }

    format!("dfcm-bench-trace/v1, {entries_seen} suite trace(s)")
}

/// The benchmark artifacts `bench trend` looks for in each directory.
const TREND_FILES: &[&str] = &[
    "BENCH_throughput.json",
    "BENCH_vm.json",
    "BENCH_trace.json",
    "BENCH_serve.json",
];

/// One comparable headline metric extracted from a benchmark artifact:
/// name, value, and whether larger values are better (throughput-like)
/// or worse (latency/density-like).
type TrendMetric = (String, f64, bool);

/// Extracts the headline metrics of a benchmark artifact for trend
/// comparison, dispatching on the `schema` field like [`bench_check`].
/// Returns an error for unknown schemas (the artifact may still be
/// valid for `bench check`; it just cannot be trended).
fn trend_metrics(doc: &dfcm_obs::json::Json) -> Result<Vec<TrendMetric>, String> {
    let mut metrics: Vec<TrendMetric> = Vec::new();
    match doc.get("schema").and_then(|v| v.as_str()) {
        Some("dfcm-bench-throughput/v1") => {
            for entry in doc.get("results").and_then(|v| v.as_arr()).unwrap_or(&[]) {
                let (Some(kind), Some(path)) = (
                    entry.get("kind").and_then(|v| v.as_str()),
                    entry.get("path").and_then(|v| v.as_str()),
                ) else {
                    continue;
                };
                if let Some(v) = entry.get("predictions_per_sec").and_then(|v| v.as_f64()) {
                    metrics.push((format!("{kind}[{path}] predictions_per_sec"), v, true));
                }
            }
            if let Some(v) = doc
                .get("aggregate")
                .and_then(|a| a.get("speedup"))
                .and_then(|v| v.as_f64())
            {
                metrics.push(("aggregate.speedup".into(), v, true));
            }
        }
        Some("dfcm-bench-vm/v1") => {
            for entry in doc.get("kernels").and_then(|v| v.as_arr()).unwrap_or(&[]) {
                let Some(kernel) = entry.get("kernel").and_then(|v| v.as_str()) else {
                    continue;
                };
                for key in ["fast_ips", "speedup"] {
                    if let Some(v) = entry.get(key).and_then(|v| v.as_f64()) {
                        metrics.push((format!("{kernel}.{key}"), v, true));
                    }
                }
            }
            if let Some(v) = doc
                .get("aggregate")
                .and_then(|a| a.get("geomean_speedup"))
                .and_then(|v| v.as_f64())
            {
                metrics.push(("aggregate.geomean_speedup".into(), v, true));
            }
        }
        Some("dfcm-bench-trace/v1") => {
            for entry in doc.get("suite").and_then(|v| v.as_arr()).unwrap_or(&[]) {
                let Some(name) = entry.get("name").and_then(|v| v.as_str()) else {
                    continue;
                };
                if let Some(v) = entry.get("v3_bits_record").and_then(|v| v.as_f64()) {
                    // Density: fewer bits per record is better.
                    metrics.push((format!("{name}.v3_bits_record"), v, false));
                }
            }
            if let Some(agg) = doc.get("aggregate") {
                if let Some(v) = agg.get("v3_bits_record").and_then(|v| v.as_f64()) {
                    metrics.push(("aggregate.v3_bits_record".into(), v, false));
                }
                for key in ["v2_stream_pred_s", "v3_stream_pred_s"] {
                    if let Some(v) = agg.get(key).and_then(|v| v.as_f64()) {
                        metrics.push((format!("aggregate.{key}"), v, true));
                    }
                }
            }
        }
        Some("dfcm-bench-serve/v1") => {
            if let Some(v) = doc.get("throughput_rps").and_then(|v| v.as_f64()) {
                metrics.push(("throughput_rps".into(), v, true));
            }
            for key in ["p50_us", "p99_us"] {
                if let Some(v) = doc.get(key).and_then(|v| v.as_f64()) {
                    // Latency: lower is better.
                    metrics.push((key.into(), v, false));
                }
            }
        }
        Some(other) => return Err(format!("unknown schema `{other}`")),
        None => return Err("missing string field `schema`".into()),
    }
    Ok(metrics)
}

/// `bench trend --baseline <dir> [--current <dir>] [--threshold PCT]
/// [--report-only]` — the bench-trajectory regression gate: compares
/// the current benchmark artifacts ([`TREND_FILES`] in `current`)
/// against a committed baseline directory, metric by metric, and fails
/// on any headline metric that regressed beyond `threshold_percent`
/// (slower throughput, higher latency, denser-than-before traces).
///
/// Artifacts absent from the baseline are reported and skipped (no
/// baseline, nothing to gate — `BENCH_serve.json` is CI-only, for
/// example); an artifact present in the baseline but missing from the
/// current run is itself a regression. With `report_only`, regressions
/// are reported but the call still succeeds, for advisory CI steps on
/// noisy runners.
///
/// # Errors
///
/// Returns [`ToolError`] when no artifact could be compared, when an
/// artifact is unreadable or schema-less, or (without `report_only`)
/// when any metric regressed beyond the threshold.
pub fn bench_trend(
    current: &Path,
    baseline: &Path,
    threshold_percent: f64,
    report_only: bool,
) -> Result<String, ToolError> {
    let mut out = format!(
        "bench trend: {} vs baseline {} (threshold {threshold_percent}%)\n",
        current.display(),
        baseline.display()
    );
    let mut compared_files = 0usize;
    let mut compared_metrics = 0usize;
    let mut regressions: Vec<String> = Vec::new();
    for name in TREND_FILES {
        let base_path = baseline.join(name);
        let cur_path = current.join(name);
        match (base_path.is_file(), cur_path.is_file()) {
            (false, false) => continue,
            (false, true) => {
                let _ = writeln!(out, "{name}: no baseline — skipped (baseline candidate)");
                continue;
            }
            (true, false) => {
                regressions.push(format!(
                    "{name}: present in the baseline but missing from the current run"
                ));
                let _ = writeln!(out, "{name}: MISSING from current run");
                continue;
            }
            (true, true) => {}
        }
        let parse = |path: &Path| -> Result<Vec<TrendMetric>, ToolError> {
            let text = std::fs::read_to_string(path)
                .map_err(|e| err(format!("{}: {e}", path.display())))?;
            let doc = dfcm_obs::json::parse(&text)
                .map_err(|e| err(format!("{}: malformed JSON: {e}", path.display())))?;
            trend_metrics(&doc).map_err(|e| err(format!("{}: {e}", path.display())))
        };
        let base_metrics = parse(&base_path)?;
        let cur_metrics = parse(&cur_path)?;
        compared_files += 1;
        let _ = writeln!(out, "{name}:");
        for (metric, base_value, higher_is_better) in &base_metrics {
            let Some((_, cur_value, _)) = cur_metrics.iter().find(|(m, _, _)| m == metric) else {
                regressions.push(format!(
                    "{name}: metric `{metric}` missing from current run"
                ));
                let _ = writeln!(out, "  {metric:<44} MISSING from current run");
                continue;
            };
            if !(base_value.is_finite() && base_value.abs() > f64::EPSILON) {
                continue;
            }
            compared_metrics += 1;
            let delta_pct = (cur_value - base_value) / base_value * 100.0;
            let regressed = if *higher_is_better {
                delta_pct < -threshold_percent
            } else {
                delta_pct > threshold_percent
            };
            let status = if regressed {
                regressions.push(format!(
                    "{name}: `{metric}` {base_value:.3} -> {cur_value:.3} \
                     ({delta_pct:+.1}%, {} is worse)",
                    if *higher_is_better { "lower" } else { "higher" }
                ));
                "REGRESSED"
            } else {
                "ok"
            };
            let _ = writeln!(
                out,
                "  {metric:<44} {base_value:>14.3} -> {cur_value:>14.3}  {delta_pct:+7.1}%  {status}"
            );
        }
    }
    if compared_files == 0 && regressions.is_empty() {
        return Err(err(format!(
            "no benchmark artifacts to compare (looked for {} under {} and {})",
            TREND_FILES.join(", "),
            current.display(),
            baseline.display()
        )));
    }
    let _ = writeln!(
        out,
        "{compared_metrics} metric(s) across {compared_files} artifact(s), \
         {} regression(s) beyond {threshold_percent}%",
        regressions.len()
    );
    if regressions.is_empty() {
        return Ok(out);
    }
    if report_only {
        let _ = writeln!(out, "report-only: regressions reported, not enforced");
        return Ok(out);
    }
    Err(err(format!(
        "{out}error: {} benchmark metric(s) regressed beyond {threshold_percent}%:\n  {}",
        regressions.len(),
        regressions.join("\n  ")
    )))
}

/// Options for the `serve` subcommand.
#[derive(Debug, Clone)]
pub struct ServeOpts {
    /// Listen address (`host:port`; port 0 picks a free one).
    pub addr: String,
    /// Predictor spec for new sessions (`lvp:B | stride:B | 2delta:B |
    /// fcm:L1:L2 | dfcm:L1:L2`).
    pub spec: String,
    /// Snapshot file: restored at startup, written on graceful shutdown.
    pub snapshot: Option<PathBuf>,
    /// Resource and robustness limits.
    pub limits: dfcm_serve::ServeLimits,
}

impl ServeOpts {
    /// Defaults for serving `spec` on `addr`, no snapshot.
    pub fn new(addr: &str, spec: &str) -> Self {
        ServeOpts {
            addr: addr.to_owned(),
            spec: spec.to_owned(),
            snapshot: None,
            limits: dfcm_serve::ServeLimits::default(),
        }
    }
}

/// `serve <addr> <predictor> [--snapshot FILE] [--max-sessions N]
/// [--workers N] [--queue N] [--deadline-ms N] [--idle-ms N]` — runs the
/// prediction daemon until `SIGTERM`/`SIGINT`, then drains, snapshots
/// and returns a shutdown summary.
///
/// Prints a `listening on <addr>` line to stdout once the socket is
/// bound, so scripts can wait for readiness.
///
/// # Errors
///
/// Returns [`ToolError`] when the address cannot be bound, the spec does
/// not parse, or the serving loop fails.
pub fn serve(opts: &ServeOpts) -> Result<String, ToolError> {
    let mut config = dfcm_serve::ServeConfig::new(&opts.spec);
    config.limits = opts.limits.clone();
    config.snapshot_path = opts.snapshot.clone();
    config.obs = dfcm_obs::Obs::enabled();
    let server = dfcm_serve::Server::bind(opts.addr.as_str(), config)
        .map_err(|e| err(format!("{}: {e}", opts.addr)))?;
    let addr = server
        .local_addr()
        .map_err(|e| err(format!("{}: {e}", opts.addr)))?;
    println!("dfcm-serve listening on {addr} ({})", opts.spec);

    dfcm_serve::install_shutdown_signals();
    let handle = server.handle();
    let done = Arc::new(AtomicBool::new(false));
    let watcher = {
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            while !done.load(Ordering::Relaxed) {
                if dfcm_serve::shutdown_requested() {
                    handle.shutdown();
                    break;
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        })
    };
    let result = server.run();
    done.store(true, Ordering::Relaxed);
    let _ = watcher.join();
    let report = result.map_err(|e| err(e.to_string()))?;
    Ok(format!(
        "dfcm-serve stopped: {} session(s) snapshotted ({} bytes), {} restored at startup",
        report.sessions, report.snapshot_bytes, report.restored
    ))
}

/// Options for the `loadgen` subcommand.
#[derive(Debug, Clone)]
pub struct LoadGenOpts {
    /// Daemon address to load.
    pub addr: String,
    /// Concurrent client sessions.
    pub clients: usize,
    /// Predictor spec the daemon serves (the shadow predictors must
    /// match it for verification to be meaningful).
    pub spec: String,
    /// First session id; client `i` uses `session_base + i`.
    pub session_base: u64,
    /// Fault-injection spec `SEED[:PANIC[:TRANSIENT[:DELAY]]]` (permille
    /// rates, as for `eval --inject-faults`); `None` for a clean run.
    pub faults: Option<String>,
    /// With `true`, unacknowledged requests fail the command (corrupted
    /// acknowledgements always do).
    pub strict: bool,
    /// Write the `dfcm-bench-serve/v1` artifact here.
    pub bench_out: Option<PathBuf>,
    /// Write the latency histogram as JSONL here.
    pub hist_out: Option<PathBuf>,
}

impl LoadGenOpts {
    /// A clean 4-client run against `addr`.
    pub fn new(addr: &str, spec: &str) -> Self {
        LoadGenOpts {
            addr: addr.to_owned(),
            clients: 4,
            spec: spec.to_owned(),
            session_base: 1,
            faults: None,
            strict: false,
            bench_out: None,
            hist_out: None,
        }
    }
}

/// `loadgen <trace.trc> <addr> <predictor> [--clients N]
/// [--session-base N] [--inject-faults SEED[:P[:T[:D]]]] [--strict]
/// [--bench-out FILE] [--hist-out FILE]` — replays a saved trace against
/// a running daemon with shadow-predictor verification and optional
/// deterministic chaos, and reports throughput and latency percentiles.
///
/// # Errors
///
/// Returns [`ToolError`] when the trace, address, spec or fault plan is
/// invalid, when an output file cannot be written, when any
/// acknowledged reply contradicted the shadow predictor, or (with
/// `strict`) when any request went unacknowledged.
pub fn loadgen(trace_path: &Path, opts: &LoadGenOpts) -> Result<String, ToolError> {
    let trace =
        Trace::load(trace_path).map_err(|e| err(format!("{}: {e}", trace_path.display())))?;
    let addr: SocketAddr = opts
        .addr
        .to_socket_addrs()
        .map_err(|e| err(format!("{}: {e}", opts.addr)))?
        .next()
        .ok_or_else(|| err(format!("{}: no usable address", opts.addr)))?;
    let mut config = dfcm_serve::LoadGenConfig::new(addr, opts.clients, &opts.spec);
    config.session_base = opts.session_base;
    if let Some(spec) = &opts.faults {
        config.faults = Some(dfcm_sim::FaultPlan::parse(spec).map_err(err)?);
    }
    let report = dfcm_serve::run_loadgen(&config, &trace).map_err(err)?;

    if let Some(path) = &opts.bench_out {
        let mut json = dfcm_serve::bench_json(&report);
        json.push('\n');
        std::fs::write(path, json).map_err(|e| err(format!("{}: {e}", path.display())))?;
    }
    if let Some(path) = &opts.hist_out {
        let mut lines = dfcm_serve::histogram_jsonl(&report).join("\n");
        lines.push('\n');
        std::fs::write(path, lines).map_err(|e| err(format!("{}: {e}", path.display())))?;
    }

    let mut out = format!(
        "loadgen: {} client(s) x {} record(s) against {addr} ({})\n",
        report.clients,
        trace.len(),
        opts.spec
    );
    let _ = writeln!(
        out,
        "  acked {}/{} (failed {}, corrupted {}, verified {})",
        report.acked, report.requests, report.failed, report.corrupted, report.verified
    );
    let _ = writeln!(
        out,
        "  {:.1} req/s over {:.3}s; latency p50 {}us p99 {}us max {}us",
        report.throughput_rps,
        report.elapsed.as_secs_f64(),
        report.p50_us,
        report.p99_us,
        report.max_us
    );
    if report.corrupted > 0 {
        return Err(err(format!(
            "{out}error: {} acknowledged repl(ies) contradicted the shadow predictor",
            report.corrupted
        )));
    }
    if opts.strict && report.failed > 0 {
        return Err(err(format!(
            "{out}error: {} request(s) unacknowledged under --strict",
            report.failed
        )));
    }
    Ok(out)
}

/// `scrape <addr>` — fetches a running daemon's metrics as Prometheus
/// text over the stats frame: rolling-window request-latency quantiles,
/// live per-spec session counts, and — when the daemon runs
/// instrumented — its full obs registry. Read-only and safe to call
/// while the daemon is under load.
///
/// # Errors
///
/// Returns [`ToolError`] when the address does not resolve or the
/// daemon cannot be reached.
pub fn scrape(addr: &str) -> Result<String, ToolError> {
    let addr: SocketAddr = addr
        .to_socket_addrs()
        .map_err(|e| err(format!("{addr}: {e}")))?
        .next()
        .ok_or_else(|| err(format!("{addr}: no usable address")))?;
    // Session 0 is never driven by clients, and the stats frame touches
    // no session state anyway.
    let mut client = dfcm_serve::ServeClient::new(
        addr,
        0,
        dfcm_sim::engine::RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_millis(500),
        },
    );
    client.stats().map_err(|e| err(format!("{addr}: {e}")))
}

/// `disasm <kernel>` — assembly listing of a bundled kernel (assembled and
/// disassembled, so what is printed is exactly what executes).
///
/// # Errors
///
/// Returns [`ToolError`] for unknown kernel names.
pub fn disasm(kernel: &str) -> Result<String, ToolError> {
    let src = programs::by_name(kernel).ok_or_else(|| {
        err(format!(
            "unknown kernel `{kernel}` (see `dfcm-tools kernels`)"
        ))
    })?;
    let program = assemble(src).map_err(|e| err(format!("{kernel}: {e}")))?;
    Ok(disassemble(&program))
}

/// `profile <kernel> [max_steps]` — executes a kernel and prints its
/// execution profile.
///
/// # Errors
///
/// Returns [`ToolError`] for unknown kernels or faulting runs.
pub fn profile(kernel: &str, max_steps: u64) -> Result<String, ToolError> {
    let src = programs::by_name(kernel).ok_or_else(|| err(format!("unknown kernel `{kernel}`")))?;
    let mut vm = Vm::new(assemble(src).map_err(|e| err(format!("{kernel}: {e}")))?);
    let profile = dfcm_vm::profile::run_profiled(&mut vm, max_steps)
        .map_err(|e| err(format!("{kernel}: {e}")))?;
    let mut out = format!("{kernel}:\n{profile}\n");
    let _ = writeln!(out, "\n  hottest static instructions:");
    for (index, count) in profile.hottest(5) {
        let inst = vm
            .inst_at(index)
            .map(|i| dfcm_vm::render_inst(&i))
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "    {:#08x}  {count:>10}x  {inst}",
            dfcm_vm::profile::pc_of_index(index)
        );
    }
    Ok(out)
}

/// `vm profile <kernel> [max_steps]` — the fast-tier planning view of a
/// kernel: the per-opcode execution histogram and the hot adjacent-pair
/// histogram from the profiling pass, with each pair classified against
/// the superinstruction patterns ([`classify_pair`]). This is the data
/// the fast tier's fusion selection runs on — the report shows *why* the
/// fusion set is what it is.
///
/// # Errors
///
/// Returns [`ToolError`] for unknown kernels or faulting runs.
pub fn vm_profile(kernel: &str, max_steps: u64) -> Result<String, ToolError> {
    let src = programs::by_name(kernel).ok_or_else(|| err(format!("unknown kernel `{kernel}`")))?;
    let mut vm = Vm::new(assemble(src).map_err(|e| err(format!("{kernel}: {e}")))?);
    let profile = dfcm_vm::profile::run_profiled(&mut vm, max_steps)
        .map_err(|e| err(format!("{kernel}: {e}")))?;

    let mut out = format!("{kernel}: {} instruction(s) profiled\n", profile.total);
    let _ = writeln!(out, "\n  per-opcode histogram:");
    for (mnemonic, count) in profile.mnemonic_counts() {
        let _ = writeln!(
            out,
            "    {mnemonic:<6} {count:>10}x  {:5.1}%",
            100.0 * count as f64 / profile.total.max(1) as f64
        );
    }

    let _ = writeln!(out, "\n  hot adjacent pairs (fusion candidates marked):");
    let mut fusible_dynamic = 0u64;
    for ((a, b), count) in profile.hot_pairs(10) {
        let (Some(fst), Some(snd)) = (vm.inst_at(a), vm.inst_at(b)) else {
            continue;
        };
        let kind = classify_pair(fst, snd);
        if kind.is_some() {
            fusible_dynamic += count;
        }
        let _ = writeln!(
            out,
            "    {:#08x}  {count:>10}x  {} ; {}{}",
            dfcm_vm::profile::pc_of_index(a),
            dfcm_vm::render_inst(&fst),
            dfcm_vm::render_inst(&snd),
            kind.map(|k| format!("  [{}]", k.label()))
                .unwrap_or_default()
        );
    }
    let _ = writeln!(
        out,
        "\n  {:.1}% of profiled instructions sit in a top-10 pair matching a \
         superinstruction pattern",
        100.0 * (2 * fusible_dynamic) as f64 / profile.total.max(1) as f64
    );
    Ok(out)
}

/// `kernels` — the bundled kernel names.
pub fn kernels() -> String {
    programs::all()
        .iter()
        .map(|&(n, _)| n)
        .collect::<Vec<_>>()
        .join("\n")
}

/// `benchmarks` — the synthetic benchmark names.
pub fn benchmarks() -> String {
    standard_suite()
        .iter()
        .map(|b| b.name())
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictor_specs_parse() {
        assert!(predictor_for("lvp:10").is_ok());
        assert!(predictor_for("stride:10").is_ok());
        assert!(predictor_for("2delta:10").is_ok());
        assert!(predictor_for("fcm:12:12").is_ok());
        assert!(predictor_for("dfcm:16:12").is_ok());
        assert!(predictor_for("magic:3").is_err());
        assert!(predictor_for("fcm:12").is_err());
        assert!(predictor_for("dfcm:99:12").is_err());
        assert!(predictor_for("dfcm:a:12").is_err());
    }

    #[test]
    fn stream_predictor_specs_parse() {
        for spec in [
            "lvp:10",
            "stride:10",
            "2delta:10",
            "fcm:12:12",
            "dfcm:16:12",
        ] {
            let lane = stream_predictor_for(spec).unwrap();
            // The lane reports the same name/cost as the dyn-path build.
            let boxed = predictor_for(spec).unwrap();
            assert_eq!(lane.name(), boxed.name());
            assert_eq!(lane.storage().total_bits(), boxed.storage().total_bits());
        }
        assert!(stream_predictor_for("magic:3").is_err());
        assert!(stream_predictor_for("fcm:12").is_err());
    }

    #[test]
    fn eval_streaming_reports_same_lines_as_eval() {
        let dir = std::env::temp_dir().join("dfcm_tools_stream_eval_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("li.trc");
        generate("li", 4000, &path, 7).unwrap();
        let specs: Vec<String> = ["lvp:8", "stride:8", "fcm:8:10", "dfcm:8:10"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let engine = EngineConfig::default();
        let (classic, _) = eval(&path, &specs, &engine).unwrap();
        let (streamed, report) = eval_streaming(&path, &specs, &engine).unwrap();
        // Identical per-spec result lines (headers differ), in spec order.
        let body = |s: &str| s.lines().skip(1).map(str::to_owned).collect::<Vec<_>>();
        assert_eq!(body(&streamed), body(&classic));
        assert!(report.all_ok());
        // One task, records = trace.len() × lanes.
        assert_eq!(report.tasks.len(), 1);
        assert_eq!(report.tasks[0].records, 4000 * 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eval_streaming_rejects_bad_specs_before_running() {
        let dir = std::env::temp_dir().join("dfcm_tools_stream_badspec_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.trc");
        generate("li", 100, &path, 1).unwrap();
        let e = eval_streaming(&path, &["nope:1".to_owned()], &EngineConfig::default());
        assert!(e.is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn bench_doc(speedup: f64) -> String {
        let result = |kind: &str, path: &str| {
            format!(
                r#"{{"predictor":"{kind}(2^16)","kind":"{kind}","path":"{path}","records":100000,"seconds":0.5,"predictions_per_sec":200000.0}}"#
            )
        };
        let results: Vec<String> = ["lvp", "stride", "fcm", "dfcm"]
            .iter()
            .flat_map(|k| [result(k, "dyn"), result(k, "stream")])
            .collect();
        format!(
            r#"{{"schema":"dfcm-bench-throughput/v1","mode":"quick","records":100000,
               "machine":{{"os":"linux","arch":"x86_64","threads":8}},
               "results":[{}],
               "aggregate":{{"configs":16,"baseline_dyn_seconds":2.0,"stream_seconds":0.5,"speedup":{speedup}}}}}"#,
            results.join(",")
        )
    }

    #[test]
    fn bench_check_accepts_valid_artifact() {
        let path = std::env::temp_dir().join("dfcm_tools_bench_ok.json");
        std::fs::write(&path, bench_doc(4.0)).unwrap();
        let out = bench_check(&path).unwrap();
        assert!(out.contains("OK"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bench_check_rejects_schema_violations() {
        let dir = std::env::temp_dir().join("dfcm_tools_bench_bad");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // Inconsistent speedup.
        let p1 = dir.join("speedup.json");
        std::fs::write(&p1, bench_doc(9.0)).unwrap();
        assert!(bench_check(&p1)
            .unwrap_err()
            .to_string()
            .contains("speedup"));
        // Missing stream coverage for dfcm.
        let p2 = dir.join("coverage.json");
        std::fs::write(
            &p2,
            bench_doc(4.0).replace(
                r#""kind":"dfcm","path":"stream""#,
                r#""kind":"dfcm","path":"dyn""#,
            ),
        )
        .unwrap();
        assert!(bench_check(&p2).unwrap_err().to_string().contains("dfcm"));
        // Not JSON at all.
        let p3 = dir.join("garbage.json");
        std::fs::write(&p3, "not json").unwrap();
        assert!(bench_check(&p3).is_err());
        // Wrong schema tag.
        let p4 = dir.join("tag.json");
        std::fs::write(
            &p4,
            bench_doc(4.0).replace("throughput/v1", "throughput/v9"),
        )
        .unwrap();
        assert!(bench_check(&p4).unwrap_err().to_string().contains("schema"));
        // Missing sweep config count.
        let p5 = dir.join("configs.json");
        std::fs::write(&p5, bench_doc(4.0).replace(r#""configs":16,"#, "")).unwrap();
        assert!(bench_check(&p5)
            .unwrap_err()
            .to_string()
            .contains("configs"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn serve_bench_doc() -> String {
        r#"{"schema":"dfcm-bench-serve/v1","clients":2,"requests":400,
            "acked":400,"failed":0,"corrupted":0,"verified":400,
            "elapsed_s":0.5,"throughput_rps":800.0,
            "p50_us":40,"p99_us":900,"max_us":1500}"#
            .to_owned()
    }

    #[test]
    fn bench_check_accepts_valid_serve_artifact() {
        let path = std::env::temp_dir().join("dfcm_tools_bench_serve_ok.json");
        std::fs::write(&path, serve_bench_doc()).unwrap();
        let out = bench_check(&path).unwrap();
        assert!(out.contains("OK"), "{out}");
        assert!(out.contains("dfcm-bench-serve/v1"), "{out}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bench_check_rejects_serve_schema_violations() {
        let dir = std::env::temp_dir().join("dfcm_tools_bench_serve_bad");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let reject = |name: &str, doc: String, needle: &str| {
            let path = dir.join(name);
            std::fs::write(&path, doc).unwrap();
            let msg = bench_check(&path).unwrap_err().to_string();
            assert!(msg.contains(needle), "{name}: {msg}");
        };
        // A corrupted acknowledgement is a hard failure.
        reject(
            "corrupted.json",
            serve_bench_doc().replace(r#""corrupted":0"#, r#""corrupted":1"#),
            "corrupted",
        );
        // Requests must be fully accounted for by acked + failed.
        reject(
            "unaccounted.json",
            serve_bench_doc().replace(r#""acked":400"#, r#""acked":399"#),
            "unaccounted",
        );
        // Percentiles must be ordered.
        reject(
            "percentiles.json",
            serve_bench_doc().replace(r#""p50_us":40"#, r#""p50_us":4000"#),
            "out of order",
        );
        // Verification cannot exceed acknowledgements.
        reject(
            "verified.json",
            serve_bench_doc().replace(r#""verified":400"#, r#""verified":401"#),
            "exceeds",
        );
        // Missing counter field.
        reject(
            "missing.json",
            serve_bench_doc().replace(r#""failed":0,"#, ""),
            "failed",
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn vm_bench_doc() -> String {
        let kernels: Vec<String> = dfcm_vm::programs::all()
            .into_iter()
            .map(|(name, _)| {
                format!(
                    r#"{{"kernel":"{name}","instructions":500000,
                        "interp_seconds":0.8,"interp_ips":625000.0,
                        "fast_seconds":0.05,"fast_ips":10000000.0,"speedup":16.0,
                        "fused_fraction":0.4,"replay_fraction":0.9}}"#
                )
            })
            .collect();
        format!(
            r#"{{"schema":"dfcm-bench-vm/v1","mode":"quick","records":500000,
               "machine":{{"os":"linux","arch":"x86_64","threads":8}},
               "equivalent":true,
               "kernels":[{}],
               "aggregate":{{"kernels":{},"min_speedup":16.0,"geomean_speedup":16.0,"max_speedup":16.0}}}}"#,
            kernels.join(","),
            dfcm_vm::programs::all().len()
        )
    }

    #[test]
    fn bench_check_accepts_valid_vm_artifact() {
        let path = std::env::temp_dir().join("dfcm_tools_bench_vm_ok.json");
        // Unknown fields must be ignored, like the other validators.
        let doc = vm_bench_doc().replace(
            r#""mode":"quick""#,
            r#""mode":"quick","future_field":{"nested":1}"#,
        );
        std::fs::write(&path, doc).unwrap();
        let out = bench_check(&path).unwrap();
        assert!(out.contains("OK"), "{out}");
        assert!(out.contains("dfcm-bench-vm/v1"), "{out}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bench_check_rejects_vm_schema_violations() {
        let dir = std::env::temp_dir().join("dfcm_tools_bench_vm_bad");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let reject = |name: &str, doc: String, needle: &str| {
            let path = dir.join(name);
            std::fs::write(&path, doc).unwrap();
            let msg = bench_check(&path).unwrap_err().to_string();
            assert!(msg.contains(needle), "{name}: {msg}");
        };
        // A bundled kernel dropped from the artifact.
        reject(
            "missing_kernel.json",
            vm_bench_doc().replace(r#""kernel":"sieve""#, r#""kernel":"sievex""#),
            "`sieve` missing",
        );
        // Non-equivalent tiers invalidate the whole measurement.
        reject(
            "divergent.json",
            vm_bench_doc().replace(r#""equivalent":true"#, r#""equivalent":false"#),
            "different traces",
        );
        // Rates must be positive.
        reject(
            "rate.json",
            vm_bench_doc().replace(r#""fast_ips":10000000.0"#, r#""fast_ips":0.0"#),
            "fast_ips",
        );
        // Speedup must match the measured seconds.
        reject(
            "speedup.json",
            vm_bench_doc().replace(r#""speedup":16.0"#, r#""speedup":2.0"#),
            "inconsistent",
        );
        // Fractions live in [0, 1].
        reject(
            "fraction.json",
            vm_bench_doc().replace(r#""replay_fraction":0.9"#, r#""replay_fraction":1.5"#),
            "replay_fraction",
        );
        // Aggregate speedups must be ordered.
        reject(
            "aggregate.json",
            vm_bench_doc().replace(r#""min_speedup":16.0"#, r#""min_speedup":99.0"#),
            "ordered",
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn trace_bench_doc() -> String {
        r#"{"schema":"dfcm-bench-trace/v1","mode":"quick","records":640000,
           "machine":{"os":"linux","arch":"x86_64","threads":8},
           "suite":[
             {"name":"cc1","records":80000,"v2_bytes":350000,"v3_bytes":120000,
              "v2_bits_record":35.0,"v3_bits_record":12.0,
              "encode_mb_s":60.0,"decode_mb_s":150.0},
             {"name":"li","records":80000,"v2_bytes":340000,"v3_bytes":100000,
              "v2_bits_record":34.0,"v3_bits_record":10.0,
              "encode_mb_s":70.0,"decode_mb_s":180.0}],
           "aggregate":{"v2_bits_record":34.5,"v3_bits_record":11.0,
             "ratio_vs_v2":3.136,"encode_mb_s":65.0,"decode_mb_s":165.0,
             "v2_stream_pred_s":23000000.0,"v3_stream_pred_s":10000000.0,
             "stream_ratio":0.435,"stream_threads":4}}"#
            .to_owned()
    }

    #[test]
    fn bench_check_accepts_valid_trace_artifact() {
        let path = std::env::temp_dir().join("dfcm_tools_bench_trace_ok.json");
        // Unknown fields must be ignored, like the other validators.
        let doc = trace_bench_doc().replace(
            r#""mode":"quick""#,
            r#""mode":"quick","future_field":{"nested":1}"#,
        );
        std::fs::write(&path, doc).unwrap();
        let out = bench_check(&path).unwrap();
        assert!(out.contains("OK"), "{out}");
        assert!(
            out.contains("dfcm-bench-trace/v1, 2 suite trace(s)"),
            "{out}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bench_check_rejects_trace_schema_violations() {
        let dir = std::env::temp_dir().join("dfcm_tools_bench_trace_bad");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let reject = |name: &str, doc: String, needle: &str| {
            let path = dir.join(name);
            std::fs::write(&path, doc).unwrap();
            let msg = bench_check(&path).unwrap_err().to_string();
            assert!(msg.contains(needle), "{name}: {msg}");
        };
        // A suite trace over the per-benchmark density gate.
        reject(
            "suite_density.json",
            trace_bench_doc().replace(r#""v3_bits_record":12.0"#, r#""v3_bits_record":17.0"#),
            "density gate",
        );
        // Aggregate density over its (tighter) gate. Keep ratio_vs_v2
        // consistent so only the gate itself fires.
        reject(
            "agg_density.json",
            trace_bench_doc()
                .replace(r#""v3_bits_record":11.0"#, r#""v3_bits_record":13.0"#)
                .replace(r#""ratio_vs_v2":3.136"#, r#""ratio_vs_v2":2.654"#),
            "density gate",
        );
        // Aggregate compression ratio under the 2x floor.
        reject(
            "ratio_floor.json",
            trace_bench_doc()
                .replace(r#""v2_bits_record":34.5"#, r#""v2_bits_record":12.0"#)
                .replace(r#""ratio_vs_v2":3.136"#, r#""ratio_vs_v2":1.091"#),
            "compression gate",
        );
        // Ratio inconsistent with its own density fields.
        reject(
            "ratio_consistency.json",
            trace_bench_doc().replace(r#""ratio_vs_v2":3.136"#, r#""ratio_vs_v2":9.0"#),
            "inconsistent",
        );
        // Stream ratio inconsistent with the measured rates.
        reject(
            "stream_consistency.json",
            trace_bench_doc().replace(r#""stream_ratio":0.435"#, r#""stream_ratio":2.0"#),
            "inconsistent",
        );
        // Rates must be positive.
        reject(
            "rate.json",
            trace_bench_doc().replace(r#""decode_mb_s":150.0"#, r#""decode_mb_s":0.0"#),
            "decode_mb_s",
        );
        // Missing suite array.
        reject(
            "no_suite.json",
            {
                let doc = trace_bench_doc();
                let start = doc.find(r#""suite":["#).unwrap();
                let end = doc.find(r#"],"#).unwrap() + 2;
                format!("{}{}", &doc[..start], &doc[end..])
            },
            "suite",
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn vm_profile_reports_opcode_and_pair_histograms() {
        let out = vm_profile("sieve", 200_000).unwrap();
        assert!(out.contains("instruction(s) profiled"), "{out}");
        // Loop-dominated kernels must surface at least one fusible pair.
        assert!(
            out.contains("compare+branch") || out.contains("load+"),
            "{out}"
        );
        assert!(out.contains("superinstruction pattern"), "{out}");
        assert!(vm_profile("nope", 1_000).is_err());
    }

    #[test]
    fn loadgen_artifacts_pass_bench_check() {
        let dir = std::env::temp_dir().join("dfcm_tools_loadgen_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("load.trc");
        generate("li", 300, &trace_path, 3).unwrap();

        let server =
            dfcm_serve::Server::bind("127.0.0.1:0", dfcm_serve::ServeConfig::new("dfcm:6:8"))
                .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run().unwrap());

        let mut opts = LoadGenOpts::new(&addr.to_string(), "dfcm:6:8");
        opts.clients = 2;
        opts.strict = true;
        opts.bench_out = Some(dir.join("BENCH_serve.json"));
        opts.hist_out = Some(dir.join("latency_hist.jsonl"));
        let out = loadgen(&trace_path, &opts).unwrap();
        assert!(out.contains("acked 600/600"), "{out}");

        // The emitted artifact validates, and the histogram is JSONL.
        let checked = bench_check(&dir.join("BENCH_serve.json")).unwrap();
        assert!(checked.contains("dfcm-bench-serve/v1"), "{checked}");
        let hist = std::fs::read_to_string(dir.join("latency_hist.jsonl")).unwrap();
        assert!(hist.lines().count() > 1);
        for line in hist.lines() {
            dfcm_obs::json::parse(line).unwrap();
        }

        handle.shutdown();
        join.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn obs_report_renders_and_reconciles() {
        let dir = std::env::temp_dir().join("dfcm_tools_obs_report_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("li.trc");
        generate("li", 3000, &path, 5).unwrap();
        let specs: Vec<String> = ["dfcm:8:10", "lvp:8"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let engine = EngineConfig {
            obs: dfcm_obs::Obs::enabled(),
            ..EngineConfig::default()
        };
        let (_, report) = eval(&path, &specs, &engine).unwrap();
        assert!(report.all_ok());
        let obs_dir = dir.join("obs");
        engine.obs.write_exports(&obs_dir).unwrap();

        let out = obs_report(&obs_dir, true).unwrap();
        assert!(out.contains("dfcm:8:10"), "{out}");
        assert!(out.contains("lvp:8"), "{out}");
        assert!(out.contains("accuracy"), "{out}");
        assert!(out.contains("hard-to-predict"), "{out}");
        assert!(
            out.contains("reconcile with the aggregate exports"),
            "{out}"
        );

        // --check catches a tampered series: bump one window's correct
        // count so accuracy and the footer stop reconciling.
        let series_path = obs_dir.join(dfcm_obs::timeseries::SERIES_FILE);
        let text = std::fs::read_to_string(&series_path).unwrap();
        let tampered = text.replacen(r#""correct":"#, r#""correct":1"#, 2);
        assert_ne!(text, tampered);
        std::fs::write(&series_path, tampered).unwrap();
        assert!(obs_report(&obs_dir, true).is_err());
        // Without --check the report still renders.
        assert!(obs_report(&obs_dir, false).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn obs_report_missing_series_is_a_clear_error() {
        let dir = std::env::temp_dir().join("dfcm_tools_obs_report_missing");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let msg = obs_report(&dir, false).unwrap_err().to_string();
        assert!(msg.contains("series.jsonl"), "{msg}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn trend_dirs(tag: &str) -> (PathBuf, PathBuf) {
        let root = std::env::temp_dir().join(format!("dfcm_tools_trend_{tag}"));
        let _ = std::fs::remove_dir_all(&root);
        let current = root.join("current");
        let baseline = root.join("baseline");
        std::fs::create_dir_all(&current).unwrap();
        std::fs::create_dir_all(&baseline).unwrap();
        (current, baseline)
    }

    #[test]
    fn bench_trend_passes_on_identical_artifacts() {
        let (current, baseline) = trend_dirs("identical");
        for dir in [&current, &baseline] {
            std::fs::write(dir.join("BENCH_throughput.json"), bench_doc(4.0)).unwrap();
            std::fs::write(dir.join("BENCH_vm.json"), vm_bench_doc()).unwrap();
            std::fs::write(dir.join("BENCH_trace.json"), trace_bench_doc()).unwrap();
            std::fs::write(dir.join("BENCH_serve.json"), serve_bench_doc()).unwrap();
        }
        let out = bench_trend(&current, &baseline, 10.0, false).unwrap();
        assert!(out.contains("0 regression(s)"), "{out}");
        assert!(out.contains("4 artifact(s)"), "{out}");
        let _ = std::fs::remove_dir_all(current.parent().unwrap());
    }

    #[test]
    fn bench_trend_flags_injected_regressions_in_both_directions() {
        let (current, baseline) = trend_dirs("regressed");
        std::fs::write(baseline.join("BENCH_throughput.json"), bench_doc(4.0)).unwrap();
        // Throughput (higher-is-better) drops 40%.
        std::fs::write(
            current.join("BENCH_throughput.json"),
            bench_doc(4.0).replace(
                r#""predictions_per_sec":200000.0"#,
                r#""predictions_per_sec":120000.0"#,
            ),
        )
        .unwrap();
        // Trace density (lower-is-better) grows past the threshold.
        std::fs::write(baseline.join("BENCH_trace.json"), trace_bench_doc()).unwrap();
        std::fs::write(
            current.join("BENCH_trace.json"),
            trace_bench_doc().replace(r#""v3_bits_record":11.0"#, r#""v3_bits_record":13.0"#),
        )
        .unwrap();

        let msg = bench_trend(&current, &baseline, 10.0, false)
            .unwrap_err()
            .to_string();
        assert!(msg.contains("predictions_per_sec"), "{msg}");
        assert!(msg.contains("aggregate.v3_bits_record"), "{msg}");
        assert!(msg.contains("REGRESSED"), "{msg}");

        // Report-only mode reports the same regressions but succeeds.
        let out = bench_trend(&current, &baseline, 10.0, true).unwrap();
        assert!(out.contains("REGRESSED"), "{out}");
        assert!(out.contains("report-only"), "{out}");

        // A generous threshold absorbs the drift.
        assert!(bench_trend(&current, &baseline, 60.0, false).is_ok());
        let _ = std::fs::remove_dir_all(current.parent().unwrap());
    }

    #[test]
    fn bench_trend_tolerates_missing_baselines_but_not_missing_currents() {
        let (current, baseline) = trend_dirs("missing");
        // Serve artifact exists only in the current run: skipped, not a
        // failure (BENCH_serve.json is CI-only at the repo root).
        std::fs::write(current.join("BENCH_throughput.json"), bench_doc(4.0)).unwrap();
        std::fs::write(baseline.join("BENCH_throughput.json"), bench_doc(4.0)).unwrap();
        std::fs::write(current.join("BENCH_serve.json"), serve_bench_doc()).unwrap();
        let out = bench_trend(&current, &baseline, 10.0, false).unwrap();
        assert!(out.contains("no baseline"), "{out}");

        // An artifact that vanished from the current run is a regression.
        std::fs::write(baseline.join("BENCH_vm.json"), vm_bench_doc()).unwrap();
        let msg = bench_trend(&current, &baseline, 10.0, false)
            .unwrap_err()
            .to_string();
        assert!(msg.contains("missing from the current run"), "{msg}");
        assert!(bench_trend(&current, &baseline, 10.0, true).is_ok());

        // Nothing to compare at all is an error, not a silent pass.
        let (empty_cur, empty_base) = trend_dirs("empty");
        assert!(bench_trend(&empty_cur, &empty_base, 10.0, false).is_err());
        let _ = std::fs::remove_dir_all(current.parent().unwrap());
        let _ = std::fs::remove_dir_all(empty_cur.parent().unwrap());
    }

    #[test]
    fn scrape_returns_prometheus_text() {
        let server =
            dfcm_serve::Server::bind("127.0.0.1:0", dfcm_serve::ServeConfig::new("lvp:4")).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run().unwrap());
        let text = scrape(&addr.to_string()).unwrap();
        assert!(text.contains("serve_recent_window"), "{text}");
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn trace_for_accepts_both_tiers() {
        assert_eq!(trace_for("li", 500, 1).unwrap().len(), 500);
        assert_eq!(trace_for("sieve", 500, 1).unwrap().len(), 500);
        assert!(trace_for("nothing", 10, 1).is_err());
    }

    #[test]
    fn listings_are_nonempty() {
        assert!(kernels().contains("norm"));
        assert!(benchmarks().contains("vortex"));
    }

    #[test]
    fn disasm_output_reassembles() {
        let listing = disasm("queens").unwrap();
        assert!(dfcm_vm::assemble(&listing).is_ok());
        assert!(disasm("nope").is_err());
    }

    #[test]
    fn profile_reports_hot_spots() {
        let report = profile("sieve", 500_000).unwrap();
        assert!(report.contains("hottest"));
        assert!(report.contains("instructions executed"));
    }
}
