//! Regression tests for the binary's stream discipline: progress
//! chatter must go to stderr only, so `dfcm-tools eval ... > table.txt`
//! stays machine-consumable, and the `--obs` exports written by a real
//! binary invocation must pass `obs summarize --check`.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dfcm-tools"))
}

fn run(args: &[&str]) -> Output {
    let out = bin().args(args).output().expect("spawn dfcm-tools");
    assert!(
        out.status.success(),
        "dfcm-tools {args:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    out
}

fn temp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("dfcm_tools_progress_test");
    let _ = std::fs::create_dir_all(&dir);
    dir.join(name)
}

#[test]
fn eval_progress_stays_on_stderr_and_obs_exports_check_clean() {
    let trace = temp("li.trc");
    let obs_dir = temp("obs");
    run(&["gen", "li", "10000", trace.to_str().unwrap(), "--seed", "7"]);

    let out = run(&[
        "eval",
        trace.to_str().unwrap(),
        "dfcm:10:10",
        "fcm:10:10",
        "--threads",
        "2",
        "--progress",
        "--obs",
        obs_dir.to_str().unwrap(),
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);

    // Progress counters belong to stderr; stdout is the results table
    // and must stay clean enough to parse or redirect to a file.
    assert!(
        stderr.contains("tasks"),
        "expected progress on stderr, got: {stderr}"
    );
    assert!(
        !stdout.contains("[dfcm-sim engine]"),
        "progress leaked to stdout: {stdout}"
    );
    assert!(stdout.contains("accuracy"), "missing table: {stdout}");
    assert!(stdout.contains("dfcm(l1=2^10,l2=2^10"), "{stdout}");
    for line in stdout.lines() {
        assert!(!line.contains('\r'), "carriage return on stdout: {line:?}");
    }

    // The exports written by the real binary must be well-formed and
    // internally consistent (alias counters reconcile with accuracy).
    for file in ["events.jsonl", "trace.json", "metrics.prom"] {
        assert!(obs_dir.join(file).is_file(), "missing export {file}");
    }
    let check = run(&["obs", "summarize", obs_dir.to_str().unwrap(), "--check"]);
    let summary = String::from_utf8_lossy(&check.stdout);
    assert!(
        summary.contains("check: all exports well-formed and consistent"),
        "{summary}"
    );
    assert!(summary.contains("Aliasing breakdown"), "{summary}");

    let _ = std::fs::remove_file(&trace);
    let _ = std::fs::remove_dir_all(&obs_dir);
}

#[test]
fn eval_without_progress_keeps_stderr_silent() {
    let trace = temp("quiet.trc");
    run(&[
        "gen",
        "norm",
        "5000",
        trace.to_str().unwrap(),
        "--seed",
        "3",
    ]);
    let out = run(&[
        "eval",
        trace.to_str().unwrap(),
        "stride:10",
        "--threads",
        "1",
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.is_empty(), "unexpected stderr: {stderr}");
    let _ = std::fs::remove_file(&trace);
}
