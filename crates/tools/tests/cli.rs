//! End-to-end tests of the tool pipeline: generate → stats → eval, plus
//! disasm/profile, all through the library API the binary wraps.

use std::path::PathBuf;

fn temp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("dfcm_tools_test");
    let _ = std::fs::create_dir_all(&dir);
    dir.join(name)
}

#[test]
fn gen_stats_eval_pipeline() {
    let path = temp("li.trc");
    let message = dfcm_tools::generate("li", 20_000, &path, 7).unwrap();
    assert!(message.contains("20000 records"));

    let stats = dfcm_tools::stats(&path).unwrap();
    assert!(stats.contains("records              20000"), "{stats}");

    let (eval, report) = dfcm_tools::eval(
        &path,
        &["lvp:12".into(), "fcm:12:12".into(), "dfcm:12:12".into()],
        &dfcm_sim::EngineConfig::threads(2),
    )
    .unwrap();
    assert_eq!(report.tasks.len(), 3);
    assert_eq!(report.total_records(), 3 * 20_000);
    assert!(eval.contains("lvp(2^12)"), "{eval}");
    assert!(eval.contains("dfcm(l1=2^12,l2=2^12"), "{eval}");
    // The DFCM line should report the higher accuracy; parse and compare.
    let acc_of = |needle: &str| -> f64 {
        let line = eval.lines().find(|l| l.contains(needle)).expect("line");
        let idx = line.find("accuracy").expect("accuracy field");
        line[idx + 8..]
            .trim()
            .split(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap()
    };
    assert!(acc_of("dfcm(") > acc_of("fcm(l1"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn gen_accepts_vm_kernels() {
    let path = temp("sieve.trc");
    dfcm_tools::generate("sieve", 5_000, &path, 1).unwrap();
    let stats = dfcm_tools::stats(&path).unwrap();
    assert!(stats.contains("records              5000"), "{stats}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn gen_rejects_unknown_workload() {
    let path = temp("nope.trc");
    assert!(dfcm_tools::generate("nope", 10, &path, 1).is_err());
}

#[test]
fn eval_rejects_bad_spec_cleanly() {
    let path = temp("forspec.trc");
    dfcm_tools::generate("compress", 1_000, &path, 1).unwrap();
    let e = dfcm_tools::eval(
        &path,
        &["warlock:9".into()],
        &dfcm_sim::EngineConfig::default(),
    )
    .unwrap_err();
    assert!(e.to_string().contains("unknown predictor"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn stats_rejects_garbage_file() {
    let path = temp("garbage.trc");
    std::fs::write(&path, b"not a trace").unwrap();
    assert!(dfcm_tools::stats(&path).is_err());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn disasm_lists_whole_kernel() {
    let listing = dfcm_tools::disasm("norm").unwrap();
    assert!(
        listing.lines().count() > 50,
        "{} lines",
        listing.lines().count()
    );
    assert!(listing.contains("div"));
}
