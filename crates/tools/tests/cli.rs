//! End-to-end tests of the tool pipeline: generate → stats → eval, plus
//! disasm/profile, all through the library API the binary wraps.

use std::path::PathBuf;

fn temp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("dfcm_tools_test");
    let _ = std::fs::create_dir_all(&dir);
    dir.join(name)
}

#[test]
fn gen_stats_eval_pipeline() {
    let path = temp("li.trc");
    let message = dfcm_tools::generate("li", 20_000, &path, 7).unwrap();
    assert!(message.contains("20000 records"));

    let stats = dfcm_tools::stats(&path).unwrap();
    assert!(stats.contains("records              20000"), "{stats}");

    let (eval, report) = dfcm_tools::eval(
        &path,
        &["lvp:12".into(), "fcm:12:12".into(), "dfcm:12:12".into()],
        &dfcm_sim::EngineConfig::threads(2),
    )
    .unwrap();
    assert_eq!(report.tasks.len(), 3);
    assert_eq!(report.total_records(), 3 * 20_000);
    assert!(eval.contains("lvp(2^12)"), "{eval}");
    assert!(eval.contains("dfcm(l1=2^12,l2=2^12"), "{eval}");
    // The DFCM line should report the higher accuracy; parse and compare.
    let acc_of = |needle: &str| -> f64 {
        let line = eval.lines().find(|l| l.contains(needle)).expect("line");
        let idx = line.find("accuracy").expect("accuracy field");
        line[idx + 8..]
            .trim()
            .split(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap()
    };
    assert!(acc_of("dfcm(") > acc_of("fcm(l1"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn gen_accepts_vm_kernels() {
    let path = temp("sieve.trc");
    dfcm_tools::generate("sieve", 5_000, &path, 1).unwrap();
    let stats = dfcm_tools::stats(&path).unwrap();
    assert!(stats.contains("records              5000"), "{stats}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn gen_rejects_unknown_workload() {
    let path = temp("nope.trc");
    assert!(dfcm_tools::generate("nope", 10, &path, 1).is_err());
}

#[test]
fn eval_rejects_bad_spec_cleanly() {
    let path = temp("forspec.trc");
    dfcm_tools::generate("compress", 1_000, &path, 1).unwrap();
    let e = dfcm_tools::eval(
        &path,
        &["warlock:9".into()],
        &dfcm_sim::EngineConfig::default(),
    )
    .unwrap_err();
    assert!(e.to_string().contains("unknown predictor"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn stats_rejects_garbage_file() {
    let path = temp("garbage.trc");
    std::fs::write(&path, b"not a trace").unwrap();
    assert!(dfcm_tools::stats(&path).is_err());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn trace_verify_passes_and_inspect_describes_fresh_output() {
    let path = temp("verify_ok.trc");
    dfcm_tools::generate("go", 3_000, &path, 42).unwrap();

    let ok = dfcm_tools::trace_verify(&path).unwrap();
    assert!(ok.contains("OK"), "{ok}");
    assert!(ok.contains("3000 records"), "{ok}");

    let inspect = dfcm_tools::trace_inspect(&path).unwrap();
    assert!(inspect.contains("format            v2"), "{inspect}");
    assert!(inspect.contains("declared records  3000"), "{inspect}");
    assert!(inspect.contains("generator seed    42"), "{inspect}");
    assert!(inspect.contains("status            intact"), "{inspect}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corruption_drill_verify_fails_then_salvage_recovers() {
    // The full drill CI runs from the shell, in-process: generate a
    // 4-chunk trace, flip one payload byte deep in the file, watch
    // `verify` fail, `salvage` recover 3/4 chunks, and the salvaged
    // file verify clean.
    let path = temp("drill.trc");
    let out = temp("drill_salvaged.trc");
    dfcm_tools::generate("cc1", 200_000, &path, 9).unwrap();

    let mut bytes = std::fs::read(&path).unwrap();
    // Flip a byte ~75% in: inside the last chunk's payload, far from
    // the header and earlier chunks.
    let at = bytes.len() * 3 / 4;
    bytes[at] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();

    let e = dfcm_tools::trace_verify(&path).unwrap_err().to_string();
    assert!(e.contains("CORRUPT"), "{e}");

    let inspect = dfcm_tools::trace_inspect(&path).unwrap();
    assert!(inspect.contains("status            CORRUPT"), "{inspect}");

    let summary = dfcm_tools::trace_salvage(&path, &out).unwrap();
    assert!(summary.contains("3/4 chunks"), "{summary}");
    assert!(summary.contains("dropped chunk"), "{summary}");

    let ok = dfcm_tools::trace_verify(&out).unwrap();
    assert!(ok.contains("OK"), "{ok}");

    // The salvaged records are bit-identical to the original minus
    // exactly the records of the one damaged chunk.
    let report = {
        let file = std::fs::File::open(&path).unwrap();
        dfcm_trace::salvage_trace(std::io::BufReader::new(file)).unwrap()
    };
    assert_eq!(report.total_chunks, 4);
    assert_eq!(report.recovered_chunks, 3);
    assert_eq!(report.dropped.len(), 1);
    let dead = report.dropped[0].chunk;
    let original = dfcm_tools::trace_for("cc1", 200_000, 9).unwrap();
    let expected: Vec<_> = original
        .records()
        .iter()
        .enumerate()
        .filter(|(i, _)| i / dfcm_trace::V2_CHUNK_RECORDS != dead)
        .map(|(_, r)| *r)
        .collect();
    let salvaged = dfcm_trace::Trace::load(&out).unwrap();
    assert_eq!(salvaged.records(), expected.as_slice());
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&out);
}

#[test]
fn salvage_refuses_fully_destroyed_body() {
    let path = temp("hopeless.trc");
    let out = temp("hopeless_out.trc");
    dfcm_tools::generate("li", 1_000, &path, 3).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    // Zero everything after the magic: header survives as garbage or
    // the single chunk dies; either way nothing should be recoverable.
    for b in bytes.iter_mut().skip(12) {
        *b = 0;
    }
    std::fs::write(&path, &bytes).unwrap();
    assert!(dfcm_tools::trace_salvage(&path, &out).is_err());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn gen_v3_streams_and_matches_materialized_encoding() {
    // `gen --format v3` on a synthetic workload takes the streaming
    // writer path; the result must load back equal to the in-memory
    // trace and report v3 structure under inspect/verify.
    let path = temp("gen_v3.trc");
    let msg = dfcm_tools::generate_formatted(
        "li",
        10_000,
        &path,
        11,
        dfcm_vm::Tier::Fast,
        dfcm_trace::TraceFormat::V3 { seed: 11 },
    )
    .unwrap();
    assert!(msg.contains("10000 records"), "{msg}");

    let loaded = dfcm_trace::Trace::load(&path).unwrap();
    let expected = dfcm_tools::trace_for("li", 10_000, 11).unwrap();
    assert_eq!(loaded.records(), expected.records());

    let inspect = dfcm_tools::trace_inspect(&path).unwrap();
    assert!(inspect.contains("format            v3"), "{inspect}");
    assert!(inspect.contains("generator seed    11"), "{inspect}");
    assert!(inspect.contains("compressed"), "{inspect}");
    assert!(inspect.contains("payload density"), "{inspect}");
    assert!(inspect.contains("status            intact"), "{inspect}");

    let ok = dfcm_tools::trace_verify(&path).unwrap();
    assert!(ok.contains("OK (v3"), "{ok}");
    assert!(ok.contains("bits/record"), "{ok}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn trace_compress_v2_to_v3_round_trips() {
    let v2 = temp("compress_in.trc");
    let v3 = temp("compress_out.trc");
    let back = temp("compress_back.trc");
    dfcm_tools::generate("compress", 30_000, &v2, 5).unwrap();

    let msg = dfcm_tools::trace_compress(&v2, &v3, None).unwrap();
    assert!(msg.contains("30000 records"), "{msg}");
    assert!(msg.contains("bits/record"), "{msg}");
    let original = dfcm_trace::Trace::load(&v2).unwrap();
    assert_eq!(
        dfcm_trace::Trace::load(&v3).unwrap().records(),
        original.records()
    );
    // v3 must actually be smaller than the v2 it came from.
    let v2_bytes = std::fs::metadata(&v2).unwrap().len();
    let v3_bytes = std::fs::metadata(&v3).unwrap().len();
    assert!(v3_bytes < v2_bytes, "{v3_bytes} >= {v2_bytes}");

    // And back out to v2: still the same records, seed preserved.
    dfcm_tools::trace_compress(&v3, &back, Some("v2")).unwrap();
    assert_eq!(
        dfcm_trace::Trace::load(&back).unwrap().records(),
        original.records()
    );
    let inspect = dfcm_tools::trace_inspect(&back).unwrap();
    assert!(inspect.contains("generator seed    5"), "{inspect}");

    assert!(dfcm_tools::trace_compress(&v2, &back, Some("v9")).is_err());
    for p in [&v2, &v3, &back] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn v3_corruption_drill_verify_fails_then_salvage_reemits_v3() {
    // The v3 twin of the v2 drill: damage one chunk of a multi-chunk v3
    // trace, watch verify fail, salvage recover the others — and the
    // salvaged output must still be v3 with the seed preserved.
    let path = temp("drill_v3.trc");
    let out = temp("drill_v3_salvaged.trc");
    dfcm_tools::generate_formatted(
        "cc1",
        200_000,
        &path,
        9,
        dfcm_vm::Tier::Fast,
        dfcm_trace::TraceFormat::V3 { seed: 9 },
    )
    .unwrap();

    let mut bytes = std::fs::read(&path).unwrap();
    let at = bytes.len() * 3 / 4;
    bytes[at] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();

    let e = dfcm_tools::trace_verify(&path).unwrap_err().to_string();
    assert!(e.contains("CORRUPT"), "{e}");

    let summary = dfcm_tools::trace_salvage(&path, &out).unwrap();
    assert!(summary.contains("3/4 chunks"), "{summary}");
    assert!(summary.contains("dropped chunk"), "{summary}");

    let inspect = dfcm_tools::trace_inspect(&out).unwrap();
    assert!(inspect.contains("format            v3"), "{inspect}");
    assert!(inspect.contains("generator seed    9"), "{inspect}");
    assert!(inspect.contains("status            intact"), "{inspect}");

    // Recovered records are bit-identical to the original minus exactly
    // the damaged chunk.
    let report = {
        let file = std::fs::File::open(&path).unwrap();
        dfcm_trace::salvage_trace(std::io::BufReader::new(file)).unwrap()
    };
    assert_eq!(report.version, 3);
    assert_eq!(report.total_chunks, 4);
    assert_eq!(report.recovered_chunks, 3);
    let dead = report.dropped[0].chunk;
    let original = dfcm_tools::trace_for("cc1", 200_000, 9).unwrap();
    let expected: Vec<_> = original
        .records()
        .iter()
        .enumerate()
        .filter(|(i, _)| i / dfcm_trace::V3_CHUNK_RECORDS != dead)
        .map(|(_, r)| *r)
        .collect();
    let salvaged = dfcm_trace::Trace::load(&out).unwrap();
    assert_eq!(salvaged.records(), expected.as_slice());
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&out);
}

#[test]
fn disasm_lists_whole_kernel() {
    let listing = dfcm_tools::disasm("norm").unwrap();
    assert!(
        listing.lines().count() > 50,
        "{} lines",
        listing.lines().count()
    );
    assert!(listing.contains("div"));
}
