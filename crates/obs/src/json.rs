//! Minimal JSON building and parsing shared across the workspace.
//!
//! The build environment is offline (no serde), so every crate that
//! speaks JSON — the engine's metrics reports, checkpoint logs, and the
//! observability exporters — funnels through this one hand-rolled
//! implementation instead of growing its own escaping rules. The writer
//! half builds single-line objects ([`JsonObj`]); the reader half is a
//! small recursive-descent parser ([`parse`]) used to validate exports
//! (`dfcm-tools obs summarize --check`) and by the exporter tests.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes `text` as a JSON string literal, including the quotes.
///
/// This is the single escaping routine for the whole workspace; the
/// engine report and checkpoint log formats in `dfcm-sim` are defined in
/// terms of it.
pub fn json_string(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Builds a single-line JSON object field by field, in insertion order.
///
/// ```
/// use dfcm_obs::json::JsonObj;
///
/// let line = JsonObj::new()
///     .str("type", "task")
///     .u64("attempts", 2)
///     .f64("wall_s", 0.25, 6)
///     .finish();
/// assert_eq!(line, r#"{"type":"task","attempts":2,"wall_s":0.250000}"#);
/// ```
#[derive(Debug, Clone)]
pub struct JsonObj {
    out: String,
}

impl JsonObj {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObj { out: String::new() }
    }

    fn key(&mut self, k: &str) {
        if !self.out.is_empty() {
            self.out.push(',');
        }
        let _ = write!(self.out, "{}:", json_string(k));
    }

    /// Adds a string field (escaped).
    pub fn str(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.out.push_str(&json_string(v));
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, k: &str, v: u64) -> Self {
        self.key(k);
        let _ = write!(self.out, "{v}");
        self
    }

    /// Adds a float field with a fixed number of decimals.
    pub fn f64(mut self, k: &str, v: f64, decimals: usize) -> Self {
        self.key(k);
        let _ = write!(self.out, "{v:.decimals$}");
        self
    }

    /// Adds a pre-rendered JSON value verbatim (caller guarantees it is
    /// valid JSON).
    pub fn raw(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.out.push_str(v);
        self
    }

    /// Adds a nested object of string→string pairs (for label sets).
    pub fn str_map<'a, I: IntoIterator<Item = (&'a str, &'a str)>>(
        mut self,
        k: &str,
        v: I,
    ) -> Self {
        self.key(k);
        self.out.push('{');
        for (i, (lk, lv)) in v.into_iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            let _ = write!(self.out, "{}:{}", json_string(lk), json_string(lv));
        }
        self.out.push('}');
        self
    }

    /// Closes the object and returns the rendered line (no newline).
    pub fn finish(self) -> String {
        format!("{{{}}}", self.out)
    }
}

impl Default for JsonObj {
    fn default() -> Self {
        JsonObj::new()
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`; exact for integers up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is normalized (sorted) for determinism.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an unsigned integer (rejects negatives and
    /// non-integral values).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses one complete JSON value; trailing non-whitespace is an error.
///
/// # Errors
///
/// Returns a human-readable message with the byte offset of the problem.
pub fn parse(s: &str) -> Result<Json, String> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "bad utf-8".to_owned())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&c) = b.get(*pos) else {
            return Err("unterminated string".into());
        };
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&e) = b.get(*pos) else {
                    return Err("unterminated escape".into());
                };
                *pos += 1;
                match e {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_owned())?;
                        *pos += 4;
                        // Surrogates collapse to the replacement character;
                        // the workspace never emits them.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape \\{}", other as char)),
                }
            }
            c if c < 0x20 => return Err("raw control character in string".into()),
            _ => {
                // Re-borrow the full char (UTF-8 multibyte sequences).
                let rest =
                    std::str::from_utf8(&b[*pos - 1..]).map_err(|_| "bad utf-8".to_owned())?;
                let ch = rest.chars().next().ok_or("unterminated string")?;
                out.push(ch);
                *pos += ch.len_utf8() - 1;
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(out));
    }
    loop {
        out.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(out));
            }
            _ => return Err(format!("expected , or ] at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut out = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(out));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected : at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        out.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(out));
            }
            _ => return Err(format!("expected , or }} at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_parser_roundtrip() {
        let line = JsonObj::new()
            .str("name", "a\"b\\c\nd")
            .u64("n", 42)
            .f64("x", 1.5, 3)
            .str_map("labels", [("k", "v"), ("q", "w")])
            .finish();
        let parsed = parse(&line).unwrap();
        assert_eq!(parsed.get("name").unwrap().as_str(), Some("a\"b\\c\nd"));
        assert_eq!(parsed.get("n").unwrap().as_u64(), Some(42));
        assert_eq!(parsed.get("x").unwrap().as_f64(), Some(1.5));
        assert_eq!(
            parsed.get("labels").unwrap().get("q").unwrap().as_str(),
            Some("w")
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":null}],"c":true,"d":-1.5e2}"#).unwrap();
        assert_eq!(v.get("d").unwrap().as_f64(), Some(-150.0));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
        assert_eq!(v.get("c"), Some(&Json::Bool(true)));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a":}"#).is_err());
        assert!(parse(r#"{"a":1} extra"#).is_err());
        assert!(parse(r#""unterminated"#).is_err());
        assert!(parse("[1,2,]").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn unicode_and_escapes_survive() {
        let v = parse(r#""Aµ£\t""#).unwrap();
        assert_eq!(v.as_str(), Some("Aµ£\t"));
    }

    #[test]
    fn as_u64_rejects_non_integers() {
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-3").unwrap().as_u64(), None);
        assert_eq!(parse("12").unwrap().as_u64(), Some(12));
    }
}
