//! Counters, gauges and fixed-bucket histograms with deterministic merge.
//!
//! Metrics are keyed by `(name, sorted label set)`. Three kinds exist,
//! chosen so that merging two registries (or two snapshots of parallel
//! work) is associative, commutative and deterministic:
//!
//! * **Counters** — monotonically increasing `u64`; merge by sum.
//! * **Gauges** — a last-known `f64`; merge by maximum (the only
//!   order-independent choice that keeps "high-water" semantics).
//! * **Histograms** — fixed bucket *upper bounds* declared at first
//!   observation; per-bucket counts plus sum and count; merge by
//!   element-wise sum. Merging histograms with different bucket layouts
//!   is a programming error and panics.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// A metric identity: name plus normalized (sorted) labels.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricKey {
    /// Metric name (Prometheus-compatible: `[a-zA-Z_][a-zA-Z0-9_]*`).
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Builds a key, sorting the labels for a canonical identity.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|&(k, v)| (k.to_owned(), v.to_owned()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_owned(),
            labels,
        }
    }
}

/// A histogram over fixed bucket upper bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Inclusive upper bounds, strictly increasing; an implicit `+Inf`
    /// bucket follows the last bound.
    pub bounds: Vec<f64>,
    /// `counts[i]` = observations `<= bounds[i]` (non-cumulative,
    /// per-bucket); `counts[bounds.len()]` is the overflow bucket.
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
    /// Total number of observations.
    pub count: u64,
}

impl Histogram {
    /// An empty histogram over the given bucket upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bucket bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&mut self, value: f64) {
        // Overflow first: hot callers (miss-magnitude folds over random
        // values) mostly land past the last bound, and one compare beats
        // scanning every bucket to find that out.
        let bucket = match self.bounds.last() {
            Some(&last) if value > last => self.bounds.len(),
            _ => self
                .bounds
                .iter()
                .position(|&b| value <= b)
                .unwrap_or(self.bounds.len()),
        };
        self.counts[bucket] += 1;
        self.sum += value;
        self.count += 1;
    }

    /// Adds another histogram's observations into this one.
    ///
    /// # Panics
    ///
    /// Panics if the bucket layouts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bucket layouts"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
        self.count += other.count;
    }

    /// Cumulative count of observations `<= bounds[i]` (Prometheus `le`
    /// semantics); `i == bounds.len()` gives the total (`+Inf`).
    pub fn cumulative(&self, i: usize) -> u64 {
        self.counts[..=i.min(self.bounds.len())].iter().sum()
    }
}

/// One metric's current value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic counter.
    Counter(u64),
    /// Last-known value (merge takes the maximum).
    Gauge(f64),
    /// Fixed-bucket histogram.
    Histogram(Histogram),
}

impl MetricValue {
    /// The metric kind as a stable lowercase tag.
    pub fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }
}

/// A point-in-time copy of a registry, sorted by key.
///
/// Snapshots are plain data: they merge deterministically and all
/// exporters consume them.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(key, value)` pairs sorted by key.
    pub metrics: Vec<(MetricKey, MetricValue)>,
}

impl MetricsSnapshot {
    /// Looks up a metric by name and exact label set.
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricValue> {
        let key = MetricKey::new(name, labels);
        self.metrics
            .binary_search_by(|(k, _)| k.cmp(&key))
            .ok()
            .map(|i| &self.metrics[i].1)
    }

    /// Merges another snapshot into this one: counters sum, gauges take
    /// the maximum, histograms sum per bucket. Associative, commutative
    /// and deterministic.
    ///
    /// # Panics
    ///
    /// Panics on a kind mismatch for the same key, or on histogram
    /// bucket-layout mismatch — both indicate misuse of a metric name.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        let mut map: BTreeMap<MetricKey, MetricValue> = self.metrics.drain(..).collect();
        for (key, value) in &other.metrics {
            match map.entry(key.clone()) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(value.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut e) => match (e.get_mut(), value) {
                    (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                    (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a = a.max(*b),
                    (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
                    (a, b) => panic!(
                        "metric `{}` merged with conflicting kinds {} vs {}",
                        key.name,
                        a.kind(),
                        b.kind()
                    ),
                },
            }
        }
        self.metrics = map.into_iter().collect();
    }

    /// True when no metrics were recorded.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }
}

/// A thread-safe metrics registry.
///
/// Updates take one mutex; the registry is deliberately simple because
/// hot paths batch their updates (the engine folds per-task metrics in
/// once per run, not once per record).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<MetricKey, MetricValue>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn with_inner<R>(&self, f: impl FnOnce(&mut BTreeMap<MetricKey, MetricValue>) -> R) -> R {
        let mut guard = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        f(&mut guard)
    }

    /// Adds `delta` to the counter `name{labels}` (created at zero).
    ///
    /// # Panics
    ///
    /// Panics if the key already names a gauge or histogram.
    pub fn add(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        let key = MetricKey::new(name, labels);
        self.with_inner(|m| match m.entry(key).or_insert(MetricValue::Counter(0)) {
            MetricValue::Counter(v) => *v += delta,
            other => panic!("metric `{name}` is a {}, not a counter", other.kind()),
        });
    }

    /// Sets the gauge `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics if the key already names a counter or histogram.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        let key = MetricKey::new(name, labels);
        self.with_inner(
            |m| match m.entry(key).or_insert(MetricValue::Gauge(value)) {
                MetricValue::Gauge(v) => *v = value,
                other => panic!("metric `{name}` is a {}, not a gauge", other.kind()),
            },
        );
    }

    /// Observes `value` in the histogram `name{labels}`, creating it
    /// with `bounds` on first use.
    ///
    /// # Panics
    ///
    /// Panics if the key names a non-histogram, or if `bounds` differs
    /// from the layout the histogram was created with.
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], bounds: &[f64], value: f64) {
        let key = MetricKey::new(name, labels);
        self.with_inner(|m| {
            match m
                .entry(key)
                .or_insert_with(|| MetricValue::Histogram(Histogram::new(bounds)))
            {
                MetricValue::Histogram(h) => {
                    assert_eq!(
                        h.bounds, bounds,
                        "histogram `{name}` re-declared with different buckets"
                    );
                    h.observe(value);
                }
                other => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
            }
        });
    }

    /// Merges a snapshot into the registry in place, with
    /// [`MetricsSnapshot::merge`] semantics.
    ///
    /// # Panics
    ///
    /// Panics on kind or bucket-layout mismatch, as for snapshot merge.
    pub fn merge(&self, other: &MetricsSnapshot) {
        self.with_inner(|m| {
            let mut snapshot = MetricsSnapshot {
                metrics: m.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
            };
            snapshot.merge(other);
            *m = snapshot.metrics.into_iter().collect();
        });
    }

    /// A sorted copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            metrics: self.with_inner(|m| m.iter().map(|(k, v)| (k.clone(), v.clone())).collect()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sum_and_sort() {
        let r = MetricsRegistry::new();
        r.add("b_total", &[], 2);
        r.add("a_total", &[("x", "1")], 1);
        r.add("b_total", &[], 3);
        let s = r.snapshot();
        assert_eq!(s.metrics[0].0.name, "a_total");
        assert_eq!(s.get("b_total", &[]), Some(&MetricValue::Counter(5)));
    }

    #[test]
    fn label_order_is_canonical() {
        let r = MetricsRegistry::new();
        r.add("m", &[("b", "2"), ("a", "1")], 1);
        r.add("m", &[("a", "1"), ("b", "2")], 1);
        let s = r.snapshot();
        assert_eq!(s.metrics.len(), 1);
        assert_eq!(
            s.get("m", &[("b", "2"), ("a", "1")]),
            Some(&MetricValue::Counter(2))
        );
    }

    #[test]
    fn histogram_buckets_and_cumulative() {
        let mut h = Histogram::new(&[1.0, 2.0, 4.0]);
        for v in [0.5, 1.5, 3.0, 8.0, 1.0] {
            h.observe(v);
        }
        assert_eq!(h.counts, vec![2, 1, 1, 1]);
        assert_eq!(h.cumulative(0), 2);
        assert_eq!(h.cumulative(3), 5);
        assert_eq!(h.count, 5);
        assert!((h.sum - 14.0).abs() < 1e-12);
    }

    #[test]
    fn merge_combines_all_kinds() {
        let a = MetricsRegistry::new();
        a.add("c", &[], 1);
        a.gauge("g", &[], 2.0);
        a.observe("h", &[], &[1.0], 0.5);
        let b = MetricsRegistry::new();
        b.add("c", &[], 10);
        b.gauge("g", &[], 1.0);
        b.observe("h", &[], &[1.0], 3.0);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.get("c", &[]), Some(&MetricValue::Counter(11)));
        assert_eq!(s.get("g", &[]), Some(&MetricValue::Gauge(2.0)));
        let Some(MetricValue::Histogram(h)) = s.get("h", &[]) else {
            panic!("missing histogram");
        };
        assert_eq!(h.counts, vec![1, 1]);
    }

    #[test]
    #[should_panic(expected = "different bucket layouts")]
    fn merge_rejects_mismatched_buckets() {
        let mut a = Histogram::new(&[1.0]);
        a.merge(&Histogram::new(&[2.0]));
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_misuse_panics() {
        let r = MetricsRegistry::new();
        r.gauge("m", &[], 1.0);
        r.add("m", &[], 1);
    }
}
