//! Hierarchical wall-clock spans and timestamped samples.
//!
//! A [`SpanRecorder`] collects two kinds of events:
//!
//! * **Spans** — a named interval of wall-clock time on one thread,
//!   recorded when its [`crate::SpanGuard`] drops. Nesting happens naturally:
//!   a guard created while another is live on the same thread produces
//!   an enclosed interval, which trace viewers (Perfetto,
//!   `chrome://tracing`) render as a child slice.
//! * **Samples** — a named scalar at a point in time (Chrome trace
//!   counter events), used for time series such as table occupancy.
//!
//! The recorder is *lock-sharded*: each event lands in one of
//! [`SHARDS`] mutex-protected vectors selected by the recording
//! thread's id, so the engine's worker threads append concurrently
//! without contending on a single lock. Draining merges the shards and
//! sorts by timestamp, making the collected order deterministic for a
//! given set of events.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Number of lock shards in a [`SpanRecorder`]. Must be a power of two.
pub const SHARDS: usize = 16;

static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Small dense per-thread id (0, 1, 2, …) in thread-creation order:
    /// stable within a thread's lifetime and compact enough to use as a
    /// Chrome trace `tid`.
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
}

/// The dense observability id of the calling thread.
pub fn thread_id() -> u64 {
    THREAD_ID.with(|&id| id)
}

/// One recorded event: a completed span or a point-in-time sample.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A completed named interval.
    Span {
        /// Span name (e.g. `engine.attempt`).
        name: String,
        /// Recording thread (dense id, see [`thread_id`]).
        tid: u64,
        /// Start, in microseconds since the recorder's epoch.
        start_us: u64,
        /// Duration in microseconds.
        dur_us: u64,
        /// Free-form key/value annotations (outcome, attempt, …).
        args: Vec<(String, String)>,
    },
    /// A named scalar sampled at a point in time.
    Sample {
        /// Series name (e.g. `table_occupancy_percent`).
        name: String,
        /// Label set qualifying the series (spec, table, …).
        labels: Vec<(String, String)>,
        /// Microseconds since the recorder's epoch.
        ts_us: u64,
        /// The sampled value.
        value: f64,
    },
}

impl Event {
    fn ts(&self) -> u64 {
        match self {
            Event::Span { start_us, .. } => *start_us,
            Event::Sample { ts_us, .. } => *ts_us,
        }
    }
}

/// A thread-safe, lock-sharded event recorder.
#[derive(Debug)]
pub struct SpanRecorder {
    epoch: Instant,
    shards: Vec<Mutex<Vec<Event>>>,
}

impl SpanRecorder {
    /// Creates an empty recorder; timestamps are relative to this call.
    pub fn new() -> Self {
        SpanRecorder {
            epoch: Instant::now(),
            shards: (0..SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    /// Microseconds elapsed since the recorder's epoch.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn push(&self, event: Event) {
        let shard = (thread_id() as usize) & (SHARDS - 1);
        // A poisoned shard only loses the panicking thread's events.
        let mut guard = self.shards[shard]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        guard.push(event);
    }

    /// Records a completed span directly (the [`crate::SpanGuard`] path
    /// is the usual entry point).
    pub fn record_span(
        &self,
        name: String,
        start_us: u64,
        dur_us: u64,
        args: Vec<(String, String)>,
    ) {
        self.push(Event::Span {
            name,
            tid: thread_id(),
            start_us,
            dur_us,
            args,
        });
    }

    /// Records a point-in-time sample of `value` under `name{labels}`.
    pub fn record_sample(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.push(Event::Sample {
            name: name.to_owned(),
            labels: labels
                .iter()
                .map(|&(k, v)| (k.to_owned(), v.to_owned()))
                .collect(),
            ts_us: self.now_us(),
            value,
        });
    }

    /// Drains every shard into one list sorted by timestamp (ties keep
    /// shard order, which makes repeated snapshots of the same recorder
    /// deterministic).
    pub fn snapshot(&self) -> Vec<Event> {
        let mut all = Vec::new();
        for shard in &self.shards {
            let guard = shard
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            all.extend(guard.iter().cloned());
        }
        all.sort_by_key(Event::ts);
        all
    }

    /// Number of recorded events across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .len()
            })
            .sum()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for SpanRecorder {
    fn default() -> Self {
        SpanRecorder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn spans_record_and_sort_by_time() {
        let r = SpanRecorder::new();
        let t0 = r.now_us();
        r.record_span("b".into(), t0 + 10, 5, Vec::new());
        r.record_span("a".into(), t0, 20, vec![("k".into(), "v".into())]);
        let events = r.snapshot();
        assert_eq!(events.len(), 2);
        let Event::Span { name, args, .. } = &events[0] else {
            panic!("expected span");
        };
        assert_eq!(name, "a");
        assert_eq!(args[0].1, "v");
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let r = Arc::new(SpanRecorder::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        r.record_span(format!("t{t}.{i}"), i, 1, Vec::new());
                        r.record_sample("s", &[("t", "x")], i as f64);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(r.len(), 8 * 200);
        assert_eq!(r.snapshot().len(), 8 * 200);
    }

    #[test]
    fn thread_ids_are_dense_and_stable() {
        let a = thread_id();
        assert_eq!(a, thread_id());
        let b = std::thread::spawn(thread_id).join().unwrap();
        assert_ne!(a, b);
    }
}
