//! Phase-resolved time series and per-PC misprediction attribution.
//!
//! The aggregate exports ([`crate::export`]) answer *how much* — one
//! counter per run. This module answers *when* and *who*:
//!
//! * [`WindowSeries`] — fixed-window aggregation over the prediction
//!   index: per-window prediction/correct counters, per-aliasing-class
//!   counters and a miss-magnitude histogram. Windows are dense and
//!   addressed by `prediction_index / window_len`, so two partial series
//!   built over disjoint index ranges [`merge`](WindowSeries::merge)
//!   associatively and deterministically — the property that lets the
//!   chunk-parallel file streaming paths produce bit-identical series at
//!   any decode thread count.
//! * [`TopKTracker`] — a bounded space-saving (heavy-hitter) counter
//!   ranking static PCs by misprediction count, each broken down by
//!   aliasing class: the value-prediction analogue of hard-to-predict
//!   branch attribution. The table's counts sum to the *exact* number of
//!   recorded observations, and every entry carries an explicit error
//!   bound (`count - error <= true count <= count`), so approximate
//!   attribution still reconciles exactly against aggregate totals.
//! * [`LaneSeries`] — one instrumented predictor lane (a window series
//!   plus a top-K tracker under a spec label), rendered to and loaded
//!   from the `dfcm-obs-series/v1` JSONL schema ([`SERIES_FILE`]).
//!
//! The obs crate knows nothing about predictors: aliasing classes are
//! plain `usize` slots with caller-provided labels, so `dfcm-sim` can map
//! the paper's five-class taxonomy (plus an "unclassified" slot for
//! lanes without an analyzer) without a dependency cycle.

use std::path::Path;

use crate::json::{json_string, parse, Json, JsonObj};
use crate::metrics::Histogram;

/// Filename of the windowed time-series JSONL inside an obs directory.
pub const SERIES_FILE: &str = "series.jsonl";

/// Schema tag carried by every series header line.
pub const SERIES_SCHEMA: &str = "dfcm-obs-series/v1";

/// Default window length (predictions per window) for instrumented runs.
///
/// Fixed rather than derived from the trace length: the streaming file
/// paths do not know the record count up front, and a fixed window keeps
/// series from different runs comparable.
pub const DEFAULT_SERIES_WINDOW: u64 = 4096;

/// Default number of per-PC attribution slots kept by a lane.
pub const DEFAULT_TOP_K: usize = 16;

/// Default bucket upper bounds for the per-window miss-magnitude
/// histogram (`|predicted - actual|`, observed only on mispredictions).
pub const MISS_MAGNITUDE_BOUNDS: &[f64] =
    &[1.0, 16.0, 256.0, 4096.0, 65536.0, 1.0e9, 1.0e13, 1.0e18];

/// Counters for one fixed window of the prediction index.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowStats {
    /// Predictions that fell into this window.
    pub predictions: u64,
    /// Correct predictions in this window.
    pub correct: u64,
    /// Predictions per aliasing-class slot (sums to `predictions`).
    pub class_total: Vec<u64>,
    /// Correct predictions per class slot (sums to `correct`).
    pub class_correct: Vec<u64>,
    /// `|predicted - actual|` of every misprediction in this window.
    pub miss_magnitude: Histogram,
}

impl WindowStats {
    fn new(classes: usize, bounds: &[f64]) -> Self {
        WindowStats {
            predictions: 0,
            correct: 0,
            class_total: vec![0; classes],
            class_correct: vec![0; classes],
            miss_magnitude: Histogram::new(bounds),
        }
    }

    /// The window's accuracy, `correct / predictions` (0 when empty).
    pub fn accuracy(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.correct as f64 / self.predictions as f64
        }
    }

    #[inline]
    fn record(&mut self, class: usize, correct: bool, magnitude: u64) {
        self.predictions += 1;
        self.class_total[class] += 1;
        if correct {
            self.correct += 1;
            self.class_correct[class] += 1;
        } else {
            self.miss_magnitude.observe(magnitude as f64);
        }
    }

    fn merge(&mut self, other: &WindowStats) {
        self.predictions += other.predictions;
        self.correct += other.correct;
        for (a, b) in self.class_total.iter_mut().zip(&other.class_total) {
            *a += b;
        }
        for (a, b) in self.class_correct.iter_mut().zip(&other.class_correct) {
            *a += b;
        }
        self.miss_magnitude.merge(&other.miss_magnitude);
    }
}

/// A fixed-window time series over the prediction index.
///
/// Windows are dense from index 0; recording at prediction index `i`
/// updates window `i / window_len`. [`merge`](WindowSeries::merge) is
/// associative and commutative (element-wise sums), so a series can be
/// assembled from per-chunk partials in any grouping and always equal
/// the serial fold.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSeries {
    window_len: u64,
    class_labels: Vec<String>,
    bounds: Vec<f64>,
    windows: Vec<WindowStats>,
}

impl WindowSeries {
    /// An empty series with the given window length, class-slot labels
    /// and miss-magnitude bucket bounds.
    ///
    /// # Panics
    ///
    /// Panics if `window_len` is 0, `class_labels` is empty, or `bounds`
    /// is not a valid histogram layout (see [`Histogram::new`]).
    pub fn new(window_len: u64, class_labels: &[&str], bounds: &[f64]) -> Self {
        assert!(window_len > 0, "window length must be positive");
        assert!(!class_labels.is_empty(), "need at least one class slot");
        // Validate the layout eagerly, not on first record.
        let _ = Histogram::new(bounds);
        WindowSeries {
            window_len,
            class_labels: class_labels.iter().map(|&s| s.to_owned()).collect(),
            bounds: bounds.to_vec(),
            windows: Vec::new(),
        }
    }

    /// Records one prediction outcome at prediction index `index`.
    ///
    /// `magnitude` is `|predicted - actual|` and is only folded into the
    /// miss histogram when the prediction was wrong.
    ///
    /// # Panics
    ///
    /// Panics if `class` is not a valid slot index.
    #[inline]
    pub fn record(&mut self, index: u64, class: usize, correct: bool, magnitude: u64) {
        // Fast path: streaming folds record at a monotone index, so
        // almost every call lands in the last window — a multiply and
        // two compares instead of a 64-bit division per record.
        if let Some(last) = self.windows.len().checked_sub(1) {
            let start = last as u64 * self.window_len;
            if index >= start && index - start < self.window_len {
                self.windows[last].record(class, correct, magnitude);
                return;
            }
        }
        let w = (index / self.window_len) as usize;
        while self.windows.len() <= w {
            self.windows
                .push(WindowStats::new(self.class_labels.len(), &self.bounds));
        }
        self.windows[w].record(class, correct, magnitude);
    }

    /// Merges another series into this one, window by window.
    ///
    /// Associative, commutative and deterministic: partial series built
    /// over disjoint prediction-index ranges combine into exactly the
    /// series a serial fold over the union would have produced.
    ///
    /// # Panics
    ///
    /// Panics when the window length, class labels or histogram bounds
    /// differ — merging differently-shaped series is a programming
    /// error, mirroring [`Histogram::merge`].
    pub fn merge(&mut self, other: &WindowSeries) {
        assert_eq!(
            self.window_len, other.window_len,
            "cannot merge series with different window lengths"
        );
        assert_eq!(
            self.class_labels, other.class_labels,
            "cannot merge series with different class labels"
        );
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge series with different histogram bounds"
        );
        while self.windows.len() < other.windows.len() {
            self.windows
                .push(WindowStats::new(self.class_labels.len(), &self.bounds));
        }
        for (a, b) in self.windows.iter_mut().zip(&other.windows) {
            a.merge(b);
        }
    }

    /// The configured window length (predictions per window).
    pub fn window_len(&self) -> u64 {
        self.window_len
    }

    /// The class-slot labels, in slot order.
    pub fn class_labels(&self) -> &[String] {
        &self.class_labels
    }

    /// The dense window list, from prediction index 0.
    pub fn windows(&self) -> &[WindowStats] {
        &self.windows
    }

    /// All windows folded into one [`WindowStats`] — the whole-run
    /// aggregate the per-window counters must reconcile against.
    pub fn totals(&self) -> WindowStats {
        let mut total = WindowStats::new(self.class_labels.len(), &self.bounds);
        for w in &self.windows {
            total.merge(w);
        }
        total
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct TopCounts {
    count: u64,
    error: u64,
    class_miss: Vec<u64>,
}

/// One ranked entry reported by a [`TopKTracker`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopEntry {
    /// The static instruction address.
    pub pc: u64,
    /// Estimated observation count. The true count is within
    /// `count - error ..= count`.
    pub count: u64,
    /// Maximum overestimation inherited from the entry this one evicted
    /// (0 for entries that were never evicted — their counts are exact).
    pub error: u64,
    /// Observations per aliasing-class slot since this entry entered the
    /// table; sums to `count - error` exactly.
    pub class_miss: Vec<u64>,
}

/// A bounded heavy-hitter counter over static PCs (space-saving
/// algorithm), std-only and deterministic.
///
/// At most `capacity` PCs are tracked. When a new PC arrives at a full
/// table, the entry with the smallest `(count, pc)` is evicted and the
/// newcomer inherits its count plus one, recording the inherited count
/// as its `error` bound. Two invariants make approximate attribution
/// auditable:
///
/// * the table's counts always sum to exactly the number of recorded
///   observations ([`total`](TopKTracker::total)), and
/// * any PC whose true count exceeds `total / capacity` is guaranteed
///   to be in the table.
///
/// Ties break on the numerically smallest PC, so the tracker's state is
/// a pure function of the observation sequence.
#[derive(Debug, Clone)]
pub struct TopKTracker {
    capacity: usize,
    classes: usize,
    /// Tracked PCs, parallel to `counts`, in no particular order. Flat
    /// unsorted storage keeps the per-record hot path allocation-free
    /// and movement-free: hits linear-scan at most `capacity` packed
    /// keys (two cache lines at the default capacity), and evictions
    /// overwrite the victim's slot in place, reusing its buffers.
    pcs: Vec<u64>,
    counts: Vec<TopCounts>,
    total: u64,
}

/// Equality is content equality — the same tracked PCs with the same
/// counts in the same configuration — independent of the slot order the
/// observation sequence happened to produce.
impl PartialEq for TopKTracker {
    fn eq(&self, other: &Self) -> bool {
        self.capacity == other.capacity
            && self.classes == other.classes
            && self.total == other.total
            && self.ranked() == other.ranked()
    }
}

impl Eq for TopKTracker {}

impl TopKTracker {
    /// An empty tracker with `capacity` slots and `classes` class slots
    /// per entry.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `classes` is 0.
    pub fn new(capacity: usize, classes: usize) -> Self {
        assert!(capacity > 0, "tracker needs at least one slot");
        assert!(classes > 0, "need at least one class slot");
        TopKTracker {
            capacity,
            classes,
            pcs: Vec::new(),
            counts: Vec::new(),
            total: 0,
        }
    }

    /// Records one observation of `pc` in class slot `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class` is not a valid slot index.
    #[inline]
    pub fn record(&mut self, pc: u64, class: usize) {
        assert!(class < self.classes, "class slot out of range");
        self.total += 1;
        if let Some(i) = self.pcs.iter().position(|&p| p == pc) {
            let entry = &mut self.counts[i];
            entry.count += 1;
            entry.class_miss[class] += 1;
        } else {
            self.admit(pc, class);
        }
    }

    /// Cold half of [`record`](TopKTracker::record): admits an untracked
    /// PC, evicting the entry with the smallest `(count, pc)` when the
    /// table is full. The newcomer inherits the victim's count as its
    /// error bound — and overwrites the victim's slot in place, reusing
    /// its `class_miss` buffer, so the per-record path never allocates
    /// once the table has filled — keeping the table's count sum equal
    /// to the observation total.
    fn admit(&mut self, pc: u64, class: usize) {
        if self.pcs.len() < self.capacity {
            let mut fresh = TopCounts {
                count: 1,
                error: 0,
                class_miss: vec![0; self.classes],
            };
            fresh.class_miss[class] = 1;
            self.pcs.push(pc);
            self.counts.push(fresh);
            return;
        }
        let victim = self
            .counts
            .iter()
            .zip(&self.pcs)
            .enumerate()
            .min_by_key(|(_, (e, &vpc))| (e.count, vpc))
            .map(|(i, _)| i)
            .expect("table is non-empty when full");
        self.pcs[victim] = pc;
        let entry = &mut self.counts[victim];
        entry.error = entry.count;
        entry.count += 1;
        entry.class_miss.fill(0);
        entry.class_miss[class] = 1;
    }

    /// Total observations recorded (exact; always equals the sum of the
    /// table's counts).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of PCs currently tracked.
    pub fn len(&self) -> usize {
        self.pcs.len()
    }

    /// True when nothing was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.pcs.is_empty()
    }

    /// The tracked entries ranked by count descending, PC ascending on
    /// ties — a deterministic order for rendering.
    pub fn ranked(&self) -> Vec<TopEntry> {
        let mut out: Vec<TopEntry> = self
            .pcs
            .iter()
            .zip(&self.counts)
            .map(|(&pc, e)| TopEntry {
                pc,
                count: e.count,
                error: e.error,
                class_miss: e.class_miss.clone(),
            })
            .collect();
        out.sort_by(|a, b| b.count.cmp(&a.count).then(a.pc.cmp(&b.pc)));
        out
    }
}

/// One instrumented predictor lane: a windowed series plus a top-K
/// misprediction tracker under a spec label.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneSeries {
    spec: String,
    series: WindowSeries,
    top: TopKTracker,
}

impl LaneSeries {
    /// An empty lane with explicit window length and top-K capacity.
    ///
    /// # Panics
    ///
    /// As [`WindowSeries::new`] and [`TopKTracker::new`].
    pub fn new(spec: &str, window_len: u64, class_labels: &[&str], top_k: usize) -> Self {
        LaneSeries {
            spec: spec.to_owned(),
            series: WindowSeries::new(window_len, class_labels, MISS_MAGNITUDE_BOUNDS),
            top: TopKTracker::new(top_k, class_labels.len()),
        }
    }

    /// An empty lane with the default window length and capacity.
    pub fn with_defaults(spec: &str, class_labels: &[&str]) -> Self {
        LaneSeries::new(spec, DEFAULT_SERIES_WINDOW, class_labels, DEFAULT_TOP_K)
    }

    /// Records one prediction at prediction index `index`: the window
    /// series always, the top-K tracker only on a misprediction.
    #[inline]
    pub fn record(&mut self, index: u64, pc: u64, class: usize, predicted: u64, actual: u64) {
        let correct = predicted == actual;
        self.series
            .record(index, class, correct, predicted.abs_diff(actual));
        if !correct {
            self.top.record(pc, class);
        }
    }

    /// The lane's spec label.
    pub fn spec(&self) -> &str {
        &self.spec
    }

    /// The windowed series.
    pub fn series(&self) -> &WindowSeries {
        &self.series
    }

    /// The per-PC tracker.
    pub fn top(&self) -> &TopKTracker {
        &self.top
    }

    /// Renders the lane as `dfcm-obs-series/v1` JSONL lines: a `series`
    /// header, one `window` line per window, one `pc` line per tracked
    /// PC (ranked) and a `series_total` footer.
    pub fn to_jsonl(&self) -> Vec<String> {
        let mut lines = Vec::with_capacity(2 + self.series.windows.len() + self.top.len());
        let classes = format!(
            "[{}]",
            self.series
                .class_labels
                .iter()
                .map(|l| json_string(l))
                .collect::<Vec<_>>()
                .join(",")
        );
        lines.push(
            JsonObj::new()
                .str("type", "series")
                .str("schema", SERIES_SCHEMA)
                .str("spec", &self.spec)
                .u64("window_len", self.series.window_len)
                .raw("classes", &classes)
                .raw("bounds", &f64_arr(&self.series.bounds))
                .u64("windows", self.series.windows.len() as u64)
                .u64("top_k", self.top.capacity as u64)
                .finish(),
        );
        for (i, w) in self.series.windows.iter().enumerate() {
            lines.push(
                JsonObj::new()
                    .str("type", "window")
                    .str("spec", &self.spec)
                    .u64("index", i as u64)
                    .u64("start", i as u64 * self.series.window_len)
                    .u64("predictions", w.predictions)
                    .u64("correct", w.correct)
                    .f64("accuracy", w.accuracy(), 6)
                    .raw("class_total", &u64_arr(&w.class_total))
                    .raw("class_correct", &u64_arr(&w.class_correct))
                    .raw("miss_counts", &u64_arr(&w.miss_magnitude.counts))
                    .u64("misses", w.miss_magnitude.count)
                    .finish(),
            );
        }
        for (rank, e) in self.top.ranked().iter().enumerate() {
            lines.push(
                JsonObj::new()
                    .str("type", "pc")
                    .str("spec", &self.spec)
                    .u64("rank", rank as u64 + 1)
                    .str("pc", &format!("{:#x}", e.pc))
                    .u64("count", e.count)
                    .u64("error", e.error)
                    .raw("class_miss", &u64_arr(&e.class_miss))
                    .finish(),
            );
        }
        let totals = self.series.totals();
        lines.push(
            JsonObj::new()
                .str("type", "series_total")
                .str("spec", &self.spec)
                .u64("predictions", totals.predictions)
                .u64("correct", totals.correct)
                .u64("mispredictions", totals.predictions - totals.correct)
                .u64("top_recorded", self.top.total())
                .finish(),
        );
        lines
    }
}

fn u64_arr(xs: &[u64]) -> String {
    format!(
        "[{}]",
        xs.iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(",")
    )
}

fn f64_arr(xs: &[f64]) -> String {
    format!(
        "[{}]",
        xs.iter()
            .map(|x| format!("{x}"))
            .collect::<Vec<_>>()
            .join(",")
    )
}

/// Renders a set of lanes as one deterministic JSONL document: lanes are
/// sorted by spec (engine tasks may finish in any order), then each lane
/// contributes its header, windows, PCs and footer.
pub fn render_series(lanes: &[LaneSeries]) -> Vec<String> {
    let mut sorted: Vec<&LaneSeries> = lanes.iter().collect();
    sorted.sort_by(|a, b| a.spec.cmp(&b.spec));
    sorted.iter().flat_map(|l| l.to_jsonl()).collect()
}

/// One `window` line loaded back from a series export.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadedWindow {
    /// Window index (`start / window_len`).
    pub index: u64,
    /// First prediction index covered by this window.
    pub start: u64,
    /// Predictions in the window.
    pub predictions: u64,
    /// Correct predictions in the window.
    pub correct: u64,
    /// Rendered accuracy.
    pub accuracy: f64,
    /// Per-class prediction counts.
    pub class_total: Vec<u64>,
    /// Per-class correct counts.
    pub class_correct: Vec<u64>,
    /// Miss-magnitude bucket counts (`bounds.len() + 1` buckets).
    pub miss_counts: Vec<u64>,
    /// Total mispredictions in the window.
    pub misses: u64,
}

/// One `pc` line loaded back from a series export.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadedTopEntry {
    /// 1-based rank.
    pub rank: u64,
    /// The static instruction address.
    pub pc: u64,
    /// Estimated misprediction count.
    pub count: u64,
    /// Overestimation bound.
    pub error: u64,
    /// Per-class observed counts.
    pub class_miss: Vec<u64>,
}

/// The `series_total` footer loaded back from a series export.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadedTotals {
    /// Total predictions across all windows.
    pub predictions: u64,
    /// Total correct predictions.
    pub correct: u64,
    /// `predictions - correct`.
    pub mispredictions: u64,
    /// Observations recorded by the top-K tracker.
    pub top_recorded: u64,
}

/// One lane parsed back from [`SERIES_FILE`].
#[derive(Debug, Clone, PartialEq)]
pub struct LoadedSeries {
    /// The lane's spec label.
    pub spec: String,
    /// Window length declared by the header.
    pub window_len: u64,
    /// Class-slot labels declared by the header.
    pub classes: Vec<String>,
    /// Miss-magnitude bucket bounds declared by the header.
    pub bounds: Vec<f64>,
    /// Top-K capacity declared by the header.
    pub top_k: u64,
    /// Window lines, in file order.
    pub windows: Vec<LoadedWindow>,
    /// PC lines, in file (rank) order.
    pub top: Vec<LoadedTopEntry>,
    /// The footer, if present.
    pub totals: Option<LoadedTotals>,
}

fn need_u64(value: &Json, key: &str, what: &str) -> Result<u64, String> {
    value
        .get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{what}: missing or bad \"{key}\""))
}

fn u64_list(value: &Json, key: &str, what: &str) -> Result<Vec<u64>, String> {
    value
        .get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{what}: missing array \"{key}\""))?
        .iter()
        .map(|v| v.as_u64().ok_or_else(|| format!("{what}: bad \"{key}\"")))
        .collect()
}

/// Parses [`SERIES_FILE`] from an obs directory.
///
/// # Errors
///
/// Returns a message naming the problem when the file is missing (the
/// run was not instrumented for series output), a line is malformed, or
/// a `window`/`pc`/`series_total` line precedes its lane's header.
pub fn load_series(dir: &Path) -> Result<Vec<LoadedSeries>, String> {
    let path = dir.join(SERIES_FILE);
    let text = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "{}: {e} (series are only exported by instrumented runs; \
             re-run with --obs on a path that records them)",
            path.display()
        )
    })?;
    let mut lanes: Vec<LoadedSeries> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let what = format!("{SERIES_FILE} line {}", i + 1);
        let value = parse(line).map_err(|e| format!("{what}: {e}"))?;
        let kind = value
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{what}: missing \"type\""))?;
        let spec = value
            .get("spec")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{what}: missing \"spec\""))?
            .to_owned();
        if kind == "series" {
            let schema = value.get("schema").and_then(Json::as_str).unwrap_or("");
            if schema != SERIES_SCHEMA {
                return Err(format!(
                    "{what}: schema `{schema}` is not `{SERIES_SCHEMA}`"
                ));
            }
            let classes = value
                .get("classes")
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("{what}: missing array \"classes\""))?
                .iter()
                .map(|v| {
                    v.as_str()
                        .map(str::to_owned)
                        .ok_or_else(|| format!("{what}: bad class label"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            let bounds = value
                .get("bounds")
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("{what}: missing array \"bounds\""))?
                .iter()
                .map(|v| {
                    v.as_f64()
                        .ok_or_else(|| format!("{what}: bad histogram bound"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            lanes.push(LoadedSeries {
                spec,
                window_len: need_u64(&value, "window_len", &what)?,
                classes,
                bounds,
                top_k: need_u64(&value, "top_k", &what)?,
                windows: Vec::new(),
                top: Vec::new(),
                totals: None,
            });
            continue;
        }
        let lane = lanes
            .iter_mut()
            .rev()
            .find(|l| l.spec == spec)
            .ok_or_else(|| format!("{what}: `{kind}` for `{spec}` before its series header"))?;
        match kind {
            "window" => lane.windows.push(LoadedWindow {
                index: need_u64(&value, "index", &what)?,
                start: need_u64(&value, "start", &what)?,
                predictions: need_u64(&value, "predictions", &what)?,
                correct: need_u64(&value, "correct", &what)?,
                accuracy: value.get("accuracy").and_then(Json::as_f64).unwrap_or(0.0),
                class_total: u64_list(&value, "class_total", &what)?,
                class_correct: u64_list(&value, "class_correct", &what)?,
                miss_counts: u64_list(&value, "miss_counts", &what)?,
                misses: need_u64(&value, "misses", &what)?,
            }),
            "pc" => {
                let pc_text = value
                    .get("pc")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("{what}: missing \"pc\""))?;
                let pc = pc_text
                    .strip_prefix("0x")
                    .and_then(|h| u64::from_str_radix(h, 16).ok())
                    .ok_or_else(|| format!("{what}: bad pc `{pc_text}`"))?;
                lane.top.push(LoadedTopEntry {
                    rank: need_u64(&value, "rank", &what)?,
                    pc,
                    count: need_u64(&value, "count", &what)?,
                    error: need_u64(&value, "error", &what)?,
                    class_miss: u64_list(&value, "class_miss", &what)?,
                });
            }
            "series_total" => {
                lane.totals = Some(LoadedTotals {
                    predictions: need_u64(&value, "predictions", &what)?,
                    correct: need_u64(&value, "correct", &what)?,
                    mispredictions: need_u64(&value, "mispredictions", &what)?,
                    top_recorded: need_u64(&value, "top_recorded", &what)?,
                });
            }
            other => return Err(format!("{what}: unknown record type `{other}`")),
        }
    }
    Ok(lanes)
}

/// Validates a loaded series document's internal consistency: windowed
/// counters must sum exactly to the footer totals, every window's class
/// breakdown must reconcile with its counters, and the top-K table must
/// satisfy the space-saving invariants (counts sum to the observation
/// total; per-entry class counts sum to `count - error`; ranks ordered).
///
/// Returns the list of problems found (empty means consistent).
pub fn check_series(lanes: &[LoadedSeries]) -> Vec<String> {
    let mut problems = Vec::new();
    for lane in lanes {
        let spec = &lane.spec;
        let classes = lane.classes.len();
        let Some(totals) = &lane.totals else {
            problems.push(format!("series `{spec}`: missing series_total footer"));
            continue;
        };
        let mut predictions = 0u64;
        let mut correct = 0u64;
        for w in &lane.windows {
            let at = format!("series `{spec}` window {}", w.index);
            predictions += w.predictions;
            correct += w.correct;
            if w.start != w.index * lane.window_len {
                problems.push(format!("{at}: start {} != index*window_len", w.start));
            }
            if w.correct > w.predictions {
                problems.push(format!(
                    "{at}: correct {} exceeds predictions {}",
                    w.correct, w.predictions
                ));
            }
            if w.class_total.len() != classes || w.class_correct.len() != classes {
                problems.push(format!("{at}: class array length != {classes}"));
                continue;
            }
            if w.class_total.iter().sum::<u64>() != w.predictions {
                problems.push(format!("{at}: class_total does not sum to predictions"));
            }
            if w.class_correct.iter().sum::<u64>() != w.correct {
                problems.push(format!("{at}: class_correct does not sum to correct"));
            }
            if w.misses != w.predictions - w.correct.min(w.predictions) {
                problems.push(format!(
                    "{at}: misses {} != predictions - correct",
                    w.misses
                ));
            }
            if w.miss_counts.iter().sum::<u64>() != w.misses {
                problems.push(format!("{at}: miss_counts does not sum to misses"));
            }
            let expected = if w.predictions == 0 {
                0.0
            } else {
                w.correct as f64 / w.predictions as f64
            };
            if (w.accuracy - expected).abs() > 1e-4 {
                problems.push(format!(
                    "{at}: accuracy {:.6} but counters give {expected:.6}",
                    w.accuracy
                ));
            }
        }
        if predictions != totals.predictions {
            problems.push(format!(
                "series `{spec}`: windows sum to {predictions} predictions, footer says {}",
                totals.predictions
            ));
        }
        if correct != totals.correct {
            problems.push(format!(
                "series `{spec}`: windows sum to {correct} correct, footer says {}",
                totals.correct
            ));
        }
        if totals.mispredictions != totals.predictions - totals.correct.min(totals.predictions) {
            problems.push(format!(
                "series `{spec}`: footer mispredictions {} != predictions - correct",
                totals.mispredictions
            ));
        }
        // Space-saving invariant: the table's counts sum to exactly the
        // number of observations — approximate per-entry counts, exact
        // aggregate.
        let table_sum: u64 = lane.top.iter().map(|e| e.count).sum();
        if table_sum != totals.top_recorded {
            problems.push(format!(
                "series `{spec}`: top-K counts sum to {table_sum}, footer recorded {}",
                totals.top_recorded
            ));
        }
        if totals.top_recorded != totals.mispredictions {
            problems.push(format!(
                "series `{spec}`: top-K recorded {} observations, footer has {} mispredictions",
                totals.top_recorded, totals.mispredictions
            ));
        }
        for (i, e) in lane.top.iter().enumerate() {
            let at = format!("series `{spec}` pc {:#x}", e.pc);
            if e.rank != i as u64 + 1 {
                problems.push(format!("{at}: rank {} out of order", e.rank));
            }
            if e.error > e.count {
                problems.push(format!("{at}: error {} exceeds count {}", e.error, e.count));
            }
            if e.class_miss.len() != classes {
                problems.push(format!("{at}: class_miss length != {classes}"));
            } else if e.class_miss.iter().sum::<u64>() != e.count - e.error {
                problems.push(format!("{at}: class_miss does not sum to count - error"));
            }
            if i > 0 && lane.top[i - 1].count < e.count {
                problems.push(format!("{at}: counts not ranked descending"));
            }
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    const LABELS: &[&str] = &["l1", "hash", "none"];

    /// A deterministic pseudo-random access stream: (index, pc, class,
    /// predicted, actual).
    fn stream(n: u64) -> Vec<(u64, u64, usize, u64, u64)> {
        (0..n)
            .map(|i| {
                let x = i.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17);
                let actual = x % 50;
                let predicted = if x % 3 == 0 { actual } else { x % 97 };
                (i, 4 * (x % 23), (x % 3) as usize, predicted, actual)
            })
            .collect()
    }

    fn lane_over(events: &[(u64, u64, usize, u64, u64)]) -> LaneSeries {
        let mut lane = LaneSeries::new("dfcm:6:10", 64, LABELS, 4);
        for &(i, pc, class, predicted, actual) in events {
            lane.record(i, pc, class, predicted, actual);
        }
        lane
    }

    #[test]
    fn window_series_merge_equals_serial_fold() {
        let events = stream(1000);
        let mut serial = WindowSeries::new(64, LABELS, MISS_MAGNITUDE_BOUNDS);
        for &(i, _, class, predicted, actual) in &events {
            serial.record(i, class, predicted == actual, predicted.abs_diff(actual));
        }
        // Any contiguous split merges back to the serial series.
        for split in [1, 63, 64, 500, 999] {
            let mut left = WindowSeries::new(64, LABELS, MISS_MAGNITUDE_BOUNDS);
            let mut right = WindowSeries::new(64, LABELS, MISS_MAGNITUDE_BOUNDS);
            for (k, &(i, _, class, predicted, actual)) in events.iter().enumerate() {
                let part = if k < split { &mut left } else { &mut right };
                part.record(i, class, predicted == actual, predicted.abs_diff(actual));
            }
            let mut merged = left.clone();
            merged.merge(&right);
            assert_eq!(merged, serial, "split at {split}");
            // And in the other association order.
            let mut reversed = right;
            reversed.merge(&left);
            assert_eq!(reversed, serial, "reverse merge at {split}");
        }
    }

    #[test]
    fn window_series_totals_reconcile() {
        let lane = lane_over(&stream(777));
        let totals = lane.series().totals();
        assert_eq!(totals.predictions, 777);
        assert_eq!(totals.class_total.iter().sum::<u64>(), totals.predictions);
        assert_eq!(totals.class_correct.iter().sum::<u64>(), totals.correct);
        assert_eq!(
            totals.miss_magnitude.count,
            totals.predictions - totals.correct
        );
        // Top-K records exactly the mispredictions.
        assert_eq!(lane.top().total(), totals.predictions - totals.correct);
    }

    #[test]
    #[should_panic(expected = "different window lengths")]
    fn merge_rejects_mismatched_windows() {
        let mut a = WindowSeries::new(64, LABELS, MISS_MAGNITUDE_BOUNDS);
        a.merge(&WindowSeries::new(128, LABELS, MISS_MAGNITUDE_BOUNDS));
    }

    #[test]
    fn top_k_counts_sum_to_observations_under_eviction() {
        // 23 distinct PCs through a 4-slot table: heavy eviction.
        let mut top = TopKTracker::new(4, 3);
        let events = stream(5000);
        let mut misses = 0u64;
        for &(_, pc, class, predicted, actual) in &events {
            if predicted != actual {
                top.record(pc, class);
                misses += 1;
            }
        }
        assert_eq!(top.total(), misses);
        let ranked = top.ranked();
        assert_eq!(ranked.len(), 4);
        assert_eq!(ranked.iter().map(|e| e.count).sum::<u64>(), misses);
        for e in &ranked {
            assert!(e.error <= e.count);
            assert_eq!(e.class_miss.iter().sum::<u64>(), e.count - e.error);
        }
        // Ranked order is count-descending with pc tiebreak.
        for pair in ranked.windows(2) {
            assert!(
                pair[0].count > pair[1].count
                    || (pair[0].count == pair[1].count && pair[0].pc < pair[1].pc)
            );
        }
    }

    #[test]
    fn top_k_is_exact_below_capacity() {
        let mut top = TopKTracker::new(8, 1);
        for _ in 0..5 {
            top.record(0x40, 0);
        }
        for _ in 0..3 {
            top.record(0x44, 0);
        }
        let ranked = top.ranked();
        assert_eq!(ranked.len(), 2);
        assert_eq!(
            (ranked[0].pc, ranked[0].count, ranked[0].error),
            (0x40, 5, 0)
        );
        assert_eq!(
            (ranked[1].pc, ranked[1].count, ranked[1].error),
            (0x44, 3, 0)
        );
    }

    #[test]
    fn top_k_is_deterministic() {
        let events = stream(3000);
        let run = || {
            let mut top = TopKTracker::new(4, 3);
            for &(_, pc, class, predicted, actual) in &events {
                if predicted != actual {
                    top.record(pc, class);
                }
            }
            top.ranked()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn jsonl_roundtrip_and_check_pass() {
        let lane = lane_over(&stream(1000));
        let other = {
            let mut l = LaneSeries::new("fcm:6:10", 64, LABELS, 4);
            for &(i, pc, class, predicted, actual) in &stream(300) {
                l.record(i, pc, class, predicted, actual);
            }
            l
        };
        let dir = std::env::temp_dir().join(format!(
            "dfcm-obs-series-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        // render_series sorts by spec regardless of push order.
        let lines = render_series(&[lane.clone(), other.clone()]);
        crate::export::write_jsonl_report(&dir.join(SERIES_FILE), &lines).unwrap();
        let loaded = load_series(&dir).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].spec, "dfcm:6:10");
        assert_eq!(loaded[1].spec, "fcm:6:10");
        assert_eq!(loaded[0].windows.len(), lane.series().windows().len());
        assert_eq!(loaded[0].top.len(), lane.top().len());
        let totals = lane.series().totals();
        assert_eq!(
            loaded[0].totals.as_ref().unwrap().predictions,
            totals.predictions
        );
        let problems = check_series(&loaded);
        assert!(problems.is_empty(), "{problems:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn check_flags_tampered_series() {
        let lane = lane_over(&stream(500));
        let dir = std::env::temp_dir().join(format!(
            "dfcm-obs-series-tamper-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let text = render_series(std::slice::from_ref(&lane)).join("\n");
        // Inflate one window's correct count: the footer, the class
        // breakdown and the accuracy all stop reconciling.
        let tampered = text.replacen("\"correct\":", "\"correct\":1000000, \"x\":", 2);
        std::fs::write(dir.join(SERIES_FILE), tampered).unwrap();
        let problems = check_series(&load_series(&dir).unwrap());
        assert!(!problems.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_series_missing_file_is_a_clear_error() {
        let dir =
            std::env::temp_dir().join(format!("dfcm-obs-series-missing-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let err = load_series(&dir).unwrap_err();
        assert!(err.contains(SERIES_FILE), "{err}");
        assert!(err.contains("--obs"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_series_rejects_orphan_lines() {
        let dir =
            std::env::temp_dir().join(format!("dfcm-obs-series-orphan-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join(SERIES_FILE),
            "{\"type\":\"window\",\"spec\":\"x\",\"index\":0}\n",
        )
        .unwrap();
        let err = load_series(&dir).unwrap_err();
        assert!(err.contains("before its series header"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
