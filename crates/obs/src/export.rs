//! Exporters: JSONL event stream, Chrome trace-event JSON, Prometheus
//! text exposition.
//!
//! All three render from the same pair of inputs — a list of
//! [`Event`]s and a [`MetricsSnapshot`] — and all files are written
//! through `dfcm_trace::io::atomic_write`, so a crash mid-export never
//! leaves a truncated artifact. Standard filenames inside an obs
//! directory are [`EVENTS_FILE`], [`TRACE_FILE`] and [`PROM_FILE`].

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use dfcm_trace::io::atomic_write;

use crate::json::{json_string, JsonObj};
use crate::metrics::{MetricValue, MetricsSnapshot};
use crate::span::Event;

/// Filename of the JSONL event stream inside an obs directory.
pub const EVENTS_FILE: &str = "events.jsonl";
/// Filename of the Chrome trace-event JSON inside an obs directory.
pub const TRACE_FILE: &str = "trace.json";
/// Filename of the Prometheus text exposition inside an obs directory.
pub const PROM_FILE: &str = "metrics.prom";

/// Renders events and metrics as a JSONL stream: one `span`, `sample`
/// or `metric` object per line, in deterministic order (events by
/// timestamp, then metrics sorted by key).
pub fn to_jsonl(events: &[Event], metrics: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for event in events {
        let line = match event {
            Event::Span {
                name,
                tid,
                start_us,
                dur_us,
                args,
            } => JsonObj::new()
                .str("type", "span")
                .str("name", name)
                .u64("tid", *tid)
                .u64("start_us", *start_us)
                .u64("dur_us", *dur_us)
                .str_map("args", args.iter().map(|(k, v)| (k.as_str(), v.as_str())))
                .finish(),
            Event::Sample {
                name,
                labels,
                ts_us,
                value,
            } => JsonObj::new()
                .str("type", "sample")
                .str("name", name)
                .str_map(
                    "labels",
                    labels.iter().map(|(k, v)| (k.as_str(), v.as_str())),
                )
                .u64("ts_us", *ts_us)
                .f64("value", *value, 6)
                .finish(),
        };
        out.push_str(&line);
        out.push('\n');
    }
    for (key, value) in &metrics.metrics {
        let obj = JsonObj::new()
            .str("type", "metric")
            .str("name", &key.name)
            .str("kind", value.kind())
            .str_map(
                "labels",
                key.labels.iter().map(|(k, v)| (k.as_str(), v.as_str())),
            );
        let obj = match value {
            MetricValue::Counter(v) => obj.u64("value", *v),
            MetricValue::Gauge(v) => obj.f64("value", *v, 6),
            MetricValue::Histogram(h) => obj
                .raw(
                    "bounds",
                    &format!(
                        "[{}]",
                        h.bounds
                            .iter()
                            .map(|b| format!("{b}"))
                            .collect::<Vec<_>>()
                            .join(",")
                    ),
                )
                .raw(
                    "counts",
                    &format!(
                        "[{}]",
                        h.counts
                            .iter()
                            .map(|c| format!("{c}"))
                            .collect::<Vec<_>>()
                            .join(",")
                    ),
                )
                .f64("sum", h.sum, 6)
                .u64("count", h.count),
        };
        out.push_str(&obj.finish());
        out.push('\n');
    }
    out
}

fn label_args(labels: &[(String, String)]) -> String {
    let mut obj = JsonObj::new();
    for (k, v) in labels {
        obj = obj.str(k, v);
    }
    obj.finish()
}

/// Renders spans and samples as Chrome trace-event JSON
/// (`{"traceEvents":[...]}`), loadable in Perfetto and
/// `chrome://tracing`. Spans become complete (`"ph":"X"`) events;
/// samples become counter (`"ph":"C"`) events.
pub fn to_chrome_trace(events: &[Event]) -> String {
    let mut items = Vec::with_capacity(events.len());
    for event in events {
        match event {
            Event::Span {
                name,
                tid,
                start_us,
                dur_us,
                args,
            } => {
                items.push(
                    JsonObj::new()
                        .str("name", name)
                        .str("ph", "X")
                        .u64("pid", 1)
                        .u64("tid", *tid)
                        .u64("ts", *start_us)
                        .u64("dur", *dur_us)
                        .raw("args", &label_args(args))
                        .finish(),
                );
            }
            Event::Sample {
                name,
                labels,
                ts_us,
                value,
            } => {
                // Counter tracks are distinguished by name, so fold the
                // label set into it (Chrome has no counter labels).
                let track = if labels.is_empty() {
                    name.clone()
                } else {
                    let qual: Vec<String> =
                        labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
                    format!("{name}{{{}}}", qual.join(","))
                };
                items.push(
                    JsonObj::new()
                        .str("name", &track)
                        .str("ph", "C")
                        .u64("pid", 1)
                        .u64("tid", 0)
                        .u64("ts", *ts_us)
                        .raw("args", &JsonObj::new().f64("value", *value, 6).finish())
                        .finish(),
                );
            }
        }
    }
    format!("{{\"traceEvents\":[{}]}}\n", items.join(","))
}

fn prom_name_ok(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .enumerate()
            .all(|(i, c)| c == '_' || c.is_ascii_alphabetic() || (i > 0 && c.is_ascii_digit()))
}

fn prom_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}={}", json_string(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}={}", json_string(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Renders the snapshot in the Prometheus text exposition format
/// (version 0.0.4): `# TYPE` headers, `name{labels} value` samples, and
/// `_bucket`/`_sum`/`_count` series for histograms.
///
/// # Panics
///
/// Panics if a metric name is not a valid Prometheus identifier — the
/// naming scheme in this workspace is fixed, so that is a programming
/// error, not input data.
pub fn to_prometheus(metrics: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut last_typed: Option<&str> = None;
    for (key, value) in &metrics.metrics {
        assert!(
            prom_name_ok(&key.name),
            "`{}` is not a valid Prometheus metric name",
            key.name
        );
        if last_typed != Some(key.name.as_str()) {
            let _ = writeln!(out, "# TYPE {} {}", key.name, value.kind());
            last_typed = Some(key.name.as_str());
        }
        match value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "{}{} {v}", key.name, prom_labels(&key.labels, None));
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "{}{} {v}", key.name, prom_labels(&key.labels, None));
            }
            MetricValue::Histogram(h) => {
                for (i, bound) in h.bounds.iter().enumerate() {
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        key.name,
                        prom_labels(&key.labels, Some(("le", &format!("{bound}")))),
                        h.cumulative(i)
                    );
                }
                let _ = writeln!(
                    out,
                    "{}_bucket{} {}",
                    key.name,
                    prom_labels(&key.labels, Some(("le", "+Inf"))),
                    h.count
                );
                let _ = writeln!(
                    out,
                    "{}_sum{} {}",
                    key.name,
                    prom_labels(&key.labels, None),
                    h.sum
                );
                let _ = writeln!(
                    out,
                    "{}_count{} {}",
                    key.name,
                    prom_labels(&key.labels, None),
                    h.count
                );
            }
        }
    }
    out
}

/// Writes all three export formats into `dir` under the standard
/// filenames, atomically.
///
/// # Errors
///
/// Propagates any I/O error from creating the directory or staging the
/// files.
pub fn write_exports(dir: &Path, events: &[Event], metrics: &MetricsSnapshot) -> io::Result<()> {
    atomic_write(&dir.join(EVENTS_FILE), to_jsonl(events, metrics).as_bytes())?;
    atomic_write(&dir.join(TRACE_FILE), to_chrome_trace(events).as_bytes())?;
    atomic_write(&dir.join(PROM_FILE), to_prometheus(metrics).as_bytes())?;
    Ok(())
}

/// Writes pre-rendered JSONL `lines` (each already newline-terminated or
/// not — a trailing newline is ensured per line) to `path` atomically.
///
/// This is the one report-writing routine shared by `dfcm-tools
/// --metrics`, the repro harness and the obs exports, so every JSONL
/// artifact in the workspace goes through the same staged-rename path.
///
/// # Errors
///
/// Propagates any I/O error from staging or renaming the file.
pub fn write_jsonl_report<S: AsRef<str>>(path: &Path, lines: &[S]) -> io::Result<()> {
    let mut contents = String::new();
    for line in lines {
        contents.push_str(line.as_ref());
        if !line.as_ref().ends_with('\n') {
            contents.push('\n');
        }
    }
    atomic_write(path, contents.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::metrics::MetricsRegistry;

    fn sample_inputs() -> (Vec<Event>, MetricsSnapshot) {
        let events = vec![
            Event::Span {
                name: "engine.attempt".into(),
                tid: 1,
                start_us: 10,
                dur_us: 40,
                args: vec![("label".into(), "cfg/a".into())],
            },
            Event::Sample {
                name: "occupancy".into(),
                labels: vec![("table".into(), "l1".into())],
                ts_us: 25,
                value: 0.5,
            },
        ];
        let r = MetricsRegistry::new();
        r.add("engine_tasks_total", &[("outcome", "success")], 3);
        r.gauge("eval_accuracy", &[("spec", "dfcm")], 0.75);
        r.observe("engine_task_seconds", &[], &[0.1, 1.0], 0.5);
        (events, r.snapshot())
    }

    #[test]
    fn chrome_trace_parses_and_has_complete_events() {
        let (events, _) = sample_inputs();
        let trace = parse(&to_chrome_trace(&events)).unwrap();
        let items = trace.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(items[0].get("dur").unwrap().as_u64(), Some(40));
        assert_eq!(items[1].get("ph").unwrap().as_str(), Some("C"));
        assert_eq!(
            items[1].get("name").unwrap().as_str(),
            Some("occupancy{table=l1}")
        );
    }

    #[test]
    fn jsonl_lines_each_parse() {
        let (events, metrics) = sample_inputs();
        let jsonl = to_jsonl(&events, &metrics);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 5);
        for line in &lines {
            parse(line).unwrap();
        }
        // Metrics sort by name: engine_task_seconds histogram first.
        let hist = parse(lines[2]).unwrap();
        assert_eq!(hist.get("kind").unwrap().as_str(), Some("histogram"));
        assert_eq!(hist.get("count").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn prometheus_text_shape() {
        let (_, metrics) = sample_inputs();
        let text = to_prometheus(&metrics);
        assert!(text.contains("# TYPE engine_tasks_total counter"));
        assert!(text.contains("engine_tasks_total{outcome=\"success\"} 3"));
        assert!(text.contains("eval_accuracy{spec=\"dfcm\"} 0.75"));
        assert!(text.contains("engine_task_seconds_bucket{le=\"1\"} 1"));
        assert!(text.contains("engine_task_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("engine_task_seconds_count 1"));
    }

    #[test]
    fn exports_write_all_three_files() {
        let dir = std::env::temp_dir().join(format!(
            "dfcm-obs-export-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let (events, metrics) = sample_inputs();
        write_exports(&dir, &events, &metrics).unwrap();
        for file in [EVENTS_FILE, TRACE_FILE, PROM_FILE] {
            assert!(dir.join(file).is_file(), "missing {file}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
