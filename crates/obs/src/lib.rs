//! Workspace observability: spans, metrics and exporters.
//!
//! `dfcm-obs` is a std-only crate (the build environment is offline)
//! providing the three layers the rest of the workspace instruments
//! itself with:
//!
//! 1. **Spans** — hierarchical wall-clock timing through a lock-sharded
//!    [`span::SpanRecorder`], safe under the simulation engine's worker
//!    threads ([`span`]).
//! 2. **Metrics** — counters, gauges and fixed-bucket histograms with
//!    deterministic merge ([`metrics`]).
//! 3. **Exporters** — JSONL event stream, Chrome trace-event JSON
//!    (loadable in Perfetto / `chrome://tracing`) and Prometheus text
//!    exposition, written atomically ([`export`]); plus loading,
//!    validation and human-readable summaries ([`summary`]).
//!
//! The entry point is [`Obs`], a cheaply clonable handle that is either
//! *enabled* (shared recorder + registry behind an `Arc`) or *disabled*
//! (a `None`; every operation is a single branch and performs no
//! allocation, locking or clock read). Code takes an `Obs` by value and
//! instruments unconditionally; the disabled path is the zero-cost
//! default.
//!
//! ```
//! use dfcm_obs::Obs;
//!
//! let obs = Obs::enabled();
//! {
//!     let mut span = obs.span("engine.attempt");
//!     span.arg("label", "cfg/a");
//!     // ... work ...
//! } // span records on drop
//! obs.add("engine_tasks_total", &[("outcome", "success")], 1);
//! let (events, metrics) = obs.snapshot();
//! assert_eq!(events.len(), 1);
//! assert!(!metrics.is_empty());
//! ```

pub mod export;
pub mod json;
pub mod metrics;
pub mod span;
pub mod summary;
pub mod timeseries;

use std::sync::{Arc, Mutex};

use metrics::{MetricsRegistry, MetricsSnapshot};
use span::{Event, SpanRecorder};
use timeseries::LaneSeries;

#[derive(Debug, Default)]
struct ObsInner {
    spans: SpanRecorder,
    metrics: MetricsRegistry,
    series: Mutex<Vec<LaneSeries>>,
}

/// A cheaply clonable observability handle, enabled or disabled.
///
/// Clones share the same recorder and registry, so one handle threaded
/// through engine workers accumulates into a single export. The
/// [`Default`] handle is disabled.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

impl PartialEq for Obs {
    /// Two handles are equal when they share the same recorder (or are
    /// both disabled) — the identity that matters for config equality.
    fn eq(&self, other: &Self) -> bool {
        match (&self.inner, &other.inner) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl Eq for Obs {}

impl Obs {
    /// A disabled handle: every operation is a no-op costing one branch.
    pub fn disabled() -> Self {
        Obs { inner: None }
    }

    /// A fresh enabled handle with its own recorder and registry;
    /// timestamps are relative to this call.
    pub fn enabled() -> Self {
        Obs {
            inner: Some(Arc::new(ObsInner::default())),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Microseconds since the handle was created (0 when disabled).
    pub fn now_us(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.spans.now_us())
    }

    /// Opens a span named `name`; it records its wall-clock interval
    /// when the returned guard drops. On a disabled handle the guard is
    /// inert and nothing is allocated.
    pub fn span(&self, name: &str) -> SpanGuard {
        SpanGuard {
            inner: self.inner.as_ref().map(|i| {
                Box::new(SpanGuardInner {
                    obs: Arc::clone(i),
                    name: name.to_owned(),
                    start_us: i.spans.now_us(),
                    args: Vec::new(),
                })
            }),
        }
    }

    /// Adds `delta` to the counter `name{labels}`.
    pub fn add(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        if let Some(i) = &self.inner {
            i.metrics.add(name, labels, delta);
        }
    }

    /// Sets the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        if let Some(i) = &self.inner {
            i.metrics.gauge(name, labels, value);
        }
    }

    /// Observes `value` in the histogram `name{labels}` (created with
    /// `bounds` on first use).
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], bounds: &[f64], value: f64) {
        if let Some(i) = &self.inner {
            i.metrics.observe(name, labels, bounds, value);
        }
    }

    /// Records a point-in-time sample (a Chrome trace counter event).
    pub fn sample(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        if let Some(i) = &self.inner {
            i.spans.record_sample(name, labels, value);
        }
    }

    /// Merges a metrics snapshot (e.g. per-worker partial results) into
    /// the registry deterministically.
    pub fn merge_metrics(&self, snapshot: &MetricsSnapshot) {
        if let Some(i) = &self.inner {
            i.metrics.merge(snapshot);
        }
    }

    /// A sorted copy of all recorded events and metrics.
    pub fn snapshot(&self) -> (Vec<Event>, MetricsSnapshot) {
        match &self.inner {
            Some(i) => (i.spans.snapshot(), i.metrics.snapshot()),
            None => (Vec::new(), MetricsSnapshot::default()),
        }
    }

    /// Attaches a finished per-lane time series (dropped when disabled);
    /// it is rendered into `series.jsonl` by [`Obs::write_exports`].
    pub fn record_series(&self, lane: LaneSeries) {
        if let Some(i) = &self.inner {
            i.series.lock().expect("series lock").push(lane);
        }
    }

    /// A copy of all recorded per-lane time series.
    pub fn series_snapshot(&self) -> Vec<LaneSeries> {
        match &self.inner {
            Some(i) => i.series.lock().expect("series lock").clone(),
            None => Vec::new(),
        }
    }

    /// Writes all export formats into `dir` (no-op when disabled).
    /// `series.jsonl` is only written when at least one lane recorded a
    /// time series.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the atomic writes.
    pub fn write_exports(&self, dir: &std::path::Path) -> std::io::Result<()> {
        if !self.is_enabled() {
            return Ok(());
        }
        let (events, metrics) = self.snapshot();
        export::write_exports(dir, &events, &metrics)?;
        let lanes = self.series_snapshot();
        if !lanes.is_empty() {
            let lines = timeseries::render_series(&lanes);
            export::write_jsonl_report(&dir.join(timeseries::SERIES_FILE), &lines)?;
        }
        Ok(())
    }
}

struct SpanGuardInner {
    obs: Arc<ObsInner>,
    name: String,
    start_us: u64,
    args: Vec<(String, String)>,
}

/// An open span; records its interval when dropped. Inert (and free)
/// when produced by a disabled [`Obs`].
pub struct SpanGuard {
    inner: Option<Box<SpanGuardInner>>,
}

impl SpanGuard {
    /// Attaches a key/value annotation (shown in trace viewers).
    pub fn arg(&mut self, key: &str, value: &str) {
        if let Some(i) = &mut self.inner {
            i.args.push((key.to_owned(), value.to_owned()));
        }
    }

    /// Whether this guard will record anything on drop.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(i) = self.inner.take() {
            let end = i.obs.spans.now_us();
            i.obs
                .spans
                .record_span(i.name, i.start_us, end.saturating_sub(i.start_us), i.args);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        let mut span = obs.span("x");
        span.arg("k", "v");
        drop(span);
        obs.add("c", &[], 1);
        obs.gauge("g", &[], 1.0);
        obs.observe("h", &[], &[1.0], 0.5);
        obs.sample("s", &[], 1.0);
        let (events, metrics) = obs.snapshot();
        assert!(events.is_empty());
        assert!(metrics.is_empty());
    }

    #[test]
    fn clones_share_state() {
        let obs = Obs::enabled();
        let clone = obs.clone();
        clone.add("c", &[], 2);
        drop(clone.span("s"));
        let (events, metrics) = obs.snapshot();
        assert_eq!(events.len(), 1);
        assert!(!metrics.is_empty());
        assert_eq!(obs, obs.clone());
        assert_ne!(Obs::enabled(), obs);
        assert_eq!(Obs::disabled(), Obs::default());
    }

    #[test]
    fn span_guard_records_interval_with_args() {
        let obs = Obs::enabled();
        {
            let mut span = obs.span("engine.attempt");
            span.arg("attempt", "1");
        }
        let (events, _) = obs.snapshot();
        let Event::Span { name, args, .. } = &events[0] else {
            panic!("expected span");
        };
        assert_eq!(name, "engine.attempt");
        assert_eq!(args[0], ("attempt".to_owned(), "1".to_owned()));
    }

    #[test]
    fn merge_metrics_folds_worker_snapshots() {
        let worker = MetricsRegistry::new();
        worker.add("engine_records_total", &[], 100);
        let obs = Obs::enabled();
        obs.add("engine_records_total", &[], 50);
        obs.merge_metrics(&worker.snapshot());
        let (_, metrics) = obs.snapshot();
        assert_eq!(
            metrics.get("engine_records_total", &[]),
            Some(&metrics::MetricValue::Counter(150))
        );
    }
}
