//! Loading, validating and summarizing an obs export directory.
//!
//! `dfcm-tools obs summarize DIR` renders the human-readable
//! table-usage report from the JSONL event stream; `--check`
//! additionally validates all three export files (JSONL, Chrome trace,
//! Prometheus text) for well-formedness and internal consistency.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

use crate::export::{EVENTS_FILE, PROM_FILE, TRACE_FILE};
use crate::json::{parse, Json};

/// One metric reconstructed from the JSONL export.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadedMetric {
    /// Metric name.
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
    /// Kind tag: `counter`, `gauge` or `histogram`.
    pub kind: String,
    /// Scalar value (counter/gauge) or histogram sum.
    pub value: f64,
    /// Histogram observation count (0 for scalar kinds).
    pub count: u64,
}

/// One time-series sample reconstructed from the JSONL export.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadedSample {
    /// Series name.
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
    /// Microseconds since the run's epoch.
    pub ts_us: u64,
    /// The sampled value.
    pub value: f64,
}

/// The parsed contents of an obs directory's JSONL export.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObsData {
    /// Number of span lines (spans are summarized only in aggregate).
    pub span_count: usize,
    /// Every sample line, in file order.
    pub samples: Vec<LoadedSample>,
    /// Every metric line, in file order.
    pub metrics: Vec<LoadedMetric>,
}

impl ObsData {
    /// Looks up a metric by name and one distinguishing label value.
    fn metric(&self, name: &str, label: &str, value: &str) -> Option<&LoadedMetric> {
        self.metrics
            .iter()
            .find(|m| m.name == name && m.labels.iter().any(|(k, v)| k == label && v == value))
    }
}

fn labels_of(value: &Json, key: &str) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = match value.get(key) {
        Some(Json::Obj(m)) => m
            .iter()
            .filter_map(|(k, v)| v.as_str().map(|s| (k.clone(), s.to_owned())))
            .collect(),
        _ => Vec::new(),
    };
    out.sort();
    out
}

/// Parses the JSONL event stream of an obs directory.
///
/// # Errors
///
/// Returns a message naming the offending line when any line is not one
/// of the known record types. A missing directory, an empty directory
/// (no export ever ran) and a partially-written export (some files
/// present, [`EVENTS_FILE`] absent) each get a distinct, actionable
/// message instead of a bare I/O error.
pub fn load(dir: &Path) -> Result<ObsData, String> {
    if !dir.is_dir() {
        return Err(format!(
            "{}: not a directory — no obs export found (run with --obs {} first)",
            dir.display(),
            dir.display()
        ));
    }
    let path = dir.join(EVENTS_FILE);
    if !path.is_file() {
        let present: Vec<String> = [
            EVENTS_FILE,
            crate::export::TRACE_FILE,
            crate::export::PROM_FILE,
        ]
        .iter()
        .filter(|f| dir.join(f).is_file())
        .map(|f| (*f).to_owned())
        .collect();
        return Err(if present.is_empty() {
            format!(
                "{}: empty obs directory ({EVENTS_FILE} missing) — \
                 was the run instrumented with --obs?",
                dir.display()
            )
        } else {
            format!(
                "{}: partial obs export — {EVENTS_FILE} missing but {} present \
                 (the writing run may have been interrupted; re-run it)",
                dir.display(),
                present.join(", ")
            )
        });
    }
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut data = ObsData::default();
    for (i, line) in text.lines().enumerate() {
        let value = parse(line).map_err(|e| format!("{EVENTS_FILE} line {}: {e}", i + 1))?;
        let kind = value
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{EVENTS_FILE} line {}: missing \"type\"", i + 1))?;
        let name = value
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{EVENTS_FILE} line {}: missing \"name\"", i + 1))?
            .to_owned();
        match kind {
            "span" => data.span_count += 1,
            "sample" => data.samples.push(LoadedSample {
                name,
                labels: labels_of(&value, "labels"),
                ts_us: value.get("ts_us").and_then(Json::as_u64).unwrap_or(0),
                value: value.get("value").and_then(Json::as_f64).unwrap_or(0.0),
            }),
            "metric" => {
                let metric_kind = value
                    .get("kind")
                    .and_then(Json::as_str)
                    .unwrap_or("counter")
                    .to_owned();
                let (scalar, count) = if metric_kind == "histogram" {
                    (
                        value.get("sum").and_then(Json::as_f64).unwrap_or(0.0),
                        value.get("count").and_then(Json::as_u64).unwrap_or(0),
                    )
                } else {
                    (value.get("value").and_then(Json::as_f64).unwrap_or(0.0), 0)
                };
                data.metrics.push(LoadedMetric {
                    name,
                    labels: labels_of(&value, "labels"),
                    kind: metric_kind,
                    value: scalar,
                    count,
                });
            }
            other => {
                return Err(format!(
                    "{EVENTS_FILE} line {}: unknown record type `{other}`",
                    i + 1
                ))
            }
        }
    }
    Ok(data)
}

/// One parsed Prometheus sample: `(name, sorted labels, value)`.
pub type PromSample = (String, Vec<(String, String)>, f64);

/// Parses a Prometheus text exposition into `(name, labels, value)`
/// samples, ignoring comment lines.
///
/// # Errors
///
/// Returns a message naming the offending line on malformed input.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |what: &str| format!("line {}: {what}: `{line}`", i + 1);
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| err("expected `series value`"))?;
        let value: f64 = match value {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            v => v.parse().map_err(|_| err("bad sample value"))?,
        };
        let (name, labels) = match series.split_once('{') {
            None => (series.to_owned(), Vec::new()),
            Some((name, rest)) => {
                let body = rest
                    .strip_suffix('}')
                    .ok_or_else(|| err("unterminated label set"))?;
                let mut labels = Vec::new();
                // Label values are JSON-style quoted strings without
                // embedded commas in this workspace's output.
                for pair in body.split(',') {
                    let (k, v) = pair.split_once('=').ok_or_else(|| err("bad label pair"))?;
                    let v = parse(v)
                        .ok()
                        .and_then(|j| j.as_str().map(str::to_owned))
                        .ok_or_else(|| err("label value is not a quoted string"))?;
                    labels.push((k.to_owned(), v));
                }
                labels.sort();
                (name.to_owned(), labels)
            }
        };
        out.push((name, labels, value));
    }
    Ok(out)
}

fn check_chrome_trace(dir: &Path, problems: &mut Vec<String>) {
    let path = dir.join(TRACE_FILE);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            problems.push(format!("{TRACE_FILE}: {e}"));
            return;
        }
    };
    let trace = match parse(&text) {
        Ok(t) => t,
        Err(e) => {
            problems.push(format!("{TRACE_FILE}: {e}"));
            return;
        }
    };
    let Some(items) = trace.get("traceEvents").and_then(Json::as_arr) else {
        problems.push(format!("{TRACE_FILE}: missing traceEvents array"));
        return;
    };
    // Complete ("X") events need a duration; duration ("B"/"E") events
    // must nest properly per (tid, name).
    let mut open: BTreeMap<(u64, String), u64> = BTreeMap::new();
    for (i, item) in items.iter().enumerate() {
        let ph = item.get("ph").and_then(Json::as_str).unwrap_or("");
        let tid = item.get("tid").and_then(Json::as_u64).unwrap_or(0);
        let name = item
            .get("name")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_owned();
        match ph {
            "X" => {
                if item.get("dur").and_then(Json::as_u64).is_none() {
                    problems.push(format!(
                        "{TRACE_FILE}: event {i} (`{name}`) has ph=X but no dur"
                    ));
                }
            }
            "B" => *open.entry((tid, name.clone())).or_insert(0) += 1,
            "E" => match open.get_mut(&(tid, name.clone())) {
                Some(n) if *n > 0 => *n -= 1,
                _ => problems.push(format!("{TRACE_FILE}: event {i} (`{name}`) E without B")),
            },
            "C" | "M" | "i" => {}
            other => problems.push(format!("{TRACE_FILE}: event {i} has unknown ph `{other}`")),
        }
        if item.get("ts").and_then(Json::as_u64).is_none() {
            problems.push(format!("{TRACE_FILE}: event {i} (`{name}`) missing ts"));
        }
    }
    for ((tid, name), n) in open {
        if n > 0 {
            problems.push(format!(
                "{TRACE_FILE}: {n} unmatched B event(s) for `{name}` on tid {tid}"
            ));
        }
    }
}

fn check_prometheus(dir: &Path, data: &ObsData, problems: &mut Vec<String>) {
    let path = dir.join(PROM_FILE);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            problems.push(format!("{PROM_FILE}: {e}"));
            return;
        }
    };
    let samples = match parse_prometheus(&text) {
        Ok(s) => s,
        Err(e) => {
            problems.push(format!("{PROM_FILE}: {e}"));
            return;
        }
    };
    // Every counter/gauge in the JSONL export must appear with the same
    // value in the Prometheus export.
    for metric in &data.metrics {
        if metric.kind == "histogram" {
            let count = samples.iter().find(|(name, labels, _)| {
                name == &format!("{}_count", metric.name) && *labels == metric.labels
            });
            match count {
                None => problems.push(format!(
                    "{PROM_FILE}: histogram `{}` missing _count series",
                    metric.name
                )),
                Some((_, _, v)) if *v != metric.count as f64 => problems.push(format!(
                    "{PROM_FILE}: `{}_count` is {v}, JSONL says {}",
                    metric.name, metric.count
                )),
                Some(_) => {}
            }
            continue;
        }
        let found = samples
            .iter()
            .find(|(name, labels, _)| name == &metric.name && *labels == metric.labels);
        match found {
            None => problems.push(format!(
                "{PROM_FILE}: metric `{}` from JSONL not found",
                metric.name
            )),
            Some((_, _, v)) if (*v - metric.value).abs() > 1e-6 => problems.push(format!(
                "{PROM_FILE}: `{}` is {v}, JSONL says {}",
                metric.name, metric.value
            )),
            Some(_) => {}
        }
    }
}

fn check_alias_reconciliation(data: &ObsData, problems: &mut Vec<String>) {
    // Per spec: sum of predictor_alias_correct_total across classes,
    // divided by the alias total, must equal the eval_accuracy gauge.
    let specs: Vec<&str> = data
        .metrics
        .iter()
        .filter(|m| m.name == "eval_accuracy")
        .filter_map(|m| {
            m.labels
                .iter()
                .find(|(k, _)| k == "spec")
                .map(|(_, v)| v.as_str())
        })
        .collect();
    for spec in specs {
        let sum_for = |name: &str| -> f64 {
            data.metrics
                .iter()
                .filter(|m| {
                    m.name == name && m.labels.iter().any(|(k, v)| k == "spec" && v == spec)
                })
                .map(|m| m.value)
                .sum()
        };
        let total = sum_for("predictor_alias_total");
        if total == 0.0 {
            continue; // predictor without aliasing instrumentation
        }
        let correct = sum_for("predictor_alias_correct_total");
        let accuracy = data
            .metric("eval_accuracy", "spec", spec)
            .map(|m| m.value)
            .unwrap_or(0.0);
        if ((correct / total) - accuracy).abs() > 1e-4 {
            problems.push(format!(
                "alias counts for `{spec}` give accuracy {:.6} but eval_accuracy is {accuracy:.6}",
                correct / total
            ));
        }
    }
}

/// Validates all three export files in `dir`.
///
/// # Errors
///
/// Returns the list of problems found (missing files, malformed JSON,
/// unmatched trace events, JSONL/Prometheus value disagreements,
/// aliasing counts that don't reconcile with recorded accuracy).
pub fn check(dir: &Path) -> Result<(), Vec<String>> {
    let mut problems = Vec::new();
    let data = match load(dir) {
        Ok(d) => d,
        Err(e) => {
            problems.push(e);
            ObsData::default()
        }
    };
    check_chrome_trace(dir, &mut problems);
    check_prometheus(dir, &data, &mut problems);
    check_alias_reconciliation(&data, &mut problems);
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems)
    }
}

struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|&s| s.to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    fn render(&self, out: &mut String) {
        // Width in characters, not bytes: sparkline cells are multi-byte.
        let chars = |s: &str| s.chars().count();
        let mut widths: Vec<usize> = self.header.iter().map(|h| chars(h)).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(chars(cell));
            }
        }
        let mut line = |cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let pad = widths[i].saturating_sub(chars(cell));
                // First column left-aligned, the rest right-aligned.
                if i == 0 {
                    let _ = write!(out, "{cell}{}", " ".repeat(pad));
                } else {
                    let _ = write!(out, "{}{cell}", " ".repeat(pad));
                }
            }
            out.push('\n');
        };
        line(&self.header);
        line(
            &self
                .header
                .iter()
                .enumerate()
                .map(|(i, _)| "-".repeat(widths[i]))
                .collect::<Vec<_>>(),
        );
        for row in &self.rows {
            line(row);
        }
    }
}

fn label(metric_labels: &[(String, String)], key: &str) -> String {
    metric_labels
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.clone())
        .unwrap_or_default()
}

/// Renders `values` as a unicode block-bar sparkline scaled to the
/// largest value (empty input renders empty). Shared with the
/// `dfcm-tools obs report` phase renderer.
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().cloned().fold(0.0_f64, f64::max);
    values
        .iter()
        .map(|&v| {
            let idx = if max > 0.0 {
                ((v / max) * (BARS.len() - 1) as f64).round() as usize
            } else {
                0
            };
            BARS[idx.min(BARS.len() - 1)]
        })
        .collect()
}

/// Renders the human-readable table-usage report for an obs directory:
/// per-predictor table occupancy (final state plus occupancy-over-time
/// sparkline) and the aliasing breakdown per predictor config.
pub fn summarize(data: &ObsData) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "obs summary: {} span(s), {} sample(s), {} metric(s)\n",
        data.span_count,
        data.samples.len(),
        data.metrics.len()
    );

    // -- Table usage -------------------------------------------------
    let mut table_keys: Vec<(String, String)> = data
        .metrics
        .iter()
        .filter(|m| m.name == "predictor_table_entries")
        .map(|m| (label(&m.labels, "spec"), label(&m.labels, "table")))
        .collect();
    table_keys.sort();
    table_keys.dedup();
    if !table_keys.is_empty() {
        let _ = writeln!(out, "Table usage");
        let mut t = Table::new(&[
            "spec",
            "table",
            "entries",
            "occupied",
            "occ%",
            "writes",
            "overwrites",
            "occupancy/time",
        ]);
        for (spec, tbl) in &table_keys {
            let find = |name: &str| -> f64 {
                data.metrics
                    .iter()
                    .find(|m| {
                        m.name == name
                            && label(&m.labels, "spec") == *spec
                            && label(&m.labels, "table") == *tbl
                    })
                    .map(|m| m.value)
                    .unwrap_or(0.0)
            };
            let entries = find("predictor_table_entries");
            let occupied = find("predictor_table_occupied");
            let series: Vec<f64> = data
                .samples
                .iter()
                .filter(|s| {
                    s.name == "table_occupancy_percent"
                        && label(&s.labels, "spec") == *spec
                        && label(&s.labels, "table") == *tbl
                })
                .map(|s| s.value)
                .collect();
            t.row(vec![
                spec.clone(),
                tbl.clone(),
                format!("{entries:.0}"),
                format!("{occupied:.0}"),
                if entries > 0.0 {
                    format!("{:.1}", 100.0 * occupied / entries)
                } else {
                    "-".to_owned()
                },
                format!("{:.0}", find("predictor_table_writes_total")),
                format!("{:.0}", find("predictor_table_overwrites_total")),
                sparkline(&series),
            ]);
        }
        t.render(&mut out);
        out.push('\n');
    }

    // -- Aliasing breakdown ------------------------------------------
    let mut specs: Vec<String> = data
        .metrics
        .iter()
        .filter(|m| m.name == "predictor_alias_total")
        .map(|m| label(&m.labels, "spec"))
        .collect();
    specs.sort();
    specs.dedup();
    if !specs.is_empty() {
        let _ = writeln!(out, "Aliasing breakdown (paper taxonomy)");
        let mut t = Table::new(&["spec", "class", "count", "fraction", "correct", "accuracy"]);
        for spec in &specs {
            let classes: Vec<(String, f64)> = data
                .metrics
                .iter()
                .filter(|m| m.name == "predictor_alias_total" && label(&m.labels, "spec") == *spec)
                .map(|m| (label(&m.labels, "class"), m.value))
                .collect();
            let total: f64 = classes.iter().map(|(_, v)| v).sum();
            for (class, count) in &classes {
                let correct = data
                    .metrics
                    .iter()
                    .find(|m| {
                        m.name == "predictor_alias_correct_total"
                            && label(&m.labels, "spec") == *spec
                            && label(&m.labels, "class") == *class
                    })
                    .map(|m| m.value)
                    .unwrap_or(0.0);
                t.row(vec![
                    spec.clone(),
                    class.clone(),
                    format!("{count:.0}"),
                    if total > 0.0 {
                        format!("{:.4}", count / total)
                    } else {
                        "-".to_owned()
                    },
                    format!("{correct:.0}"),
                    if *count > 0.0 {
                        format!("{:.4}", correct / count)
                    } else {
                        "-".to_owned()
                    },
                ]);
            }
            if let Some(acc) = data.metric("eval_accuracy", "spec", spec) {
                t.row(vec![
                    spec.clone(),
                    "(overall)".to_owned(),
                    format!("{total:.0}"),
                    "1.0000".to_owned(),
                    String::new(),
                    format!("{:.4}", acc.value),
                ]);
            }
        }
        t.render(&mut out);
        out.push('\n');
    }

    // -- VM execution tiers ------------------------------------------
    let mut vm_keys: Vec<(String, String)> = data
        .metrics
        .iter()
        .filter(|m| m.name == "vm_instructions_total")
        .map(|m| (label(&m.labels, "kernel"), label(&m.labels, "tier")))
        .collect();
    vm_keys.sort();
    vm_keys.dedup();
    if !vm_keys.is_empty() {
        let _ = writeln!(out, "VM execution tiers");
        let mut t = Table::new(&[
            "kernel",
            "tier",
            "instructions",
            "fused",
            "recordings",
            "traces",
            "rec-aborts",
            "replay-iters",
            "replay%",
            "guard-fails",
            "replay-aborts",
        ]);
        for (kernel, tier) in &vm_keys {
            let find = |name: &str| -> f64 {
                data.metrics
                    .iter()
                    .find(|m| {
                        m.name == name
                            && label(&m.labels, "kernel") == *kernel
                            && label(&m.labels, "tier") == *tier
                    })
                    .map(|m| m.value)
                    .unwrap_or(0.0)
            };
            let instructions = find("vm_instructions_total");
            let replayed = find("vm_replay_instructions_total");
            t.row(vec![
                kernel.clone(),
                tier.clone(),
                format!("{instructions:.0}"),
                format!("{:.0}", find("vm_fused_executed_total")),
                format!("{:.0}", find("vm_trace_recordings_started_total")),
                format!("{:.0}", find("vm_traces_recorded_total")),
                format!("{:.0}", find("vm_record_aborts_total")),
                format!("{:.0}", find("vm_replay_iterations_total")),
                if instructions > 0.0 {
                    format!("{:.1}", 100.0 * replayed / instructions)
                } else {
                    "-".to_owned()
                },
                format!("{:.0}", find("vm_guard_failures_total")),
                format!("{:.0}", find("vm_replay_aborts_total")),
            ]);
        }
        t.render(&mut out);
        out.push('\n');
    }

    // -- Engine ------------------------------------------------------
    let engine: Vec<&LoadedMetric> = data
        .metrics
        .iter()
        .filter(|m| m.name.starts_with("engine_"))
        .collect();
    if !engine.is_empty() {
        let _ = writeln!(out, "Engine");
        let mut t = Table::new(&["metric", "labels", "value"]);
        for m in engine {
            let labels = m
                .labels
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(",");
            let value = if m.kind == "histogram" {
                format!("count={} sum={:.3}", m.count, m.value)
            } else {
                format!("{:.3}", m.value)
            };
            t.row(vec![m.name.clone(), labels, value]);
        }
        t.render(&mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::write_exports;
    use crate::metrics::MetricsRegistry;
    use crate::span::Event;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("dfcm-obs-summary-{tag}-{}", std::process::id()))
    }

    fn write_sample_dir(dir: &Path) {
        let events = vec![Event::Sample {
            name: "table_occupancy_percent".into(),
            labels: vec![
                ("spec".into(), "dfcm".into()),
                ("table".into(), "l2".into()),
            ],
            ts_us: 5,
            value: 50.0,
        }];
        let r = MetricsRegistry::new();
        r.add(
            "predictor_table_entries",
            &[("spec", "dfcm"), ("table", "l2")],
            64,
        );
        r.add(
            "predictor_table_occupied",
            &[("spec", "dfcm"), ("table", "l2")],
            32,
        );
        r.add(
            "predictor_alias_total",
            &[("spec", "dfcm"), ("class", "none")],
            8,
        );
        r.add(
            "predictor_alias_total",
            &[("spec", "dfcm"), ("class", "l1")],
            2,
        );
        r.add(
            "predictor_alias_correct_total",
            &[("spec", "dfcm"), ("class", "none")],
            5,
        );
        r.gauge("eval_accuracy", &[("spec", "dfcm")], 0.5);
        write_exports(dir, &events, &r.snapshot()).unwrap();
    }

    #[test]
    fn load_and_summarize_roundtrip() {
        let dir = temp_dir("roundtrip");
        write_sample_dir(&dir);
        let data = load(&dir).unwrap();
        assert_eq!(data.samples.len(), 1);
        assert_eq!(data.metrics.len(), 6);
        let report = summarize(&data);
        assert!(report.contains("dfcm"));
        assert!(report.contains("50.0") || report.contains("occ%"));
        assert!(report.contains("Aliasing breakdown"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_missing_dir_is_a_clear_error() {
        let dir = temp_dir("no-such-dir");
        let err = load(&dir).unwrap_err();
        assert!(err.contains("no obs export found"), "{err}");
        assert!(err.contains("--obs"), "{err}");
    }

    #[test]
    fn load_empty_dir_is_a_clear_error() {
        let dir = temp_dir("empty-dir");
        std::fs::create_dir_all(&dir).unwrap();
        let err = load(&dir).unwrap_err();
        assert!(err.contains("empty obs directory"), "{err}");
        assert!(err.contains("--obs"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_partial_export_names_present_files() {
        let dir = temp_dir("partial-dir");
        write_sample_dir(&dir);
        std::fs::remove_file(dir.join(EVENTS_FILE)).unwrap();
        let err = load(&dir).unwrap_err();
        assert!(err.contains("partial obs export"), "{err}");
        assert!(err.contains(TRACE_FILE), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn check_accepts_consistent_dir() {
        let dir = temp_dir("consistent");
        write_sample_dir(&dir);
        check(&dir).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn check_flags_corrupt_trace() {
        let dir = temp_dir("corrupt");
        write_sample_dir(&dir);
        std::fs::write(dir.join(TRACE_FILE), "{not json").unwrap();
        let problems = check(&dir).unwrap_err();
        assert!(problems.iter().any(|p| p.contains(TRACE_FILE)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn check_flags_unreconciled_alias_counts() {
        let dir = temp_dir("alias");
        write_sample_dir(&dir);
        // Rewrite events.jsonl with an accuracy that contradicts the
        // alias counters (5 correct / 10 total = 0.5, claim 0.9).
        let text = std::fs::read_to_string(dir.join(EVENTS_FILE)).unwrap();
        let text = text.replace("0.500000", "0.900000");
        std::fs::write(dir.join(EVENTS_FILE), text).unwrap();
        let problems = check(&dir).unwrap_err();
        assert!(problems.iter().any(|p| p.contains("alias counts")));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn summarize_renders_vm_tier_section() {
        let r = MetricsRegistry::new();
        let labels = &[("kernel", "sieve"), ("tier", "fast")];
        r.add("vm_instructions_total", labels, 10_000);
        r.add("vm_fused_executed_total", labels, 1_200);
        r.add("vm_trace_recordings_started_total", labels, 3);
        r.add("vm_traces_recorded_total", labels, 2);
        r.add("vm_record_aborts_total", labels, 1);
        r.add("vm_replay_iterations_total", labels, 400);
        r.add("vm_replay_instructions_total", labels, 7_500);
        r.add("vm_guard_failures_total", labels, 2);
        r.add("vm_replay_aborts_total", labels, 1);
        let snapshot = r.snapshot();
        let data = ObsData {
            span_count: 0,
            samples: Vec::new(),
            metrics: snapshot
                .metrics
                .iter()
                .map(|(k, v)| LoadedMetric {
                    name: k.name.clone(),
                    labels: k.labels.clone(),
                    kind: v.kind().to_owned(),
                    value: match v {
                        crate::metrics::MetricValue::Counter(n) => *n as f64,
                        crate::metrics::MetricValue::Gauge(g) => *g,
                        crate::metrics::MetricValue::Histogram(h) => h.sum,
                    },
                    count: 0,
                })
                .collect(),
        };
        let report = summarize(&data);
        assert!(report.contains("VM execution tiers"), "{report}");
        assert!(report.contains("sieve"), "{report}");
        // replay% = 7500 / 10000.
        assert!(report.contains("75.0"), "{report}");
    }

    #[test]
    fn prometheus_parser_roundtrips_values() {
        let r = MetricsRegistry::new();
        r.add("c_total", &[("spec", "a b")], 7);
        r.observe("h_seconds", &[], &[0.5, 1.0], 0.75);
        let text = crate::export::to_prometheus(&r.snapshot());
        let samples = parse_prometheus(&text).unwrap();
        assert!(samples
            .iter()
            .any(|(n, l, v)| n == "c_total" && l[0].1 == "a b" && *v == 7.0));
        assert!(samples
            .iter()
            .any(|(n, _, v)| n == "h_seconds_sum" && *v == 0.75));
        assert!(samples
            .iter()
            .any(|(n, _, v)| n == "h_seconds_count" && *v == 1.0));
    }

    #[test]
    fn sparkline_scales() {
        assert_eq!(sparkline(&[0.0, 50.0, 100.0]), "▁▅█");
        assert_eq!(sparkline(&[]), "");
    }
}
