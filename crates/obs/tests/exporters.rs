//! Exporter correctness: Chrome trace structure, Prometheus
//! round-tripping, and the deterministic/associative histogram merge
//! (property-tested via the workspace proptest shim).

use dfcm_obs::export::{to_chrome_trace, to_jsonl, to_prometheus};
use dfcm_obs::json::{parse, Json};
use dfcm_obs::metrics::{Histogram, MetricValue, MetricsRegistry, MetricsSnapshot};
use dfcm_obs::span::Event;
use dfcm_obs::summary::parse_prometheus;
use dfcm_obs::Obs;

use proptest::prelude::*;

fn spanful_obs() -> Obs {
    let obs = Obs::enabled();
    {
        let mut outer = obs.span("engine.worker");
        outer.arg("worker", "0");
        let mut inner = obs.span("engine.attempt");
        inner.arg("label", "cfg/trace");
        inner.arg("outcome", "success");
        drop(inner);
    }
    obs.sample("table_occupancy_percent", &[("table", "l2")], 42.0);
    obs.add("engine_tasks_total", &[("outcome", "success")], 1);
    obs.observe("engine_task_seconds", &[], &[0.01, 0.1, 1.0, 10.0], 0.05);
    obs
}

#[test]
fn chrome_trace_is_valid_json_with_matched_events() {
    let (events, _) = spanful_obs().snapshot();
    let trace = parse(&to_chrome_trace(&events)).expect("trace.json must parse");
    let items = trace
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert_eq!(items.len(), 3);
    let mut open = 0i64;
    for item in items {
        match item.get("ph").and_then(Json::as_str).unwrap() {
            // Complete events are self-matching; B/E must pair up.
            "X" => assert!(item.get("dur").and_then(Json::as_u64).is_some()),
            "B" => open += 1,
            "E" => {
                open -= 1;
                assert!(open >= 0, "E before B");
            }
            "C" => assert!(item.get("args").is_some()),
            other => panic!("unexpected phase {other}"),
        }
        assert!(item.get("ts").and_then(Json::as_u64).is_some());
    }
    assert_eq!(open, 0, "unmatched B events");
}

#[test]
fn nested_span_is_contained_in_parent() {
    let (events, _) = spanful_obs().snapshot();
    let spans: Vec<(&str, u64, u64)> = events
        .iter()
        .filter_map(|e| match e {
            Event::Span {
                name,
                start_us,
                dur_us,
                ..
            } => Some((name.as_str(), *start_us, *dur_us)),
            _ => None,
        })
        .collect();
    let worker = spans.iter().find(|s| s.0 == "engine.worker").unwrap();
    let attempt = spans.iter().find(|s| s.0 == "engine.attempt").unwrap();
    assert!(attempt.1 >= worker.1);
    assert!(attempt.1 + attempt.2 <= worker.1 + worker.2);
}

#[test]
fn prometheus_round_trips_counter_and_histogram() {
    let (_, metrics) = spanful_obs().snapshot();
    let text = to_prometheus(&metrics);
    let samples = parse_prometheus(&text).expect("exposition must parse");

    let counter = samples
        .iter()
        .find(|(n, l, _)| n == "engine_tasks_total" && l[0] == ("outcome".into(), "success".into()))
        .expect("counter present");
    assert_eq!(counter.2, 1.0);

    let bucket = samples
        .iter()
        .find(|(n, l, _)| {
            n == "engine_task_seconds_bucket" && l.contains(&("le".into(), "0.1".into()))
        })
        .expect("bucket present");
    assert_eq!(bucket.2, 1.0);
    let sum = samples
        .iter()
        .find(|(n, _, _)| n == "engine_task_seconds_sum")
        .unwrap();
    assert!((sum.2 - 0.05).abs() < 1e-9);
    let count = samples
        .iter()
        .find(|(n, _, _)| n == "engine_task_seconds_count")
        .unwrap();
    assert_eq!(count.2, 1.0);
}

#[test]
fn jsonl_stream_parses_line_by_line() {
    let (events, metrics) = spanful_obs().snapshot();
    let jsonl = to_jsonl(&events, &metrics);
    assert!(!jsonl.is_empty());
    let mut types = std::collections::BTreeSet::new();
    for line in jsonl.lines() {
        let value = parse(line).expect("every JSONL line must parse");
        types.insert(
            value
                .get("type")
                .and_then(Json::as_str)
                .expect("type field")
                .to_owned(),
        );
    }
    assert!(types.contains("span"));
    assert!(types.contains("sample"));
    assert!(types.contains("metric"));
}

const BOUNDS: [f64; 3] = [1.0, 4.0, 16.0];

fn hist_from(values: &[f64]) -> Histogram {
    let mut h = Histogram::new(&BOUNDS);
    for &v in values {
        h.observe(v);
    }
    h
}

fn snap(name: &str, h: Histogram) -> MetricsSnapshot {
    MetricsSnapshot {
        metrics: vec![(
            dfcm_obs::metrics::MetricKey::new(name, &[]),
            MetricValue::Histogram(h),
        )],
    }
}

proptest! {
    /// Histogram merge is associative and order-independent: merging
    /// three observation sets in either association gives bit-identical
    /// counts, sums and totals.
    #[test]
    fn histogram_merge_is_associative(
        a in prop::collection::vec(0.0f64..32.0, 0..32),
        b in prop::collection::vec(0.0f64..32.0, 0..32),
        c in prop::collection::vec(0.0f64..32.0, 0..32),
    ) {
        // (a ⊕ b) ⊕ c
        let mut left = hist_from(&a);
        left.merge(&hist_from(&b));
        left.merge(&hist_from(&c));
        // a ⊕ (b ⊕ c)
        let mut right_tail = hist_from(&b);
        right_tail.merge(&hist_from(&c));
        let mut right = hist_from(&a);
        right.merge(&right_tail);

        prop_assert_eq!(&left.counts, &right.counts);
        prop_assert_eq!(left.count, right.count);
        prop_assert_eq!(left.count as usize, a.len() + b.len() + c.len());
        // Sum differs only by float association error.
        prop_assert!((left.sum - right.sum).abs() < 1e-6);

        // The same holds at snapshot level, and commutes.
        let mut s1 = snap("h", left.clone());
        s1.merge(&snap("h", hist_from(&[])));
        let mut s2 = snap("h", hist_from(&[]));
        s2.merge(&snap("h", left));
        prop_assert_eq!(s1, s2);
    }

    /// Counter merge at snapshot level is commutative.
    #[test]
    fn counter_merge_commutes(x in 0u64..1_000_000, y in 0u64..1_000_000) {
        let r1 = MetricsRegistry::new();
        r1.add("c", &[], x);
        let r2 = MetricsRegistry::new();
        r2.add("c", &[], y);
        let mut ab = r1.snapshot();
        ab.merge(&r2.snapshot());
        let mut ba = r2.snapshot();
        ba.merge(&r1.snapshot());
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.get("c", &[]), Some(&MetricValue::Counter(x + y)));
    }
}
