//! Property tests for the phase-resolved time series: windowed merge is
//! associative and commutative over arbitrary partitions of an access
//! stream, so chunk-parallel folds always equal the serial fold.

use dfcm_obs::timeseries::{WindowSeries, MISS_MAGNITUDE_BOUNDS};

use proptest::prelude::*;

const LABELS: &[&str] = &["l1", "hash", "l2_priv", "l2_pc", "none"];

/// One synthetic prediction outcome, generated per index.
#[derive(Debug, Clone)]
struct Outcome {
    class: usize,
    correct: bool,
    magnitude: u64,
}

fn outcome() -> impl Strategy<Value = Outcome> {
    (0usize..LABELS.len(), any::<bool>(), 0u64..1_000_000).prop_map(
        |(class, correct, magnitude)| Outcome {
            class,
            correct,
            magnitude,
        },
    )
}

fn fold(events: &[Outcome], range: std::ops::Range<usize>) -> WindowSeries {
    let mut series = WindowSeries::new(16, LABELS, MISS_MAGNITUDE_BOUNDS);
    for i in range {
        let e = &events[i];
        series.record(i as u64, e.class, e.correct, e.magnitude);
    }
    series
}

proptest! {
    /// Splitting the stream at two arbitrary points and merging the
    /// three partial series — in either association order, and with the
    /// operands commuted — is bit-identical to the serial fold.
    #[test]
    fn window_series_merge_is_associative_and_commutative(
        events in prop::collection::vec(outcome(), 1..200),
        cut_a in 0usize..200,
        cut_b in 0usize..200,
    ) {
        let n = events.len();
        let (lo, hi) = (cut_a.min(cut_b) % n, cut_a.max(cut_b) % n);
        let (lo, hi) = (lo.min(hi), lo.max(hi));
        let serial = fold(&events, 0..n);

        let a = fold(&events, 0..lo);
        let b = fold(&events, lo..hi);
        let c = fold(&events, hi..n);

        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        prop_assert_eq!(&left, &serial);

        // a ⊕ (b ⊕ c)
        let mut tail = b.clone();
        tail.merge(&c);
        let mut right = a.clone();
        right.merge(&tail);
        prop_assert_eq!(&right, &serial);

        // c ⊕ b ⊕ a (commuted)
        let mut rev = c;
        rev.merge(&b);
        rev.merge(&a);
        prop_assert_eq!(&rev, &serial);
    }

    /// Window totals always reconcile with the per-class breakdown and
    /// the miss histogram, whatever the stream looked like.
    #[test]
    fn window_totals_reconcile(events in prop::collection::vec(outcome(), 0..200)) {
        let series = fold(&events, 0..events.len());
        let totals = series.totals();
        prop_assert_eq!(totals.predictions, events.len() as u64);
        prop_assert_eq!(totals.class_total.iter().sum::<u64>(), totals.predictions);
        prop_assert_eq!(totals.class_correct.iter().sum::<u64>(), totals.correct);
        prop_assert_eq!(totals.miss_magnitude.count, totals.predictions - totals.correct);
        for w in series.windows() {
            prop_assert!(w.predictions <= series.window_len());
        }
    }
}
