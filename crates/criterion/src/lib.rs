//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships a minimal std-only benchmark harness with the same surface the
//! bench files use: `Criterion::benchmark_group`, `bench_function`,
//! `Bencher::iter`, `Throughput`, `BenchmarkId`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: one warm-up call estimates the per-iteration cost,
//! then the routine runs for a fixed sampling window (default 300 ms,
//! `CRITERION_SAMPLE_MS` overrides) and the mean time per iteration is
//! reported, with throughput when the group declared one. No statistics,
//! plots, or baselines — numbers print to stdout.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness state, one per bench binary.
pub struct Criterion {
    sample: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("CRITERION_SAMPLE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(300);
        Criterion {
            sample: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n{name}");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration work so results include a rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark and prints its timing.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            sample: self.criterion.sample,
            measured: None,
        };
        f(&mut bencher);
        let Some((iters, total)) = bencher.measured else {
            println!(
                "  {}/{}: no measurement (iter was never called)",
                self.name, id.0
            );
            return self;
        };
        let per_iter = total.as_secs_f64() / iters as f64;
        let mut line = format!(
            "  {}/{:<40} time: {:>12}  ({} iters)",
            self.name,
            id.0,
            format_seconds(per_iter),
            iters
        );
        if let Some(t) = &self.throughput {
            let (count, unit) = match t {
                Throughput::Elements(n) => (*n, "elem/s"),
                Throughput::Bytes(n) | Throughput::BytesDecimal(n) => (*n, "B/s"),
            };
            let rate = count as f64 / per_iter;
            line.push_str(&format!("  thrpt: {}", format_rate(rate, unit)));
        }
        println!("{line}");
        self
    }

    /// Ends the group (kept for API compatibility; printing is eager).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` does the measuring.
pub struct Bencher {
    sample: Duration,
    measured: Option<(u64, Duration)>,
}

impl Bencher {
    /// Measures `routine` over a sampling window and records the result.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warmup = Instant::now();
        black_box(routine());
        let estimate = warmup.elapsed().max(Duration::from_nanos(1));
        let iters = (self.sample.as_nanos() / estimate.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.measured = Some((iters, start.elapsed()));
    }
}

/// Work performed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration (binary units in real criterion).
    Bytes(u64),
    /// Bytes processed per iteration (decimal units in real criterion).
    BytesDecimal(u64),
}

/// A benchmark's name, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A `name/parameter` id.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_owned())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.4} s")
    } else if s >= 1e-3 {
        format!("{:.4} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.4} µs", s * 1e6)
    } else {
        format!("{:.4} ns", s * 1e9)
    }
}

fn format_rate(rate: f64, unit: &str) -> String {
    if rate >= 1e9 {
        format!("{:.3} G{unit}", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.3} M{unit}", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.3} K{unit}", rate / 1e3)
    } else {
        format!("{rate:.3} {unit}")
    }
}

/// Collects benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// The bench binary's `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags (e.g. `--bench`); this
            // shim has no options, so arguments are ignored.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut c = Criterion {
            sample: Duration::from_millis(5),
        };
        let mut group = c.benchmark_group("shim_test");
        group.throughput(Throughput::Elements(10));
        let mut ran = 0u64;
        group.bench_function(BenchmarkId::new("count", 1), |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn unit_formatting() {
        assert_eq!(format_seconds(2.0), "2.0000 s");
        assert_eq!(format_seconds(0.0025), "2.5000 ms");
        assert!(format_seconds(2.5e-6).ends_with("µs"));
        assert!(format_seconds(3.0e-9).ends_with("ns"));
        assert_eq!(format_rate(2_500_000.0, "elem/s"), "2.500 Melem/s");
    }
}
