use dfcm::ConfidencePredictor;
use dfcm_trace::Trace;

use crate::run::RunStats;

/// Coverage/accuracy outcome of running a confidence-estimating predictor
/// over a trace.
///
/// A confidence estimator trades *coverage* (the fraction of predictions
/// it is willing to issue) for *issued accuracy* (the accuracy of the
/// predictions it does issue) — the trade-off that matters when
/// mispredictions cost pipeline squashes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConfidenceStats {
    /// Statistics over every prediction, issued or not.
    pub all: RunStats,
    /// Statistics over the issued (confident) predictions only.
    pub issued: RunStats,
}

impl ConfidenceStats {
    /// Fraction of predictions the estimator issued.
    pub fn coverage(&self) -> f64 {
        if self.all.predictions == 0 {
            0.0
        } else {
            self.issued.predictions as f64 / self.all.predictions as f64
        }
    }

    /// Accuracy over issued predictions.
    pub fn issued_accuracy(&self) -> f64 {
        self.issued.accuracy()
    }

    /// Accuracy over all predictions (as if every one were issued).
    pub fn overall_accuracy(&self) -> f64 {
        self.all.accuracy()
    }
}

/// Runs a confidence-estimating predictor over a buffered trace,
/// collecting both the unconditional and the issued-only statistics.
pub fn simulate_confidence<P>(predictor: &mut P, trace: &Trace) -> ConfidenceStats
where
    P: ConfidencePredictor + ?Sized,
{
    let mut stats = ConfidenceStats::default();
    for record in trace {
        let q = predictor.predict_confident(record.pc);
        let correct = q.value == record.value;
        stats.all.predictions += 1;
        stats.all.correct += u64::from(correct);
        if q.confident {
            stats.issued.predictions += 1;
            stats.issued.correct += u64::from(correct);
        }
        predictor.update(record.pc, record.value);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfcm::TaggedDfcmPredictor;
    use dfcm_trace::TraceRecord;

    #[test]
    fn coverage_and_accuracy_on_mixed_trace() {
        // Half stride (predictable), half random (not).
        let mut trace = Trace::new();
        let mut x = 3u64;
        for i in 0..4000u64 {
            trace.push(TraceRecord::new(0x10, 5 * i));
            x = x.wrapping_mul(6364136223846793005).wrapping_add(7);
            trace.push(TraceRecord::new(0x20, x >> 30));
        }
        let mut p = TaggedDfcmPredictor::builder()
            .l1_bits(8)
            .l2_bits(10)
            .build()
            .unwrap();
        let stats = simulate_confidence(&mut p, &trace);
        assert_eq!(stats.all.predictions, 8000);
        assert!(
            stats.coverage() > 0.3 && stats.coverage() < 0.8,
            "{}",
            stats.coverage()
        );
        assert!(
            stats.issued_accuracy() > stats.overall_accuracy() + 0.2,
            "issued {:.3} vs overall {:.3}",
            stats.issued_accuracy(),
            stats.overall_accuracy()
        );
    }

    #[test]
    fn empty_trace_is_safe() {
        let mut p = TaggedDfcmPredictor::builder()
            .l1_bits(4)
            .l2_bits(6)
            .build()
            .unwrap();
        let stats = simulate_confidence(&mut p, &Trace::new());
        assert_eq!(stats.coverage(), 0.0);
        assert_eq!(stats.issued_accuracy(), 0.0);
    }

    #[test]
    fn issued_subset_of_all() {
        let trace: Trace = (0..500).map(|i| TraceRecord::new(0x8, i % 9)).collect();
        let mut p = TaggedDfcmPredictor::builder()
            .l1_bits(4)
            .l2_bits(8)
            .build()
            .unwrap();
        let stats = simulate_confidence(&mut p, &trace);
        assert!(stats.issued.predictions <= stats.all.predictions);
        assert!(stats.issued.correct <= stats.all.correct);
    }
}
