//! Terminal charts: scatter/line plots and bar charts rendered as text.
//!
//! The repro binaries print the paper's *figures*, not just their data:
//! accuracy-vs-size curves render as log-x scatter plots, per-benchmark
//! comparisons as grouped bars. Pure text, no dependencies, deterministic.

use std::fmt::Write as _;

/// A named series of (x, y) points for a [`ScatterChart`].
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label; the first character is used as the plot marker.
    pub label: String,
    /// The data points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Convenience constructor.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }
}

/// A text scatter/line chart with optional logarithmic x axis.
///
/// ```
/// use dfcm_sim::chart::{ScatterChart, Series};
///
/// let chart = ScatterChart::new(40, 10)
///     .log_x()
///     .series(Series::new("fcm", vec![(8.0, 0.2), (64.0, 0.5), (512.0, 0.7)]))
///     .series(Series::new("dfcm", vec![(8.0, 0.5), (64.0, 0.65), (512.0, 0.75)]));
/// let drawing = chart.render();
/// assert!(drawing.contains('f'));
/// assert!(drawing.contains('d'));
/// ```
#[derive(Debug, Clone)]
pub struct ScatterChart {
    width: usize,
    height: usize,
    log_x: bool,
    y_range: Option<(f64, f64)>,
    series: Vec<Series>,
}

impl ScatterChart {
    /// Creates a chart with a plot area of `width` × `height` characters.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is smaller than 2.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width >= 2 && height >= 2, "plot area must be at least 2x2");
        ScatterChart {
            width,
            height,
            log_x: false,
            y_range: None,
            series: Vec::new(),
        }
    }

    /// Uses a base-2 logarithmic x axis (table sizes, Kbit budgets).
    #[must_use]
    pub fn log_x(mut self) -> Self {
        self.log_x = true;
        self
    }

    /// Fixes the y range instead of auto-scaling.
    #[must_use]
    pub fn y_range(mut self, lo: f64, hi: f64) -> Self {
        assert!(hi > lo, "empty y range");
        self.y_range = Some((lo, hi));
        self
    }

    /// Adds a series; its marker is the first character of the label.
    #[must_use]
    pub fn series(mut self, series: Series) -> Self {
        self.series.push(series);
        self
    }

    fn x_of(&self, x: f64) -> f64 {
        if self.log_x {
            x.max(f64::MIN_POSITIVE).log2()
        } else {
            x
        }
    }

    /// Renders the chart, with y labels on the left and a legend below.
    pub fn render(&self) -> String {
        let points: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(x, y)| (self.x_of(x), y)))
            .collect();
        if points.is_empty() {
            return "(empty chart)\n".to_owned();
        }
        let (mut x_lo, mut x_hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(x, _) in &points {
            x_lo = x_lo.min(x);
            x_hi = x_hi.max(x);
        }
        let (y_lo, y_hi) = self.y_range.unwrap_or_else(|| {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &(_, y) in &points {
                lo = lo.min(y);
                hi = hi.max(y);
            }
            if (hi - lo).abs() < 1e-12 {
                (lo - 0.5, hi + 0.5)
            } else {
                (lo, hi)
            }
        });
        if (x_hi - x_lo).abs() < 1e-12 {
            x_hi = x_lo + 1.0;
        }

        let mut grid = vec![vec![' '; self.width]; self.height];
        for s in &self.series {
            let marker = s.label.chars().next().unwrap_or('*');
            for &(x, y) in &s.points {
                let gx = ((self.x_of(x) - x_lo) / (x_hi - x_lo) * (self.width - 1) as f64).round()
                    as usize;
                let gy = ((y - y_lo) / (y_hi - y_lo) * (self.height - 1) as f64).round();
                if gy < 0.0 || gy as usize >= self.height || gx >= self.width {
                    continue;
                }
                let row = self.height - 1 - gy as usize;
                grid[row][gx] = marker;
            }
        }

        let mut out = String::new();
        for (i, row) in grid.iter().enumerate() {
            let y_here = y_hi - (y_hi - y_lo) * i as f64 / (self.height - 1) as f64;
            let label = if i == 0 || i == self.height - 1 || i == self.height / 2 {
                format!("{y_here:>6.2}")
            } else {
                " ".repeat(6)
            };
            let _ = writeln!(out, "{label} |{}", row.iter().collect::<String>());
        }
        let _ = writeln!(out, "{} +{}", " ".repeat(6), "-".repeat(self.width));
        let x_axis = if self.log_x {
            format!("2^{:.1} .. 2^{:.1} (log)", x_lo, x_hi)
        } else {
            format!("{x_lo:.1} .. {x_hi:.1}")
        };
        let _ = writeln!(out, "{} x: {x_axis}", " ".repeat(6));
        let legend: Vec<String> = self
            .series
            .iter()
            .map(|s| format!("{}={}", s.label.chars().next().unwrap_or('*'), s.label))
            .collect();
        let _ = writeln!(out, "{} {}", " ".repeat(6), legend.join("  "));
        out
    }
}

/// A horizontal grouped bar chart for per-category comparisons.
///
/// ```
/// use dfcm_sim::chart::BarChart;
///
/// let mut chart = BarChart::new(30);
/// chart.bar("fcm", 0.62);
/// chart.bar("dfcm", 0.73);
/// let drawing = chart.render();
/// assert!(drawing.contains("dfcm"));
/// ```
#[derive(Debug, Clone)]
pub struct BarChart {
    width: usize,
    max: Option<f64>,
    bars: Vec<(String, f64)>,
}

impl BarChart {
    /// Creates a bar chart whose longest bar is `width` characters.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0.
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "bar width must be positive");
        BarChart {
            width,
            max: None,
            bars: Vec::new(),
        }
    }

    /// Fixes the full-scale value (default: the largest bar).
    #[must_use]
    pub fn max(mut self, max: f64) -> Self {
        assert!(max > 0.0, "scale must be positive");
        self.max = Some(max);
        self
    }

    /// Appends a bar.
    pub fn bar(&mut self, label: impl Into<String>, value: f64) -> &mut Self {
        self.bars.push((label.into(), value));
        self
    }

    /// Renders the bars with right-aligned labels and values.
    pub fn render(&self) -> String {
        if self.bars.is_empty() {
            return "(empty chart)\n".to_owned();
        }
        let scale = self
            .max
            .unwrap_or_else(|| self.bars.iter().map(|&(_, v)| v).fold(0.0, f64::max))
            .max(f64::MIN_POSITIVE);
        let label_width = self.bars.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (label, value) in &self.bars {
            let filled = ((value / scale).clamp(0.0, 1.0) * self.width as f64).round() as usize;
            let _ = writeln!(
                out,
                "{label:>label_width$} |{}{} {value:.3}",
                "#".repeat(filled),
                " ".repeat(self.width - filled),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_places_extremes_at_edges() {
        let chart =
            ScatterChart::new(20, 5).series(Series::new("a", vec![(0.0, 0.0), (10.0, 1.0)]));
        let drawing = chart.render();
        let lines: Vec<&str> = drawing.lines().collect();
        // Top row holds the max point at the right edge, bottom the min at
        // the left edge.
        assert!(lines[0].ends_with('a'), "{drawing}");
        assert!(lines[4].contains("|a"), "{drawing}");
    }

    #[test]
    fn scatter_log_axis_spreads_octaves_evenly() {
        let chart = ScatterChart::new(21, 3)
            .log_x()
            .series(Series::new("x", vec![(1.0, 0.5), (4.0, 0.5), (16.0, 0.5)]));
        let drawing = chart.render();
        let mid = drawing.lines().nth(1).expect("mid row");
        let cols: Vec<usize> = mid
            .char_indices()
            .filter(|&(_, c)| c == 'x')
            .map(|(i, _)| i)
            .collect();
        assert_eq!(cols.len(), 3, "{drawing}");
        assert_eq!(
            cols[1] - cols[0],
            cols[2] - cols[1],
            "log spacing must be even"
        );
    }

    #[test]
    fn scatter_handles_multiple_series_and_empty() {
        let drawing = ScatterChart::new(10, 3).render();
        assert!(drawing.contains("empty"));
        let drawing = ScatterChart::new(10, 3)
            .series(Series::new("p", vec![(0.0, 1.0)]))
            .series(Series::new("q", vec![(1.0, 2.0)]))
            .render();
        assert!(drawing.contains('p') && drawing.contains('q'));
        assert!(drawing.contains("p=p") && drawing.contains("q=q"));
    }

    #[test]
    fn fixed_y_range_clips_outliers_without_panicking() {
        let drawing = ScatterChart::new(10, 4)
            .y_range(0.0, 1.0)
            .series(Series::new("z", vec![(0.0, 0.5), (1.0, 5.0), (2.0, -3.0)]))
            .render();
        // One plotted marker plus the two characters of the "z=z" legend.
        assert_eq!(drawing.matches('z').count(), 3, "{drawing}");
    }

    #[test]
    fn bars_scale_to_longest() {
        let mut chart = BarChart::new(10);
        chart.bar("half", 0.5);
        chart.bar("full", 1.0);
        let drawing = chart.render();
        let lines: Vec<&str> = drawing.lines().collect();
        assert_eq!(lines[0].matches('#').count(), 5, "{drawing}");
        assert_eq!(lines[1].matches('#').count(), 10, "{drawing}");
    }

    #[test]
    fn bars_with_fixed_scale() {
        let mut chart = BarChart::new(10).max(2.0);
        chart.bar("one", 1.0);
        let drawing = chart.render();
        assert_eq!(drawing.lines().next().unwrap().matches('#').count(), 5);
    }

    #[test]
    fn empty_bars_safe() {
        assert!(BarChart::new(5).render().contains("empty"));
    }
}
