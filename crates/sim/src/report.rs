//! Plain-text tables and CSV files for the reproduction binaries.
//!
//! Every repro binary prints an ASCII table (the paper's rows/series) and
//! writes the same data as CSV under `results/` so the numbers can be
//! plotted or diffed against EXPERIMENTS.md.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use dfcm_trace::io::atomic_write;

/// A simple column-aligned text table.
///
/// ```
/// use dfcm_sim::report::TextTable;
///
/// let mut t = TextTable::new(vec!["bench", "accuracy"]);
/// t.row(vec!["li".to_owned(), "0.73".to_owned()]);
/// let rendered = t.render();
/// assert!(rendered.contains("bench"));
/// assert!(rendered.contains("0.73"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header"
        );
        self.rows.push(cells);
        self
    }

    /// Iterates over the data rows (without the header), cloned — useful
    /// for merging tables with identical columns.
    pub fn rows(&self) -> impl Iterator<Item = Vec<String>> + '_ {
        self.rows.iter().cloned()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let emit = |cells: &[String], out: &mut String| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = w);
            }
            out.push('\n');
        };
        emit(&self.header, &mut out);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            emit(row, &mut out);
        }
        out
    }

    /// The table as CSV text.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let emit = |cells: &[String], out: &mut String| {
            let line: Vec<String> = cells.iter().map(|c| csv_escape(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        emit(&self.header, &mut out);
        for row in &self.rows {
            emit(row, &mut out);
        }
        out
    }

    /// Writes the CSV form to `path` atomically (staged sibling file
    /// then rename), creating parent directories: an interrupted run
    /// never leaves a truncated table behind.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from directory creation or the write.
    pub fn write_csv<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        atomic_write(path.as_ref(), self.to_csv().as_bytes())
    }

    /// The table as a JSON array of objects keyed by the header row.
    ///
    /// Values are emitted as JSON numbers when they parse as such, else as
    /// strings. Hand-rolled (no serializer dependency); covers the ASCII
    /// content these tables hold.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            for (j, (key, value)) in self.header.iter().zip(row).enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}:", json_string(key));
                if let Ok(n) = value.parse::<f64>() {
                    if n.is_finite() {
                        let _ = write!(out, "{n}");
                        continue;
                    }
                }
                let _ = write!(out, "{}", json_string(value));
            }
            out.push('}');
        }
        out.push(']');
        out
    }

    /// Writes the JSON form to `path` atomically (staged sibling file
    /// then rename), creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from directory creation or the write.
    pub fn write_json<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        atomic_write(path.as_ref(), self.to_json().as_bytes())
    }
}

pub(crate) use dfcm_obs::json::json_string;

fn csv_escape(cell: &str) -> String {
    if cell.contains([',', '"', '\n']) {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_owned()
    }
}

/// Formats an accuracy as the paper does (two decimals, e.g. `0.73`).
pub fn fmt_accuracy(a: f64) -> String {
    format!("{a:.3}")
}

/// Formats a Kbit size with one decimal.
pub fn fmt_kbits(k: f64) -> String {
    format!("{k:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = TextTable::new(vec!["a", "bbbb"]);
        t.row(vec!["xxxxx".into(), "1".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains('a'));
        assert!(lines[1].starts_with('-'));
        assert!(lines[2].contains("xxxxx"));
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = TextTable::new(vec!["x"]);
        t.row(vec!["a,b".into()]);
        t.row(vec!["quo\"te".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"quo\"\"te\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        TextTable::new(vec!["a", "b"]).row(vec!["only one".into()]);
    }

    #[test]
    fn write_csv_creates_dirs() {
        let dir = std::env::temp_dir().join("dfcm_report_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("sub/table.csv");
        let mut t = TextTable::new(vec!["h"]);
        t.row(vec!["v".into()]);
        t.write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "h\nv\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_accuracy(0.7351), "0.735");
        assert_eq!(fmt_kbits(204.84), "204.8");
    }
}

#[cfg(test)]
mod json_tests {
    use super::*;

    #[test]
    fn json_objects_keyed_by_header() {
        let mut t = TextTable::new(vec!["name", "accuracy"]);
        t.row(vec!["dfcm".into(), "0.73".into()]);
        t.row(vec!["fcm".into(), "0.62".into()]);
        assert_eq!(
            t.to_json(),
            r#"[{"name":"dfcm","accuracy":0.73},{"name":"fcm","accuracy":0.62}]"#
        );
    }

    #[test]
    fn json_escapes_special_characters() {
        let mut t = TextTable::new(vec!["x"]);
        t.row(vec!["a\"b\\c\nd".into()]);
        assert_eq!(t.to_json(), r#"[{"x":"a\"b\\c\nd"}]"#);
    }

    #[test]
    fn json_keeps_non_numeric_strings() {
        let mut t = TextTable::new(vec!["v"]);
        t.row(vec!["2^12".into()]);
        t.row(vec!["nan".into()]); // parses as f64 NAN -> not finite -> string
        assert_eq!(t.to_json(), r#"[{"v":"2^12"},{"v":"nan"}]"#);
    }

    #[test]
    fn json_empty_table() {
        let t = TextTable::new(vec!["a"]);
        assert_eq!(t.to_json(), "[]");
    }

    #[test]
    fn write_json_roundtrips_to_disk() {
        let path = std::env::temp_dir().join("dfcm_report_json_test.json");
        let mut t = TextTable::new(vec!["k"]);
        t.row(vec!["1".into()]);
        t.write_json(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), r#"[{"k":1}]"#);
        let _ = std::fs::remove_file(&path);
    }
}
