//! A first-order speculation benefit model.
//!
//! The paper evaluates predictors by accuracy only (§4: embedding effects
//! are "only partially understood"), but its motivation is ILP: a correct
//! value prediction lets dependent instructions execute early, a wrong one
//! costs a squash. This module provides the standard first-order account:
//! each issued correct prediction saves `benefit` cycles, each issued
//! misprediction costs `penalty` cycles, unissued predictions are neutral.
//! The break-even accuracy is `penalty / (benefit + penalty)` — with a
//! benefit of 1 and a penalty of 10, a predictor must exceed ~91%
//! accuracy on the predictions it issues, which is why the confidence
//! estimation of §4.2 matters.

use dfcm::{ConfidencePredictor, ValuePredictor};
use dfcm_trace::Trace;

use crate::confidence::ConfidenceStats;
use crate::run::RunStats;

/// Cycle cost model for issued predictions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeculationModel {
    /// Cycles saved by a correct issued prediction.
    pub benefit: f64,
    /// Cycles lost by an incorrect issued prediction (squash cost).
    pub penalty: f64,
}

impl SpeculationModel {
    /// The issued-accuracy above which speculation is profitable.
    pub fn break_even_accuracy(&self) -> f64 {
        self.penalty / (self.benefit + self.penalty)
    }

    /// Net cycles saved by a set of issued predictions.
    pub fn net_cycles(&self, issued: RunStats) -> f64 {
        let wrong = issued.predictions - issued.correct;
        issued.correct as f64 * self.benefit - wrong as f64 * self.penalty
    }
}

impl Default for SpeculationModel {
    /// A conservative default: 1 cycle saved per hit, 10 cycles of squash
    /// per miss.
    fn default() -> Self {
        SpeculationModel {
            benefit: 1.0,
            penalty: 10.0,
        }
    }
}

/// Result of a speculation evaluation over a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeculationOutcome {
    /// Coverage/accuracy statistics of the run.
    pub stats: ConfidenceStats,
    /// Net cycles saved over the whole trace under the model.
    pub net_cycles: f64,
}

impl SpeculationOutcome {
    /// Net cycles saved per 1000 predicted instructions — the comparable
    /// figure of merit.
    pub fn net_per_kilo(&self) -> f64 {
        if self.stats.all.predictions == 0 {
            0.0
        } else {
            1000.0 * self.net_cycles / self.stats.all.predictions as f64
        }
    }
}

/// Evaluates an always-issuing predictor (no confidence estimation) under
/// the model.
pub fn speculate_always<P>(
    model: SpeculationModel,
    predictor: &mut P,
    trace: &Trace,
) -> SpeculationOutcome
where
    P: ValuePredictor + ?Sized,
{
    let stats = crate::run::simulate_trace(predictor, trace);
    let outcome = ConfidenceStats {
        all: stats,
        issued: stats,
    };
    SpeculationOutcome {
        stats: outcome,
        net_cycles: model.net_cycles(stats),
    }
}

/// Evaluates a confidence-gated predictor under the model: only confident
/// predictions are issued and scored.
pub fn speculate_confident<P>(
    model: SpeculationModel,
    predictor: &mut P,
    trace: &Trace,
) -> SpeculationOutcome
where
    P: ConfidencePredictor + ?Sized,
{
    let stats = crate::confidence::simulate_confidence(predictor, trace);
    SpeculationOutcome {
        stats,
        net_cycles: model.net_cycles(stats.issued),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfcm::{DfcmPredictor, TaggedDfcmPredictor};
    use dfcm_trace::TraceRecord;

    fn mixed_trace() -> Trace {
        let mut trace = Trace::new();
        let mut x = 11u64;
        for i in 0..5000u64 {
            trace.push(TraceRecord::new(0x10, 5 * i)); // predictable
            x = x.wrapping_mul(6364136223846793005).wrapping_add(3);
            trace.push(TraceRecord::new(0x20, x >> 25)); // unpredictable
        }
        trace
    }

    #[test]
    fn break_even_matches_formula() {
        let m = SpeculationModel {
            benefit: 1.0,
            penalty: 10.0,
        };
        assert!((m.break_even_accuracy() - 10.0 / 11.0).abs() < 1e-12);
        let m = SpeculationModel {
            benefit: 2.0,
            penalty: 2.0,
        };
        assert_eq!(m.break_even_accuracy(), 0.5);
    }

    #[test]
    fn net_cycles_accounting() {
        let m = SpeculationModel {
            benefit: 1.0,
            penalty: 10.0,
        };
        let issued = RunStats {
            predictions: 100,
            correct: 95,
        };
        assert_eq!(m.net_cycles(issued), 95.0 - 50.0);
    }

    #[test]
    fn confidence_gating_rescues_harsh_penalties() {
        // At a 10-cycle squash cost, a ~50%-accurate unconditional DFCM
        // loses cycles; the tagged estimator turns it profitable.
        let trace = mixed_trace();
        let model = SpeculationModel::default();
        let mut plain = DfcmPredictor::builder()
            .l1_bits(8)
            .l2_bits(10)
            .build()
            .unwrap();
        let always = speculate_always(model, &mut plain, &trace);
        let mut tagged = TaggedDfcmPredictor::builder()
            .l1_bits(8)
            .l2_bits(10)
            .build()
            .unwrap();
        let gated = speculate_confident(model, &mut tagged, &trace);
        assert!(
            always.net_cycles < 0.0,
            "unconditional issue must lose: {always:?}"
        );
        assert!(gated.net_cycles > 0.0, "gated issue must win: {gated:?}");
        assert!(gated.net_per_kilo() > always.net_per_kilo());
    }

    #[test]
    fn mild_penalties_favor_wide_issue() {
        // With no squash cost, issuing everything dominates gating.
        let trace = mixed_trace();
        let model = SpeculationModel {
            benefit: 1.0,
            penalty: 0.0,
        };
        let mut plain = DfcmPredictor::builder()
            .l1_bits(8)
            .l2_bits(10)
            .build()
            .unwrap();
        let always = speculate_always(model, &mut plain, &trace);
        let mut tagged = TaggedDfcmPredictor::builder()
            .l1_bits(8)
            .l2_bits(10)
            .build()
            .unwrap();
        let gated = speculate_confident(model, &mut tagged, &trace);
        assert!(always.net_cycles >= gated.net_cycles);
    }

    #[test]
    fn empty_trace_is_neutral() {
        let mut p = DfcmPredictor::builder()
            .l1_bits(4)
            .l2_bits(6)
            .build()
            .unwrap();
        let out = speculate_always(SpeculationModel::default(), &mut p, &Trace::new());
        assert_eq!(out.net_cycles, 0.0);
        assert_eq!(out.net_per_kilo(), 0.0);
    }
}
