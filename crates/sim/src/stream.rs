//! Single-pass streaming predictor core.
//!
//! The classic evaluation loop ([`simulate_trace`](crate::simulate_trace))
//! runs *one* predictor over *one* trace; comparing N configurations means
//! decoding and walking the trace N times through `dyn ValuePredictor`
//! dispatch. This module restructures that hot path:
//!
//! * **One decode, many lanes.** [`stream_trace`] walks the trace once and
//!   feeds every [`StreamPredictor`] *lane* per record, using the fused
//!   [`access`](dfcm::ValuePredictor::access) overrides (a single table
//!   index computation per record per two-level predictor) behind enum —
//!   not `dyn` — dispatch.
//! * **Chunked runs with deterministic merge.** [`stream_trace_chunked`]
//!   produces the same result as one per-chunk [`RunStats`] merge in chunk
//!   order; [`stream_v2_file`] and [`stream_v3_file`] extend this to
//!   on-disk `DFCMTRC2`/`DFCMTRC3` traces ([`stream_trace_file`]
//!   auto-detects), decoding chunks on worker threads while the
//!   (stateful) lanes consume them strictly in file order — bit-identical
//!   to a serial run, any thread count.
//! * **Flat memory at any trace size.** The file paths never materialize
//!   the trace: a bounded pipeline holds O(`decode_threads`) compressed
//!   and decoded chunks at once, so a 100M-record v3 trace streams in a
//!   working set of a few chunks.
//! * **Suite fan-out.** [`stream_suite_engine`] runs one engine task per
//!   benchmark (cold cloned lanes each), merging per-lane results in
//!   benchmark order.
//!
//! Every path is differentially tested to be bit-identical to the
//! predict-then-update reference loop (`tests/stream_equiv.rs`).

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufReader, Read, Seek, SeekFrom};
use std::path::Path;
use std::sync::mpsc;

use dfcm::{
    AccessOutcome, AliasClass, DfcmPredictor, FcmPredictor, LastValuePredictor, StorageCost,
    StridePredictor, TableStats, TwoDeltaStridePredictor, ValuePredictor,
};
use dfcm_obs::timeseries::LaneSeries;
use dfcm_obs::Obs;
use dfcm_trace::io::RawChunk;
use dfcm_trace::suite::BenchmarkTrace;
use dfcm_trace::{Trace, TraceFormatError, TraceRecord, V3RawChunk, V2_CHUNK_RECORDS};

use crate::engine::{run_tasks, EngineConfig, EngineReport, TaskOutput};
use crate::run::RunStats;

/// One lane of the streaming pass: a concrete predictor behind enum
/// dispatch.
///
/// The streaming core deliberately avoids `Box<dyn ValuePredictor>`: an
/// enum keeps the per-record dispatch a jump table the compiler can see
/// through (and lanes stay `Clone`, so a cold configuration can be
/// instantiated once and copied per benchmark). The enum covers the four
/// paper predictors plus two-delta stride; anything more exotic still
/// runs through the `dyn` path of [`simulate_trace`](crate::simulate_trace).
#[derive(Debug, Clone)]
pub enum StreamPredictor {
    /// Last value predictor (§2.1).
    Lvp(LastValuePredictor),
    /// Stride predictor (§2.2).
    Stride(StridePredictor),
    /// Two-delta stride predictor (§2.2).
    TwoDelta(TwoDeltaStridePredictor),
    /// Finite context method predictor (§2.3).
    Fcm(FcmPredictor),
    /// Differential FCM predictor (§3).
    Dfcm(DfcmPredictor),
}

macro_rules! for_each_lane {
    ($self:expr, $p:ident => $body:expr) => {
        match $self {
            StreamPredictor::Lvp($p) => $body,
            StreamPredictor::Stride($p) => $body,
            StreamPredictor::TwoDelta($p) => $body,
            StreamPredictor::Fcm($p) => $body,
            StreamPredictor::Dfcm($p) => $body,
        }
    };
}

/// A predictor spec string that could not be parsed by
/// [`StreamPredictor::parse_spec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for SpecError {}

impl StreamPredictor {
    /// Parses a lane from a spec string — the grammar shared by the CLI,
    /// the serving daemon, and snapshot files:
    ///
    /// `lvp:B | stride:B | 2delta:B | fcm:L1:L2 | dfcm:L1:L2`
    ///
    /// where each field is a power-of-two table-size exponent. The
    /// canonical inverse is [`spec`](StreamPredictor::spec).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] for unknown predictor names, missing or
    /// non-numeric fields, trailing fields, and configurations the
    /// underlying builders reject.
    pub fn parse_spec(spec: &str) -> Result<StreamPredictor, SpecError> {
        let parts: Vec<&str> = spec.split(':').collect();
        let bits = |i: usize| -> Result<u32, SpecError> {
            parts
                .get(i)
                .ok_or_else(|| SpecError(format!("`{spec}`: missing table-size field {i}")))?
                .parse()
                .map_err(|_| SpecError(format!("`{spec}`: bad table size")))
        };
        let arity = |n: usize| -> Result<(), SpecError> {
            if parts.len() > n {
                return Err(SpecError(format!(
                    "`{spec}`: expected {} table-size field(s)",
                    n - 1
                )));
            }
            Ok(())
        };
        let build_err = |e: dfcm::ConfigError| SpecError(format!("`{spec}`: {e}"));
        // Table exponents above 30 are rejected by the builders; lvp and
        // the stride predictors assert instead, so pre-check here to keep
        // parse_spec panic-free on arbitrary input.
        let checked = |b: u32| -> Result<u32, SpecError> {
            if b > 30 {
                return Err(SpecError(format!(
                    "`{spec}`: table exponent {b} exceeds 30"
                )));
            }
            Ok(b)
        };
        match parts[0] {
            "lvp" => {
                arity(2)?;
                Ok(LastValuePredictor::new(checked(bits(1)?)?).into())
            }
            "stride" => {
                arity(2)?;
                Ok(StridePredictor::new(checked(bits(1)?)?).into())
            }
            "2delta" => {
                arity(2)?;
                Ok(TwoDeltaStridePredictor::new(checked(bits(1)?)?).into())
            }
            "fcm" => {
                arity(3)?;
                Ok(FcmPredictor::builder()
                    .l1_bits(bits(1)?)
                    .l2_bits(bits(2)?)
                    .build()
                    .map_err(build_err)?
                    .into())
            }
            "dfcm" => {
                arity(3)?;
                Ok(DfcmPredictor::builder()
                    .l1_bits(bits(1)?)
                    .l2_bits(bits(2)?)
                    .build()
                    .map_err(build_err)?
                    .into())
            }
            other => Err(SpecError(format!(
                "unknown predictor `{other}` (use lvp|stride|2delta|fcm|dfcm)"
            ))),
        }
    }

    /// The canonical spec string for this lane's configuration:
    /// `parse_spec(lane.spec())` reconstructs an identically configured
    /// cold lane. Snapshots store this string so a restored session can
    /// rebuild its predictor before loading the state words.
    pub fn spec(&self) -> String {
        match self {
            StreamPredictor::Lvp(p) => format!("lvp:{}", p.entries().trailing_zeros()),
            StreamPredictor::Stride(p) => format!("stride:{}", p.entries().trailing_zeros()),
            StreamPredictor::TwoDelta(p) => format!("2delta:{}", p.entries().trailing_zeros()),
            StreamPredictor::Fcm(p) => format!("fcm:{}:{}", p.l1_bits(), p.l2_bits()),
            StreamPredictor::Dfcm(p) => format!("dfcm:{}:{}", p.l1_bits(), p.l2_bits()),
        }
    }

    /// Serializes the lane's mutable table state as a flat word vector
    /// (see the per-predictor `state_words` methods for layouts).
    pub fn state_words(&self) -> Vec<u64> {
        for_each_lane!(self, p => p.state_words())
    }

    /// Restores state captured by
    /// [`state_words`](StreamPredictor::state_words) into an identically
    /// configured lane (same [`spec`](StreamPredictor::spec)).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::State`](dfcm::ConfigError) when the words
    /// do not fit this configuration or encode an illegal table state;
    /// the lane is left unchanged.
    pub fn load_state_words(&mut self, words: &[u64]) -> Result<(), dfcm::ConfigError> {
        for_each_lane!(self, p => p.load_state_words(words))
    }
}

impl ValuePredictor for StreamPredictor {
    fn predict(&mut self, pc: u64) -> u64 {
        for_each_lane!(self, p => p.predict(pc))
    }

    fn update(&mut self, pc: u64, actual: u64) {
        for_each_lane!(self, p => p.update(pc, actual))
    }

    #[inline]
    fn access(&mut self, pc: u64, actual: u64) -> AccessOutcome {
        for_each_lane!(self, p => p.access(pc, actual))
    }

    fn storage(&self) -> StorageCost {
        for_each_lane!(self, p => p.storage())
    }

    fn name(&self) -> String {
        for_each_lane!(self, p => p.name())
    }

    fn enable_table_stats(&mut self) {
        for_each_lane!(self, p => p.enable_table_stats())
    }

    fn table_stats(&self) -> Option<TableStats> {
        for_each_lane!(self, p => p.table_stats())
    }

    fn last_alias_class(&self) -> Option<AliasClass> {
        for_each_lane!(self, p => p.last_alias_class())
    }
}

impl From<LastValuePredictor> for StreamPredictor {
    fn from(p: LastValuePredictor) -> Self {
        StreamPredictor::Lvp(p)
    }
}

impl From<StridePredictor> for StreamPredictor {
    fn from(p: StridePredictor) -> Self {
        StreamPredictor::Stride(p)
    }
}

impl From<TwoDeltaStridePredictor> for StreamPredictor {
    fn from(p: TwoDeltaStridePredictor) -> Self {
        StreamPredictor::TwoDelta(p)
    }
}

impl From<FcmPredictor> for StreamPredictor {
    fn from(p: FcmPredictor) -> Self {
        StreamPredictor::Fcm(p)
    }
}

impl From<DfcmPredictor> for StreamPredictor {
    fn from(p: DfcmPredictor) -> Self {
        StreamPredictor::Dfcm(p)
    }
}

/// Streams a slice of records through every lane once, observing each
/// outcome.
///
/// The observer receives `(lane index, record index, outcome)` for every
/// (record, lane) pair — the hook the differential tests use to compare
/// per-record behaviour against the reference loop. [`stream_trace`]
/// passes a no-op closure that the optimizer erases.
pub fn stream_records_with<F>(
    lanes: &mut [StreamPredictor],
    records: &[TraceRecord],
    mut observe: F,
) -> Vec<RunStats>
where
    F: FnMut(usize, usize, AccessOutcome),
{
    let mut stats = vec![RunStats::default(); lanes.len()];
    for (ri, record) in records.iter().enumerate() {
        for (li, lane) in lanes.iter_mut().enumerate() {
            let outcome = lane.access(record.pc, record.value);
            stats[li].predictions += 1;
            stats[li].correct += u64::from(outcome.correct);
            observe(li, ri, outcome);
        }
    }
    stats
}

/// Runs every lane over `trace` in a single pass: one walk of the records
/// feeds all lanes, and each lane's fused `access` computes its table
/// index once per record.
///
/// Returns one [`RunStats`] per lane, in lane order. Bit-identical to
/// running [`simulate_trace`](crate::simulate_trace) once per lane.
pub fn stream_trace(lanes: &mut [StreamPredictor], trace: &Trace) -> Vec<RunStats> {
    stream_records_with(lanes, trace.records(), |_, _, _| {})
}

/// [`stream_trace`], processing the trace in chunks of `chunk_records`
/// and merging the per-chunk [`RunStats`] in chunk order.
///
/// Because the lanes are stateful and consume chunks strictly in order,
/// the result is bit-identical to [`stream_trace`]; the chunk granularity
/// only decides how often stats are folded (exercising the saturating
/// [`RunStats::merge`]). Use [`dfcm_trace::V2_CHUNK_RECORDS`] to mirror
/// the on-disk chunking.
///
/// # Panics
///
/// Panics if `chunk_records` is 0.
pub fn stream_trace_chunked(
    lanes: &mut [StreamPredictor],
    trace: &Trace,
    chunk_records: usize,
) -> Vec<RunStats> {
    let mut totals = vec![RunStats::default(); lanes.len()];
    for chunk in trace.chunks(chunk_records) {
        let chunk_stats = stream_records_with(lanes, chunk, |_, _, _| {});
        for (total, part) in totals.iter_mut().zip(chunk_stats) {
            total.merge(part);
        }
    }
    totals
}

/// Outcome of a [`stream_v2_file`]/[`stream_v3_file`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamFileReport {
    /// Per-lane statistics, in lane order.
    pub stats: Vec<RunStats>,
    /// Records streamed (per lane).
    pub records: u64,
    /// Chunks the file was decoded in.
    pub chunks: usize,
}

/// A chunk the streaming pipeline can ship to a decode worker: both the
/// v2 and v3 raw-chunk types, which decode independently of their
/// neighbours.
trait StreamChunk: Send {
    fn decode_records(&self) -> io::Result<Vec<TraceRecord>>;
}

impl StreamChunk for RawChunk {
    fn decode_records(&self) -> io::Result<Vec<TraceRecord>> {
        self.decode()
    }
}

impl StreamChunk for V3RawChunk {
    fn decode_records(&self) -> io::Result<Vec<TraceRecord>> {
        self.decode()
    }
}

/// Streams an on-disk `DFCMTRC2` trace through the lanes, decoding its
/// chunks on `decode_threads` worker threads.
///
/// The v2 format restarts its pc delta chain in every chunk, so chunks
/// decode independently and in any order — but predictor lanes are
/// stateful, so decoded chunks are *consumed* strictly in file order (a
/// reorder buffer bridges the two). Per-chunk stats are merged in chunk
/// order. The result is therefore bit-identical to a fully serial run
/// regardless of `decode_threads`; `0` or `1` decodes inline.
///
/// Memory stays flat at any trace size: the file is read one chunk at a
/// time and at most O(`decode_threads`) chunks are in flight.
///
/// # Errors
///
/// Propagates open/read errors and chunk corruption
/// ([`dfcm_trace::TraceFormatError`] wrapped in `InvalidData`). On a
/// corrupt chunk the error reported is the lowest-indexed one, again
/// independent of thread scheduling; the lanes will have consumed the
/// intact chunks before it.
pub fn stream_v2_file<P: AsRef<Path>>(
    path: P,
    lanes: &mut [StreamPredictor],
    decode_threads: usize,
) -> io::Result<StreamFileReport> {
    stream_file_chunks(
        dfcm_trace::V2ChunkReader::open(path)?,
        lanes,
        decode_threads,
    )
}

/// Streams an on-disk compressed `DFCMTRC3` trace through the lanes,
/// decompressing and decoding its chunks on `decode_threads` worker
/// threads.
///
/// Same ordering and determinism contract as [`stream_v2_file`]: decoded
/// chunks are consumed strictly in file order, so the result is
/// bit-identical to a serial run — and to the v2 path over the same
/// records — at any thread count. The working set is O(`decode_threads`)
/// chunks (compressed + decoded), independent of trace length, with each
/// chunk's decode allocation capped by the v3 bomb guards.
///
/// # Errors
///
/// As [`stream_v2_file`], plus
/// [`dfcm_trace::TraceFormatError::DecompressionBomb`] for chunks whose
/// declared sizes no legitimate writer could produce.
pub fn stream_v3_file<P: AsRef<Path>>(
    path: P,
    lanes: &mut [StreamPredictor],
    decode_threads: usize,
) -> io::Result<StreamFileReport> {
    stream_file_chunks(
        dfcm_trace::V3ChunkReader::open(path)?,
        lanes,
        decode_threads,
    )
}

/// Streams any trace file through the lanes, auto-detecting the format
/// from the magic: chunked formats (v2, v3) stream flat-memory via
/// [`stream_v2_file`]/[`stream_v3_file`]; the unchunked legacy v1 format
/// is fully loaded and then streamed in [`STREAM_CHUNK_RECORDS`] chunks
/// (v1 has no independently decodable chunks to bound memory with).
///
/// # Errors
///
/// As [`stream_v2_file`], plus `InvalidData` with
/// [`dfcm_trace::TraceFormatError::BadMagic`] for unrecognized files.
pub fn stream_trace_file<P: AsRef<Path>>(
    path: P,
    lanes: &mut [StreamPredictor],
    decode_threads: usize,
) -> io::Result<StreamFileReport> {
    let mut file = File::open(path)?;
    let mut magic = [0u8; 8];
    file.read_exact(&mut magic)?;
    file.seek(SeekFrom::Start(0))?;
    let reader = BufReader::new(file);
    match &magic {
        b"DFCMTRC2" => stream_file_chunks(dfcm_trace::v2_chunks(reader)?, lanes, decode_threads),
        b"DFCMTRC3" => stream_file_chunks(dfcm_trace::v3_chunks(reader)?, lanes, decode_threads),
        b"DFCMTRC1" => {
            let trace = Trace::read_from(reader)?;
            let stats = stream_trace_chunked(lanes, &trace, STREAM_CHUNK_RECORDS);
            Ok(StreamFileReport {
                stats,
                records: trace.len() as u64,
                chunks: trace.len().div_ceil(STREAM_CHUNK_RECORDS),
            })
        }
        _ => Err(TraceFormatError::BadMagic { found: magic }.into()),
    }
}

/// Drives a chunk iterator through the pipeline into the lanes, merging
/// per-chunk stats in chunk order.
fn stream_file_chunks<C, I>(
    chunks: I,
    lanes: &mut [StreamPredictor],
    decode_threads: usize,
) -> io::Result<StreamFileReport>
where
    C: StreamChunk,
    I: Iterator<Item = io::Result<C>> + Send,
{
    let mut totals = vec![RunStats::default(); lanes.len()];
    let mut records = 0u64;
    let chunk_count = stream_chunk_pipeline(chunks, decode_threads, |decoded| {
        records += decoded.len() as u64;
        let chunk_stats = stream_records_with(lanes, decoded, |_, _, _| {});
        for (total, part) in totals.iter_mut().zip(chunk_stats) {
            total.merge(part);
        }
    })?;
    Ok(StreamFileReport {
        stats: totals,
        records,
        chunks: chunk_count,
    })
}

/// Class-slot labels of the phase-resolved time series: the paper's five
/// aliasing classes in [`AliasClass::ALL`] order, plus an `unclassified`
/// slot for lanes that do not run an alias analyzer (lvp, stride,
/// 2delta, or fcm/dfcm without table stats).
pub const SERIES_CLASS_LABELS: &[&str] =
    &["l1", "hash", "l2_priv", "l2_pc", "none", "unclassified"];

/// Maps a predictor's per-access alias class onto its series slot.
pub(crate) fn class_slot(class: Option<AliasClass>) -> usize {
    class
        .and_then(|c| AliasClass::ALL.iter().position(|x| *x == c))
        .unwrap_or(SERIES_CLASS_LABELS.len() - 1)
}

/// One per-(record, lane) prediction outcome shipped from the streaming
/// consumer to the series-fold thread, lane-major within each record.
#[derive(Clone, Copy)]
struct SeriesOutcome {
    pc: u64,
    predicted: u64,
    actual: u64,
    class: u32,
}

/// Outcome-buffer chunks the fold thread may hold before the consumer
/// blocks — bounds the observed path's extra working set to
/// O(`FOLD_CHANNEL_DEPTH` + 1) chunks of outcomes.
const FOLD_CHANNEL_DEPTH: usize = 2;

/// Records a lane's end-of-run table/alias/accuracy metrics, mirroring
/// [`simulate_trace_observed`](crate::simulate_trace_observed) so
/// streaming and in-memory evaluations export the same aggregate names.
fn record_lane_metrics(obs: &Obs, lane: &StreamPredictor, spec: &str, stats: RunStats) {
    if let Some(ts) = lane.table_stats() {
        for t in &ts.tables {
            let labels = [("spec", spec), ("table", t.name)];
            obs.gauge("predictor_table_entries", &labels, t.entries as f64);
            obs.gauge("predictor_table_occupied", &labels, t.occupied as f64);
            obs.add("predictor_table_writes_total", &labels, t.writes);
            obs.add("predictor_table_overwrites_total", &labels, t.overwrites);
        }
        if let Some(alias) = &ts.alias {
            for class in AliasClass::ALL {
                let labels = [("spec", spec), ("class", class.label())];
                obs.add("predictor_alias_total", &labels, alias.class_total(class));
                obs.add(
                    "predictor_alias_correct_total",
                    &labels,
                    alias.class_correct(class),
                );
            }
        }
    }
    obs.gauge("eval_accuracy", &[("spec", spec)], stats.accuracy());
}

/// [`stream_file_chunks`] with phase-resolved observability: each lane
/// folds a windowed series + top-K tracker over the global prediction
/// index, occupancy is sampled at every chunk boundary, and the final
/// per-lane aggregates are recorded under the lane's canonical spec.
///
/// On hosts with more than one hardware thread the series fold runs on
/// a dedicated thread, off the streaming consumer's critical path: the
/// consumer records each outcome into a flat buffer (recycled between
/// chunks, so the steady state never allocates) and ships whole chunks
/// over a bounded channel, paying only for the buffer writes. On a
/// single-core host a fold thread would just time-slice against the
/// consumer and the fold runs inline instead. Either way the fold
/// consumes the outcome sequence strictly in file order — the same
/// order the consumer produced it — so the exported series is
/// bit-identical at any `decode_threads`, offloaded or not.
fn stream_file_chunks_observed<C, I>(
    chunks: I,
    lanes: &mut [StreamPredictor],
    decode_threads: usize,
    obs: &Obs,
    table_stats: bool,
) -> io::Result<StreamFileReport>
where
    C: StreamChunk,
    I: Iterator<Item = io::Result<C>> + Send,
{
    let offload = std::thread::available_parallelism().is_ok_and(|n| n.get() > 1);
    stream_file_chunks_observed_with(chunks, lanes, decode_threads, obs, table_stats, offload)
}

/// [`stream_file_chunks_observed`] with the fold placement made explicit
/// (`offload`), so tests can pin both paths on any host.
fn stream_file_chunks_observed_with<C, I>(
    chunks: I,
    lanes: &mut [StreamPredictor],
    decode_threads: usize,
    obs: &Obs,
    table_stats: bool,
    offload: bool,
) -> io::Result<StreamFileReport>
where
    C: StreamChunk,
    I: Iterator<Item = io::Result<C>> + Send,
{
    if !obs.is_enabled() || lanes.is_empty() {
        return stream_file_chunks(chunks, lanes, decode_threads);
    }
    if table_stats {
        for lane in lanes.iter_mut() {
            lane.enable_table_stats();
        }
    }
    let specs: Vec<String> = lanes.iter().map(StreamPredictor::spec).collect();
    let mut series: Vec<LaneSeries> = specs
        .iter()
        .map(|s| LaneSeries::with_defaults(s, SERIES_CLASS_LABELS))
        .collect();
    let mut totals = vec![RunStats::default(); lanes.len()];
    let mut records = 0u64;
    let sample_occupancy = |lanes: &[StreamPredictor]| {
        for (lane, spec) in lanes.iter().zip(&specs) {
            if let Some(ts) = lane.table_stats() {
                for t in &ts.tables {
                    obs.sample(
                        "table_occupancy_percent",
                        &[("spec", spec), ("table", t.name)],
                        t.occupancy_percent(),
                    );
                }
            }
        }
    };
    let chunk_count = if offload {
        let lane_count = lanes.len();
        let empty_series = std::mem::take(&mut series);
        let (chunk_result, folded) = std::thread::scope(|scope| {
            let (fold_tx, fold_rx) = mpsc::sync_channel::<Vec<SeriesOutcome>>(FOLD_CHANNEL_DEPTH);
            let (recycle_tx, recycle_rx) = mpsc::channel::<Vec<SeriesOutcome>>();
            let fold = scope.spawn(move || {
                let mut series = empty_series;
                let mut index = 0u64;
                for buf in fold_rx {
                    for group in buf.chunks_exact(lane_count) {
                        for (lane_series, o) in series.iter_mut().zip(group) {
                            lane_series.record(
                                index,
                                o.pc,
                                o.class as usize,
                                o.predicted,
                                o.actual,
                            );
                        }
                        index += 1;
                    }
                    // Hand the buffer back for reuse; the consumer may
                    // already have exited, which is fine.
                    let _ = recycle_tx.send(buf);
                }
                series
            });
            let result = stream_chunk_pipeline(chunks, decode_threads, |decoded| {
                let mut buf = recycle_rx.try_recv().unwrap_or_default();
                buf.clear();
                buf.reserve(decoded.len() * lane_count);
                for record in decoded {
                    for (li, lane) in lanes.iter_mut().enumerate() {
                        let outcome = lane.access(record.pc, record.value);
                        totals[li].predictions += 1;
                        totals[li].correct += u64::from(outcome.correct);
                        buf.push(SeriesOutcome {
                            pc: record.pc,
                            predicted: outcome.predicted,
                            actual: record.value,
                            class: class_slot(lane.last_alias_class()) as u32,
                        });
                    }
                }
                records += decoded.len() as u64;
                // A send error means the fold thread died; its panic
                // surfaces at the join below.
                let _ = fold_tx.send(buf);
                sample_occupancy(lanes);
            });
            drop(fold_tx);
            (result, fold.join().expect("series fold thread panicked"))
        });
        series = folded;
        chunk_result?
    } else {
        stream_chunk_pipeline(chunks, decode_threads, |decoded| {
            for (ri, record) in decoded.iter().enumerate() {
                for (li, lane) in lanes.iter_mut().enumerate() {
                    let outcome = lane.access(record.pc, record.value);
                    totals[li].predictions += 1;
                    totals[li].correct += u64::from(outcome.correct);
                    series[li].record(
                        records + ri as u64,
                        record.pc,
                        class_slot(lane.last_alias_class()),
                        outcome.predicted,
                        record.value,
                    );
                }
            }
            records += decoded.len() as u64;
            sample_occupancy(lanes);
        })?
    };
    for ((lane, spec), stats) in lanes.iter().zip(&specs).zip(&totals) {
        record_lane_metrics(obs, lane, spec, *stats);
    }
    for lane_series in series {
        obs.record_series(lane_series);
    }
    Ok(StreamFileReport {
        stats: totals,
        records,
        chunks: chunk_count,
    })
}

/// [`stream_v2_file`] with phase-resolved observability (see
/// [`stream_trace_file_observed`]). With `obs` disabled this is exactly
/// [`stream_v2_file`].
///
/// # Errors
///
/// As [`stream_v2_file`].
pub fn stream_v2_file_observed<P: AsRef<Path>>(
    path: P,
    lanes: &mut [StreamPredictor],
    decode_threads: usize,
    obs: &Obs,
    table_stats: bool,
) -> io::Result<StreamFileReport> {
    stream_file_chunks_observed(
        dfcm_trace::V2ChunkReader::open(path)?,
        lanes,
        decode_threads,
        obs,
        table_stats,
    )
}

/// [`stream_v3_file`] with phase-resolved observability (see
/// [`stream_trace_file_observed`]). With `obs` disabled this is exactly
/// [`stream_v3_file`].
///
/// # Errors
///
/// As [`stream_v3_file`].
pub fn stream_v3_file_observed<P: AsRef<Path>>(
    path: P,
    lanes: &mut [StreamPredictor],
    decode_threads: usize,
    obs: &Obs,
    table_stats: bool,
) -> io::Result<StreamFileReport> {
    stream_file_chunks_observed(
        dfcm_trace::V3ChunkReader::open(path)?,
        lanes,
        decode_threads,
        obs,
        table_stats,
    )
}

/// [`stream_trace_file`] with phase-resolved observability: when `obs`
/// is enabled, every lane folds a fixed-window accuracy/alias-class
/// series and a top-K per-PC misprediction tracker over the stream
/// (attached via [`Obs::record_series`], exported as `series.jsonl`),
/// per-table occupancy is sampled at chunk boundaries, and the final
/// table/alias/accuracy aggregates are recorded under each lane's
/// canonical spec — the same metric names
/// [`simulate_trace_observed`](crate::simulate_trace_observed) emits.
///
/// `table_stats` additionally enables each lane's table instrumentation
/// (occupancy tracking and, on fcm/dfcm, the §4.2 alias analyzer that
/// gives the series its per-class breakdown). Without it the fold is
/// cheaper and every access lands in the `unclassified` slot.
///
/// Decoded chunks are consumed strictly in file order regardless of
/// `decode_threads`, so the exported series is bit-identical at any
/// thread count. With `obs` disabled this is exactly
/// [`stream_trace_file`].
///
/// # Errors
///
/// As [`stream_trace_file`].
pub fn stream_trace_file_observed<P: AsRef<Path>>(
    path: P,
    lanes: &mut [StreamPredictor],
    decode_threads: usize,
    obs: &Obs,
    table_stats: bool,
) -> io::Result<StreamFileReport> {
    if !obs.is_enabled() {
        return stream_trace_file(path, lanes, decode_threads);
    }
    let mut file = File::open(path)?;
    let mut magic = [0u8; 8];
    file.read_exact(&mut magic)?;
    file.seek(SeekFrom::Start(0))?;
    let reader = BufReader::new(file);
    match &magic {
        b"DFCMTRC2" => stream_file_chunks_observed(
            dfcm_trace::v2_chunks(reader)?,
            lanes,
            decode_threads,
            obs,
            table_stats,
        ),
        b"DFCMTRC3" => stream_file_chunks_observed(
            dfcm_trace::v3_chunks(reader)?,
            lanes,
            decode_threads,
            obs,
            table_stats,
        ),
        b"DFCMTRC1" => {
            // v1 has no independently decodable chunks: load fully, then
            // fold through the same observed chunk consumer.
            let trace = Trace::read_from(reader)?;
            let chunks = trace
                .chunks(STREAM_CHUNK_RECORDS)
                .map(|c| Ok(OwnedChunk(c.to_vec())));
            stream_file_chunks_observed(chunks, lanes, 0, obs, table_stats)
        }
        _ => Err(TraceFormatError::BadMagic { found: magic }.into()),
    }
}

/// An already-decoded record block, so the v1 path can reuse the
/// observed chunk consumer.
struct OwnedChunk(Vec<TraceRecord>);

impl StreamChunk for OwnedChunk {
    fn decode_records(&self) -> io::Result<Vec<TraceRecord>> {
        Ok(self.0.clone())
    }
}

/// Pulls chunks off `chunks` (a single reader thread owns the
/// underlying file), decodes them on `threads` workers, and hands the
/// decoded records to `consume` strictly in index order. Returns the
/// number of chunks consumed.
///
/// Memory is bounded by construction: the raw and decoded channels are
/// `sync_channel`s sized by the thread count, and the reorder buffer can
/// only hold what the decoded channel lets past — so the working set is
/// O(threads) chunks no matter how large the file is or how fast the
/// reader outpaces the lanes.
///
/// The first error — a framing error from the iterator or the
/// lowest-indexed decode failure — is returned; `consume` never sees
/// chunks at or beyond a failed index.
fn stream_chunk_pipeline<C, I, F>(chunks: I, threads: usize, mut consume: F) -> io::Result<usize>
where
    C: StreamChunk,
    I: Iterator<Item = io::Result<C>> + Send,
    F: FnMut(&[TraceRecord]),
{
    if threads <= 1 {
        // True single-chunk working set: read, decode, consume, drop.
        let mut count = 0usize;
        for chunk in chunks {
            consume(&chunk?.decode_records()?);
            count += 1;
        }
        return Ok(count);
    }

    // Reader -> workers: one bounded channel per worker, filled
    // round-robin. Per-worker channels (rather than one shared receiver)
    // keep the receivers owned by the worker threads, so every blocked
    // sender observes a disconnect the moment its peer exits — the
    // property the shutdown paths below rely on.
    let mut raw_txs = Vec::with_capacity(threads);
    let mut raw_rxs = Vec::with_capacity(threads);
    for _ in 0..threads {
        let (tx, rx) = mpsc::sync_channel::<(usize, io::Result<C>)>(2);
        raw_txs.push(tx);
        raw_rxs.push(rx);
    }
    // Workers -> consumer: decoded chunks, bounded by the thread count.
    let (dec_tx, dec_rx) = mpsc::sync_channel::<(usize, io::Result<Vec<TraceRecord>>)>(threads);

    std::thread::scope(|scope| {
        // Move the receiver into the scope so it drops on *any* exit from
        // this closure (including the early error return below) — that
        // unparks workers blocked on a full channel, letting the scope
        // join them instead of deadlocking.
        let dec_rx = dec_rx;

        scope.spawn(move || {
            let mut chunks = chunks;
            let mut i = 0usize;
            loop {
                let Some(item) = chunks.next() else { break };
                // A framing error poisons the source; ship it as the
                // final item so the consumer reports it in order.
                let last = item.is_err();
                if raw_txs[i % raw_txs.len()].send((i, item)).is_err() {
                    break; // consumer bailed; stop reading
                }
                i += 1;
                if last {
                    break;
                }
            }
        });
        for raw_rx in raw_rxs {
            let dec_tx = dec_tx.clone();
            scope.spawn(move || {
                while let Ok((i, chunk)) = raw_rx.recv() {
                    let decoded = chunk.and_then(|c| c.decode_records());
                    if dec_tx.send((i, decoded)).is_err() {
                        break; // consumer bailed
                    }
                }
            });
        }
        drop(dec_tx);

        // In-order consumption with a reorder buffer: chunks may arrive
        // out of order, but lane state only ever advances on the chunk it
        // is waiting for. The buffer stays O(threads): workers can only
        // run ahead by what the bounded channels admit.
        let mut pending: BTreeMap<usize, io::Result<Vec<TraceRecord>>> = BTreeMap::new();
        let mut want = 0usize;
        loop {
            let entry = match pending.remove(&want) {
                Some(entry) => entry,
                None => match dec_rx.recv() {
                    Ok((i, decoded)) if i == want => decoded,
                    Ok((i, decoded)) => {
                        pending.insert(i, decoded);
                        continue;
                    }
                    // Every worker exited: the stream is exhausted.
                    // Indices are contiguous, so nothing can be pending.
                    Err(_) => break,
                },
            };
            consume(&entry?);
            want += 1;
        }
        debug_assert!(pending.is_empty());
        Ok(want)
        // Dropping `dec_rx` here unblocks any worker parked on a full
        // channel; workers dropping their raw receivers unblock the
        // reader; the scope then joins all of them.
    })
}

/// Per-lane results of a [`stream_suite_engine`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamSuiteResult {
    /// Lane names, in lane order.
    pub lanes: Vec<String>,
    /// Per-benchmark, per-lane statistics: `per_benchmark[b][l]` is lane
    /// `l` on benchmark `b`, in input order.
    pub per_benchmark: Vec<Vec<RunStats>>,
    /// Per-lane totals over all benchmarks (merged in benchmark order) —
    /// the record-weighted suite aggregate.
    pub total: Vec<RunStats>,
}

/// Evaluates the lane set over a benchmark suite on the parallel engine:
/// one task per benchmark, each streaming a *cold clone* of every lane
/// over that benchmark's trace in a single pass.
///
/// Parallelism is across benchmarks (task grain), while each task keeps
/// the single-decode multi-lane inner loop. Results merge per lane in
/// benchmark order, so the outcome is deterministic for any thread count.
///
/// # Panics
///
/// Panics if a worker dies with the panic-isolation machinery disabled
/// (see [`run_tasks`]).
pub fn stream_suite_engine(
    lanes: &[StreamPredictor],
    traces: &[BenchmarkTrace],
    config: &EngineConfig,
) -> (StreamSuiteResult, EngineReport) {
    let labels: Vec<String> = traces.iter().map(|t| t.name.to_owned()).collect();
    let (per_benchmark, report) = run_tasks(
        labels,
        |i| {
            let mut cold: Vec<StreamPredictor> = lanes.to_vec();
            let stats = stream_trace(&mut cold, &traces[i].trace);
            TaskOutput {
                records: traces[i].trace.len() as u64 * lanes.len() as u64,
                value: stats,
            }
        },
        config,
    );
    let mut total = vec![RunStats::default(); lanes.len()];
    for bench in &per_benchmark {
        for (t, s) in total.iter_mut().zip(bench) {
            t.merge(*s);
        }
    }
    let result = StreamSuiteResult {
        lanes: lanes.iter().map(|l| l.name()).collect(),
        per_benchmark,
        total,
    };
    (result, report)
}

/// The default chunk granularity for in-memory chunked streaming: the
/// on-disk v2 chunk size.
pub const STREAM_CHUNK_RECORDS: usize = V2_CHUNK_RECORDS;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate_trace;
    use dfcm_trace::atomic_write;

    fn lanes() -> Vec<StreamPredictor> {
        vec![
            LastValuePredictor::new(6).into(),
            StridePredictor::new(6).into(),
            TwoDeltaStridePredictor::new(6).into(),
            FcmPredictor::builder()
                .l1_bits(6)
                .l2_bits(10)
                .build()
                .unwrap()
                .into(),
            DfcmPredictor::builder()
                .l1_bits(6)
                .l2_bits(10)
                .build()
                .unwrap()
                .into(),
        ]
    }

    fn mixed_trace(n: u64) -> Trace {
        (0..n)
            .map(|i| {
                TraceRecord::new(
                    4 * (i % 37),
                    (i / 5).wrapping_mul(7).wrapping_sub(i % 3) ^ (i / 101),
                )
            })
            .collect()
    }

    #[test]
    fn stream_matches_simulate_trace_per_lane() {
        let trace = mixed_trace(4000);
        let mut streamed = lanes();
        let stats = stream_trace(&mut streamed, &trace);
        for (i, mut reference) in lanes().into_iter().enumerate() {
            let expected = simulate_trace(&mut reference, &trace);
            assert_eq!(stats[i], expected, "{}", reference.name());
        }
    }

    #[test]
    fn chunked_stream_is_bit_identical_for_any_chunk_size() {
        let trace = mixed_trace(3000);
        let mut serial = lanes();
        let expected = stream_trace(&mut serial, &trace);
        for chunk in [1, 7, 64, 1000, 3000, 5000] {
            let mut chunked = lanes();
            assert_eq!(
                stream_trace_chunked(&mut chunked, &trace, chunk),
                expected,
                "chunk size {chunk}"
            );
        }
    }

    #[test]
    fn empty_trace_streams_to_zero_stats() {
        let mut l = lanes();
        let stats = stream_trace(&mut l, &Trace::new());
        assert!(stats.iter().all(|s| *s == RunStats::default()));
    }

    #[test]
    fn observer_sees_every_outcome() {
        let trace = mixed_trace(50);
        let mut l = lanes();
        let mut seen = 0usize;
        let stats = stream_records_with(&mut l, trace.records(), |li, ri, out| {
            assert!(li < 5 && ri < 50);
            assert_eq!(out.correct, out.predicted == trace.records()[ri].value);
            seen += 1;
        });
        assert_eq!(seen, 5 * 50);
        assert_eq!(stats.len(), 5);
    }

    #[test]
    fn file_streaming_matches_in_memory_for_any_thread_count() {
        // Long enough for several on-disk chunks.
        let trace = mixed_trace(2 * V2_CHUNK_RECORDS as u64 + 999);
        let mut buffer = Vec::new();
        trace.write_v2_to(&mut buffer, 42).unwrap();
        let path = std::env::temp_dir().join("dfcm_stream_v2_test.trc");
        atomic_write(&path, &buffer).unwrap();

        let mut reference = lanes();
        let expected = stream_trace(&mut reference, &trace);
        for threads in [0, 1, 2, 5] {
            let mut l = lanes();
            let report = stream_v2_file(&path, &mut l, threads).unwrap();
            assert_eq!(report.stats, expected, "{threads} decode threads");
            assert_eq!(report.records, trace.len() as u64);
            assert_eq!(report.chunks, 3);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn file_streaming_reports_corruption() {
        let trace = mixed_trace(V2_CHUNK_RECORDS as u64 + 10);
        let mut buffer = Vec::new();
        trace.write_v2_to(&mut buffer, 0).unwrap();
        let target = buffer.len() / 2;
        buffer[target] ^= 0x40;
        let path = std::env::temp_dir().join("dfcm_stream_v2_corrupt_test.trc");
        atomic_write(&path, &buffer).unwrap();
        for threads in [1, 4] {
            let err = stream_v2_file(&path, &mut lanes(), threads).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{threads} threads");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn v3_file_streaming_matches_v2_and_memory_for_any_thread_count() {
        use dfcm_trace::{TraceFormat, V3_CHUNK_RECORDS};
        let trace = mixed_trace(2 * V3_CHUNK_RECORDS as u64 + 333);
        let dir = std::env::temp_dir();
        let v2_path = dir.join("dfcm_stream_v3_test.v2.trc");
        let v3_path = dir.join("dfcm_stream_v3_test.v3.trc");
        trace
            .save_with(&v2_path, TraceFormat::V2 { seed: 9 })
            .unwrap();
        trace
            .save_with(&v3_path, TraceFormat::V3 { seed: 9 })
            .unwrap();

        let mut reference = lanes();
        let expected = stream_trace(&mut reference, &trace);
        let mut v2_lanes = lanes();
        let v2_report = stream_v2_file(&v2_path, &mut v2_lanes, 2).unwrap();
        assert_eq!(v2_report.stats, expected);
        for threads in [0, 1, 2, 5] {
            let mut l = lanes();
            let report = stream_v3_file(&v3_path, &mut l, threads).unwrap();
            assert_eq!(report.stats, expected, "{threads} decode threads");
            assert_eq!(report.records, trace.len() as u64);
            assert_eq!(report.chunks, 3);
            // The auto-detecting entry point takes the same path.
            let mut auto = lanes();
            let auto_report = stream_trace_file(&v3_path, &mut auto, threads).unwrap();
            assert_eq!(auto_report, report, "{threads} threads via sniffer");
        }
        let _ = std::fs::remove_file(&v2_path);
        let _ = std::fs::remove_file(&v3_path);
    }

    #[test]
    fn v3_file_streaming_reports_corruption() {
        use dfcm_trace::TraceFormat;
        let trace = mixed_trace(dfcm_trace::V3_CHUNK_RECORDS as u64 + 10);
        let mut buffer = Vec::new();
        trace
            .write_with(&mut buffer, TraceFormat::V3 { seed: 0 })
            .unwrap();
        // Flip a byte deep in the first chunk's compressed payload.
        let target = buffer.len() / 4;
        buffer[target] ^= 0x40;
        let path = std::env::temp_dir().join("dfcm_stream_v3_corrupt_test.trc");
        atomic_write(&path, &buffer).unwrap();
        for threads in [1, 4] {
            let err = stream_v3_file(&path, &mut lanes(), threads).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{threads} threads");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn trace_file_sniffer_handles_v1_v2_and_garbage() {
        use dfcm_trace::TraceFormat;
        let trace = mixed_trace(2500);
        let dir = std::env::temp_dir();
        let mut expected_lanes = lanes();
        let expected = stream_trace(&mut expected_lanes, &trace);

        for (name, format) in [
            ("dfcm_sniff_test.v1.trc", TraceFormat::V1),
            ("dfcm_sniff_test.v2.trc", TraceFormat::V2 { seed: 1 }),
            ("dfcm_sniff_test.v3.trc", TraceFormat::V3 { seed: 1 }),
        ] {
            let path = dir.join(name);
            trace.save_with(&path, format).unwrap();
            let mut l = lanes();
            let report = stream_trace_file(&path, &mut l, 2).unwrap();
            assert_eq!(report.stats, expected, "{name}");
            assert_eq!(report.records, trace.len() as u64, "{name}");
            let _ = std::fs::remove_file(&path);
        }

        let garbage = dir.join("dfcm_sniff_test.bad.trc");
        atomic_write(&garbage, b"NOTATRACEFILE???").unwrap();
        let err = stream_trace_file(&garbage, &mut lanes(), 2).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(&garbage);
    }

    #[test]
    fn spec_strings_round_trip() {
        for spec in [
            "lvp:12",
            "stride:14",
            "2delta:14",
            "fcm:12:10",
            "dfcm:16:12",
        ] {
            let lane = StreamPredictor::parse_spec(spec).unwrap();
            assert_eq!(lane.spec(), spec);
            assert_eq!(
                StreamPredictor::parse_spec(&lane.spec()).unwrap().name(),
                lane.name(),
                "{spec}"
            );
        }
    }

    #[test]
    fn bad_specs_are_rejected_not_panicked() {
        for spec in [
            "magic:3",
            "fcm:12",
            "lvp",
            "lvp:x",
            "lvp:99",
            "stride:12:9",
            "dfcm:12:10:8",
            "",
        ] {
            assert!(StreamPredictor::parse_spec(spec).is_err(), "{spec:?}");
        }
    }

    #[test]
    fn lane_state_round_trips_through_spec_and_words() {
        let trace = mixed_trace(500);
        for mut lane in lanes() {
            stream_trace(std::slice::from_mut(&mut lane), &trace);
            let mut restored = StreamPredictor::parse_spec(&lane.spec()).unwrap();
            restored.load_state_words(&lane.state_words()).unwrap();
            assert_eq!(restored.state_words(), lane.state_words());
            // Mismatched configurations are rejected.
            let mut other = StreamPredictor::parse_spec("lvp:3").unwrap();
            assert!(other.load_state_words(&lane.state_words()).is_err() || lane.spec() == "lvp:3");
        }
    }

    /// Renders the series a full observed streaming run of `path`
    /// produces at the given decode thread count.
    fn observed_series_jsonl(path: &Path, threads: usize) -> (Vec<String>, Vec<RunStats>) {
        let obs = Obs::enabled();
        let mut l = lanes();
        let report = stream_trace_file_observed(path, &mut l, threads, &obs, true).unwrap();
        let lines = dfcm_obs::timeseries::render_series(&obs.series_snapshot());
        (lines, report.stats)
    }

    #[test]
    fn observed_series_bit_identical_at_1_2_4_8_threads() {
        let trace = mixed_trace(2 * V2_CHUNK_RECORDS as u64 + 999);
        let dir = std::env::temp_dir();
        for (name, format) in [
            (
                "dfcm_series_det.v2.trc",
                dfcm_trace::TraceFormat::V2 { seed: 3 },
            ),
            (
                "dfcm_series_det.v3.trc",
                dfcm_trace::TraceFormat::V3 { seed: 3 },
            ),
        ] {
            let path = dir.join(name);
            trace.save_with(&path, format).unwrap();
            let (reference_lines, reference_stats) = observed_series_jsonl(&path, 1);
            assert!(!reference_lines.is_empty());
            for threads in [2, 4, 8] {
                let (lines, stats) = observed_series_jsonl(&path, threads);
                assert_eq!(lines, reference_lines, "{name} at {threads} threads");
                assert_eq!(stats, reference_stats, "{name} at {threads} threads");
            }
            // The observed run's stats stay bit-identical to the
            // unobserved path.
            let mut plain = lanes();
            let plain_report = stream_trace_file(&path, &mut plain, 2).unwrap();
            assert_eq!(plain_report.stats, reference_stats, "{name}");
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn observed_series_identical_inline_and_offloaded() {
        // The fold placement (inline on single-core hosts, a dedicated
        // fold thread otherwise) is a pure performance decision: both
        // consume the outcome sequence in file order, so the exported
        // series must be bit-identical. Pin both paths explicitly so
        // the host running the tests doesn't decide which one runs.
        let trace = mixed_trace(V2_CHUNK_RECORDS as u64 + 777);
        let path = std::env::temp_dir().join("dfcm_series_fold_placement.v2.trc");
        trace
            .save_with(&path, dfcm_trace::TraceFormat::V2 { seed: 9 })
            .unwrap();
        let run = |offload: bool| {
            let obs = Obs::enabled();
            let mut l = lanes();
            let report = stream_file_chunks_observed_with(
                dfcm_trace::V2ChunkReader::open(&path).unwrap(),
                &mut l,
                2,
                &obs,
                true,
                offload,
            )
            .unwrap();
            (
                dfcm_obs::timeseries::render_series(&obs.series_snapshot()),
                report,
            )
        };
        let (inline_lines, inline_report) = run(false);
        let (offload_lines, offload_report) = run(true);
        assert!(!inline_lines.is_empty());
        assert_eq!(inline_lines, offload_lines);
        assert_eq!(inline_report, offload_report);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn observed_series_reconciles_with_aggregates() {
        let trace = mixed_trace(V2_CHUNK_RECORDS as u64 + 123);
        let path = std::env::temp_dir().join("dfcm_series_reconcile.v2.trc");
        let mut buffer = Vec::new();
        trace.write_v2_to(&mut buffer, 5).unwrap();
        atomic_write(&path, &buffer).unwrap();

        let obs = Obs::enabled();
        let mut l = lanes();
        let report = stream_v2_file_observed(&path, &mut l, 2, &obs, true).unwrap();
        let series = obs.series_snapshot();
        assert_eq!(series.len(), l.len());
        for (lane_series, (lane, stats)) in series.iter().zip(l.iter().zip(&report.stats)) {
            // Series totals equal the lane's RunStats exactly.
            let totals = lane_series.series().totals();
            assert_eq!(totals.predictions, stats.predictions, "{}", lane.spec());
            assert_eq!(totals.correct, stats.correct, "{}", lane.spec());
            // The top-K tracker saw exactly the mispredictions, and its
            // table counts sum back to that total.
            let misses = stats.predictions - stats.correct;
            assert_eq!(lane_series.top().total(), misses, "{}", lane.spec());
            let ranked = lane_series.top().ranked();
            assert_eq!(
                ranked.iter().map(|e| e.count).sum::<u64>(),
                misses,
                "{}",
                lane.spec()
            );
            // Where the lane classifies accesses, the per-class series
            // totals equal the analyzer's aggregate breakdown.
            if let Some(alias) = lane.table_stats().and_then(|ts| ts.alias) {
                for (slot, class) in AliasClass::ALL.iter().enumerate() {
                    assert_eq!(
                        totals.class_total[slot],
                        alias.class_total(*class),
                        "{} class {}",
                        lane.spec(),
                        class.label()
                    );
                    assert_eq!(
                        totals.class_correct[slot],
                        alias.class_correct(*class),
                        "{} class {}",
                        lane.spec(),
                        class.label()
                    );
                }
                assert_eq!(totals.class_total[5], 0, "{}", lane.spec());
            } else {
                // Unclassified lanes put everything in the last slot.
                assert_eq!(totals.class_total[5], totals.predictions, "{}", lane.spec());
            }
        }
        // Disabled obs is the plain path: no series recorded, stats
        // bit-identical.
        let disabled = Obs::disabled();
        let mut plain = lanes();
        let plain_report = stream_v2_file_observed(&path, &mut plain, 2, &disabled, true).unwrap();
        assert_eq!(plain_report, report);
        assert!(disabled.series_snapshot().is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn suite_engine_matches_serial_suite() {
        let traces = dfcm_trace::suite::standard_traces(7, 0.01);
        let base = lanes();
        let serial: Vec<Vec<RunStats>> = traces
            .iter()
            .map(|t| {
                let mut cold = base.clone();
                stream_trace(&mut cold, &t.trace)
            })
            .collect();
        let config = EngineConfig {
            threads: 3,
            ..EngineConfig::default()
        };
        let (result, report) = stream_suite_engine(&base, &traces, &config);
        assert_eq!(result.per_benchmark, serial);
        assert_eq!(result.lanes.len(), base.len());
        let records: u64 = traces.iter().map(|t| t.trace.len() as u64).sum();
        assert!(result.total.iter().all(|s| s.predictions == records));
        assert_eq!(report.tasks.len(), traces.len());
    }
}
