use dfcm::ValuePredictor;
use dfcm_trace::BenchmarkTrace;

use crate::run::{simulate_trace, RunStats};

/// Per-benchmark result of a suite run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkResult {
    /// The benchmark's name.
    pub name: &'static str,
    /// The run statistics on this benchmark.
    pub stats: RunStats,
}

/// Result of running one predictor configuration over a benchmark suite.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteResult {
    /// The predictor's label (from [`ValuePredictor::name`]).
    pub predictor: String,
    /// The predictor's storage in Kbit.
    pub kbits: f64,
    /// Per-benchmark results, in suite order.
    pub benchmarks: Vec<BenchmarkResult>,
}

impl SuiteResult {
    /// The paper's summary metric: arithmetic mean over all benchmarks,
    /// weighted by the number of predicted instructions.
    pub fn weighted_accuracy(&self) -> f64 {
        let mut total = RunStats::default();
        for b in &self.benchmarks {
            total.merge(b.stats);
        }
        total.accuracy()
    }

    /// The accuracy on one benchmark, if present.
    pub fn benchmark_accuracy(&self, name: &str) -> Option<f64> {
        self.benchmarks
            .iter()
            .find(|b| b.name == name)
            .map(|b| b.stats.accuracy())
    }
}

/// Runs a *fresh* predictor (from `factory`) over each benchmark trace —
/// the paper's per-benchmark simulation — and aggregates the results.
pub fn run_suite<P, F>(mut factory: F, traces: &[BenchmarkTrace]) -> SuiteResult
where
    P: ValuePredictor,
    F: FnMut() -> P,
{
    let mut benchmarks = Vec::with_capacity(traces.len());
    let mut label = None;
    let mut kbits = 0.0;
    for bench in traces {
        let mut predictor = factory();
        if label.is_none() {
            label = Some(predictor.name());
            kbits = predictor.storage().kbits();
        }
        let stats = simulate_trace(&mut predictor, &bench.trace);
        benchmarks.push(BenchmarkResult {
            name: bench.name,
            stats,
        });
    }
    SuiteResult {
        predictor: label.unwrap_or_else(|| "(empty suite)".to_owned()),
        kbits,
        benchmarks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfcm::LastValuePredictor;
    use dfcm_trace::{Trace, TraceRecord};

    fn bench(name: &'static str, values: &[u64]) -> BenchmarkTrace {
        BenchmarkTrace {
            name,
            trace: values
                .iter()
                .map(|&v| TraceRecord::new(8, v))
                .collect::<Trace>(),
        }
    }

    #[test]
    fn fresh_predictor_per_benchmark() {
        // If state leaked between benchmarks, the second identical
        // benchmark would have no cold miss.
        let traces = vec![bench("a", &[5, 5, 5]), bench("b", &[5, 5, 5])];
        let result = run_suite(|| LastValuePredictor::new(4), &traces);
        assert_eq!(result.benchmarks[0].stats.correct, 2);
        assert_eq!(result.benchmarks[1].stats.correct, 2, "state must not leak");
    }

    #[test]
    fn weighted_mean_weights_by_predictions() {
        // 100 predictions at 99% and 10 predictions at 0%.
        let traces = vec![
            bench("big", &[7; 100]),
            bench("small", &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]),
        ];
        let result = run_suite(|| LastValuePredictor::new(4), &traces);
        let expected = 99.0 / 110.0;
        assert!((result.weighted_accuracy() - expected).abs() < 1e-12);
    }

    #[test]
    fn benchmark_accuracy_lookup() {
        let traces = vec![bench("x", &[3, 3])];
        let result = run_suite(|| LastValuePredictor::new(4), &traces);
        assert_eq!(result.benchmark_accuracy("x"), Some(0.5));
        assert_eq!(result.benchmark_accuracy("y"), None);
    }

    #[test]
    fn labels_and_size_reported() {
        let traces = vec![bench("x", &[1])];
        let result = run_suite(|| LastValuePredictor::new(6), &traces);
        assert_eq!(result.predictor, "lvp(2^6)");
        assert!((result.kbits - 2.0).abs() < 1e-12); // 64 entries * 32 bits
    }
}
