/// A labelled (size, accuracy) point for Pareto analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoPoint {
    /// Label of the configuration (e.g. the predictor name).
    pub label: String,
    /// Total storage in Kbit.
    pub kbits: f64,
    /// Weighted suite accuracy.
    pub accuracy: f64,
}

/// Computes the Pareto front the paper plots in Figure 11(b): the
/// configurations with "a higher accuracy than all other configurations
/// with the same or smaller size".
///
/// Returns the surviving points sorted by ascending size. Within a size
/// tie only the most accurate point survives.
///
/// ```
/// use dfcm_sim::{pareto_front, ParetoPoint};
///
/// let p = |k: f64, a: f64| ParetoPoint { label: String::new(), kbits: k, accuracy: a };
/// let front = pareto_front(&[p(1.0, 0.5), p(2.0, 0.4), p(2.0, 0.6), p(4.0, 0.7)]);
/// let sizes: Vec<f64> = front.iter().map(|p| p.kbits).collect();
/// assert_eq!(sizes, vec![1.0, 2.0, 4.0]); // the 0.4-accuracy point is dominated
/// ```
pub fn pareto_front(points: &[ParetoPoint]) -> Vec<ParetoPoint> {
    let mut sorted: Vec<&ParetoPoint> = points.iter().collect();
    sorted.sort_by(|a, b| {
        a.kbits
            .total_cmp(&b.kbits)
            .then(b.accuracy.total_cmp(&a.accuracy))
    });
    let mut front = Vec::new();
    let mut best = f64::NEG_INFINITY;
    for p in sorted {
        if p.accuracy > best {
            best = p.accuracy;
            front.push(p.clone());
        }
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(kbits: f64, accuracy: f64) -> ParetoPoint {
        ParetoPoint {
            label: format!("{kbits}/{accuracy}"),
            kbits,
            accuracy,
        }
    }

    #[test]
    fn dominated_points_removed() {
        let front = pareto_front(&[p(10.0, 0.5), p(20.0, 0.45), p(30.0, 0.6)]);
        assert_eq!(front.len(), 2);
        assert_eq!(front[0].kbits, 10.0);
        assert_eq!(front[1].kbits, 30.0);
    }

    #[test]
    fn equal_size_keeps_best_only() {
        let front = pareto_front(&[p(8.0, 0.3), p(8.0, 0.7), p(8.0, 0.5)]);
        assert_eq!(front.len(), 1);
        assert_eq!(front[0].accuracy, 0.7);
    }

    #[test]
    fn monotone_input_survives_whole() {
        let pts: Vec<ParetoPoint> = (1..=5).map(|i| p(i as f64, 0.1 * i as f64)).collect();
        assert_eq!(pareto_front(&pts).len(), 5);
    }

    #[test]
    fn front_is_sorted_and_strictly_improving() {
        let pts = vec![
            p(4.0, 0.4),
            p(1.0, 0.2),
            p(3.0, 0.5),
            p(2.0, 0.2),
            p(5.0, 0.45),
        ];
        let front = pareto_front(&pts);
        for w in front.windows(2) {
            assert!(w[0].kbits < w[1].kbits);
            assert!(w[0].accuracy < w[1].accuracy);
        }
    }

    #[test]
    fn empty_input() {
        assert!(pareto_front(&[]).is_empty());
    }

    #[test]
    fn nan_accuracy_sorts_deterministically_without_panicking() {
        // A NaN accuracy (e.g. a 0/0 run that slipped through) must not
        // panic the sort — `total_cmp` gives NaN a fixed place in the
        // order (positive NaN above +inf) — and must not poison the
        // front: NaN > best is false for every `best`, so the point is
        // simply dominated away while finite points survive.
        let pts = vec![p(2.0, f64::NAN), p(1.0, 0.4), p(3.0, 0.6)];
        let front = pareto_front(&pts);
        let labels: Vec<&str> = front.iter().map(|q| q.label.as_str()).collect();
        assert_eq!(labels, vec!["1/0.4", "3/0.6"]);
        assert!(front.iter().all(|q| !q.accuracy.is_nan()));

        // Deterministic: shuffling the input (including a NaN kbits
        // point) yields the same front, in the same order.
        let with_nan_size = vec![p(3.0, 0.6), p(f64::NAN, 0.9), p(2.0, f64::NAN), p(1.0, 0.4)];
        let a = pareto_front(&with_nan_size);
        let mut reversed = with_nan_size.clone();
        reversed.reverse();
        let b = pareto_front(&reversed);
        // Compare by label: NaN coordinates are never `==`, but the same
        // points must survive in the same order from either input order.
        let labels = |front: &[ParetoPoint]| -> Vec<String> {
            front.iter().map(|q| q.label.clone()).collect()
        };
        assert_eq!(labels(&a), labels(&b));
    }
}

#[cfg(test)]
mod property_tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_points() -> impl Strategy<Value = Vec<ParetoPoint>> {
        prop::collection::vec((1u32..1000, 0u32..1000), 0..50).prop_map(|v| {
            v.into_iter()
                .map(|(k, a)| ParetoPoint {
                    label: format!("{k}/{a}"),
                    kbits: f64::from(k),
                    accuracy: f64::from(a) / 1000.0,
                })
                .collect()
        })
    }

    proptest! {
        /// Every front member comes from the input set.
        #[test]
        fn front_is_subset(points in arb_points()) {
            let front = pareto_front(&points);
            for p in &front {
                prop_assert!(points.iter().any(|q| q.kbits == p.kbits
                    && q.accuracy == p.accuracy));
            }
        }

        /// No input point dominates a front member (same-or-smaller size
        /// with strictly higher accuracy).
        #[test]
        fn front_members_are_undominated(points in arb_points()) {
            let front = pareto_front(&points);
            for f in &front {
                for q in &points {
                    prop_assert!(
                        !(q.kbits <= f.kbits && q.accuracy > f.accuracy),
                        "{}/{} dominates front member {}/{}",
                        q.kbits, q.accuracy, f.kbits, f.accuracy
                    );
                }
            }
        }

        /// Every input point is dominated-or-equalled by some front member.
        #[test]
        fn front_covers_input(points in arb_points()) {
            let front = pareto_front(&points);
            for q in &points {
                prop_assert!(
                    front.iter().any(|f| f.kbits <= q.kbits && f.accuracy >= q.accuracy),
                    "{}/{} not covered",
                    q.kbits,
                    q.accuracy
                );
            }
        }

        /// The front is strictly increasing in both coordinates.
        #[test]
        fn front_strictly_increases(points in arb_points()) {
            let front = pareto_front(&points);
            for w in front.windows(2) {
                prop_assert!(w[0].kbits < w[1].kbits);
                prop_assert!(w[0].accuracy < w[1].accuracy);
            }
        }
    }
}
