use dfcm::{AliasClass, ValuePredictor};
use dfcm_obs::Obs;
use dfcm_trace::{Trace, TraceSource};

/// Aggregate outcome of running a predictor over a trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Number of predictions made.
    pub predictions: u64,
    /// Number of correct predictions.
    pub correct: u64,
}

impl RunStats {
    /// The prediction accuracy, `correct / predictions` (0 for an empty
    /// run).
    pub fn accuracy(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.correct as f64 / self.predictions as f64
        }
    }

    /// Merges another run into this one. Saturates rather than
    /// overflowing: merged counters from many chunked sub-runs cap at
    /// `u64::MAX` instead of wrapping into nonsense (or panicking in
    /// debug builds).
    pub fn merge(&mut self, other: RunStats) {
        self.predictions = self.predictions.saturating_add(other.predictions);
        self.correct = self.correct.saturating_add(other.correct);
    }
}

/// Runs `predictor` over every record `source` yields.
pub fn simulate<P, S>(predictor: &mut P, source: &mut S) -> RunStats
where
    P: ValuePredictor + ?Sized,
    S: TraceSource + ?Sized,
{
    let mut stats = RunStats::default();
    while let Some(record) = source.next_record() {
        stats.predictions += 1;
        stats.correct += u64::from(predictor.access(record.pc, record.value).correct);
    }
    stats
}

/// Runs `predictor` over at most `n` records of `source`.
pub fn simulate_n<P, S>(predictor: &mut P, source: &mut S, n: usize) -> RunStats
where
    P: ValuePredictor + ?Sized,
    S: TraceSource + ?Sized,
{
    let mut stats = RunStats::default();
    for _ in 0..n {
        let Some(record) = source.next_record() else {
            break;
        };
        stats.predictions += 1;
        stats.correct += u64::from(predictor.access(record.pc, record.value).correct);
    }
    stats
}

/// Runs `predictor` over a buffered trace.
pub fn simulate_trace<P>(predictor: &mut P, trace: &Trace) -> RunStats
where
    P: ValuePredictor + ?Sized,
{
    // Count incrementally (like `simulate`) rather than pre-populating
    // `predictions` with `trace.len()`: a chunked or early-exiting caller
    // must never see more predictions reported than were actually made.
    let mut stats = RunStats::default();
    for record in trace {
        stats.predictions += 1;
        stats.correct += u64::from(predictor.access(record.pc, record.value).correct);
    }
    stats
}

/// [`simulate_trace`] with table-usage observability: when `obs` is
/// enabled, turns on the predictor's table-stats instrumentation, wraps
/// the run in an `eval.predictor` span, samples per-table occupancy
/// (the `table_occupancy_percent` series, 64 points over the trace),
/// folds the phase-resolved windowed series + top-K per-PC tracker
/// (attached via [`Obs::record_series`], exported as `series.jsonl`) and
/// records the final table-usage counters, the paper-taxonomy aliasing
/// breakdown (where the predictor provides one) and the `eval_accuracy`
/// gauge — all labeled with `spec`. With `obs` disabled this is exactly
/// [`simulate_trace`].
pub fn simulate_trace_observed<P>(
    predictor: &mut P,
    trace: &Trace,
    obs: &Obs,
    spec: &str,
) -> RunStats
where
    P: ValuePredictor + ?Sized,
{
    if !obs.is_enabled() {
        return simulate_trace(predictor, trace);
    }
    predictor.enable_table_stats();
    let mut span = obs.span("eval.predictor");
    span.arg("spec", spec);
    let stride = (trace.len() / 64).max(1);
    let mut stats = RunStats::default();
    let mut series =
        dfcm_obs::timeseries::LaneSeries::with_defaults(spec, crate::stream::SERIES_CLASS_LABELS);
    for (i, record) in trace.into_iter().enumerate() {
        let outcome = predictor.access(record.pc, record.value);
        stats.predictions += 1;
        stats.correct += u64::from(outcome.correct);
        series.record(
            i as u64,
            record.pc,
            crate::stream::class_slot(predictor.last_alias_class()),
            outcome.predicted,
            record.value,
        );
        // Sample on every stride boundary, and always at the final record:
        // when `trace.len() % stride != 0` the trailing partial window
        // would otherwise never be sampled and the exported occupancy
        // series would end before the tables reach their final state.
        if (i + 1) % stride == 0 || i + 1 == trace.len() {
            if let Some(ts) = predictor.table_stats() {
                for t in &ts.tables {
                    obs.sample(
                        "table_occupancy_percent",
                        &[("spec", spec), ("table", t.name)],
                        t.occupancy_percent(),
                    );
                }
            }
        }
    }
    if let Some(ts) = predictor.table_stats() {
        for t in &ts.tables {
            let labels = [("spec", spec), ("table", t.name)];
            obs.gauge("predictor_table_entries", &labels, t.entries as f64);
            obs.gauge("predictor_table_occupied", &labels, t.occupied as f64);
            obs.add("predictor_table_writes_total", &labels, t.writes);
            obs.add("predictor_table_overwrites_total", &labels, t.overwrites);
        }
        if let Some(alias) = &ts.alias {
            for class in AliasClass::ALL {
                let labels = [("spec", spec), ("class", class.label())];
                obs.add("predictor_alias_total", &labels, alias.class_total(class));
                obs.add(
                    "predictor_alias_correct_total",
                    &labels,
                    alias.class_correct(class),
                );
            }
        }
    }
    obs.gauge("eval_accuracy", &[("spec", spec)], stats.accuracy());
    obs.record_series(series);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfcm::LastValuePredictor;
    use dfcm_trace::TraceRecord;

    fn constant_trace(n: u64) -> Trace {
        (0..n).map(|_| TraceRecord::new(4, 9)).collect()
    }

    #[test]
    fn trace_and_source_paths_agree() {
        let trace = constant_trace(100);
        let mut a = LastValuePredictor::new(4);
        let mut b = LastValuePredictor::new(4);
        let sa = simulate_trace(&mut a, &trace);
        let sb = simulate(&mut b, &mut trace.source());
        assert_eq!(sa, sb);
        assert_eq!(sa.predictions, 100);
        assert_eq!(sa.correct, 99); // one cold miss
    }

    #[test]
    fn simulate_n_bounds_the_run() {
        let trace = constant_trace(100);
        let mut p = LastValuePredictor::new(4);
        let stats = simulate_n(&mut p, &mut trace.source(), 10);
        assert_eq!(stats.predictions, 10);
        let stats = simulate_n(&mut p, &mut trace.source(), 1000);
        assert_eq!(stats.predictions, 100, "stops at trace end");
    }

    #[test]
    fn accuracy_of_empty_run_is_zero() {
        assert_eq!(RunStats::default().accuracy(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = RunStats {
            predictions: 10,
            correct: 5,
        };
        a.merge(RunStats {
            predictions: 30,
            correct: 30,
        });
        assert_eq!(a.predictions, 40);
        assert_eq!(a.correct, 35);
        assert!((a.accuracy() - 0.875).abs() < 1e-12);
    }

    #[test]
    fn merge_saturates_instead_of_overflowing() {
        let mut a = RunStats {
            predictions: u64::MAX - 1,
            correct: u64::MAX - 1,
        };
        a.merge(RunStats {
            predictions: 10,
            correct: 3,
        });
        assert_eq!(a.predictions, u64::MAX);
        assert_eq!(a.correct, u64::MAX);
    }

    /// Counts the `table_occupancy_percent` samples an observed run emits.
    fn occupancy_samples(len: u64) -> usize {
        let trace = constant_trace(len);
        let mut p = LastValuePredictor::new(4);
        let obs = Obs::enabled();
        let stats = simulate_trace_observed(&mut p, &trace, &obs, "lvp:4");
        assert_eq!(stats.predictions, len, "incremental count matches trace");
        let (events, _) = obs.snapshot();
        events
            .iter()
            .filter(|e| {
                matches!(e, dfcm_obs::span::Event::Sample { name, .. }
                if name == "table_occupancy_percent")
            })
            .count()
    }

    #[test]
    fn observed_run_samples_final_partial_window() {
        // 131 = 2 * 65 + 1: stride is 131/64 = 2, so boundaries fall on
        // even record counts and the last record (131) is off-stride. The
        // fix guarantees a closing sample there; without it the series
        // ended at record 130 (65 samples, tables one write stale).
        assert_eq!(occupancy_samples(131), 65 + 1);
        // Exact multiples are unchanged: the final record IS a boundary,
        // and no duplicate sample is emitted for it.
        assert_eq!(occupancy_samples(128), 64);
        // Traces shorter than one window (stride clamps to 1) sample at
        // every record, including the last.
        assert_eq!(occupancy_samples(3), 3);
    }
}
