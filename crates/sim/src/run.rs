use dfcm::{AliasClass, ValuePredictor};
use dfcm_obs::Obs;
use dfcm_trace::{Trace, TraceSource};

/// Aggregate outcome of running a predictor over a trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Number of predictions made.
    pub predictions: u64,
    /// Number of correct predictions.
    pub correct: u64,
}

impl RunStats {
    /// The prediction accuracy, `correct / predictions` (0 for an empty
    /// run).
    pub fn accuracy(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.correct as f64 / self.predictions as f64
        }
    }

    /// Merges another run into this one.
    pub fn merge(&mut self, other: RunStats) {
        self.predictions += other.predictions;
        self.correct += other.correct;
    }
}

/// Runs `predictor` over every record `source` yields.
pub fn simulate<P, S>(predictor: &mut P, source: &mut S) -> RunStats
where
    P: ValuePredictor + ?Sized,
    S: TraceSource + ?Sized,
{
    let mut stats = RunStats::default();
    while let Some(record) = source.next_record() {
        stats.predictions += 1;
        stats.correct += u64::from(predictor.access(record.pc, record.value).correct);
    }
    stats
}

/// Runs `predictor` over at most `n` records of `source`.
pub fn simulate_n<P, S>(predictor: &mut P, source: &mut S, n: usize) -> RunStats
where
    P: ValuePredictor + ?Sized,
    S: TraceSource + ?Sized,
{
    let mut stats = RunStats::default();
    for _ in 0..n {
        let Some(record) = source.next_record() else {
            break;
        };
        stats.predictions += 1;
        stats.correct += u64::from(predictor.access(record.pc, record.value).correct);
    }
    stats
}

/// Runs `predictor` over a buffered trace.
pub fn simulate_trace<P>(predictor: &mut P, trace: &Trace) -> RunStats
where
    P: ValuePredictor + ?Sized,
{
    let mut stats = RunStats {
        predictions: trace.len() as u64,
        correct: 0,
    };
    for record in trace {
        stats.correct += u64::from(predictor.access(record.pc, record.value).correct);
    }
    stats
}

/// [`simulate_trace`] with table-usage observability: when `obs` is
/// enabled, turns on the predictor's table-stats instrumentation, wraps
/// the run in an `eval.predictor` span, samples per-table occupancy
/// (the `table_occupancy_percent` series, 64 points over the trace) and
/// records the final table-usage counters, the paper-taxonomy aliasing
/// breakdown (where the predictor provides one) and the `eval_accuracy`
/// gauge — all labeled with `spec`. With `obs` disabled this is exactly
/// [`simulate_trace`].
pub fn simulate_trace_observed<P>(
    predictor: &mut P,
    trace: &Trace,
    obs: &Obs,
    spec: &str,
) -> RunStats
where
    P: ValuePredictor + ?Sized,
{
    if !obs.is_enabled() {
        return simulate_trace(predictor, trace);
    }
    predictor.enable_table_stats();
    let mut span = obs.span("eval.predictor");
    span.arg("spec", spec);
    let stride = (trace.len() / 64).max(1);
    let mut stats = RunStats {
        predictions: trace.len() as u64,
        correct: 0,
    };
    for (i, record) in trace.into_iter().enumerate() {
        stats.correct += u64::from(predictor.access(record.pc, record.value).correct);
        if (i + 1) % stride == 0 {
            if let Some(ts) = predictor.table_stats() {
                for t in &ts.tables {
                    obs.sample(
                        "table_occupancy_percent",
                        &[("spec", spec), ("table", t.name)],
                        t.occupancy_percent(),
                    );
                }
            }
        }
    }
    if let Some(ts) = predictor.table_stats() {
        for t in &ts.tables {
            let labels = [("spec", spec), ("table", t.name)];
            obs.gauge("predictor_table_entries", &labels, t.entries as f64);
            obs.gauge("predictor_table_occupied", &labels, t.occupied as f64);
            obs.add("predictor_table_writes_total", &labels, t.writes);
            obs.add("predictor_table_overwrites_total", &labels, t.overwrites);
        }
        if let Some(alias) = &ts.alias {
            for class in AliasClass::ALL {
                let labels = [("spec", spec), ("class", class.label())];
                obs.add("predictor_alias_total", &labels, alias.class_total(class));
                obs.add(
                    "predictor_alias_correct_total",
                    &labels,
                    alias.class_correct(class),
                );
            }
        }
    }
    obs.gauge("eval_accuracy", &[("spec", spec)], stats.accuracy());
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfcm::LastValuePredictor;
    use dfcm_trace::TraceRecord;

    fn constant_trace(n: u64) -> Trace {
        (0..n).map(|_| TraceRecord::new(4, 9)).collect()
    }

    #[test]
    fn trace_and_source_paths_agree() {
        let trace = constant_trace(100);
        let mut a = LastValuePredictor::new(4);
        let mut b = LastValuePredictor::new(4);
        let sa = simulate_trace(&mut a, &trace);
        let sb = simulate(&mut b, &mut trace.source());
        assert_eq!(sa, sb);
        assert_eq!(sa.predictions, 100);
        assert_eq!(sa.correct, 99); // one cold miss
    }

    #[test]
    fn simulate_n_bounds_the_run() {
        let trace = constant_trace(100);
        let mut p = LastValuePredictor::new(4);
        let stats = simulate_n(&mut p, &mut trace.source(), 10);
        assert_eq!(stats.predictions, 10);
        let stats = simulate_n(&mut p, &mut trace.source(), 1000);
        assert_eq!(stats.predictions, 100, "stops at trace end");
    }

    #[test]
    fn accuracy_of_empty_run_is_zero() {
        assert_eq!(RunStats::default().accuracy(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = RunStats {
            predictions: 10,
            correct: 5,
        };
        a.merge(RunStats {
            predictions: 30,
            correct: 30,
        });
        assert_eq!(a.predictions, 40);
        assert_eq!(a.correct, 35);
        assert!((a.accuracy() - 0.875).abs() < 1e-12);
    }
}
