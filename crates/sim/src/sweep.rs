use dfcm::ValuePredictor;
use dfcm_trace::BenchmarkTrace;

use crate::suite::{run_suite, SuiteResult};

/// One evaluated configuration of a parameter sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint<C> {
    /// The configuration that was evaluated.
    pub config: C,
    /// The suite result at that configuration.
    pub result: SuiteResult,
}

impl<C> SweepPoint<C> {
    /// Shorthand for the weighted suite accuracy at this point.
    pub fn accuracy(&self) -> f64 {
        self.result.weighted_accuracy()
    }

    /// Shorthand for the configuration's storage in Kbit.
    pub fn kbits(&self) -> f64 {
        self.result.kbits
    }
}

/// Evaluates a family of predictor configurations over a benchmark suite.
///
/// `factory` builds a fresh predictor for a configuration; it is invoked
/// once per (configuration, benchmark) pair so that every benchmark sees
/// cold tables, as in the paper.
///
/// ```
/// use dfcm::LastValuePredictor;
/// use dfcm_sim::sweep;
/// use dfcm_trace::suite::standard_traces;
///
/// let traces = standard_traces(1, 0.001);
/// let points = sweep(&[6u32, 8], |&bits| LastValuePredictor::new(bits), &traces);
/// assert_eq!(points.len(), 2);
/// assert!(points[0].accuracy() > 0.0);
/// ```
pub fn sweep<C, P, F>(
    configs: &[C],
    mut factory: F,
    traces: &[BenchmarkTrace],
) -> Vec<SweepPoint<C>>
where
    C: Clone,
    P: ValuePredictor,
    F: FnMut(&C) -> P,
{
    configs
        .iter()
        .map(|config| SweepPoint {
            config: config.clone(),
            result: run_suite(|| factory(config), traces),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfcm::FcmPredictor;
    use dfcm_trace::{BenchmarkTrace, Trace, TraceRecord};

    fn tiny_suite() -> Vec<BenchmarkTrace> {
        // PCs must be 4-byte aligned (see `TraceRecord::pc`): predictors
        // drop the two always-zero low bits, so `16 + (i % 4)` would
        // collapse all four "instructions" into one level-1 entry.
        let trace: Trace = (0..500u64)
            .map(|i| TraceRecord::new(16 + 4 * (i % 4), (i % 7) * 100))
            .collect();
        vec![BenchmarkTrace { name: "t", trace }]
    }

    #[test]
    fn sweep_evaluates_each_config() {
        let traces = tiny_suite();
        let points = sweep(
            &[(4u32, 8u32), (8, 12)],
            |&(l1, l2)| {
                FcmPredictor::builder()
                    .l1_bits(l1)
                    .l2_bits(l2)
                    .build()
                    .unwrap()
            },
            &traces,
        );
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].config, (4, 8));
        assert!(points[1].kbits() > points[0].kbits());
    }

    #[test]
    fn bigger_tables_do_not_hurt_on_context_patterns() {
        let traces = tiny_suite();
        let points = sweep(
            &[8u32, 14],
            |&l2| {
                FcmPredictor::builder()
                    .l1_bits(8)
                    .l2_bits(l2)
                    .build()
                    .unwrap()
            },
            &traces,
        );
        assert!(points[1].accuracy() >= points[0].accuracy() - 0.02);
    }
}

/// Like [`sweep`], but runs on the [`engine`](crate::engine) with
/// `threads` workers. Results are identical to the serial version and
/// returned in configuration order; only wall-clock time differs. Work is
/// scheduled at (configuration, benchmark) granularity — each pair still
/// gets a fresh predictor — so even a sweep of one big configuration
/// spreads across all workers. Use [`sweep_engine`](crate::sweep_engine)
/// directly to also collect the run metrics.
pub fn sweep_parallel<C, P, F>(
    configs: &[C],
    factory: F,
    traces: &[BenchmarkTrace],
    threads: usize,
) -> Vec<SweepPoint<C>>
where
    C: Clone + Send + Sync,
    P: ValuePredictor,
    F: Fn(&C) -> P + Send + Sync,
{
    crate::engine::sweep_engine(
        configs,
        factory,
        traces,
        &crate::engine::EngineConfig::threads(threads.max(1)),
    )
    .0
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use dfcm::DfcmPredictor;
    use dfcm_trace::suite::standard_traces;

    #[test]
    fn parallel_matches_serial() {
        let traces = standard_traces(5, 0.002);
        let configs: Vec<(u32, u32)> = vec![(8, 8), (8, 10), (10, 8), (10, 10), (12, 10)];
        let factory = |&(l1, l2): &(u32, u32)| {
            DfcmPredictor::builder()
                .l1_bits(l1)
                .l2_bits(l2)
                .build()
                .unwrap()
        };
        let serial = sweep(&configs, factory, &traces);
        let parallel = sweep_parallel(&configs, factory, &traces, 4);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.config, p.config);
            assert_eq!(s.result, p.result);
        }
    }

    #[test]
    fn single_thread_and_oversubscription_work() {
        let traces = standard_traces(5, 0.001);
        let configs = vec![(8u32, 8u32), (9, 9)];
        let factory = |&(l1, l2): &(u32, u32)| {
            DfcmPredictor::builder()
                .l1_bits(l1)
                .l2_bits(l2)
                .build()
                .unwrap()
        };
        assert_eq!(sweep_parallel(&configs, factory, &traces, 1).len(), 2);
        assert_eq!(sweep_parallel(&configs, factory, &traces, 64).len(), 2);
    }
}
