//! JSONL checkpoint log: streaming persistence of completed engine
//! tasks, so an interrupted multi-hour sweep resumes instead of
//! restarting.
//!
//! Every completed task appends one self-contained line:
//!
//! ```text
//! {"type":"task","index":3,"label":"cfg0/li","records":5000,"payload":{"predictions":5000,"correct":3120}}
//! ```
//!
//! The `payload` is an opaque JSON fragment chosen by the caller (the
//! sweep path stores exact integer `RunStats`, so a resumed merge is
//! byte-identical to an uninterrupted run). Appends are flushed per
//! line; a crash can at worst leave one torn final line, which
//! [`CheckpointLog::open`] skips on reload. Entries are validated
//! against the current task list by index *and* label, so a stale
//! checkpoint from a different sweep shape is ignored rather than
//! merged.

use std::fs::{self, File, OpenOptions};
use std::io::{self, BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::report::json_string;
use crate::run::RunStats;

/// One completed-task entry read back from a checkpoint file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointEntry {
    /// The task's index in its batch.
    pub index: usize,
    /// The task's label (must match the batch's label at `index` to be
    /// trusted on resume).
    pub label: String,
    /// Records the task simulated (for throughput accounting).
    pub records: u64,
    /// The caller-defined result payload, as a raw JSON fragment.
    pub payload: String,
}

/// A seeded slot per task index: the `(payload, records)` of a
/// checkpointed completion, or `None` if the task still has to run.
pub type SeededPayloads = Vec<Option<(String, u64)>>;

/// An append-only JSONL checkpoint file.
#[derive(Debug)]
pub struct CheckpointLog {
    path: PathBuf,
    writer: Mutex<BufWriter<File>>,
}

impl CheckpointLog {
    /// Opens (creating if needed) the log at `path` and returns it along
    /// with every valid entry already present. Malformed lines — e.g. a
    /// torn final line from a crash mid-append — are skipped.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from directory creation, reading an
    /// existing log, or opening the append handle.
    pub fn open(path: &Path) -> io::Result<(CheckpointLog, Vec<CheckpointEntry>)> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let entries = match fs::read_to_string(path) {
            Ok(text) => text.lines().filter_map(parse_entry).collect(),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok((
            CheckpointLog {
                path: path.to_path_buf(),
                writer: Mutex::new(BufWriter::new(file)),
            },
            entries,
        ))
    }

    /// The file this log appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one completed task and flushes, so the entry survives a
    /// crash immediately after this call returns. `payload` must be a
    /// single-line JSON fragment.
    ///
    /// # Errors
    ///
    /// Propagates write and flush errors.
    ///
    /// # Panics
    ///
    /// Panics if `payload` or `label` contains a newline (it would tear
    /// the line-oriented format).
    pub fn append(&self, index: usize, label: &str, records: u64, payload: &str) -> io::Result<()> {
        assert!(
            !payload.contains('\n') && !label.contains('\n'),
            "checkpoint entries must be single lines"
        );
        let line = format!(
            "{{\"type\":\"task\",\"index\":{index},\"label\":{},\"records\":{records},\"payload\":{payload}}}\n",
            json_string(label)
        );
        let mut w = self.writer.lock().unwrap_or_else(|p| p.into_inner());
        w.write_all(line.as_bytes())?;
        w.flush()
    }

    /// Loads a checkpoint (when `path` is given) and distributes its
    /// entries over the task list: returns the open log plus, for every
    /// task index, the `(payload, records)` of its completed entry if
    /// one matches by index and label. With `path == None` the seeded
    /// vector is all-`None` and no log is opened.
    ///
    /// # Errors
    ///
    /// Propagates [`CheckpointLog::open`] errors.
    pub fn load_seeded(
        path: Option<&Path>,
        labels: &[String],
    ) -> io::Result<(Option<CheckpointLog>, SeededPayloads)> {
        let mut seeded: SeededPayloads = (0..labels.len()).map(|_| None).collect();
        let Some(path) = path else {
            return Ok((None, seeded));
        };
        let (log, entries) = CheckpointLog::open(path)?;
        for e in entries {
            if labels.get(e.index).is_some_and(|l| *l == e.label) {
                seeded[e.index] = Some((e.payload, e.records));
            }
        }
        Ok((Some(log), seeded))
    }
}

/// Parses one checkpoint line; `None` for anything malformed.
fn parse_entry(line: &str) -> Option<CheckpointEntry> {
    let line = line.trim();
    let rest = line.strip_prefix("{\"type\":\"task\",\"index\":")?;
    let (index, rest) = split_u64(rest)?;
    let rest = rest.strip_prefix(",\"label\":\"")?;
    let (label, rest) = split_json_string(rest)?;
    let rest = rest.strip_prefix(",\"records\":")?;
    let (records, rest) = split_u64(rest)?;
    let payload = rest.strip_prefix(",\"payload\":")?.strip_suffix('}')?;
    Some(CheckpointEntry {
        index: usize::try_from(index).ok()?,
        label,
        records,
        payload: payload.to_owned(),
    })
}

/// Splits a leading decimal integer off `s`.
fn split_u64(s: &str) -> Option<(u64, &str)> {
    let end = s.find(|c: char| !c.is_ascii_digit()).unwrap_or(s.len());
    let (digits, rest) = s.split_at(end);
    Some((digits.parse().ok()?, rest))
}

/// Splits a JSON string body (after the opening quote) off `s`,
/// unescaping the subset [`json_string`] emits.
fn split_json_string(s: &str) -> Option<(String, &str)> {
    let mut out = String::new();
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Some((out, &s[i + 1..])),
            '\\' => match chars.next()?.1 {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                't' => out.push('\t'),
                'u' => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        code = code * 16 + chars.next()?.1.to_digit(16)?;
                    }
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
    None
}

/// Encodes [`RunStats`] as an exact-integer payload, so checkpointed
/// results merge bit-identically to freshly simulated ones.
pub fn encode_stats(stats: &RunStats) -> String {
    format!(
        "{{\"predictions\":{},\"correct\":{}}}",
        stats.predictions, stats.correct
    )
}

/// Decodes an [`encode_stats`] payload.
pub fn decode_stats(payload: &str) -> Option<RunStats> {
    let rest = payload.strip_prefix("{\"predictions\":")?;
    let (predictions, rest) = split_u64(rest)?;
    let rest = rest.strip_prefix(",\"correct\":")?;
    let (correct, rest) = split_u64(rest)?;
    if rest != "}" {
        return None;
    }
    Some(RunStats {
        predictions,
        correct,
    })
}

/// Encodes a row of table cells as a JSON string array payload.
pub fn encode_rows(cells: &[String]) -> String {
    let mut out = String::from("[");
    for (i, cell) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_string(cell));
    }
    out.push(']');
    out
}

/// Decodes an [`encode_rows`] payload.
pub fn decode_rows(payload: &str) -> Option<Vec<String>> {
    let mut rest = payload.strip_prefix('[')?;
    let mut cells = Vec::new();
    if let Some(done) = rest.strip_prefix(']') {
        return done.is_empty().then_some(cells);
    }
    loop {
        rest = rest.strip_prefix('"')?;
        let (cell, after) = split_json_string(rest)?;
        cells.push(cell);
        if let Some(more) = after.strip_prefix(',') {
            rest = more;
        } else {
            return after.strip_prefix(']')?.is_empty().then_some(cells);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_log(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("dfcm_checkpoint_tests");
        let _ = fs::create_dir_all(&dir);
        let path = dir.join(name);
        let _ = fs::remove_file(&path);
        path
    }

    #[test]
    fn append_then_reopen_roundtrips() {
        let path = temp_log("roundtrip.jsonl");
        let (log, initial) = CheckpointLog::open(&path).unwrap();
        assert!(initial.is_empty());
        log.append(0, "cfg0/li", 500, "{\"predictions\":500,\"correct\":100}")
            .unwrap();
        log.append(3, "cfg1/go", 200, "{\"predictions\":200,\"correct\":50}")
            .unwrap();
        drop(log);
        let (_, entries) = CheckpointLog::open(&path).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].index, 0);
        assert_eq!(entries[0].label, "cfg0/li");
        assert_eq!(entries[1].records, 200);
        assert_eq!(
            decode_stats(&entries[1].payload),
            Some(RunStats {
                predictions: 200,
                correct: 50
            })
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn torn_final_line_is_skipped() {
        let path = temp_log("torn.jsonl");
        let (log, _) = CheckpointLog::open(&path).unwrap();
        log.append(1, "a", 10, "{\"predictions\":10,\"correct\":1}")
            .unwrap();
        drop(log);
        // Simulate a crash mid-append: a torn, incomplete trailing line.
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(b"{\"type\":\"task\",\"index\":2,\"lab")
            .unwrap();
        drop(file);
        let (_, entries) = CheckpointLog::open(&path).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].index, 1);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn load_seeded_validates_index_and_label() {
        let path = temp_log("seeded.jsonl");
        let (log, _) = CheckpointLog::open(&path).unwrap();
        log.append(0, "cfg0/a", 5, "{}").unwrap();
        log.append(1, "stale-label", 5, "{}").unwrap();
        log.append(99, "out-of-range", 5, "{}").unwrap();
        drop(log);
        let labels = vec!["cfg0/a".to_owned(), "cfg0/b".to_owned()];
        let (log, seeded) = CheckpointLog::load_seeded(Some(&path), &labels).unwrap();
        assert!(log.is_some());
        assert_eq!(seeded[0], Some(("{}".to_owned(), 5)));
        assert_eq!(seeded[1], None, "label mismatch must not seed");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn load_seeded_without_path_is_empty() {
        let labels = vec!["x".to_owned()];
        let (log, seeded) = CheckpointLog::load_seeded(None, &labels).unwrap();
        assert!(log.is_none());
        assert_eq!(seeded, vec![None]);
    }

    #[test]
    fn stats_payload_roundtrips_exactly() {
        for (p, c) in [(0u64, 0u64), (1, 1), (u64::MAX, u64::MAX / 3)] {
            let stats = RunStats {
                predictions: p,
                correct: c,
            };
            assert_eq!(decode_stats(&encode_stats(&stats)), Some(stats));
        }
        assert_eq!(decode_stats("{\"predictions\":1}"), None);
        assert_eq!(decode_stats("garbage"), None);
    }

    #[test]
    fn rows_payload_roundtrips_with_escapes() {
        let rows = vec![
            "li".to_owned(),
            "a,b\"c\\d".to_owned(),
            String::new(),
            "tab\there".to_owned(),
        ];
        assert_eq!(decode_rows(&encode_rows(&rows)), Some(rows));
        assert_eq!(decode_rows(&encode_rows(&[])), Some(Vec::new()));
        assert_eq!(decode_rows("not json"), None);
        assert_eq!(decode_rows("[\"unterminated"), None);
    }

    #[test]
    fn labels_with_escapes_roundtrip_through_the_log() {
        let path = temp_log("escapes.jsonl");
        let (log, _) = CheckpointLog::open(&path).unwrap();
        log.append(0, "odd \"label\"\twith\\escapes", 1, "{}")
            .unwrap();
        drop(log);
        let (_, entries) = CheckpointLog::open(&path).unwrap();
        assert_eq!(entries[0].label, "odd \"label\"\twith\\escapes");
        let _ = fs::remove_file(&path);
    }
}
