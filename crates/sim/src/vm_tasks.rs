//! Instrumented VM trace generation: runs the bundled kernels on a
//! chosen execution tier and records the tier's behaviour into
//! [`dfcm_obs`] so `dfcm-tools obs summarize` can surface it.
//!
//! The fast tier is differentially verified to be bit-identical to the
//! interpreter, so evaluation results never depend on the tier — only
//! wall-clock does. This module exists to make the tier's *mechanics*
//! observable: how much of a kernel ran as fused superinstructions or
//! replayed loop traces, how often recordings started and aborted, and
//! how often replay guards failed.

use dfcm_obs::Obs;
use dfcm_trace::BenchmarkTrace;
use dfcm_vm::{assemble, programs, suite, Tier, TierStats, Vm, VmLimits};

/// Records one VM run's [`TierStats`] into `obs` as `vm_*` counters,
/// labeled with the kernel name and tier. No-op on a disabled handle or
/// for runs without fast-tier state (the interpreter has no stats).
pub fn record_tier_stats(obs: &Obs, kernel: &str, tier: Tier, stats: &TierStats) {
    if !obs.is_enabled() {
        return;
    }
    let labels = &[("kernel", kernel), ("tier", tier.as_str())];
    obs.add("vm_instructions_total", labels, stats.instructions);
    obs.add("vm_fused_executed_total", labels, stats.fused_executed);
    obs.add(
        "vm_trace_recordings_started_total",
        labels,
        stats.recordings_started,
    );
    obs.add("vm_traces_recorded_total", labels, stats.traces_recorded);
    obs.add("vm_record_aborts_total", labels, stats.record_aborts);
    obs.add(
        "vm_replay_iterations_total",
        labels,
        stats.replay_iterations,
    );
    obs.add(
        "vm_replay_instructions_total",
        labels,
        stats.replay_instructions,
    );
    obs.add("vm_guard_failures_total", labels, stats.guard_failures);
    obs.add("vm_replay_aborts_total", labels, stats.replay_aborts);
    obs.gauge("vm_fusion_sites", labels, stats.fusion_sites as f64);
}

/// As [`dfcm_vm::suite::kernel_traces_with`], with per-kernel
/// `vm.kernel` spans and `vm_*` tier metrics recorded into `obs`.
///
/// # Panics
///
/// Panics if a bundled kernel fails to assemble or faults — both
/// indicate a broken build, not a caller error.
pub fn kernel_traces_observed(max_records: usize, tier: Tier, obs: &Obs) -> Vec<BenchmarkTrace> {
    if !obs.is_enabled() {
        return suite::kernel_traces_with(max_records, tier);
    }
    programs::all()
        .into_iter()
        .map(|(name, src)| {
            let mut span = obs.span("vm.kernel");
            span.arg("kernel", name);
            span.arg("tier", tier.as_str());
            let program = assemble(src).unwrap_or_else(|e| panic!("{name}: {e}"));
            let mut vm = Vm::with_tier(program, VmLimits::default(), tier)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let trace = vm
                .try_take_trace(max_records)
                .unwrap_or_else(|e| panic!("{name} faulted: {e}"));
            if let Some(stats) = vm.tier_stats() {
                record_tier_stats(obs, name, tier, stats);
            }
            BenchmarkTrace { name, trace }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observed_traces_match_plain_suite() {
        let obs = Obs::enabled();
        let observed = kernel_traces_observed(2_000, Tier::Fast, &obs);
        let plain = suite::kernel_traces_with(2_000, Tier::Fast);
        assert_eq!(observed, plain);
    }

    #[test]
    fn fast_tier_records_vm_metrics_and_spans() {
        use dfcm_obs::metrics::MetricValue;

        let obs = Obs::enabled();
        kernel_traces_observed(2_000, Tier::Fast, &obs);
        let (events, metrics) = obs.snapshot();
        let counter = |name: &str, kernel: &str| -> u64 {
            match metrics.get(name, &[("kernel", kernel), ("tier", "fast")]) {
                Some(MetricValue::Counter(n)) => *n,
                other => panic!("missing counter {name} for {kernel}: {other:?}"),
            }
        };
        assert!(counter("vm_instructions_total", "matmul") > 0);
        // Loop-dominated kernels must show fusion and replay activity.
        assert!(counter("vm_fused_executed_total", "sieve") > 0);
        assert!(counter("vm_replay_iterations_total", "sieve") > 0);
        let spans = events
            .iter()
            .filter(
                |e| matches!(e, dfcm_obs::span::Event::Span { name, .. } if name == "vm.kernel"),
            )
            .count();
        assert_eq!(spans, programs::all().len());
    }

    #[test]
    fn interpreter_tier_records_no_tier_metrics() {
        let obs = Obs::enabled();
        kernel_traces_observed(500, Tier::Interp, &obs);
        let (_, metrics) = obs.snapshot();
        assert!(metrics
            .metrics
            .iter()
            .all(|(k, _)| !k.name.starts_with("vm_")));
    }

    #[test]
    fn disabled_handle_is_a_passthrough() {
        let obs = Obs::disabled();
        let traces = kernel_traces_observed(500, Tier::Fast, &obs);
        assert_eq!(traces.len(), programs::all().len());
        let (events, metrics) = obs.snapshot();
        assert!(events.is_empty() && metrics.is_empty());
    }
}
