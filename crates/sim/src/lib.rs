//! Trace-driven value-predictor evaluation harness.
//!
//! Reproduces the paper's methodology (§4): predictors are evaluated in
//! isolation (no processor model) by folding [`access`] over a value
//! trace; suite results are reported as the arithmetic mean over all
//! benchmarks weighted by the number of predicted instructions.
//!
//! * [`simulate`] / [`simulate_trace`] — run one predictor over one trace.
//! * [`stream`] — the single-pass streaming core: one trace decode feeds
//!   many predictor lanes ([`stream_trace`], [`stream_v2_file`],
//!   [`stream_v3_file`], [`stream_trace_file`], [`stream_suite_engine`]),
//!   bit-identical to the reference loop and flat-memory on chunked files.
//! * [`run_suite`] — fresh predictor per benchmark, weighted-mean accuracy.
//! * [`sweep`] — evaluate a family of configurations over a suite.
//! * [`engine`] — the parallel execution engine: a shared work queue of
//!   (configuration, benchmark) tasks with deterministic merge, run
//!   metrics, panic isolation, bounded retries and checkpoint/resume
//!   ([`sweep_engine`], [`sweep_engine_ft`], [`run_suite_engine`],
//!   [`EngineReport`], [`TaskOutcome`]).
//! * [`checkpoint`] — the append-only JSONL task-result log that backs
//!   `--resume` ([`checkpoint::CheckpointLog`]).
//! * [`fault`] — seeded, deterministic fault injection for testing the
//!   engine's recovery paths ([`FaultPlan`]).
//! * [`pareto_front`] — the size/accuracy Pareto points (Figure 11(b)).
//! * [`simulate_confidence`] — coverage/accuracy of confidence-estimating
//!   predictors (the §4.2 extension).
//! * [`speculation`] — a first-order cycles-saved model for issued
//!   predictions.
//! * [`kernel_traces_observed`] — instrumented VM trace generation:
//!   per-kernel spans plus the fast tier's `vm_*` fusion/replay metrics.
//! * [`report`] — ASCII tables and CSV output for the repro binaries.
//! * [`chart`] — terminal scatter and bar charts for figure rendering.
//!
//! [`access`]: dfcm::ValuePredictor::access
//!
//! ```
//! use dfcm::DfcmPredictor;
//! use dfcm_sim::simulate_trace;
//! use dfcm_trace::{Trace, TraceRecord};
//!
//! # fn main() -> Result<(), dfcm::ConfigError> {
//! let trace: Trace = (0..1000).map(|i| TraceRecord::new(0x40, 3 * i)).collect();
//! let mut p = DfcmPredictor::builder().l1_bits(10).l2_bits(10).build()?;
//! let stats = simulate_trace(&mut p, &trace);
//! assert!(stats.accuracy() > 0.99);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod checkpoint;
mod confidence;
pub mod engine;
pub mod fault;
mod pareto;
pub mod report;
mod run;
pub mod speculation;
pub mod stream;
mod suite;
mod sweep;
mod timeline;
mod vm_tasks;

pub use crate::confidence::{simulate_confidence, ConfidenceStats};
pub use crate::engine::{
    run_suite_engine, run_suite_engine_ft, run_tasks, run_tasks_ft, run_tasks_resumable,
    sweep_engine, sweep_engine_ft, EngineConfig, EngineReport, RetryPolicy, TaskError, TaskMetric,
    TaskOutcome, TaskOutput, WorkerMetric,
};
pub use crate::fault::{FaultPlan, InjectedFault};
pub use crate::pareto::{pareto_front, ParetoPoint};
pub use crate::run::{simulate, simulate_n, simulate_trace, simulate_trace_observed, RunStats};
pub use crate::stream::{
    stream_records_with, stream_suite_engine, stream_trace, stream_trace_chunked,
    stream_trace_file, stream_trace_file_observed, stream_v2_file, stream_v2_file_observed,
    stream_v3_file, stream_v3_file_observed, SpecError, StreamFileReport, StreamPredictor,
    StreamSuiteResult, SERIES_CLASS_LABELS, STREAM_CHUNK_RECORDS,
};
pub use crate::suite::{run_suite, BenchmarkResult, SuiteResult};
pub use crate::sweep::{sweep, sweep_parallel, SweepPoint};
pub use crate::timeline::simulate_timeline;
pub use crate::vm_tasks::{kernel_traces_observed, record_tier_stats};
