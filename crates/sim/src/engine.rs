//! The parallel simulation engine.
//!
//! Every reproduction figure is an embarrassingly parallel batch of
//! (configuration, benchmark) simulations: the paper's methodology (§4)
//! gives each pair a fresh, cold predictor, so pairs share no state and
//! can run in any order. The engine exploits exactly that granularity: a
//! shared work queue of (configuration, benchmark) tasks drained by
//! `std::thread::scope` workers, with results merged back into
//! configuration/suite order so the output is bit-identical to the
//! serial [`sweep`](crate::sweep) path (which remains the reference
//! implementation for equivalence tests).
//!
//! The engine also carries the observability layer: per-task wall time
//! and throughput, per-worker busy time and utilization, and a
//! suite-level [`EngineReport`] that serializes as JSON lines for the
//! `results/metrics/` directory.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use dfcm::ValuePredictor;
use dfcm_trace::BenchmarkTrace;

use crate::report::json_string;
use crate::run::simulate_trace;
use crate::suite::{BenchmarkResult, SuiteResult};
use crate::sweep::SweepPoint;

/// Scheduling knobs for the engine.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads; `0` means one per available hardware thread. The
    /// effective count never exceeds the number of tasks.
    pub threads: usize,
    /// Report completed/total task counts on stderr while running.
    pub progress: bool,
}

impl EngineConfig {
    /// A config with an explicit thread count and no progress output.
    pub fn threads(threads: usize) -> Self {
        EngineConfig {
            threads,
            ..EngineConfig::default()
        }
    }

    fn resolve_threads(&self, tasks: usize) -> usize {
        let hardware = std::thread::available_parallelism().map_or(1, |n| n.get());
        let requested = if self.threads == 0 {
            hardware
        } else {
            self.threads
        };
        requested.clamp(1, tasks.max(1))
    }
}

/// Timing of one completed (configuration, benchmark) task.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskMetric {
    /// Task label, `cfg<index>/<benchmark>` for sweep tasks.
    pub label: String,
    /// Index of the worker that ran the task.
    pub worker: usize,
    /// Records the task simulated.
    pub records: u64,
    /// Task wall time.
    pub wall: Duration,
}

impl TaskMetric {
    /// Simulation throughput of this task in records per second.
    pub fn records_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.records as f64 / secs
        } else {
            0.0
        }
    }
}

/// Aggregate load of one worker thread.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerMetric {
    /// Worker index, `0..threads`.
    pub worker: usize,
    /// Total time spent inside tasks.
    pub busy: Duration,
    /// Number of tasks the worker completed.
    pub tasks: u64,
}

/// Suite-level run metrics: what ran, where, and how fast.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineReport {
    /// Worker threads the engine ran with.
    pub threads: usize,
    /// Wall time of the whole batch.
    pub wall: Duration,
    /// Per-task metrics, in task (configuration-major) order.
    pub tasks: Vec<TaskMetric>,
    /// Per-worker metrics, in worker order.
    pub workers: Vec<WorkerMetric>,
}

impl EngineReport {
    /// An empty report (no tasks ran).
    pub fn empty(threads: usize) -> Self {
        EngineReport {
            threads,
            wall: Duration::ZERO,
            tasks: Vec::new(),
            workers: Vec::new(),
        }
    }

    /// Total records simulated across all tasks.
    pub fn total_records(&self) -> u64 {
        self.tasks.iter().map(|t| t.records).sum()
    }

    /// Batch throughput: records simulated per second of wall time.
    pub fn records_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.total_records() as f64 / secs
        } else {
            0.0
        }
    }

    /// A worker's utilization: busy time over batch wall time, in 0..=1.
    pub fn utilization(&self, worker: &WorkerMetric) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall > 0.0 {
            (worker.busy.as_secs_f64() / wall).min(1.0)
        } else {
            0.0
        }
    }

    /// Folds another report into this one (for experiments that run
    /// several engine batches back to back): tasks concatenate, wall
    /// times add, and worker loads merge by worker index.
    pub fn merge(&mut self, other: EngineReport) {
        self.threads = self.threads.max(other.threads);
        self.wall += other.wall;
        self.tasks.extend(other.tasks);
        for w in other.workers {
            match self.workers.iter_mut().find(|m| m.worker == w.worker) {
                Some(mine) => {
                    mine.busy += w.busy;
                    mine.tasks += w.tasks;
                }
                None => self.workers.push(w),
            }
        }
        self.workers.sort_by_key(|w| w.worker);
    }

    /// The report as JSON lines: one `suite` line, one `worker` line per
    /// worker, one `task` line per task.
    ///
    /// ```text
    /// {"type":"suite","threads":4,"tasks":32,"records":160000,"wall_s":0.5,"records_per_s":320000}
    /// {"type":"worker","worker":0,"tasks":8,"busy_s":0.48,"utilization":0.96}
    /// {"type":"task","label":"cfg0/cc1","worker":0,"records":5000,"wall_s":0.015,"records_per_s":333333.3}
    /// ```
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"type\":\"suite\",\"threads\":{},\"tasks\":{},\"records\":{},\"wall_s\":{:.6},\"records_per_s\":{:.1}}}",
            self.threads,
            self.tasks.len(),
            self.total_records(),
            self.wall.as_secs_f64(),
            self.records_per_sec()
        );
        for w in &self.workers {
            let _ = writeln!(
                out,
                "{{\"type\":\"worker\",\"worker\":{},\"tasks\":{},\"busy_s\":{:.6},\"utilization\":{:.4}}}",
                w.worker,
                w.tasks,
                w.busy.as_secs_f64(),
                self.utilization(w)
            );
        }
        for t in &self.tasks {
            let _ = writeln!(
                out,
                "{{\"type\":\"task\",\"label\":{},\"worker\":{},\"records\":{},\"wall_s\":{:.6},\"records_per_s\":{:.1}}}",
                json_string(&t.label),
                t.worker,
                t.records,
                t.wall.as_secs_f64(),
                t.records_per_sec()
            );
        }
        out
    }

    /// Writes the JSONL form to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from directory creation or the write.
    pub fn write_jsonl<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        if let Some(parent) = path.as_ref().parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_jsonl())
    }
}

/// What one engine task returns: its result plus the record count it
/// simulated (for throughput accounting).
#[derive(Debug, Clone)]
pub struct TaskOutput<T> {
    /// The task's result value.
    pub value: T,
    /// Records the task processed.
    pub records: u64,
}

/// Runs `labels.len()` independent tasks over a shared work queue and
/// returns their outputs in task order plus the run metrics.
///
/// This is the engine's scheduling primitive: `task(i)` must be pure in
/// the sense that its output depends only on `i`, which makes the merge
/// deterministic regardless of execution order. Workers pull indices
/// from a `Mutex`-guarded queue until it drains.
pub fn run_tasks<T, F>(
    labels: Vec<String>,
    task: F,
    config: &EngineConfig,
) -> (Vec<T>, EngineReport)
where
    T: Send,
    F: Fn(usize) -> TaskOutput<T> + Sync,
{
    let count = labels.len();
    let threads = config.resolve_threads(count);
    if count == 0 {
        return (Vec::new(), EngineReport::empty(threads));
    }
    let started = Instant::now();
    let queue: Mutex<VecDeque<usize>> = Mutex::new((0..count).collect());
    let completed: Mutex<Vec<(usize, T, TaskMetric)>> = Mutex::new(Vec::with_capacity(count));
    let worker_metrics: Mutex<Vec<WorkerMetric>> = Mutex::new(Vec::with_capacity(threads));
    let task = &task;
    let labels = &labels;
    std::thread::scope(|scope| {
        for worker in 0..threads {
            let queue = &queue;
            let completed = &completed;
            let worker_metrics = &worker_metrics;
            let progress = config.progress;
            scope.spawn(move || {
                let mut busy = Duration::ZERO;
                let mut ran = 0u64;
                loop {
                    let Some(index) = queue.lock().expect("queue poisoned").pop_front() else {
                        break;
                    };
                    let task_started = Instant::now();
                    let output = task(index);
                    let wall = task_started.elapsed();
                    busy += wall;
                    ran += 1;
                    let metric = TaskMetric {
                        label: labels[index].clone(),
                        worker,
                        records: output.records,
                        wall,
                    };
                    let mut done = completed.lock().expect("results poisoned");
                    done.push((index, output.value, metric));
                    if progress {
                        eprint!("\r[dfcm-sim engine] {}/{} tasks", done.len(), count);
                    }
                }
                worker_metrics
                    .lock()
                    .expect("metrics poisoned")
                    .push(WorkerMetric {
                        worker,
                        busy,
                        tasks: ran,
                    });
            });
        }
    });
    if config.progress {
        eprintln!();
    }
    let wall = started.elapsed();
    let mut done = completed.into_inner().expect("results poisoned");
    done.sort_by_key(|(index, _, _)| *index);
    let mut values = Vec::with_capacity(count);
    let mut tasks = Vec::with_capacity(count);
    for (_, value, metric) in done {
        values.push(value);
        tasks.push(metric);
    }
    let mut workers = worker_metrics.into_inner().expect("metrics poisoned");
    workers.sort_by_key(|w| w.worker);
    (
        values,
        EngineReport {
            threads,
            wall,
            tasks,
            workers,
        },
    )
}

/// [`sweep`](crate::sweep)'s work at (configuration, benchmark)
/// granularity: every pair becomes one engine task with a fresh cold
/// predictor, and results merge deterministically back into
/// configuration order. The returned points are identical (including
/// float bits) to the serial sweep's.
pub fn sweep_engine<C, P, F>(
    configs: &[C],
    factory: F,
    traces: &[BenchmarkTrace],
    config: &EngineConfig,
) -> (Vec<SweepPoint<C>>, EngineReport)
where
    C: Clone + Sync,
    P: ValuePredictor,
    F: Fn(&C) -> P + Sync,
{
    if traces.is_empty() {
        // No benchmarks, no tasks: mirror the serial path's placeholder
        // suite result per configuration.
        let points = configs
            .iter()
            .map(|c| SweepPoint {
                config: c.clone(),
                result: SuiteResult {
                    predictor: "(empty suite)".to_owned(),
                    kbits: 0.0,
                    benchmarks: Vec::new(),
                },
            })
            .collect();
        return (points, EngineReport::empty(config.resolve_threads(0)));
    }
    let benches = traces.len();
    let labels = (0..configs.len() * benches)
        .map(|i| format!("cfg{}/{}", i / benches, traces[i % benches].name))
        .collect();
    let (outputs, report) = run_tasks(
        labels,
        |i| {
            let bench = &traces[i % benches];
            let mut predictor = factory(&configs[i / benches]);
            // The serial path records the label and size from the first
            // benchmark's fresh predictor; task 0 of each configuration
            // does the same here.
            let header =
                (i % benches == 0).then(|| (predictor.name(), predictor.storage().kbits()));
            let stats = simulate_trace(&mut predictor, &bench.trace);
            TaskOutput {
                value: (
                    header,
                    BenchmarkResult {
                        name: bench.name,
                        stats,
                    },
                ),
                records: bench.trace.len() as u64,
            }
        },
        config,
    );
    let mut outputs = outputs.into_iter();
    let points = configs
        .iter()
        .map(|c| {
            let mut benchmarks = Vec::with_capacity(benches);
            let mut header = None;
            for _ in 0..benches {
                let (h, result) = outputs.next().expect("one output per task");
                header = header.or(h);
                benchmarks.push(result);
            }
            let (predictor, kbits) = header.expect("first task carries the header");
            SweepPoint {
                config: c.clone(),
                result: SuiteResult {
                    predictor,
                    kbits,
                    benchmarks,
                },
            }
        })
        .collect();
    (points, report)
}

/// [`run_suite`](crate::run_suite) on the engine: one configuration,
/// one task per benchmark.
pub fn run_suite_engine<P, F>(
    factory: F,
    traces: &[BenchmarkTrace],
    config: &EngineConfig,
) -> (SuiteResult, EngineReport)
where
    P: ValuePredictor,
    F: Fn() -> P + Sync,
{
    let (mut points, report) = sweep_engine(&[()], |()| factory(), traces, config);
    (points.pop().expect("one config in").result, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_suite;
    use crate::sweep::sweep;
    use dfcm::{DfcmPredictor, LastValuePredictor};
    use dfcm_trace::{Trace, TraceRecord};

    fn suite(benches: usize, records: u64) -> Vec<BenchmarkTrace> {
        static NAMES: [&str; 4] = ["a", "b", "c", "d"];
        (0..benches)
            .map(|b| BenchmarkTrace {
                name: NAMES[b % NAMES.len()],
                trace: (0..records)
                    .map(|i| TraceRecord::new(0x1000 + 4 * (i % 32), i * (b as u64 + 2) % 977))
                    .collect::<Trace>(),
            })
            .collect()
    }

    #[test]
    fn engine_matches_serial_sweep() {
        let traces = suite(3, 400);
        let configs = [(4u32, 6u32), (6, 8), (8, 8)];
        let factory = |&(l1, l2): &(u32, u32)| {
            DfcmPredictor::builder()
                .l1_bits(l1)
                .l2_bits(l2)
                .build()
                .unwrap()
        };
        let serial = sweep(&configs, factory, &traces);
        for threads in [1, 3, 64] {
            let (points, report) =
                sweep_engine(&configs, factory, &traces, &EngineConfig::threads(threads));
            assert_eq!(points, serial);
            assert_eq!(report.tasks.len(), configs.len() * traces.len());
            assert_eq!(report.total_records(), 3 * 3 * 400);
        }
    }

    #[test]
    fn run_suite_engine_matches_run_suite() {
        let traces = suite(4, 300);
        let serial = run_suite(|| LastValuePredictor::new(6), &traces);
        let (result, report) = run_suite_engine(
            || LastValuePredictor::new(6),
            &traces,
            &EngineConfig::threads(2),
        );
        assert_eq!(result, serial);
        assert_eq!(report.tasks.len(), 4);
        assert!(report.threads <= 2);
    }

    #[test]
    fn empty_suite_mirrors_serial_placeholder() {
        let serial = run_suite(|| LastValuePredictor::new(4), &[]);
        let (result, report) =
            run_suite_engine(|| LastValuePredictor::new(4), &[], &EngineConfig::default());
        assert_eq!(result, serial);
        assert!(report.tasks.is_empty());
        assert_eq!(report.total_records(), 0);
    }

    #[test]
    fn worker_accounting_covers_all_tasks() {
        let traces = suite(4, 200);
        let (_, report) = sweep_engine(
            &[6u32, 8],
            |&bits| LastValuePredictor::new(bits),
            &traces,
            &EngineConfig::threads(3),
        );
        let by_workers: u64 = report.workers.iter().map(|w| w.tasks).sum();
        assert_eq!(by_workers, report.tasks.len() as u64);
        assert!(report.workers.len() <= 3);
        for w in &report.workers {
            let u = report.utilization(w);
            assert!((0.0..=1.0).contains(&u), "utilization {u}");
        }
    }

    #[test]
    fn jsonl_has_one_line_per_entity() {
        let traces = suite(2, 100);
        let (_, report) = sweep_engine(
            &[4u32],
            |&bits| LastValuePredictor::new(bits),
            &traces,
            &EngineConfig::threads(1),
        );
        let jsonl = report.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 1 + report.workers.len() + report.tasks.len());
        assert!(lines[0].starts_with("{\"type\":\"suite\""));
        assert!(jsonl.contains("\"label\":\"cfg0/a\""));
        assert!(jsonl.contains("\"utilization\":"));
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn write_jsonl_creates_directories() {
        let dir = std::env::temp_dir().join("dfcm_engine_jsonl_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("metrics/run.jsonl");
        EngineReport::empty(1).write_jsonl(&path).unwrap();
        assert!(std::fs::read_to_string(&path)
            .unwrap()
            .starts_with("{\"type\":\"suite\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_concatenates_and_sums() {
        let traces = suite(2, 100);
        let run = || {
            sweep_engine(
                &[4u32],
                |&bits| LastValuePredictor::new(bits),
                &traces,
                &EngineConfig::threads(2),
            )
            .1
        };
        let mut a = run();
        let b = run();
        let total_before = a.total_records() + b.total_records();
        let wall_before = a.wall + b.wall;
        a.merge(b);
        assert_eq!(a.total_records(), total_before);
        assert_eq!(a.wall, wall_before);
        assert_eq!(a.tasks.len(), 4);
        let by_workers: u64 = a.workers.iter().map(|w| w.tasks).sum();
        assert_eq!(by_workers, 4);
    }

    #[test]
    fn run_tasks_preserves_order_under_contention() {
        let labels = (0..200).map(|i| format!("t{i}")).collect();
        let (values, report) = run_tasks(
            labels,
            |i| TaskOutput {
                value: i * 7,
                records: 1,
            },
            &EngineConfig::threads(8),
        );
        assert_eq!(values, (0..200).map(|i| i * 7).collect::<Vec<_>>());
        assert_eq!(report.tasks[13].label, "t13");
        assert_eq!(report.total_records(), 200);
    }
}
