//! The parallel simulation engine.
//!
//! Every reproduction figure is an embarrassingly parallel batch of
//! (configuration, benchmark) simulations: the paper's methodology (§4)
//! gives each pair a fresh, cold predictor, so pairs share no state and
//! can run in any order. The engine exploits exactly that granularity: a
//! shared work queue of (configuration, benchmark) tasks drained by
//! `std::thread::scope` workers, with results merged back into
//! configuration/suite order so the output is bit-identical to the
//! serial [`sweep`](crate::sweep) path (which remains the reference
//! implementation for equivalence tests).
//!
//! # Fault tolerance
//!
//! Long sweeps must not be all-or-nothing, so the engine isolates and
//! classifies failures instead of propagating them:
//!
//! * **Panic isolation** — each task attempt runs under
//!   `catch_unwind`; a panicking task is recorded as
//!   [`TaskOutcome::Panicked`] and the sweep completes every other
//!   task. Engine locks recover from poisoning rather than cascading.
//! * **Bounded retries** — tasks fail with a typed [`TaskError`];
//!   transient errors (I/O hiccups) retry up to
//!   [`RetryPolicy::max_attempts`] with capped exponential backoff,
//!   while permanent errors (bad configs, VM faults) fail fast.
//! * **Checkpoint/resume** — completed tasks can stream to a JSONL
//!   [`CheckpointLog`]; a resumed run
//!   seeds those results and produces output byte-identical to an
//!   uninterrupted run ([`sweep_engine_ft`]).
//! * **Deterministic fault injection** — a seeded
//!   [`FaultPlan`] injects panics, transient
//!   I/O errors and slow tasks per (task, attempt), so every recovery
//!   path above is testable and reproducible.
//!
//! The engine also carries the observability layer: per-task wall time,
//! outcome and attempt count, per-worker busy time and utilization, and
//! a suite-level [`EngineReport`] that serializes as JSON lines for the
//! `results/metrics/` directory.

use std::collections::VecDeque;
use std::fmt;
use std::fmt::Write as _;
use std::io;
use std::panic::{self, AssertUnwindSafe};
use std::path::Path;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use dfcm::ValuePredictor;
use dfcm_obs::Obs;
use dfcm_trace::BenchmarkTrace;

use crate::checkpoint::{decode_stats, encode_stats, CheckpointLog};
use crate::fault::{FaultPlan, InjectedFault};
use crate::report::json_string;
use crate::run::{simulate_trace, RunStats};
use crate::suite::{BenchmarkResult, SuiteResult};
use crate::sweep::SweepPoint;

/// Locks a mutex, recovering the guard if a panicking task poisoned it:
/// the engine's shared state (queue, result list, metrics) is only ever
/// mutated with plain pushes/pops, so a panic between operations cannot
/// leave it logically inconsistent.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Bounded-retry policy for transient task failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per task, including the first (minimum 1).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// The capped exponential backoff before retrying after `attempt`
    /// completed attempts (1-based): `base * 2^(attempt-1)`, capped at
    /// [`RetryPolicy::max_backoff`].
    pub fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.saturating_sub(1).min(16);
        self.base_backoff
            .saturating_mul(factor)
            .min(self.max_backoff)
    }
}

/// A typed task failure, deciding the retry behavior.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskError {
    /// Likely to succeed on retry (I/O hiccups, injected transient
    /// faults). Retried with backoff up to the policy's budget.
    Transient(String),
    /// Retrying cannot help (bad configuration, faulting benchmark
    /// program). Fails fast.
    Permanent(String),
}

impl fmt::Display for TaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskError::Transient(e) => write!(f, "transient: {e}"),
            TaskError::Permanent(e) => write!(f, "permanent: {e}"),
        }
    }
}

impl From<dfcm_vm::VmError> for TaskError {
    /// Every VM error — memory fault, bad jump, or a tripped
    /// [`dfcm_vm::VmLimits`] resource guard — is deterministic for a
    /// given program, so retrying cannot help: a pathological kernel in
    /// a sweep degrades to a reported permanent failure, never a hang.
    fn from(e: dfcm_vm::VmError) -> TaskError {
        TaskError::Permanent(e.to_string())
    }
}

/// How one task ended, recorded first-class in the [`EngineReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskOutcome {
    /// The task produced its value.
    Ok,
    /// The task panicked; the panic was caught and isolated.
    Panicked {
        /// The panic payload, rendered as text.
        message: String,
    },
    /// The task returned a [`TaskError`] (transient errors only after
    /// the retry budget was exhausted).
    Failed {
        /// The final error, rendered as text.
        error: String,
    },
    /// The task finished but overran the configured deadline; its value
    /// was discarded.
    TimedOut {
        /// The deadline it overran.
        deadline: Duration,
    },
}

impl TaskOutcome {
    /// True for [`TaskOutcome::Ok`].
    pub fn is_ok(&self) -> bool {
        *self == TaskOutcome::Ok
    }

    /// A stable lowercase tag for serialization (`ok`, `panicked`,
    /// `failed`, `timed_out`).
    pub fn kind(&self) -> &'static str {
        match self {
            TaskOutcome::Ok => "ok",
            TaskOutcome::Panicked { .. } => "panicked",
            TaskOutcome::Failed { .. } => "failed",
            TaskOutcome::TimedOut { .. } => "timed_out",
        }
    }
}

impl fmt::Display for TaskOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskOutcome::Ok => write!(f, "ok"),
            TaskOutcome::Panicked { message } => write!(f, "panicked: {message}"),
            TaskOutcome::Failed { error } => write!(f, "failed: {error}"),
            TaskOutcome::TimedOut { deadline } => {
                write!(f, "timed out (deadline {:?})", deadline)
            }
        }
    }
}

/// Scheduling and fault-tolerance knobs for the engine.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads; `0` means one per available hardware thread. The
    /// effective count never exceeds the number of tasks.
    pub threads: usize,
    /// Report completed/total task counts on stderr while running.
    pub progress: bool,
    /// Retry budget and backoff for transient task failures.
    pub retry: RetryPolicy,
    /// Per-task soft deadline: a task whose attempt overruns it is
    /// recorded as [`TaskOutcome::TimedOut`] and its value discarded.
    /// Detection is post-hoc (tasks are not preempted).
    pub deadline: Option<Duration>,
    /// Deterministic fault injection, for testing recovery paths.
    pub faults: Option<FaultPlan>,
    /// Observability handle: when enabled, the engine records a span per
    /// task attempt (named `engine.attempt`, with the task label, attempt
    /// number, any injected fault and the outcome as args), a span per
    /// worker (`engine.worker`), and folds suite-level counters and the
    /// task wall-time histogram into the shared metrics registry. The
    /// default (disabled) handle costs one branch per attempt.
    pub obs: Obs,
}

impl EngineConfig {
    /// A config with an explicit thread count and no progress output.
    pub fn threads(threads: usize) -> Self {
        EngineConfig {
            threads,
            ..EngineConfig::default()
        }
    }

    fn resolve_threads(&self, tasks: usize) -> usize {
        let hardware = std::thread::available_parallelism().map_or(1, |n| n.get());
        let requested = if self.threads == 0 {
            hardware
        } else {
            self.threads
        };
        requested.clamp(1, tasks.max(1))
    }
}

/// Timing and outcome of one completed (configuration, benchmark) task.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskMetric {
    /// Task label, `cfg<index>/<benchmark>` for sweep tasks.
    pub label: String,
    /// Index of the worker that ran the task.
    pub worker: usize,
    /// Records the task simulated.
    pub records: u64,
    /// Task wall time (zero for tasks restored from a checkpoint).
    pub wall: Duration,
    /// How the task ended.
    pub outcome: TaskOutcome,
    /// Attempts the task consumed; `0` means the result was restored
    /// from a checkpoint without running.
    pub attempts: u32,
}

impl TaskMetric {
    /// Simulation throughput of this task in records per second.
    pub fn records_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.records as f64 / secs
        } else {
            0.0
        }
    }
}

/// Aggregate load of one worker thread.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerMetric {
    /// Worker index, `0..threads`.
    pub worker: usize,
    /// Total time spent inside tasks.
    pub busy: Duration,
    /// Number of tasks the worker completed.
    pub tasks: u64,
}

/// Suite-level run metrics: what ran, where, how fast, and how it ended.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineReport {
    /// Worker threads the engine ran with.
    pub threads: usize,
    /// Wall time of the whole batch.
    pub wall: Duration,
    /// Per-task metrics, in task (configuration-major) order.
    pub tasks: Vec<TaskMetric>,
    /// Per-worker metrics, in worker order.
    pub workers: Vec<WorkerMetric>,
}

impl EngineReport {
    /// An empty report (no tasks ran).
    pub fn empty(threads: usize) -> Self {
        EngineReport {
            threads,
            wall: Duration::ZERO,
            tasks: Vec::new(),
            workers: Vec::new(),
        }
    }

    /// Total records simulated across all tasks.
    pub fn total_records(&self) -> u64 {
        self.tasks.iter().map(|t| t.records).sum()
    }

    /// Batch throughput: records simulated per second of wall time.
    pub fn records_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.total_records() as f64 / secs
        } else {
            0.0
        }
    }

    /// A worker's utilization: busy time over batch wall time, in 0..=1.
    pub fn utilization(&self, worker: &WorkerMetric) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall > 0.0 {
            (worker.busy.as_secs_f64() / wall).min(1.0)
        } else {
            0.0
        }
    }

    /// True if every task ended [`TaskOutcome::Ok`].
    pub fn all_ok(&self) -> bool {
        self.tasks.iter().all(|t| t.outcome.is_ok())
    }

    /// The tasks that did not end [`TaskOutcome::Ok`], in task order.
    pub fn failures(&self) -> impl Iterator<Item = &TaskMetric> {
        self.tasks.iter().filter(|t| !t.outcome.is_ok())
    }

    /// Total attempts consumed across all tasks (retries included;
    /// checkpoint-restored tasks contribute 0).
    pub fn total_attempts(&self) -> u64 {
        self.tasks.iter().map(|t| u64::from(t.attempts)).sum()
    }

    /// Folds another report into this one (for experiments that run
    /// several engine batches back to back): tasks concatenate, wall
    /// times add, and worker loads merge by worker index.
    pub fn merge(&mut self, other: EngineReport) {
        self.threads = self.threads.max(other.threads);
        self.wall += other.wall;
        self.tasks.extend(other.tasks);
        for w in other.workers {
            match self.workers.iter_mut().find(|m| m.worker == w.worker) {
                Some(mine) => {
                    mine.busy += w.busy;
                    mine.tasks += w.tasks;
                }
                None => self.workers.push(w),
            }
        }
        self.workers.sort_by_key(|w| w.worker);
    }

    /// The report as JSON lines: one `suite` line, one `worker` line per
    /// worker, one `task` line per task.
    ///
    /// ```text
    /// {"type":"suite","threads":4,"tasks":32,"ok":31,"failed":1,"attempts":33,"records":160000,"wall_s":0.5,"records_per_s":320000}
    /// {"type":"worker","worker":0,"tasks":8,"busy_s":0.48,"utilization":0.96}
    /// {"type":"task","label":"cfg0/cc1","worker":0,"outcome":"ok","attempts":1,"records":5000,"wall_s":0.015,"records_per_s":333333.3}
    /// {"type":"task","label":"cfg0/go","worker":1,"outcome":"panicked","attempts":1,"error":"injected fault: panic (task 1, attempt 0)","records":0,"wall_s":0.000021,"records_per_s":0.0}
    /// ```
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let ok = self.tasks.iter().filter(|t| t.outcome.is_ok()).count();
        let _ = writeln!(
            out,
            "{{\"type\":\"suite\",\"threads\":{},\"tasks\":{},\"ok\":{},\"failed\":{},\"attempts\":{},\"records\":{},\"wall_s\":{:.6},\"records_per_s\":{:.1}}}",
            self.threads,
            self.tasks.len(),
            ok,
            self.tasks.len() - ok,
            self.total_attempts(),
            self.total_records(),
            self.wall.as_secs_f64(),
            self.records_per_sec()
        );
        for w in &self.workers {
            let _ = writeln!(
                out,
                "{{\"type\":\"worker\",\"worker\":{},\"tasks\":{},\"busy_s\":{:.6},\"utilization\":{:.4}}}",
                w.worker,
                w.tasks,
                w.busy.as_secs_f64(),
                self.utilization(w)
            );
        }
        for t in &self.tasks {
            let error = match &t.outcome {
                TaskOutcome::Ok => String::new(),
                TaskOutcome::Panicked { message } => format!(",\"error\":{}", json_string(message)),
                TaskOutcome::Failed { error } => format!(",\"error\":{}", json_string(error)),
                TaskOutcome::TimedOut { deadline } => {
                    format!(",\"deadline_s\":{:.6}", deadline.as_secs_f64())
                }
            };
            let _ = writeln!(
                out,
                "{{\"type\":\"task\",\"label\":{},\"worker\":{},\"outcome\":\"{}\",\"attempts\":{}{},\"records\":{},\"wall_s\":{:.6},\"records_per_s\":{:.1}}}",
                json_string(&t.label),
                t.worker,
                t.outcome.kind(),
                t.attempts,
                error,
                t.records,
                t.wall.as_secs_f64(),
                t.records_per_sec()
            );
        }
        out
    }

    /// Writes the JSONL form to `path` atomically (staged sibling file
    /// then rename), creating parent directories: a crash mid-write can
    /// never leave a truncated report on disk.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from directory creation or the write.
    pub fn write_jsonl<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let rendered = self.to_jsonl();
        dfcm_obs::export::write_jsonl_report(path.as_ref(), &rendered.lines().collect::<Vec<_>>())
    }

    /// Folds this report into an [`Obs`] metrics registry (no-op when
    /// disabled): `engine_tasks_total{outcome}`, `engine_attempts_total`,
    /// `engine_records_total` counters, the `engine_task_seconds`
    /// wall-time histogram, and one `engine_worker_busy_seconds{worker}`
    /// gauge per worker. Called automatically at the end of every engine
    /// batch with the batch's own config handle.
    pub fn record_metrics(&self, obs: &Obs) {
        if !obs.is_enabled() {
            return;
        }
        for t in &self.tasks {
            obs.add("engine_tasks_total", &[("outcome", t.outcome.kind())], 1);
            obs.observe(
                "engine_task_seconds",
                &[],
                TASK_SECONDS_BOUNDS,
                t.wall.as_secs_f64(),
            );
        }
        obs.add("engine_attempts_total", &[], self.total_attempts());
        obs.add("engine_records_total", &[], self.total_records());
        for w in &self.workers {
            obs.gauge(
                "engine_worker_busy_seconds",
                &[("worker", &w.worker.to_string())],
                w.busy.as_secs_f64(),
            );
        }
    }
}

/// Fixed bucket bounds for the `engine_task_seconds` histogram: spans
/// microsecond tasks through minute-long simulations.
const TASK_SECONDS_BOUNDS: &[f64] = &[
    0.0001, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0,
];

/// What one engine task returns: its result plus the record count it
/// simulated (for throughput accounting).
#[derive(Debug, Clone)]
pub struct TaskOutput<T> {
    /// The task's result value.
    pub value: T,
    /// Records the task processed.
    pub records: u64,
}

/// Renders a caught panic payload as text.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs one task to completion: applies injected faults, catches
/// panics, and drains the transient-retry budget. Returns the value (if
/// any), the outcome, the records processed, and the attempts consumed.
fn execute_with_retries<T, F>(
    task: &F,
    index: usize,
    label: &str,
    config: &EngineConfig,
) -> (Option<T>, TaskOutcome, u64, u32)
where
    F: Fn(usize) -> Result<TaskOutput<T>, TaskError> + Sync,
{
    let max_attempts = config.retry.max_attempts.max(1);
    let mut attempt = 0u32;
    loop {
        let injected = config
            .faults
            .as_ref()
            .and_then(|p| p.fault_for(index, attempt));
        let mut span = config.obs.span("engine.attempt");
        if span.is_enabled() {
            span.arg("label", label);
            span.arg("attempt", &attempt.to_string());
            match injected {
                Some(InjectedFault::Panic) => span.arg("injected_fault", "panic"),
                Some(InjectedFault::TransientIo) => span.arg("injected_fault", "transient_io"),
                Some(InjectedFault::Delay(_)) => span.arg("injected_fault", "delay"),
                None => {}
            }
        }
        let started = Instant::now();
        let caught = panic::catch_unwind(AssertUnwindSafe(|| match injected {
            Some(InjectedFault::Panic) => {
                panic!("injected fault: panic (task {index}, attempt {attempt})")
            }
            Some(InjectedFault::TransientIo) => Err(TaskError::Transient(format!(
                "injected fault: transient I/O error (task {index}, attempt {attempt})"
            ))),
            Some(InjectedFault::Delay(d)) => {
                std::thread::sleep(d);
                task(index)
            }
            None => task(index),
        }));
        attempt += 1;
        match caught {
            Ok(Ok(output)) => {
                if let Some(deadline) = config.deadline {
                    if started.elapsed() > deadline {
                        span.arg("outcome", "timed_out");
                        return (
                            None,
                            TaskOutcome::TimedOut { deadline },
                            output.records,
                            attempt,
                        );
                    }
                }
                span.arg("outcome", "ok");
                return (Some(output.value), TaskOutcome::Ok, output.records, attempt);
            }
            Ok(Err(TaskError::Transient(error))) => {
                if attempt < max_attempts {
                    span.arg("outcome", "retrying");
                    drop(span);
                    std::thread::sleep(config.retry.backoff(attempt));
                    continue;
                }
                span.arg("outcome", "failed");
                return (
                    None,
                    TaskOutcome::Failed {
                        error: format!("{error} (gave up after {attempt} attempts)"),
                    },
                    0,
                    attempt,
                );
            }
            Ok(Err(TaskError::Permanent(error))) => {
                span.arg("outcome", "failed");
                return (None, TaskOutcome::Failed { error }, 0, attempt);
            }
            Err(payload) => {
                span.arg("outcome", "panicked");
                return (
                    None,
                    TaskOutcome::Panicked {
                        message: panic_message(payload.as_ref()),
                    },
                    0,
                    attempt,
                );
            }
        }
    }
}

/// The fault-tolerant scheduling primitive with checkpoint support:
/// runs the tasks whose `seeded` slot is `None` over a shared work
/// queue, merges seeded (checkpoint-restored) results back in, and
/// calls `on_complete(index, label, records, value)` for every task
/// that newly completes `Ok` — the hook point for streaming results to
/// a [`CheckpointLog`].
///
/// Tasks must be pure in the sense that their output depends only on
/// their index, which makes the merge deterministic regardless of
/// execution order. A failed task yields `None` in the value vector and
/// a non-`Ok` [`TaskOutcome`] in the report; it never aborts the batch.
///
/// # Panics
///
/// Panics if `seeded` is non-empty and its length differs from
/// `labels`.
pub fn run_tasks_resumable<T, F, O>(
    labels: Vec<String>,
    task: F,
    config: &EngineConfig,
    seeded: Vec<Option<(T, u64)>>,
    on_complete: O,
) -> (Vec<Option<T>>, EngineReport)
where
    T: Send,
    F: Fn(usize) -> Result<TaskOutput<T>, TaskError> + Sync,
    O: Fn(usize, &str, u64, &T) + Sync,
{
    let count = labels.len();
    assert!(
        seeded.is_empty() || seeded.len() == count,
        "seeded results must align with the task list"
    );
    let pending: VecDeque<usize> = if seeded.is_empty() {
        (0..count).collect()
    } else {
        (0..count).filter(|&i| seeded[i].is_none()).collect()
    };
    let pending_count = pending.len();
    let threads = config.resolve_threads(pending_count);
    if count == 0 {
        return (Vec::new(), EngineReport::empty(threads));
    }
    let started = Instant::now();
    let mut values: Vec<Option<T>> = (0..count).map(|_| None).collect();
    let mut tasks: Vec<Option<TaskMetric>> = (0..count).map(|_| None).collect();
    // Seeded results merge in first: zero wall, zero attempts.
    if !seeded.is_empty() {
        for (index, slot) in seeded.into_iter().enumerate() {
            if let Some((value, records)) = slot {
                values[index] = Some(value);
                tasks[index] = Some(TaskMetric {
                    label: labels[index].clone(),
                    worker: 0,
                    records,
                    wall: Duration::ZERO,
                    outcome: TaskOutcome::Ok,
                    attempts: 0,
                });
            }
        }
    }
    let queue: Mutex<VecDeque<usize>> = Mutex::new(pending);
    let completed: Mutex<Vec<(usize, Option<T>, TaskMetric)>> =
        Mutex::new(Vec::with_capacity(pending_count));
    let worker_metrics: Mutex<Vec<WorkerMetric>> = Mutex::new(Vec::with_capacity(threads));
    let task = &task;
    let labels = &labels;
    let on_complete = &on_complete;
    if pending_count > 0 {
        std::thread::scope(|scope| {
            for worker in 0..threads {
                let queue = &queue;
                let completed = &completed;
                let worker_metrics = &worker_metrics;
                let progress = config.progress;
                scope.spawn(move || {
                    let mut worker_span = config.obs.span("engine.worker");
                    worker_span.arg("worker", &worker.to_string());
                    let mut busy = Duration::ZERO;
                    let mut ran = 0u64;
                    loop {
                        let Some(index) = lock_unpoisoned(queue).pop_front() else {
                            break;
                        };
                        let task_started = Instant::now();
                        let (value, outcome, records, attempts) =
                            execute_with_retries(task, index, &labels[index], config);
                        let wall = task_started.elapsed();
                        busy += wall;
                        ran += 1;
                        if let Some(value) = &value {
                            on_complete(index, &labels[index], records, value);
                        }
                        let metric = TaskMetric {
                            label: labels[index].clone(),
                            worker,
                            records,
                            wall,
                            outcome,
                            attempts,
                        };
                        let mut done = lock_unpoisoned(completed);
                        done.push((index, value, metric));
                        if progress {
                            eprint!("\r[dfcm-sim engine] {}/{} tasks", done.len(), pending_count);
                        }
                    }
                    worker_span.arg("tasks", &ran.to_string());
                    lock_unpoisoned(worker_metrics).push(WorkerMetric {
                        worker,
                        busy,
                        tasks: ran,
                    });
                });
            }
        });
        if config.progress {
            eprintln!();
        }
    }
    let wall = started.elapsed();
    for (index, value, metric) in lock_unpoisoned(&completed).drain(..) {
        values[index] = value;
        tasks[index] = Some(metric);
    }
    let tasks = tasks
        .into_iter()
        .map(|m| m.expect("every task is either seeded or scheduled"))
        .collect();
    let mut workers = lock_unpoisoned(&worker_metrics)
        .drain(..)
        .collect::<Vec<_>>();
    workers.sort_by_key(|w| w.worker);
    let report = EngineReport {
        threads,
        wall,
        tasks,
        workers,
    };
    report.record_metrics(&config.obs);
    (values, report)
}

/// [`run_tasks_resumable`] without checkpointing: every task runs, a
/// failure yields `None` in the value vector instead of aborting.
pub fn run_tasks_ft<T, F>(
    labels: Vec<String>,
    task: F,
    config: &EngineConfig,
) -> (Vec<Option<T>>, EngineReport)
where
    T: Send,
    F: Fn(usize) -> Result<TaskOutput<T>, TaskError> + Sync,
{
    run_tasks_resumable(labels, task, config, Vec::new(), |_, _, _, _| {})
}

/// Runs `labels.len()` infallible tasks over a shared work queue and
/// returns their outputs in task order plus the run metrics.
///
/// This is the engine's original all-or-nothing primitive, kept for
/// batches whose tasks cannot meaningfully fail. It now runs on the
/// fault-tolerant core, so a worker's panic no longer poisons the queue
/// mid-sweep — but to honor the infallible contract it still panics at
/// merge time (with the failing task's label and outcome) if any task
/// failed, e.g. under an injected [`FaultPlan`]. Callers that need to
/// survive failures should use [`run_tasks_ft`].
///
/// # Panics
///
/// Panics if any task panicked or failed.
pub fn run_tasks<T, F>(
    labels: Vec<String>,
    task: F,
    config: &EngineConfig,
) -> (Vec<T>, EngineReport)
where
    T: Send,
    F: Fn(usize) -> TaskOutput<T> + Sync,
{
    let (values, report) = run_tasks_ft(labels, |i| Ok(task(i)), config);
    let values = values
        .into_iter()
        .zip(&report.tasks)
        .map(|(value, metric)| {
            value.unwrap_or_else(|| panic!("engine task `{}` {}", metric.label, metric.outcome))
        })
        .collect();
    (values, report)
}

/// Builds the engine's task labels for a (configuration × benchmark)
/// sweep: `cfg<index>/<benchmark>`, configuration-major.
fn sweep_labels(configs: usize, traces: &[BenchmarkTrace]) -> Vec<String> {
    let benches = traces.len();
    (0..configs * benches)
        .map(|i| format!("cfg{}/{}", i / benches, traces[i % benches].name))
        .collect()
}

/// The placeholder points [`sweep`](crate::sweep) produces for an empty
/// suite, mirrored by every engine path.
fn empty_suite_points<C: Clone>(configs: &[C]) -> Vec<SweepPoint<C>> {
    configs
        .iter()
        .map(|c| SweepPoint {
            config: c.clone(),
            result: SuiteResult {
                predictor: "(empty suite)".to_owned(),
                kbits: 0.0,
                benchmarks: Vec::new(),
            },
        })
        .collect()
}

/// Fault-tolerant [`sweep`](crate::sweep) at (configuration, benchmark)
/// granularity, with optional checkpoint/resume.
///
/// Every pair becomes one engine task with a fresh cold predictor, and
/// results merge deterministically back into configuration order. A
/// failed task's benchmark is *omitted* from its configuration's
/// [`SuiteResult`] (and recorded in the report) instead of aborting the
/// sweep; with no failures the returned points are identical (including
/// float bits) to the serial sweep's.
///
/// With `checkpoint` set, completed tasks stream to a JSONL
/// [`CheckpointLog`] at that path;
/// re-running with the same path skips already-completed tasks (matched
/// by index and label) and produces byte-identical merged output versus
/// an uninterrupted run.
///
/// # Errors
///
/// Propagates I/O errors from opening the checkpoint log. (Failed
/// checkpoint *appends* are reported on stderr but do not fail the
/// sweep: losing a checkpoint entry only costs re-simulation.)
pub fn sweep_engine_ft<C, P, F>(
    configs: &[C],
    factory: F,
    traces: &[BenchmarkTrace],
    config: &EngineConfig,
    checkpoint: Option<&Path>,
) -> io::Result<(Vec<SweepPoint<C>>, EngineReport)>
where
    C: Clone + Sync,
    P: ValuePredictor,
    F: Fn(&C) -> P + Sync,
{
    if traces.is_empty() {
        // No benchmarks, no tasks: mirror the serial path's placeholder
        // suite result per configuration.
        return Ok((
            empty_suite_points(configs),
            EngineReport::empty(config.resolve_threads(0)),
        ));
    }
    let benches = traces.len();
    let labels = sweep_labels(configs.len(), traces);
    let (log, raw_seeded) = CheckpointLog::load_seeded(checkpoint, &labels)?;
    let seeded: Vec<Option<(RunStats, u64)>> = if log.is_none() {
        Vec::new()
    } else {
        raw_seeded
            .into_iter()
            .map(|slot| {
                slot.and_then(|(payload, records)| {
                    decode_stats(&payload).map(|stats| (stats, records))
                })
            })
            .collect()
    };
    let (stats_out, report) = run_tasks_resumable(
        labels,
        |i| {
            let bench = &traces[i % benches];
            let mut predictor = factory(&configs[i / benches]);
            let stats = simulate_trace(&mut predictor, &bench.trace);
            Ok(TaskOutput {
                value: stats,
                records: bench.trace.len() as u64,
            })
        },
        config,
        seeded,
        |index, label, records, stats: &RunStats| {
            if let Some(log) = &log {
                if let Err(e) = log.append(index, label, records, &encode_stats(stats)) {
                    eprintln!(
                        "[dfcm-sim engine] checkpoint append failed for {label}: {e} \
                         (the task will re-run on resume)"
                    );
                }
            }
        },
    );
    let points = configs
        .iter()
        .enumerate()
        .map(|(c, cfg)| {
            let benchmarks: Vec<BenchmarkResult> = (0..benches)
                .filter_map(|b| {
                    stats_out[c * benches + b].map(|stats| BenchmarkResult {
                        name: traces[b].name,
                        stats,
                    })
                })
                .collect();
            // The label and size come from a fresh predictor of this
            // configuration — the same deterministic values the serial
            // path reads off its first benchmark's predictor.
            let probe = factory(cfg);
            SweepPoint {
                config: cfg.clone(),
                result: SuiteResult {
                    predictor: probe.name(),
                    kbits: probe.storage().kbits(),
                    benchmarks,
                },
            }
        })
        .collect();
    Ok((points, report))
}

/// [`sweep`](crate::sweep)'s work at (configuration, benchmark)
/// granularity: every pair becomes one engine task with a fresh cold
/// predictor, and results merge deterministically back into
/// configuration order. The returned points are identical (including
/// float bits) to the serial sweep's.
///
/// This is the infallible wrapper over [`sweep_engine_ft`]: it runs no
/// checkpoint and panics if any task failed (which cannot happen unless
/// the config injects faults or the factory/simulation panics).
///
/// # Panics
///
/// Panics if any task panicked or failed.
pub fn sweep_engine<C, P, F>(
    configs: &[C],
    factory: F,
    traces: &[BenchmarkTrace],
    config: &EngineConfig,
) -> (Vec<SweepPoint<C>>, EngineReport)
where
    C: Clone + Sync,
    P: ValuePredictor,
    F: Fn(&C) -> P + Sync,
{
    let (points, report) =
        sweep_engine_ft(configs, factory, traces, config, None).expect("no checkpoint I/O");
    if let Some(failed) = report.failures().next() {
        panic!("engine task `{}` {}", failed.label, failed.outcome);
    }
    (points, report)
}

/// Fault-tolerant [`run_suite`](crate::run_suite) on the engine: one
/// configuration, one task per benchmark, with optional
/// checkpoint/resume. Failed benchmarks are omitted from the
/// [`SuiteResult`] and recorded in the report.
///
/// # Errors
///
/// Propagates I/O errors from opening the checkpoint log.
pub fn run_suite_engine_ft<P, F>(
    factory: F,
    traces: &[BenchmarkTrace],
    config: &EngineConfig,
    checkpoint: Option<&Path>,
) -> io::Result<(SuiteResult, EngineReport)>
where
    P: ValuePredictor,
    F: Fn() -> P + Sync,
{
    let (mut points, report) = sweep_engine_ft(&[()], |()| factory(), traces, config, checkpoint)?;
    Ok((points.pop().expect("one config in").result, report))
}

/// [`run_suite`](crate::run_suite) on the engine: one configuration,
/// one task per benchmark.
///
/// # Panics
///
/// Panics if any task panicked or failed (see [`sweep_engine`]).
pub fn run_suite_engine<P, F>(
    factory: F,
    traces: &[BenchmarkTrace],
    config: &EngineConfig,
) -> (SuiteResult, EngineReport)
where
    P: ValuePredictor,
    F: Fn() -> P + Sync,
{
    let (mut points, report) = sweep_engine(&[()], |()| factory(), traces, config);
    (points.pop().expect("one config in").result, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_suite;
    use crate::sweep::sweep;
    use dfcm::{DfcmPredictor, LastValuePredictor};
    use dfcm_trace::{Trace, TraceRecord};

    fn suite(benches: usize, records: u64) -> Vec<BenchmarkTrace> {
        static NAMES: [&str; 4] = ["a", "b", "c", "d"];
        (0..benches)
            .map(|b| BenchmarkTrace {
                name: NAMES[b % NAMES.len()],
                trace: (0..records)
                    .map(|i| TraceRecord::new(0x1000 + 4 * (i % 32), i * (b as u64 + 2) % 977))
                    .collect::<Trace>(),
            })
            .collect()
    }

    #[test]
    fn engine_matches_serial_sweep() {
        let traces = suite(3, 400);
        let configs = [(4u32, 6u32), (6, 8), (8, 8)];
        let factory = |&(l1, l2): &(u32, u32)| {
            DfcmPredictor::builder()
                .l1_bits(l1)
                .l2_bits(l2)
                .build()
                .unwrap()
        };
        let serial = sweep(&configs, factory, &traces);
        for threads in [1, 3, 64] {
            let (points, report) =
                sweep_engine(&configs, factory, &traces, &EngineConfig::threads(threads));
            assert_eq!(points, serial);
            assert_eq!(report.tasks.len(), configs.len() * traces.len());
            assert_eq!(report.total_records(), 3 * 3 * 400);
            assert!(report.all_ok());
        }
    }

    #[test]
    fn run_suite_engine_matches_run_suite() {
        let traces = suite(4, 300);
        let serial = run_suite(|| LastValuePredictor::new(6), &traces);
        let (result, report) = run_suite_engine(
            || LastValuePredictor::new(6),
            &traces,
            &EngineConfig::threads(2),
        );
        assert_eq!(result, serial);
        assert_eq!(report.tasks.len(), 4);
        assert!(report.threads <= 2);
    }

    #[test]
    fn empty_suite_mirrors_serial_placeholder() {
        let serial = run_suite(|| LastValuePredictor::new(4), &[]);
        let (result, report) =
            run_suite_engine(|| LastValuePredictor::new(4), &[], &EngineConfig::default());
        assert_eq!(result, serial);
        assert!(report.tasks.is_empty());
        assert_eq!(report.total_records(), 0);
    }

    #[test]
    fn worker_accounting_covers_all_tasks() {
        let traces = suite(4, 200);
        let (_, report) = sweep_engine(
            &[6u32, 8],
            |&bits| LastValuePredictor::new(bits),
            &traces,
            &EngineConfig::threads(3),
        );
        let by_workers: u64 = report.workers.iter().map(|w| w.tasks).sum();
        assert_eq!(by_workers, report.tasks.len() as u64);
        assert!(report.workers.len() <= 3);
        for w in &report.workers {
            let u = report.utilization(w);
            assert!((0.0..=1.0).contains(&u), "utilization {u}");
        }
    }

    #[test]
    fn jsonl_has_one_line_per_entity() {
        let traces = suite(2, 100);
        let (_, report) = sweep_engine(
            &[4u32],
            |&bits| LastValuePredictor::new(bits),
            &traces,
            &EngineConfig::threads(1),
        );
        let jsonl = report.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 1 + report.workers.len() + report.tasks.len());
        assert!(lines[0].starts_with("{\"type\":\"suite\""));
        assert!(lines[0].contains("\"ok\":2,\"failed\":0"));
        assert!(jsonl.contains("\"label\":\"cfg0/a\""));
        assert!(jsonl.contains("\"outcome\":\"ok\""));
        assert!(jsonl.contains("\"utilization\":"));
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn write_jsonl_creates_directories() {
        let dir = std::env::temp_dir().join("dfcm_engine_jsonl_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("metrics/run.jsonl");
        EngineReport::empty(1).write_jsonl(&path).unwrap();
        assert!(std::fs::read_to_string(&path)
            .unwrap()
            .starts_with("{\"type\":\"suite\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_concatenates_and_sums() {
        let traces = suite(2, 100);
        let run = || {
            sweep_engine(
                &[4u32],
                |&bits| LastValuePredictor::new(bits),
                &traces,
                &EngineConfig::threads(2),
            )
            .1
        };
        let mut a = run();
        let b = run();
        let total_before = a.total_records() + b.total_records();
        let wall_before = a.wall + b.wall;
        a.merge(b);
        assert_eq!(a.total_records(), total_before);
        assert_eq!(a.wall, wall_before);
        assert_eq!(a.tasks.len(), 4);
        let by_workers: u64 = a.workers.iter().map(|w| w.tasks).sum();
        assert_eq!(by_workers, 4);
    }

    #[test]
    fn run_tasks_preserves_order_under_contention() {
        let labels = (0..200).map(|i| format!("t{i}")).collect();
        let (values, report) = run_tasks(
            labels,
            |i| TaskOutput {
                value: i * 7,
                records: 1,
            },
            &EngineConfig::threads(8),
        );
        assert_eq!(values, (0..200).map(|i| i * 7).collect::<Vec<_>>());
        assert_eq!(report.tasks[13].label, "t13");
        assert_eq!(report.total_records(), 200);
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(35),
        };
        assert_eq!(policy.backoff(1), Duration::from_millis(10));
        assert_eq!(policy.backoff(2), Duration::from_millis(20));
        assert_eq!(policy.backoff(3), Duration::from_millis(35), "capped");
        assert_eq!(policy.backoff(60), Duration::from_millis(35), "no overflow");
    }

    #[test]
    #[should_panic(expected = "engine task `t1` panicked")]
    fn infallible_run_tasks_propagates_failures_as_panics() {
        let labels = (0..3).map(|i| format!("t{i}")).collect();
        run_tasks::<usize, _>(
            labels,
            |i| {
                assert!(i != 1, "task 1 exploded");
                TaskOutput {
                    value: i,
                    records: 1,
                }
            },
            &EngineConfig::threads(1),
        );
    }

    #[test]
    fn obs_records_spans_and_engine_metrics() {
        use dfcm_obs::metrics::MetricValue;
        use dfcm_obs::span::Event;

        let traces = suite(2, 100);
        let config = EngineConfig {
            threads: 2,
            obs: Obs::enabled(),
            ..EngineConfig::default()
        };
        let (_, report) = sweep_engine(
            &[4u32],
            |&bits| LastValuePredictor::new(bits),
            &traces,
            &config,
        );
        let (events, metrics) = config.obs.snapshot();
        let attempts = events
            .iter()
            .filter(|e| matches!(e, Event::Span { name, .. } if name == "engine.attempt"))
            .count();
        let workers = events
            .iter()
            .filter(|e| matches!(e, Event::Span { name, .. } if name == "engine.worker"))
            .count();
        assert_eq!(attempts as u64, report.total_attempts());
        assert_eq!(workers, report.workers.len());
        assert_eq!(
            metrics.get("engine_tasks_total", &[("outcome", "ok")]),
            Some(&MetricValue::Counter(report.tasks.len() as u64))
        );
        assert_eq!(
            metrics.get("engine_records_total", &[]),
            Some(&MetricValue::Counter(report.total_records()))
        );
        let Some(MetricValue::Histogram(h)) = metrics.get("engine_task_seconds", &[]) else {
            panic!("missing task wall-time histogram");
        };
        assert_eq!(h.count, report.tasks.len() as u64);
        assert!(metrics
            .get("engine_worker_busy_seconds", &[("worker", "0")])
            .is_some());
    }

    #[test]
    fn obs_spans_cover_retries_and_faults() {
        use dfcm_obs::span::Event;

        let config = EngineConfig {
            threads: 1,
            retry: RetryPolicy {
                max_attempts: 3,
                base_backoff: Duration::ZERO,
                max_backoff: Duration::ZERO,
            },
            obs: Obs::enabled(),
            ..EngineConfig::default()
        };
        let attempts = std::sync::atomic::AtomicU32::new(0);
        let (values, report) = run_tasks_ft(
            vec!["flaky".to_owned()],
            |_| {
                if attempts.fetch_add(1, std::sync::atomic::Ordering::SeqCst) < 2 {
                    Err(TaskError::Transient("hiccup".into()))
                } else {
                    Ok(TaskOutput {
                        value: 7u64,
                        records: 1,
                    })
                }
            },
            &config,
        );
        assert_eq!(values, vec![Some(7)]);
        assert_eq!(report.tasks[0].attempts, 3);
        let (events, _) = config.obs.snapshot();
        let outcomes: Vec<String> = events
            .iter()
            .filter_map(|e| match e {
                Event::Span { name, args, .. } if name == "engine.attempt" => args
                    .iter()
                    .find(|(k, _)| k == "outcome")
                    .map(|(_, v)| v.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(outcomes, vec!["retrying", "retrying", "ok"]);
    }

    #[test]
    fn outcome_kinds_are_stable() {
        assert_eq!(TaskOutcome::Ok.kind(), "ok");
        assert_eq!(
            TaskOutcome::Panicked {
                message: "m".into()
            }
            .kind(),
            "panicked"
        );
        assert_eq!(TaskOutcome::Failed { error: "e".into() }.kind(), "failed");
        assert_eq!(
            TaskOutcome::TimedOut {
                deadline: Duration::from_millis(1)
            }
            .kind(),
            "timed_out"
        );
    }
}
