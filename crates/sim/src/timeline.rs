//! Windowed accuracy over time.
//!
//! Aggregate accuracy hides transients: warmup, phase changes, table
//! churn. [`simulate_timeline`] splits a run into fixed-size windows and
//! reports per-window statistics, which the phase experiments chart as
//! accuracy-over-time curves.

use dfcm::ValuePredictor;
use dfcm_trace::TraceSource;

use crate::run::RunStats;

/// Runs `predictor` over up to `n` records of `source`, returning one
/// [`RunStats`] per `window` records (the final window may be shorter).
///
/// # Panics
///
/// Panics if `window` is 0.
pub fn simulate_timeline<P, S>(
    predictor: &mut P,
    source: &mut S,
    n: usize,
    window: usize,
) -> Vec<RunStats>
where
    P: ValuePredictor + ?Sized,
    S: TraceSource + ?Sized,
{
    assert!(window > 0, "window must be positive");
    let mut windows = Vec::with_capacity(n.div_ceil(window));
    let mut current = RunStats::default();
    for _ in 0..n {
        let Some(record) = source.next_record() else {
            break;
        };
        current.predictions += 1;
        current.correct += u64::from(predictor.access(record.pc, record.value).correct);
        if current.predictions as usize == window {
            windows.push(current);
            current = RunStats::default();
        }
    }
    if current.predictions > 0 {
        windows.push(current);
    }
    windows
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfcm::{DfcmPredictor, LastValuePredictor};
    use dfcm_trace::{Pattern, PhasedProgram, SyntheticProgram, Trace, TraceRecord};

    #[test]
    fn windows_partition_the_run() {
        let trace: Trace = (0..95).map(|i| TraceRecord::new(4, i % 3)).collect();
        let mut p = LastValuePredictor::new(4);
        let windows = simulate_timeline(&mut p, &mut trace.source(), 95, 10);
        assert_eq!(windows.len(), 10);
        assert!(windows[..9].iter().all(|w| w.predictions == 10));
        assert_eq!(windows[9].predictions, 5);
        let total: u64 = windows.iter().map(|w| w.predictions).sum();
        assert_eq!(total, 95);
    }

    #[test]
    fn warmup_shows_in_first_window() {
        // A stride stream: the first window carries the cold misses, later
        // windows are perfect.
        let trace: Trace = (0..1000).map(|i| TraceRecord::new(4, 3 * i)).collect();
        let mut p = DfcmPredictor::builder()
            .l1_bits(6)
            .l2_bits(10)
            .build()
            .unwrap();
        let windows = simulate_timeline(&mut p, &mut trace.source(), 1000, 100);
        assert!(windows[0].accuracy() < windows[5].accuracy());
        assert_eq!(windows[5].accuracy(), 1.0);
    }

    #[test]
    fn phase_switches_show_as_dips() {
        let a = SyntheticProgram::builder(1)
            .inst(Pattern::Periodic(vec![1, 2, 3, 4]), 1)
            .build();
        let b = SyntheticProgram::builder(2)
            .inst(Pattern::Periodic(vec![9, 9, 5, 7, 2]), 1)
            .build();
        let mut phased = PhasedProgram::new(vec![(a, 500), (b, 500)]);
        let mut p = DfcmPredictor::builder()
            .l1_bits(6)
            .l2_bits(12)
            .build()
            .unwrap();
        let windows = simulate_timeline(&mut p, &mut phased, 4000, 100);
        // Windows right after a switch (indices 5, 10, 15, ...) must be
        // worse than the settled windows before the next switch.
        let dip = windows[5].accuracy();
        let settled = windows[9].accuracy();
        assert!(
            dip < settled,
            "post-switch dip {dip:.3} vs settled {settled:.3}"
        );
    }

    #[test]
    fn truncates_at_source_end() {
        let trace: Trace = (0..30).map(|i| TraceRecord::new(0, i)).collect();
        let mut p = LastValuePredictor::new(4);
        let windows = simulate_timeline(&mut p, &mut trace.source(), 1000, 20);
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[1].predictions, 10);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_rejected() {
        let trace = Trace::new();
        let mut p = LastValuePredictor::new(4);
        let _ = simulate_timeline(&mut p, &mut trace.source(), 10, 0);
    }
}
