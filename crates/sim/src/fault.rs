//! Deterministic fault injection for the engine.
//!
//! A [`FaultPlan`] decides, purely from a seed and a `(task index,
//! attempt)` pair, whether a fault is injected and of what kind. Because
//! the decision is a pure hash of those inputs, the same plan injects
//! the same faults into the same tasks on every run, on every machine —
//! which is what makes the recovery paths in
//! `crates/sim/tests/fault_tolerance.rs` reproducible and lets CI prove
//! that a sweep survives a panicking task without flaking.
//!
//! Three fault kinds are supported, matching the failure classes the
//! engine distinguishes:
//!
//! * **Panics** — the task panics mid-flight (isolated by the engine's
//!   `catch_unwind`, never retried).
//! * **Transient I/O errors** — the task fails with a retryable error
//!   before it runs (consumed by the engine's bounded-retry loop; the
//!   hash includes the attempt number, so a retry re-rolls the dice).
//! * **Delays** — the task is slowed down before running (exercises the
//!   deadline/timeout classification).
//!
//! Rates are expressed in permille (0..=1000) rather than floats so the
//! plan stays `Eq` and hashable-by-value alongside `EngineConfig`.

use std::time::Duration;

/// A fault the plan injects into one task attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// The attempt panics.
    Panic,
    /// The attempt fails with a transient (retryable) I/O error.
    TransientIo,
    /// The attempt runs after sleeping this long.
    Delay(Duration),
}

/// A seeded, task-indexed fault-injection plan.
///
/// ```
/// use dfcm_sim::FaultPlan;
///
/// let plan = FaultPlan::new(7).with_panics(250);
/// // Deterministic: the same (task, attempt) always rolls the same way.
/// for task in 0..16 {
///     assert_eq!(plan.fault_for(task, 0), plan.fault_for(task, 0));
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    panic_permille: u16,
    transient_permille: u16,
    delay_permille: u16,
    delay: Duration,
}

impl FaultPlan {
    /// A plan with the given seed and no faults enabled.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            panic_permille: 0,
            transient_permille: 0,
            delay_permille: 0,
            delay: Duration::from_millis(5),
        }
    }

    /// Enables panic injection at `permille` per thousand attempts
    /// (clamped to 1000).
    pub fn with_panics(mut self, permille: u16) -> Self {
        self.panic_permille = permille.min(1000);
        self
    }

    /// Enables transient-I/O-error injection at `permille` per thousand
    /// attempts (clamped to 1000).
    pub fn with_transient_io(mut self, permille: u16) -> Self {
        self.transient_permille = permille.min(1000);
        self
    }

    /// Enables slow-task injection at `permille` per thousand attempts
    /// (clamped to 1000), sleeping `delay` before the task runs.
    pub fn with_delays(mut self, permille: u16, delay: Duration) -> Self {
        self.delay_permille = permille.min(1000);
        self.delay = delay;
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True if no fault kind is enabled.
    pub fn is_empty(&self) -> bool {
        self.panic_permille == 0 && self.transient_permille == 0 && self.delay_permille == 0
    }

    /// The fault (if any) this plan injects into attempt `attempt` of
    /// task `task`. Pure: same inputs, same answer. One roll in 0..1000
    /// is compared against the cumulative rate bands (panic first, then
    /// transient, then delay), so the kinds never overlap; if the rates
    /// sum past 1000 the later bands are truncated.
    pub fn fault_for(&self, task: usize, attempt: u32) -> Option<InjectedFault> {
        if self.is_empty() {
            return None;
        }
        let mix = self.seed
            ^ (task as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (u64::from(attempt) << 48);
        let roll = (splitmix64(mix) % 1000) as u16;
        if roll < self.panic_permille {
            Some(InjectedFault::Panic)
        } else if roll < self.panic_permille.saturating_add(self.transient_permille) {
            Some(InjectedFault::TransientIo)
        } else if roll
            < self
                .panic_permille
                .saturating_add(self.transient_permille)
                .saturating_add(self.delay_permille)
        {
            Some(InjectedFault::Delay(self.delay))
        } else {
            None
        }
    }

    /// Parses the CLI form `SEED[:PANIC[:TRANSIENT[:DELAY]]]` — permille
    /// rates, with slow tasks sleeping 5 ms.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed field.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut parts = spec.split(':');
        let field = |name: &str, part: Option<&str>| -> Result<u64, String> {
            part.map_or(Ok(0), |p| {
                p.parse()
                    .map_err(|_| format!("bad {name} in fault spec `{spec}`"))
            })
        };
        let seed = parts
            .next()
            .filter(|s| !s.is_empty())
            .ok_or_else(|| format!("empty fault spec `{spec}`"))?
            .parse()
            .map_err(|_| format!("bad seed in fault spec `{spec}`"))?;
        let panic = field("panic rate", parts.next())?;
        let transient = field("transient rate", parts.next())?;
        let delay = field("delay rate", parts.next())?;
        if parts.next().is_some() {
            return Err(format!("too many fields in fault spec `{spec}`"));
        }
        if panic.max(transient).max(delay) > 1000 {
            return Err(format!("permille rate above 1000 in fault spec `{spec}`"));
        }
        Ok(FaultPlan::new(seed)
            .with_panics(panic as u16)
            .with_transient_io(transient as u16)
            .with_delays(delay as u16, Duration::from_millis(5)))
    }
}

/// The splitmix64 mixing function: a full-avalanche 64-bit hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed_and_index() {
        let a = FaultPlan::new(42).with_panics(300).with_transient_io(300);
        let b = FaultPlan::new(42).with_panics(300).with_transient_io(300);
        let faults_a: Vec<_> = (0..100).map(|i| a.fault_for(i, 0)).collect();
        let faults_b: Vec<_> = (0..100).map(|i| b.fault_for(i, 0)).collect();
        assert_eq!(faults_a, faults_b);
        let other: Vec<_> = (0..100)
            .map(|i| FaultPlan::new(43).with_panics(300).fault_for(i, 0))
            .collect();
        assert_ne!(faults_a, other, "different seeds differ");
    }

    #[test]
    fn rates_roughly_respected() {
        let plan = FaultPlan::new(1).with_panics(500);
        let hits = (0..2000)
            .filter(|&i| plan.fault_for(i, 0) == Some(InjectedFault::Panic))
            .count();
        assert!((700..=1300).contains(&hits), "{hits} of 2000 at 50%");
    }

    #[test]
    fn attempt_rerolls_transient_faults() {
        let plan = FaultPlan::new(9).with_transient_io(500);
        let faulted: Vec<usize> = (0..200)
            .filter(|&i| plan.fault_for(i, 0).is_some())
            .collect();
        assert!(!faulted.is_empty());
        // For at least one faulted task, a later attempt rolls clean —
        // this is what lets bounded retries make progress.
        assert!(faulted
            .iter()
            .any(|&i| (1..5).any(|a| plan.fault_for(i, a).is_none())));
    }

    #[test]
    fn empty_plan_never_faults() {
        let plan = FaultPlan::new(5);
        assert!(plan.is_empty());
        assert!((0..1000).all(|i| plan.fault_for(i, 0).is_none()));
    }

    #[test]
    fn always_rate_always_faults() {
        let plan = FaultPlan::new(11).with_panics(1000);
        assert!((0..100).all(|i| plan.fault_for(i, 0) == Some(InjectedFault::Panic)));
    }

    #[test]
    fn bands_are_ordered_panic_then_transient_then_delay() {
        let delay = Duration::from_millis(1);
        let plan = FaultPlan::new(3)
            .with_panics(0)
            .with_transient_io(0)
            .with_delays(1000, delay);
        assert!((0..50).all(|i| plan.fault_for(i, 0) == Some(InjectedFault::Delay(delay))));
    }

    #[test]
    fn parse_accepts_partial_specs() {
        assert_eq!(FaultPlan::parse("7").unwrap(), FaultPlan::new(7));
        assert_eq!(
            FaultPlan::parse("7:250").unwrap(),
            FaultPlan::new(7).with_panics(250)
        );
        let full = FaultPlan::parse("7:100:200:300").unwrap();
        assert_eq!(
            full,
            FaultPlan::new(7)
                .with_panics(100)
                .with_transient_io(200)
                .with_delays(300, Duration::from_millis(5))
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("").is_err());
        assert!(FaultPlan::parse("x").is_err());
        assert!(FaultPlan::parse("7:abc").is_err());
        assert!(FaultPlan::parse("7:1:2:3:4").is_err());
        assert!(FaultPlan::parse("7:2000").is_err());
    }
}
