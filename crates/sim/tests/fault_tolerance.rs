//! Fault-tolerance contract of the engine: panics stay isolated,
//! transient failures retry with bounded backoff, interrupted sweeps
//! resume from their checkpoint byte-identically, and injected faults
//! are deterministic.
//!
//! CI runs this file explicitly (`cargo test -p dfcm-sim --test
//! fault_tolerance`).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use dfcm::{DfcmPredictor, LastValuePredictor};
use dfcm_sim::checkpoint::CheckpointLog;
use dfcm_sim::engine::{run_tasks_ft, TaskError, TaskOutput};
use dfcm_sim::{sweep, sweep_engine_ft, EngineConfig, FaultPlan, RetryPolicy, TaskOutcome};
use dfcm_trace::{BenchmarkTrace, Trace, TraceRecord};
use proptest::prelude::*;

fn suite(benches: usize, records: u64) -> Vec<BenchmarkTrace> {
    static NAMES: [&str; 4] = ["a", "b", "c", "d"];
    (0..benches)
        .map(|b| BenchmarkTrace {
            name: NAMES[b % NAMES.len()],
            trace: (0..records)
                .map(|i| TraceRecord::new(0x1000 + 4 * (i % 32), i * (b as u64 + 2) % 977))
                .collect::<Trace>(),
        })
        .collect()
}

fn dfcm_factory(&(l1, l2): &(u32, u32)) -> DfcmPredictor {
    DfcmPredictor::builder()
        .l1_bits(l1)
        .l2_bits(l2)
        .build()
        .unwrap()
}

const CONFIGS: [(u32, u32); 3] = [(4, 6), (5, 7), (6, 8)];

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("dfcm_fault_tolerance_tests");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path
}

#[test]
fn panicking_task_is_isolated_and_reported() {
    let traces = suite(4, 200);
    // Force one specific task to panic via an always-panic plan gated to
    // one (task, attempt): easiest deterministic route is a plan whose
    // seed is chosen so at least one, but not every, task faults.
    let plan = FaultPlan::new(21).with_panics(300);
    let faulted: Vec<usize> = (0..CONFIGS.len() * traces.len())
        .filter(|&i| plan.fault_for(i, 0).is_some())
        .collect();
    assert!(
        !faulted.is_empty() && faulted.len() < CONFIGS.len() * traces.len(),
        "seed must fault some but not all tasks; got {faulted:?}"
    );
    let config = EngineConfig {
        threads: 4,
        retry: RetryPolicy::none(),
        faults: Some(plan),
        ..EngineConfig::default()
    };
    let (points, report) = sweep_engine_ft(&CONFIGS, dfcm_factory, &traces, &config, None).unwrap();
    // Every non-faulted task completed and matches the serial reference.
    let serial = sweep(&CONFIGS, dfcm_factory, &traces);
    for (c, point) in points.iter().enumerate() {
        let expect: Vec<_> = serial[c]
            .result
            .benchmarks
            .iter()
            .enumerate()
            .filter(|(b, _)| !faulted.contains(&(c * traces.len() + b)))
            .map(|(_, r)| r.clone())
            .collect();
        assert_eq!(point.result.benchmarks, expect, "config {c}");
        assert_eq!(point.result.predictor, serial[c].result.predictor);
    }
    // Failures are first-class in the report, in task order.
    let reported: Vec<usize> = report
        .tasks
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.outcome.is_ok())
        .map(|(i, _)| i)
        .collect();
    assert_eq!(reported, faulted);
    for t in report.failures() {
        assert!(
            matches!(&t.outcome, TaskOutcome::Panicked { message } if message.contains("injected")),
            "{:?}",
            t.outcome
        );
    }
    // And the JSONL names them.
    let jsonl = report.to_jsonl();
    assert!(jsonl.contains("\"outcome\":\"panicked\""));
    assert!(jsonl.contains(&format!("\"failed\":{}", faulted.len())));
}

#[test]
fn injected_faults_are_deterministic_across_runs_and_threads() {
    let traces = suite(3, 150);
    let outcomes = |threads: usize| -> Vec<String> {
        let config = EngineConfig {
            threads,
            retry: RetryPolicy::none(),
            faults: Some(FaultPlan::new(77).with_panics(400)),
            ..EngineConfig::default()
        };
        let (_, report) = sweep_engine_ft(&CONFIGS, dfcm_factory, &traces, &config, None).unwrap();
        report
            .tasks
            .iter()
            .map(|t| format!("{}:{}", t.label, t.outcome.kind()))
            .collect()
    };
    let reference = outcomes(1);
    assert_eq!(outcomes(1), reference);
    assert_eq!(outcomes(4), reference, "outcome set is thread-invariant");
    assert_eq!(outcomes(64), reference);
}

#[test]
fn transient_failures_retry_and_succeed() {
    let attempts: Vec<AtomicU32> = (0..6).map(|_| AtomicU32::new(0)).collect();
    let labels = (0..6).map(|i| format!("t{i}")).collect();
    let config = EngineConfig {
        threads: 3,
        retry: RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_micros(50),
            max_backoff: Duration::from_micros(200),
        },
        ..EngineConfig::default()
    };
    let (values, report) = run_tasks_ft(
        labels,
        |i| {
            let n = attempts[i].fetch_add(1, Ordering::SeqCst);
            // Odd tasks fail their first two attempts, then succeed.
            if i % 2 == 1 && n < 2 {
                return Err(TaskError::Transient(format!("flaky {i} attempt {n}")));
            }
            Ok(TaskOutput {
                value: i * 10,
                records: 1,
            })
        },
        &config,
    );
    assert_eq!(
        values,
        (0..6).map(|i| Some(i * 10)).collect::<Vec<_>>(),
        "every task eventually succeeds"
    );
    assert!(report.all_ok());
    for (i, t) in report.tasks.iter().enumerate() {
        let expected = if i % 2 == 1 { 3 } else { 1 };
        assert_eq!(t.attempts, expected, "task {i}");
        assert_eq!(attempts[i].load(Ordering::SeqCst), expected);
    }
    assert_eq!(report.total_attempts(), 3 + 1 + 3 + 1 + 3 + 1);
}

#[test]
fn exhausted_retries_fail_with_budget_in_message() {
    let config = EngineConfig {
        retry: RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::from_micros(10),
            max_backoff: Duration::from_micros(10),
        },
        ..EngineConfig::default()
    };
    let (values, report) = run_tasks_ft::<u32, _>(
        vec!["doomed".to_owned()],
        |_| Err(TaskError::Transient("always failing".into())),
        &config,
    );
    assert_eq!(values, vec![None]);
    let t = &report.tasks[0];
    assert_eq!(t.attempts, 2);
    assert!(
        matches!(&t.outcome, TaskOutcome::Failed { error }
            if error.contains("always failing") && error.contains("gave up after 2 attempts")),
        "{:?}",
        t.outcome
    );
}

#[test]
fn permanent_failures_fail_fast_without_retry() {
    let calls = AtomicU32::new(0);
    let config = EngineConfig {
        retry: RetryPolicy::default(), // would allow 3 attempts
        ..EngineConfig::default()
    };
    let (values, report) = run_tasks_ft::<u32, _>(
        vec!["bad-config".to_owned()],
        |_| {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(TaskError::Permanent("invalid configuration".into()))
        },
        &config,
    );
    assert_eq!(values, vec![None]);
    assert_eq!(calls.load(Ordering::SeqCst), 1, "no retry on permanent");
    assert_eq!(report.tasks[0].attempts, 1);
    assert!(
        matches!(&report.tasks[0].outcome, TaskOutcome::Failed { error }
            if error == "invalid configuration")
    );
}

#[test]
fn overrunning_deadline_is_classified_timed_out() {
    let config = EngineConfig {
        deadline: Some(Duration::from_millis(1)),
        ..EngineConfig::default()
    };
    let (values, report) = run_tasks_ft(
        vec!["slow".to_owned(), "fast".to_owned()],
        |i| {
            if i == 0 {
                std::thread::sleep(Duration::from_millis(20));
            }
            Ok(TaskOutput {
                value: i,
                records: 1,
            })
        },
        &config,
    );
    assert_eq!(values[0], None, "timed-out value is discarded");
    assert_eq!(values[1], Some(1));
    assert!(matches!(
        report.tasks[0].outcome,
        TaskOutcome::TimedOut { .. }
    ));
    assert!(report.tasks[1].outcome.is_ok());
}

#[test]
fn resumed_sweep_is_byte_identical_to_uninterrupted_run() {
    let traces = suite(3, 300);
    let config = EngineConfig::threads(2);
    let clean = sweep_engine_ft(&CONFIGS, dfcm_factory, &traces, &config, None)
        .unwrap()
        .0;

    // Full checkpointed run, then truncate the log to simulate a kill
    // partway through, then resume.
    let path = temp_path("resume_identical.jsonl");
    let full = sweep_engine_ft(&CONFIGS, dfcm_factory, &traces, &config, Some(&path))
        .unwrap()
        .0;
    assert_eq!(full, clean, "checkpointing must not perturb results");
    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), CONFIGS.len() * traces.len());
    std::fs::write(&path, format!("{}\n", lines[..4].join("\n"))).unwrap();

    let (resumed, report) =
        sweep_engine_ft(&CONFIGS, dfcm_factory, &traces, &config, Some(&path)).unwrap();
    assert_eq!(resumed, clean, "resumed merge diverged");
    let seeded = report.tasks.iter().filter(|t| t.attempts == 0).count();
    assert_eq!(seeded, 4, "checkpointed tasks must not re-run");
    assert!(report.all_ok());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn stale_checkpoint_from_different_sweep_is_ignored() {
    let traces = suite(2, 150);
    let path = temp_path("stale_shape.jsonl");
    // Checkpoint a different task shape: distinct benchmark names, so no
    // (index, label) pair of the stale log matches the new sweep.
    let other: Vec<BenchmarkTrace> = suite(2, 50)
        .into_iter()
        .zip(["x", "y"])
        .map(|(t, name)| BenchmarkTrace { name, ..t })
        .collect();
    sweep_engine_ft(
        &CONFIGS,
        dfcm_factory,
        &other,
        &EngineConfig::threads(1),
        Some(&path),
    )
    .unwrap();
    let clean = sweep_engine_ft(
        &CONFIGS,
        dfcm_factory,
        &traces,
        &EngineConfig::threads(1),
        None,
    )
    .unwrap()
    .0;
    let (points, report) = sweep_engine_ft(
        &CONFIGS,
        dfcm_factory,
        &traces,
        &EngineConfig::threads(1),
        Some(&path),
    )
    .unwrap();
    assert_eq!(points, clean);
    // No stale entry matched, so every task re-ran from scratch.
    assert!(report.tasks.iter().all(|t| t.attempts == 1));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn checkpoint_appends_are_concurrency_safe() {
    let path = temp_path("concurrent_appends.jsonl");
    let (log, _) = CheckpointLog::open(&path).unwrap();
    let log = &log;
    std::thread::scope(|scope| {
        for w in 0..4 {
            scope.spawn(move || {
                for i in 0..25 {
                    let index = w * 25 + i;
                    log.append(index, &format!("t{index}"), 1, "{}").unwrap();
                }
            });
        }
    });
    let (_, entries) = CheckpointLog::open(&path).unwrap();
    assert_eq!(entries.len(), 100, "no torn or interleaved lines");
    let mut seen: Vec<usize> = entries.iter().map(|e| e.index).collect();
    seen.sort_unstable();
    assert_eq!(seen, (0..100).collect::<Vec<_>>());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn poisoned_state_does_not_cascade() {
    // A panicking task runs *inside* the worker loop; if the engine used
    // poisoning lock().unwrap() on its shared queue this would abort the
    // whole batch instead of completing the remaining tasks.
    let labels: Vec<String> = (0..40).map(|i| format!("t{i}")).collect();
    let (values, report) = run_tasks_ft(
        labels,
        |i| {
            assert!(i % 7 != 3, "task {i} exploded");
            Ok(TaskOutput {
                value: i,
                records: 1,
            })
        },
        &EngineConfig {
            threads: 4,
            retry: RetryPolicy::none(),
            ..EngineConfig::default()
        },
    );
    for (i, value) in values.iter().enumerate() {
        if i % 7 == 3 {
            assert_eq!(*value, None);
            assert!(matches!(
                report.tasks[i].outcome,
                TaskOutcome::Panicked { .. }
            ));
        } else {
            assert_eq!(*value, Some(i));
        }
    }
}

proptest! {
    /// Interrupting a checkpointed sweep after ANY number of completed
    /// tasks and resuming yields exactly the uninterrupted result.
    #[test]
    fn resume_from_any_interrupt_point_matches(keep in 0usize..9, threads in 1usize..5) {
        let traces = suite(3, 120);
        let config = EngineConfig::threads(threads);
        let clean = sweep_engine_ft(&CONFIGS, dfcm_factory, &traces, &config, None)
            .unwrap()
            .0;
        let path = temp_path(&format!("prop_resume_{keep}_{threads}.jsonl"));
        sweep_engine_ft(&CONFIGS, dfcm_factory, &traces, &config, Some(&path)).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        prop_assert!(lines.len() == CONFIGS.len() * traces.len());
        let keep = keep.min(lines.len());
        let truncated = if keep == 0 {
            String::new()
        } else {
            format!("{}\n", lines[..keep].join("\n"))
        };
        std::fs::write(&path, truncated).unwrap();
        let (resumed, report) =
            sweep_engine_ft(&CONFIGS, dfcm_factory, &traces, &config, Some(&path)).unwrap();
        prop_assert!(resumed == clean, "diverged after resuming from {} tasks", keep);
        let seeded = report.tasks.iter().filter(|t| t.attempts == 0).count();
        prop_assert!(seeded == keep, "expected {} seeded tasks, got {}", keep, seeded);
        let _ = std::fs::remove_file(&path);
    }

    /// Retry accounting: a task that fails `fails` times before
    /// succeeding consumes exactly `fails + 1` attempts when the budget
    /// allows, and exactly the budget when it does not.
    #[test]
    fn retry_accounting_matches_failure_count(fails in 0u32..6, max_attempts in 1u32..6) {
        let counter = AtomicU32::new(0);
        let counter = &counter;
        let config = EngineConfig {
            retry: RetryPolicy {
                max_attempts,
                base_backoff: Duration::from_micros(10),
                max_backoff: Duration::from_micros(40),
            },
            ..EngineConfig::default()
        };
        let (values, report) = run_tasks_ft(
            vec!["flaky".to_owned()],
            move |_| {
                let n = counter.fetch_add(1, Ordering::SeqCst);
                if n < fails {
                    Err(TaskError::Transient(format!("fail {n}")))
                } else {
                    Ok(TaskOutput { value: n, records: 1 })
                }
            },
            &config,
        );
        let t = &report.tasks[0];
        if fails < max_attempts {
            prop_assert!(values[0] == Some(fails), "succeeds on attempt {}", fails + 1);
            prop_assert!(t.outcome.is_ok());
            prop_assert!(t.attempts == fails + 1, "attempts {}", t.attempts);
        } else {
            prop_assert!(values[0].is_none());
            prop_assert!(matches!(t.outcome, TaskOutcome::Failed { .. }));
            prop_assert!(t.attempts == max_attempts, "attempts {}", t.attempts);
        }
    }
}

#[test]
fn lock_recovery_under_injected_panics_is_exhaustive() {
    // Sweep a plan that panics EVERY task: the engine must still return,
    // with every task reported and zero results merged.
    let traces = suite(2, 60);
    let config = EngineConfig {
        threads: 2,
        retry: RetryPolicy::none(),
        faults: Some(FaultPlan::new(1).with_panics(1000)),
        ..EngineConfig::default()
    };
    let (points, report) = sweep_engine_ft(&CONFIGS, dfcm_factory, &traces, &config, None).unwrap();
    assert_eq!(report.failures().count(), CONFIGS.len() * traces.len());
    for point in &points {
        assert!(point.result.benchmarks.is_empty());
        // Header metadata still present (probed from the factory).
        assert!(!point.result.predictor.is_empty());
    }
}

#[test]
fn run_suite_engine_ft_reports_partial_suites() {
    let traces = suite(4, 100);
    // Pick (deterministically) a seed whose plan faults a proper,
    // non-empty subset of the four tasks.
    let plan = (0u64..)
        .map(|seed| FaultPlan::new(seed).with_panics(400))
        .find(|p| {
            let n = (0..4).filter(|&i| p.fault_for(i, 0).is_some()).count();
            n > 0 && n < 4
        })
        .unwrap();
    let faulted: Vec<usize> = (0..4).filter(|&i| plan.fault_for(i, 0).is_some()).collect();
    let config = EngineConfig {
        retry: RetryPolicy::none(),
        faults: Some(plan),
        ..EngineConfig::default()
    };
    let (result, report) =
        dfcm_sim::run_suite_engine_ft(|| LastValuePredictor::new(6), &traces, &config, None)
            .unwrap();
    assert_eq!(result.benchmarks.len(), 4 - faulted.len());
    assert_eq!(report.failures().count(), faulted.len());
}

#[test]
fn fault_injected_delays_do_not_change_results() {
    let traces = suite(3, 150);
    let clean = sweep_engine_ft(
        &CONFIGS,
        dfcm_factory,
        &traces,
        &EngineConfig::threads(2),
        None,
    )
    .unwrap()
    .0;
    let config = EngineConfig {
        threads: 2,
        faults: Some(FaultPlan::new(5).with_delays(1000, Duration::from_micros(200))),
        ..EngineConfig::default()
    };
    let (points, report) = sweep_engine_ft(&CONFIGS, dfcm_factory, &traces, &config, None).unwrap();
    assert_eq!(points, clean, "delays must only slow tasks down");
    assert!(report.all_ok());
}

#[test]
fn progress_lines_drain_even_when_tasks_fail() {
    // Smoke: progress printing takes the completed-list lock after a
    // panic may have poisoned it; this must not deadlock or panic.
    let stderr_guard = Mutex::new(());
    let _g = stderr_guard.lock().unwrap();
    let (values, _) = run_tasks_ft::<usize, _>(
        (0..8).map(|i| format!("t{i}")).collect(),
        |i| {
            assert!(i != 2);
            Ok(TaskOutput {
                value: i,
                records: 1,
            })
        },
        &EngineConfig {
            threads: 2,
            progress: true,
            retry: RetryPolicy::none(),
            ..EngineConfig::default()
        },
    );
    assert_eq!(values.iter().filter(|v| v.is_none()).count(), 1);
}
