//! Differential tests: the streaming pass must be bit-identical to the
//! classic predict-then-update reference loop — aggregate [`RunStats`]
//! and every per-record outcome — and the chunk-parallel variants must be
//! bit-identical to the serial streaming pass.

use dfcm::{
    DfcmPredictor, FcmPredictor, LastValuePredictor, StridePredictor, TwoDeltaStridePredictor,
    ValuePredictor,
};
use dfcm_sim::{
    simulate_trace, stream_records_with, stream_trace, stream_trace_chunked, RunStats,
    StreamPredictor,
};
use dfcm_trace::suite::standard_traces;
use dfcm_trace::{Trace, TraceRecord};
use proptest::prelude::*;

/// The four paper predictors plus two-delta, at eval-sized tables.
fn lanes() -> Vec<StreamPredictor> {
    vec![
        LastValuePredictor::new(10).into(),
        StridePredictor::new(10).into(),
        TwoDeltaStridePredictor::new(10).into(),
        FcmPredictor::builder()
            .l1_bits(10)
            .l2_bits(12)
            .build()
            .unwrap()
            .into(),
        DfcmPredictor::builder()
            .l1_bits(10)
            .l2_bits(12)
            .build()
            .unwrap()
            .into(),
    ]
}

/// The reference path: `simulate_trace` over a `dyn ValuePredictor`, with
/// every per-record outcome captured through the two-call protocol.
fn reference_outcomes(lane: &StreamPredictor, trace: &Trace) -> (RunStats, Vec<(u64, bool)>) {
    let mut p: Box<dyn ValuePredictor> = Box::new(lane.clone());
    let mut outcomes = Vec::with_capacity(trace.len());
    for record in trace {
        let predicted = p.predict(record.pc);
        p.update(record.pc, record.value);
        outcomes.push((predicted, predicted == record.value));
    }
    // Aggregate on a second cold copy through the public entry point, so
    // the test also covers `simulate_trace`'s own counting.
    let mut again: Box<dyn ValuePredictor> = Box::new(lane.clone());
    (simulate_trace(&mut again, trace), outcomes)
}

#[test]
fn streaming_pass_is_bit_identical_to_simulate_trace_over_full_suite() {
    // The full synthetic suite (small scale keeps the debug-build test
    // fast; every benchmark and every pattern archetype is exercised).
    for bench in standard_traces(0xD1FF, 0.02) {
        let mut streamed = lanes();
        let mut seen: Vec<Vec<(u64, bool)>> =
            vec![Vec::with_capacity(bench.trace.len()); streamed.len()];
        let stats = stream_records_with(&mut streamed, bench.trace.records(), |li, _, out| {
            seen[li].push((out.predicted, out.correct));
        });
        for (li, lane) in lanes().iter().enumerate() {
            let (ref_stats, ref_outcomes) = reference_outcomes(lane, &bench.trace);
            assert_eq!(
                stats[li],
                ref_stats,
                "{} on {}: RunStats diverged",
                lane.clone().name(),
                bench.name
            );
            assert_eq!(
                seen[li],
                ref_outcomes,
                "{} on {}: per-record outcomes diverged",
                lane.clone().name(),
                bench.name
            );
        }
    }
}

#[test]
fn v3_file_streaming_is_bit_identical_to_v2_over_full_suite() {
    // The differential guarantee from the v3 tier: for every suite
    // benchmark, streaming the compressed v3 file — at one thread and at
    // several — produces the same records and the same RunStats as the
    // v2 path and the in-memory pass.
    use dfcm_sim::{stream_trace_file, stream_v2_file, stream_v3_file};
    use dfcm_trace::TraceFormat;

    let dir = std::env::temp_dir().join("dfcm_stream_equiv_v3");
    std::fs::create_dir_all(&dir).unwrap();
    for bench in standard_traces(0xD1FF, 0.02) {
        let v2_path = dir.join(format!("{}.v2.trc", bench.name));
        let v3_path = dir.join(format!("{}.v3.trc", bench.name));
        bench
            .trace
            .save_with(&v2_path, TraceFormat::V2 { seed: 0xD1FF })
            .unwrap();
        bench
            .trace
            .save_with(&v3_path, TraceFormat::V3 { seed: 0xD1FF })
            .unwrap();

        let mut memory = lanes();
        let expected = stream_trace(&mut memory, &bench.trace);
        let mut v2 = lanes();
        let v2_report = stream_v2_file(&v2_path, &mut v2, 3).unwrap();
        assert_eq!(
            v2_report.stats, expected,
            "{}: v2 path diverged",
            bench.name
        );
        for threads in [1, 3] {
            let mut v3 = lanes();
            let v3_report = stream_v3_file(&v3_path, &mut v3, threads).unwrap();
            assert_eq!(
                v3_report.stats, expected,
                "{}: v3 path diverged at {} threads",
                bench.name, threads
            );
            assert_eq!(v3_report.records, v2_report.records, "{}", bench.name);
            let mut sniffed = lanes();
            let auto = stream_trace_file(&v3_path, &mut sniffed, threads).unwrap();
            assert_eq!(auto, v3_report, "{}: sniffer diverged", bench.name);
        }
        let _ = std::fs::remove_file(&v2_path);
        let _ = std::fs::remove_file(&v3_path);
    }
    let _ = std::fs::remove_dir(&dir);
}

/// A generated trace: bounded pc/value alphabets keep collisions (the
/// interesting case for table-indexed predictors) frequent.
fn arb_trace() -> impl Strategy<Value = Trace> {
    prop::collection::vec((0u64..4096, 0u64..64), 0..600).prop_map(|v| {
        v.into_iter()
            .map(|(pc, value)| TraceRecord::new(pc & !3, value.wrapping_mul(0x9E37)))
            .collect()
    })
}

/// One lane of a given kind, at deliberately tiny table sizes so aliasing
/// and history collisions happen inside short random traces.
fn lane_for(kind: usize) -> StreamPredictor {
    match kind {
        0 => LastValuePredictor::new(3).into(),
        1 => StridePredictor::new(3).into(),
        2 => TwoDeltaStridePredictor::new(3).into(),
        3 => FcmPredictor::builder()
            .l1_bits(3)
            .l2_bits(6)
            .build()
            .unwrap()
            .into(),
        _ => DfcmPredictor::builder()
            .l1_bits(3)
            .l2_bits(6)
            .build()
            .unwrap()
            .into(),
    }
}

proptest! {
    /// The chunked streaming pass agrees with the serial pass for every
    /// predictor kind, any chunk size (including chunks larger than the
    /// trace and traces shorter than one chunk), and random traces.
    #[test]
    fn chunked_and_serial_streaming_agree(
        trace in arb_trace(),
        chunk in 1usize..700,
        kinds in prop::collection::vec(0usize..5, 1..5),
    ) {
        let base: Vec<StreamPredictor> = kinds.iter().map(|&k| lane_for(k)).collect();
        let mut serial = base.clone();
        let mut chunked = base.clone();
        let expected = stream_trace(&mut serial, &trace);
        let got = stream_trace_chunked(&mut chunked, &trace, chunk);
        prop_assert_eq!(got, expected);
    }

    /// The streaming pass agrees with per-lane `simulate_trace` on random
    /// traces for every predictor kind.
    #[test]
    fn streaming_and_reference_agree(
        trace in arb_trace(),
        kinds in prop::collection::vec(0usize..5, 1..5),
    ) {
        let mut streamed: Vec<StreamPredictor> =
            kinds.iter().map(|&k| lane_for(k)).collect();
        let stats = stream_trace(&mut streamed, &trace);
        for (li, &k) in kinds.iter().enumerate() {
            let mut reference = lane_for(k);
            prop_assert_eq!(stats[li], simulate_trace(&mut reference, &trace));
        }
    }
}
